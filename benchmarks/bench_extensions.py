"""Bench X2 -- the algorithms this paper spawned (S3-FIFO, SIEVE).

The paper's closing vision -- LEGO eviction algorithms built from lazy
promotion and quick demotion -- became S3-FIFO (SOSP'23) and SIEVE
(NSDI'24).  This bench compares them with QD-LP-FIFO and the
baselines; all three FIFO-family designs should comfortably beat FIFO
and be competitive with ARC.
"""

from conftest import run_once, shape_checks_enabled

from repro.experiments import extensions
from repro.sim.runner import LARGE_FRACTION


def test_extensions(benchmark, corpus_config):
    result = run_once(benchmark, extensions.run, corpus_config)
    print()
    print(result.render())

    for policy in ("QD-LP-FIFO", "S3-FIFO", "SIEVE"):
        for group in ("block", "web"):
            mean = result.mean(group, LARGE_FRACTION, policy)
            benchmark.extra_info[f"{policy}_{group}_large"] = round(mean, 4)
            if shape_checks_enabled(corpus_config):
                assert mean > 0, f"{policy} lost to FIFO on {group}/large"

