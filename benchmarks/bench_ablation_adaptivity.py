"""Bench A8 -- fixed vs adaptive probationary sizing (paper §5).

The paper fixes the probationary queue at 10 % and argues adaptive
sizing (ARC-style) is not obviously better.  This bench runs the
comparison; the assertion is deliberately symmetric -- both designs
must beat FIFO and sit within a few points of each other -- because
the honest finding (here as in the paper's discussion) is that the
adaptation buys little either way.
"""

from conftest import run_once, shape_checks_enabled

from repro.experiments import ablations


def test_adaptivity_study(benchmark, corpus_config):
    result = run_once(benchmark, ablations.run_adaptivity_study,
                      corpus_config)
    print()
    print(result.render())

    outcomes = result.outcomes
    for label, (mean, wins) in outcomes.items():
        benchmark.extra_info[f"{label}"] = round(mean, 4)
    if not shape_checks_enabled(corpus_config):
        return
    fixed = outcomes["fixed-10%"][0]
    adaptive = outcomes["adaptive"][0]
    assert fixed > 0 and adaptive > 0, "both must beat FIFO"
    assert abs(fixed - adaptive) < 0.05, (
        "adaptation should neither win nor lose big -- the paper's "
        "point that the tiny fixed queue is already near-optimal")
