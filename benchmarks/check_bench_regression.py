"""Benchmark regression gate for the fast simulation engines.

Re-measures the frozen ``BENCH_WORKLOAD`` (see
``repro.experiments.throughput``) and compares each policy's
fast-vs-reference *speedup* against the committed baseline in
``BENCH_throughput.json``.  Speedups are ratios taken on the same
machine in the same process, so they transfer across hardware far
better than absolute requests/second do.

Exit status 1 when any policy's speedup fell more than ``--tolerance``
(default 20 %) below its baseline.  The fresh measurement is written
next to the results artifacts so CI uploads capture it.

Usage::

    python benchmarks/check_bench_regression.py            # gate
    python benchmarks/check_bench_regression.py --update-baseline
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
BASELINE = REPO_ROOT / "BENCH_throughput.json"

sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.common import results_dir          # noqa: E402
from repro.experiments.throughput import (                 # noqa: E402
    FAST_POLICIES,
    run_fast_comparison,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", type=Path, default=BASELINE,
                        help="committed baseline JSON to compare against")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional speedup regression")
    parser.add_argument("--update-baseline", action="store_true",
                        help="overwrite the baseline with this "
                             "machine's measurement instead of gating")
    args = parser.parse_args(argv)

    if args.update_baseline:
        result = run_fast_comparison(json_path=args.baseline)
        print(result.render())
        print(f"baseline updated: {args.baseline}")
        return 0

    if not args.baseline.exists():
        print(f"error: baseline {args.baseline} not found; run with "
              f"--update-baseline first", file=sys.stderr)
        return 2
    baseline = json.loads(args.baseline.read_text())

    fresh_path = results_dir() / "BENCH_throughput.json"
    result = run_fast_comparison(workload=baseline.get("workload"),
                                 json_path=fresh_path)
    print(result.render())
    print(f"fresh measurement written to {fresh_path}")

    failures = []
    ungated = [p for p in FAST_POLICIES if p not in baseline["policies"]]
    if ungated:
        failures.append(
            f"not in baseline (re-run --update-baseline): "
            f"{', '.join(ungated)}")
    for policy, base_row in baseline["policies"].items():
        row = result.rows.get(policy)
        if row is None:
            failures.append(f"{policy}: missing from fresh measurement")
            continue
        floor = base_row["speedup"] * (1.0 - args.tolerance)
        status = "ok" if row["speedup"] >= floor else "REGRESSED"
        print(f"{policy:18s} baseline x{base_row['speedup']:6.2f}  "
              f"now x{row['speedup']:6.2f}  floor x{floor:6.2f}  {status}")
        if row["speedup"] < floor:
            failures.append(
                f"{policy}: speedup x{row['speedup']:.2f} fell below "
                f"x{floor:.2f} (baseline x{base_row['speedup']:.2f} "
                f"- {args.tolerance:.0%})")
    if failures:
        print("\nbenchmark regression detected:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("\nno benchmark regression")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
