"""Deterministic tiered-hierarchy smoke run for the CI diff gate.

Replays one seeded zipf trace with log-normal sizes through a two-tier
DRAM -> flash -> backend hierarchy for a small grid of DRAM policies x
flash admission controllers (X7's shape, scaled down to smoke size),
then checkpoints everything under a known run id:

* ``journal.jsonl`` -- one result line per cell (overall/DRAM/flash
  hit counts, demotion outcome counts, flash write bytes, write
  amplification, backend fetches, total cost) plus the final metrics
  snapshot -- the input to ``repro diff`` against the committed
  baseline at ``benchmarks/baselines/hierarchy-smoke/journal.jsonl``.

Every number derives from seeded numpy sampling and synchronous
replay, so the journal is bit-reproducible across machines.

Usage::

    python benchmarks/run_hierarchy_smoke.py --runs-dir runs-ci
    PYTHONPATH=src python -m repro.cli diff \
        benchmarks/baselines/hierarchy-smoke/journal.jsonl \
        runs-ci/hierarchy-smoke
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.exec.journal import Journal                    # noqa: E402
from repro.hierarchy import (                             # noqa: E402
    dram_flash_config,
    simulate_hierarchy,
)
from repro.obs import MetricsRegistry                     # noqa: E402
from repro.sized.workloads import (                       # noqa: E402
    attach_sizes,
    unique_bytes,
)
from repro.traces.zipf import zipf_ranks                  # noqa: E402

SEED = 20260808
SIZE_SEED = 1
NUM_OBJECTS = 600
NUM_REQUESTS = 8000
ALPHA = 0.9
DRAM_FRACTION = 0.10
FLASH_FRACTION = 0.20

DRAM_POLICIES = ("Sized-LRU", "Sized-FIFO", "Sized-QD-LP-FIFO")
ADMISSIONS = ("admit-all", "ghost")


def run_cell(policy, admission, sized, dram_bytes, flash_bytes,
             registry):
    """One (DRAM policy, flash admission) cell on a fresh hierarchy."""
    config = dram_flash_config(
        dram_bytes=dram_bytes, flash_bytes=flash_bytes,
        dram_policy=policy, flash_admission=admission)
    return simulate_hierarchy(
        config, sized, registry=registry,
        metric_labels={"policy": policy, "admission": admission})


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs-dir", default="runs-ci",
                        help="runs root to create the run under")
    parser.add_argument("--run-id", default="hierarchy-smoke",
                        help="run id (directory name) for the journal")
    args = parser.parse_args(argv)

    keys = zipf_ranks(NUM_OBJECTS, ALPHA, NUM_REQUESTS, seed=SEED)
    sized = attach_sizes(keys.tolist(), "lognormal", seed=SIZE_SEED)
    footprint = unique_bytes(sized)
    dram_bytes = max(4096, round(footprint * DRAM_FRACTION))
    flash_bytes = max(4096, round(footprint * FLASH_FRACTION))

    registry = MetricsRegistry()
    journal = Journal.create(run_id=args.run_id, root=args.runs_dir,
                             meta={"name": "hierarchy-smoke",
                                   "seed": SEED,
                                   "footprint_bytes": footprint})
    ok = True
    with journal:
        for policy in DRAM_POLICIES:
            for admission in ADMISSIONS:
                result = run_cell(policy, admission, sized, dram_bytes,
                                  flash_bytes, registry)
                dram = result.tier_report("dram")
                flash = result.tier_report("flash")
                journal.record_result(
                    (policy, admission),
                    {
                        "requests": result.requests,
                        "overall_hits": result.overall_hits,
                        "backend_fetches": result.backend_fetches,
                        "dram_hits": dram.hits,
                        "flash_hits": flash.hits,
                        "demoted_admitted": flash.demoted_in_admitted,
                        "demoted_refreshed": flash.demoted_in_refreshed,
                        "demoted_rejected": flash.demoted_in_rejected,
                        "flash_write_bytes": flash.write_bytes,
                        "flash_write_amp": round(
                            flash.write_amplification, 6),
                        "total_cost": round(result.total_cost, 3),
                    })
                print(f"  {policy:18s} {admission:9s} "
                      f"hit {result.overall_hit_ratio:6.4f}  "
                      f"flash W {flash.write_bytes:>10d}B  "
                      f"wamp {flash.write_amplification:5.3f}")
        journal.record_metrics(registry.snapshot())
    run_dir = Path(args.runs_dir) / args.run_id
    if not (run_dir / "journal.jsonl").is_file():
        print(f"missing artifact: {run_dir / 'journal.jsonl'}",
              file=sys.stderr)
        ok = False
    print(f"hierarchy smoke: {len(DRAM_POLICIES) * len(ADMISSIONS)} "
          f"cells, run {run_dir}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
