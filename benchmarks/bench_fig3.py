"""Bench F3 -- regenerate Fig. 3: cache resources by object popularity.

Paper shape: LRU spends the largest share of cache space-time on
unpopular objects; ARC spends less; Belady the least.  (LHD sits
between LRU and ARC on the MSR-like trace, matching its weaker Table 2
result there.)
"""

from conftest import run_once

from repro.experiments import fig3


def test_fig3(benchmark):
    result = run_once(benchmark, fig3.run, scale=1.0)
    print()
    print(result.render())

    for trace_name in ("MSR", "Twitter"):
        lru = result.unpopular_share(trace_name, "LRU")
        arc = result.unpopular_share(trace_name, "ARC")
        belady = result.unpopular_share(trace_name, "Belady")
        assert arc < lru, f"{trace_name}: ARC should spend less than LRU"
        assert belady < lru, f"{trace_name}: Belady should spend least"
        benchmark.extra_info[f"{trace_name}_unpopular_lru"] = round(lru, 4)
        benchmark.extra_info[f"{trace_name}_unpopular_arc"] = round(arc, 4)
        benchmark.extra_info[f"{trace_name}_unpopular_belady"] = (
            round(belady, 4))
