"""Bench A6 -- size-aware LP/QD (paper §5 future work).

Shape asserted: size-aware Lazy Promotion (sized 2-bit CLOCK) beats
sized LRU on both metrics, and adding size-aware Quick Demotion
improves the byte miss ratio further.
"""

from conftest import run_once, shape_checks_enabled

from repro.experiments import sized_study


def test_sized_study(benchmark, corpus_config):
    result = run_once(benchmark, sized_study.run, corpus_config)
    print()
    print(result.render())

    for name in result.object_miss_ratio:
        benchmark.extra_info[f"omr_{name}"] = round(
            result.object_miss_ratio[name], 4)
        benchmark.extra_info[f"bmr_{name}"] = round(
            result.byte_miss_ratio[name], 4)
    if not shape_checks_enabled(corpus_config):
        return
    omr, bmr = result.object_miss_ratio, result.byte_miss_ratio
    assert omr["Sized-2-bit-CLOCK"] < omr["Sized-LRU"], (
        "size-aware LP should beat LRU (object miss ratio)")
    assert bmr["Sized-QD-LP-FIFO"] < bmr["Sized-LRU"], (
        "size-aware LP+QD should beat LRU (byte miss ratio)")
    assert bmr["Sized-QD-LP-FIFO"] <= bmr["Sized-2-bit-CLOCK"] + 0.005, (
        "size-aware QD should not hurt LP's byte miss ratio")
