"""Deterministic open-loop overload smoke run for the CI diff gate.

Plays one seeded step-overload schedule (X6's shape, scaled down to
smoke size) against a fresh :class:`CacheService` per (policy, mode)
cell -- ``static`` (fixed limit, deep queue, no deadline) vs
``adaptive`` (AIMD limiter, bounded drop-oldest queue with a dispatch
deadline) -- on a virtual clock, then checkpoints everything under a
known run id:

* ``journal.jsonl`` -- one result line per cell (offered, outcomes,
  goodput, drop ratio, queue-delay p99, promotions, final limit) plus
  the final metrics snapshot and the adaptive QD-LP-FIFO cell's
  windowed time-series -- the input to ``repro diff`` against the
  committed baseline at
  ``benchmarks/baselines/overload-smoke/journal.jsonl``;
* ``timeseries.jsonl`` -- the same windowed curves as standalone JSONL.

Everything runs on seeded numpy arrivals and a
:class:`~repro.exec.clock.VirtualClock`, so every journalled number is
bit-reproducible across machines; ``*_seconds`` metrics (none are
emitted here) would be diff-ignored anyway.

Usage::

    python benchmarks/run_overload_smoke.py --runs-dir runs-ci
    PYTHONPATH=src python -m repro.cli diff \
        benchmarks/baselines/overload-smoke/journal.jsonl \
        runs-ci/overload-smoke
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np                                        # noqa: E402

from repro.exec.clock import VirtualClock                 # noqa: E402
from repro.exec.journal import Journal                    # noqa: E402
from repro.obs import (                                   # noqa: E402
    MetricsRegistry,
    TimeSeriesRecorder,
)
from repro.policies.registry import make                  # noqa: E402
from repro.service.backend import InMemoryBackend         # noqa: E402
from repro.service.loadgen import run_open_load           # noqa: E402
from repro.service.overload import (                      # noqa: E402
    AdmissionQueue,
    AIMDLimiter,
    AimdConfig,
    StaticLimiter,
    StepArrivals,
    ServiceCostModel,
)
from repro.service.service import CacheService, ServiceConfig  # noqa: E402
from repro.traces.synthetic import zipf_trace             # noqa: E402

SEED = 20260808
POLICIES = ("LRU", "FIFO", "QD-LP-FIFO")
MODES = ("static", "adaptive")

NUM_OBJECTS = 400
NUM_REQUESTS = 4000
CACHE_CAPACITY = 40
RATE = 200.0
PEAK_RATE = 1200.0
DURATION = 8.0
CONCURRENCY = 16
QUEUE_CAPACITY = 128
QUEUE_DEADLINE = 0.5
TARGET_DELAY = 0.05
COST = ServiceCostModel(base_cost=0.001, miss_penalty=0.004,
                        promotion_cost=0.002)

#: The one cell whose windowed curves ride the journal (every cell runs
#: its own virtual clock from zero, so only one can own the recorder's
#: time base).
TIMESERIES_CELL = ("QD-LP-FIFO", "adaptive")


def run_cell(policy_name: str, mode: str, keys, registry, recorder):
    """One (policy, mode) cell on a fresh service and virtual clock."""
    clock = VirtualClock()
    service = CacheService(make(policy_name, CACHE_CAPACITY),
                           InMemoryBackend(), ServiceConfig(),
                           clock=clock)
    schedule = StepArrivals(rate=RATE, duration=DURATION,
                            peak_rate=PEAK_RATE, seed=SEED)
    if mode == "static":
        queue = AdmissionQueue(capacity=1_000_000, policy="fifo")
        limiter = StaticLimiter(CONCURRENCY)
    else:
        queue = AdmissionQueue(capacity=QUEUE_CAPACITY,
                               policy="drop-oldest",
                               deadline=QUEUE_DEADLINE)
        limiter = AIMDLimiter(AimdConfig(target_delay=TARGET_DELAY,
                                         max_limit=CONCURRENCY))
    is_timeseries_cell = (policy_name, mode) == TIMESERIES_CELL
    report = run_open_load(
        service, keys, schedule, queue=queue, limiter=limiter, cost=COST,
        timeseries=recorder if is_timeseries_cell else None,
        registry=registry,
        metric_labels={"policy": policy_name, "mode": mode})
    report.check_conservation()
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs-dir", default="runs-ci",
                        help="runs root to create the run under")
    parser.add_argument("--run-id", default="overload-smoke",
                        help="run id (directory name) for the journal")
    args = parser.parse_args(argv)

    registry = MetricsRegistry()
    recorder = TimeSeriesRecorder(registry, cadence=1.0)
    rng = np.random.default_rng(SEED)
    keys = zipf_trace(NUM_OBJECTS, NUM_REQUESTS, 1.0, rng).tolist()

    journal = Journal.create(run_id=args.run_id, root=args.runs_dir,
                             meta={"name": "overload-smoke",
                                   "seed": SEED})
    ok = True
    with journal:
        for policy_name in POLICIES:
            for mode in MODES:
                report = run_cell(policy_name, mode, keys, registry,
                                  recorder)
                journal.record_result(
                    (policy_name, mode),
                    {
                        "offered": report.offered,
                        "outcomes": dict(sorted(
                            report.outcomes.items())),
                        "goodput": report.goodput,
                        "hit_ratio": report.hit_ratio,
                        "drop_ratio": report.drop_ratio,
                        "queue_delay_p99": report.queue_delay_p99,
                        "max_queue_depth": report.max_queue_depth,
                        "promotions": report.promotions,
                        "final_limit": report.final_limit,
                    })
                print(f"  {policy_name:12s} {mode:8s} "
                      f"goodput {report.goodput:8.1f} req/s  "
                      f"drop {report.drop_ratio:6.2%}  "
                      f"p99 qdelay {report.queue_delay_p99 * 1e3:8.1f}ms")
        journal.record_metrics(registry.snapshot())
        journal.record_timeseries(recorder.to_rows())
    run_dir = Path(args.runs_dir) / args.run_id
    recorder.write_jsonl(run_dir / "timeseries.jsonl")

    for artifact in ("journal.jsonl", "timeseries.jsonl"):
        if not (run_dir / artifact).is_file():
            print(f"missing artifact: {run_dir / artifact}",
                  file=sys.stderr)
            ok = False
    print(f"overload smoke: {len(POLICIES) * len(MODES)} cells, "
          f"run {run_dir}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
