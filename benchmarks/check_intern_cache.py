"""CI round-trip check for the on-disk intern cache.

Interns a trace against a fresh cache directory twice -- the first run
must write the entry (cold), the second must load it (fingerprint
hit), and the loaded form must equal the computed one exactly.  Exits
1 on any deviation.  Runs in well under a second; the point is wiring,
not throughput.

Usage::

    python benchmarks/check_intern_cache.py [--root DIR]
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np                                         # noqa: E402

from repro.sim.fast.intern import intern_trace             # noqa: E402
from repro.sim.fast.interncache import InternCache         # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", type=Path, default=None,
                        help="cache directory (default: a fresh tempdir)")
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory() as tmp:
        root = args.root or Path(tmp) / "intern-cache"
        cache = InternCache(root=root)
        rng = np.random.default_rng(11)
        keys = rng.integers(0, 5000, 200_000).astype(np.int64)

        cold = intern_trace(keys, cache=cache)
        if cache.stats != {"hits": 0, "misses": 1, "writes": 1,
                           "invalid": 0}:
            print(f"cold run: unexpected stats {cache.stats}",
                  file=sys.stderr)
            return 1

        warm = intern_trace(keys.copy(), cache=cache)
        if cache.stats["hits"] != 1 or cache.stats["writes"] != 1:
            print(f"warm run: expected a fingerprint hit, got "
                  f"{cache.stats}", file=sys.stderr)
            return 1
        if not (np.array_equal(cold.ids, warm.ids)
                and np.array_equal(cold.uniques, warm.uniques)
                and cold.num_unique == warm.num_unique):
            print("warm run: loaded interned form differs from computed",
                  file=sys.stderr)
            return 1

        entries = list(Path(root).glob("*.npz"))
        if len(entries) != 1:
            print(f"expected exactly one cache entry, found {entries}",
                  file=sys.stderr)
            return 1

    print(f"intern-cache round trip ok: 1 write, 1 hit "
          f"({cache.stats})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
