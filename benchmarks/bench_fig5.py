"""Bench F5 -- regenerate Fig. 5: QD-enhanced algorithms & QD-LP-FIFO.

Paper shape to reproduce:

* every algorithm beats FIFO on average (that is the normalisation);
* QD-X improves on X on average across the corpus (paper: ARC +1.5 %,
  LIRS +2.2 %, LeCaR +4.5 %), with the gap largest on web workloads at
  the large cache size;
* QD-LP-FIFO achieves reductions comparable to or better than the
  state of the art (paper: beats LIRS by 1.6 % and LeCaR by 4.3 % on
  average).

At this repository's miniature scale the small-cache points are a few
dozen objects (the paper's smallest caches are thousands), so QD's
probationary queue degenerates there; the assertions below therefore
target the large-size and aggregate behaviour -- see EXPERIMENTS.md.
"""

from conftest import run_once, shape_checks_enabled

from repro.experiments import fig5
from repro.sim.runner import LARGE_FRACTION


def test_fig5(benchmark, corpus_config):
    result = run_once(benchmark, fig5.run, corpus_config)
    print()
    print(result.render())

    if not shape_checks_enabled(corpus_config):
        return

    # Every algorithm beats FIFO on average at the large size.
    for group in fig5.GROUPS:
        for policy in ("LRU", "ARC", "LeCaR", "QD-LP-FIFO"):
            mean = result.summary(group, LARGE_FRACTION, policy).mean
            assert mean > 0, f"{policy} lost to FIFO on {group}/large"

    # QD helps the state of the art on web workloads at the large size
    # (the paper's strongest regime) for a majority of the algorithms.
    web_wins = sum(
        result.summary("web", LARGE_FRACTION, f"QD-{name}").mean
        >= result.summary("web", LARGE_FRACTION, name).mean
        for name in ("ARC", "LIRS", "CACHEUS", "LeCaR", "LHD"))
    assert web_wins >= 3, f"QD helped only {web_wins}/5 on web/large"

    # QD-LP-FIFO is competitive with the best state of the art.
    qdlp = result.summary("web", LARGE_FRACTION, "QD-LP-FIFO").mean
    lirs = result.summary("web", LARGE_FRACTION, "LIRS").mean
    assert qdlp > lirs, "QD-LP-FIFO should beat LIRS on web/large"

    # ARC's edge over LRU exists (paper: 6.2% mean over 5307 traces).
    assert result.arc_vs_lru_mean > 0
    benchmark.extra_info["arc_vs_lru_mean"] = round(
        result.arc_vs_lru_mean, 4)
    for name, (mean_gain, max_gain) in result.qd_gains.items():
        benchmark.extra_info[f"qd_gain_{name}"] = round(mean_gain, 4)
        benchmark.extra_info[f"qd_max_{name}"] = round(max_gain, 4)
