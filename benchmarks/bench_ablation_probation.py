"""Bench A1 -- probationary-queue size ablation (paper §5).

The paper argues for a *tiny fixed* probationary queue (10 %) against
the much larger admission queues of 2Q-style designs (25-50 %).  The
sweep regenerates that comparison: mean miss-ratio reduction from FIFO
for QD-LP-FIFO as the probationary share grows.
"""

from conftest import run_once, shape_checks_enabled

from repro.experiments import ablations


def test_probation_sweep(benchmark, corpus_config):
    result = run_once(benchmark, ablations.run_probation_sweep,
                      corpus_config)
    print()
    print(result.render())

    outcomes = result.outcomes
    for fraction, (mean, wins) in outcomes.items():
        benchmark.extra_info[f"probation_{fraction}"] = round(mean, 4)
    if not shape_checks_enabled(corpus_config):
        return
    # The paper's argument against 2Q-style half-cache admission
    # queues: 50% probation must not be the sweet spot.
    best = max(mean for mean, _ in outcomes.values())
    assert outcomes[0.5][0] < best, (
        "a half-cache probationary queue should not be optimal")
    # And the paper's 10% must itself be clearly useful vs FIFO.
    assert outcomes[0.1][0] > 0
