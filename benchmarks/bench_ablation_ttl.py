"""Bench A7 -- TTL churn ablation (paper §2/§4).

TTL expiry is the paper's user-driven *removal* operation, and short
TTLs are one source of the short-lived web data quick demotion feeds
on.  Shape asserted: QD-LP-FIFO's reduction from FIFO is essentially
unchanged under a moderate TTL, and collapses only when the TTL
shrinks toward the reuse window (where compulsory misses make every
eviction algorithm look like FIFO).
"""

from conftest import run_once, shape_checks_enabled

from repro.experiments import ablations


def test_ttl_sweep(benchmark, corpus_config):
    result = run_once(benchmark, ablations.run_ttl_sweep, corpus_config)
    print()
    print(result.render())

    outcomes = result.outcomes
    for ttl, (mean, wins) in outcomes.items():
        benchmark.extra_info[f"ttl_{ttl}"] = round(mean, 4)
    if not shape_checks_enabled(corpus_config):
        return
    no_ttl = outcomes[0][0]
    moderate = outcomes[20_000][0]
    extreme = outcomes[1_000][0]
    assert moderate > no_ttl - 0.05, (
        "a moderate TTL should barely dent QD's advantage")
    assert extreme < no_ttl, (
        "extreme TTL churn should erode the advantage toward FIFO")
