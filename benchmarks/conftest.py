"""Shared benchmark configuration.

Each benchmark regenerates one of the paper's tables/figures (see
DESIGN.md's experiment index).  The corpus tier is selectable:

    REPRO_BENCH_TIER=tiny | quick | full   (default: quick)

``quick`` keeps full-length traces but two per family (~1 minute for
the heaviest figure); ``full`` uses the complete corpus and is what
EXPERIMENTS.md quotes.  Rendered tables are printed *and* written to
``results/`` so captured stdout is never lost.
"""

import os

import pytest

from repro.experiments.common import FULL, QUICK, TINY, CorpusConfig


def _tier() -> CorpusConfig:
    tier = os.environ.get("REPRO_BENCH_TIER", "quick").lower()
    return {"tiny": TINY, "quick": QUICK, "full": FULL}[tier]


@pytest.fixture(scope="session")
def corpus_config() -> CorpusConfig:
    """The corpus tier all experiment benchmarks run at."""
    return _tier()


def run_once(benchmark, fn, *args, **kwargs):
    """Run an expensive experiment exactly once under pytest-benchmark.

    Experiments take seconds to minutes; benchmark calibration reruns
    would multiply that pointlessly, so every bench uses one round.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


def shape_checks_enabled(config: CorpusConfig) -> bool:
    """Whether the paper-shape assertions should run.

    The TINY tier exists to smoke-test the pipelines in seconds; its
    traces are too short (and its caches too small, a few dozen
    objects) for the paper's statistical claims to hold, so benches
    only assert shapes at quick/full tiers.
    """
    return config.scale >= 0.5
