"""Microbenchmarks for the hot-path data structures.

These are the operations a production cache executes millions of
times per second; the timing table documents the per-operation costs
underlying the X1 policy comparison (KeyedList relink == the six-
pointer LRU promotion; ghost add == QD's demotion bookkeeping; sketch
increment == TinyLFU's per-request work).
"""

import numpy as np
import pytest

from repro.core.ghost import GhostQueue
from repro.utils.linkedlist import KeyedList
from repro.utils.sketch import CountMinSketch

_N = 10_000


@pytest.fixture(scope="module")
def keys():
    rng = np.random.default_rng(1)
    return rng.integers(0, _N, 50_000).tolist()


def test_keyedlist_push_pop(benchmark):
    def run():
        kl = KeyedList()
        for i in range(_N):
            kl.push_head(i)
        while kl:
            kl.pop_tail()

    benchmark(run)


def test_keyedlist_move_to_head(benchmark, keys):
    kl = KeyedList()
    for i in range(_N):
        kl.push_head(i)

    def run():
        for key in keys:
            kl.move_to_head(key)

    benchmark(run)


def test_ghost_queue_add(benchmark, keys):
    def run():
        ghost = GhostQueue(_N // 2)
        for key in keys:
            ghost.add(key)
        return len(ghost)

    assert benchmark(run) == _N // 2


def test_sketch_increment_estimate(benchmark, keys):
    def run():
        sketch = CountMinSketch(_N)
        for key in keys:
            sketch.increment(key)
        return sum(sketch.estimate(k) for k in range(100))

    assert benchmark(run) >= 0


def test_reuse_distance_pass(benchmark, keys):
    """The O(N log N) Mattson pass behind the exact LRU MRC."""
    from repro.analysis.mrc import reuse_distances

    distances = benchmark(reuse_distances, keys)
    assert len(distances) == len(keys)
