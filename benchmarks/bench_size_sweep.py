"""Bench A5 -- the paper's "(not shown)" size-sweep claim (§4).

"When the cache size is too large ... adding QD may increase the miss
ratio (not shown)."  Shape asserted: QD-LP-FIFO's gain over its own LP
base (2-bit CLOCK) is positive at the small end of the sweep and
strictly smaller (typically negative) at the 80% end.
"""

from conftest import run_once, shape_checks_enabled

from repro.experiments import size_sweep


def test_size_sweep(benchmark, corpus_config):
    result = run_once(benchmark, size_sweep.run, corpus_config)
    print()
    print(result.render())

    smallest = result.fractions[0]
    largest = result.fractions[-1]
    benchmark.extra_info["qd_gain_small"] = round(result.qd_gain(smallest), 4)
    benchmark.extra_info["qd_gain_large"] = round(result.qd_gain(largest), 4)
    if not shape_checks_enabled(corpus_config):
        return
    assert result.qd_gain(smallest) > 0, (
        "QD should help at small cache sizes")
    assert result.qd_gain(largest) < result.qd_gain(smallest), (
        "QD's advantage should shrink as the cache approaches the "
        "working set")
