"""Bench F2 -- regenerate Fig. 2: LP-FIFO vs LRU win fractions.

Paper shape to reproduce: FIFO-Reinsertion beats LRU on most datasets
(9/10 small, 7/10 large in the paper); 2-bit CLOCK widens the margin;
and (Fig. 2e) FIFO-Reinsertion demotes never-hit objects faster than
LRU.
"""

from conftest import run_once, shape_checks_enabled

from repro.experiments import fig2
from repro.sim.runner import LARGE_FRACTION, SMALL_FRACTION


def test_fig2(benchmark, corpus_config):
    result = run_once(benchmark, fig2.run, corpus_config)
    print()
    print(result.render())

    # Fig. 2e holds at every tier: lazy promotion implies quick
    # demotion on the fixed side-workload.
    assert (result.demotion_age_fifo_reinsertion
            < result.demotion_age_lru)
    if not shape_checks_enabled(corpus_config):
        return

    # Shape assertions (the paper's headline, not its exact numbers).
    for size in (SMALL_FRACTION, LARGE_FRACTION):
        won = result.datasets_won("FIFO-Reinsertion", size)
        assert won >= 6, (
            f"FIFO-Reinsertion won only {won}/10 datasets at {size}")
        benchmark.extra_info[f"fifo_reinsertion_won_{size}"] = won
    benchmark.extra_info["demotion_age_lru"] = result.demotion_age_lru
    benchmark.extra_info["demotion_age_clock"] = (
        result.demotion_age_fifo_reinsertion)
