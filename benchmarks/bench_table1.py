"""Bench T1 -- regenerate Table 1 (dataset inventory).

Paper rows: 10 collections, trace counts, cache types, request/object
totals.  Ours reports the synthetic corpus plus the reuse statistics
that calibrate it.
"""

from conftest import run_once

from repro.experiments import table1


def test_table1(benchmark, corpus_config):
    result = run_once(benchmark, table1.run, corpus_config)
    print()
    print(result.render())
    # Structural check: all ten of the paper's collections are present.
    assert len(result.rows) == 10
    benchmark.extra_info["families"] = len(result.rows)
    benchmark.extra_info["total_requests"] = sum(
        r.total_requests for r in result.rows)
