"""Bench X3 -- thread scalability under lock contention (paper §1-2).

Shape asserted: at 32 modelled threads, the FIFO-family policies
achieve several times LRU's speedup, because LRU's per-hit locked
promotion saturates the global lock while lazy promotion leaves the
hit path lock-free.
"""

from conftest import run_once

from repro.experiments import scalability


def test_scalability(benchmark):
    result = run_once(benchmark, scalability.run)
    print()
    print(result.render())

    lru_speedup = result.speedup("LRU", 32)
    for name in ("FIFO", "FIFO-Reinsertion", "2-bit-CLOCK", "SIEVE"):
        speedup = result.speedup(name, 32)
        assert speedup > 2 * lru_speedup, (
            f"{name} should out-scale LRU by a wide margin "
            f"({speedup:.1f}x vs {lru_speedup:.1f}x)")
        benchmark.extra_info[f"speedup32_{name}"] = round(speedup, 2)
    benchmark.extra_info["speedup32_LRU"] = round(lru_speedup, 2)

    # LRU saturates its lock; FIFO does not.
    lru_final = {p.threads: p for p in result.curves["LRU"]}[32]
    fifo_final = {p.threads: p for p in result.curves["FIFO"]}[32]
    assert lru_final.lock_utilisation > 0.95
    assert fifo_final.lock_utilisation < 0.9
