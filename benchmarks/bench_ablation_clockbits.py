"""Bench A3 -- CLOCK bit-width ablation (paper §3).

The paper: one visited bit already beats LRU on most traces, but on
the high-reuse social-network datasets one bit cannot separate warm
from hot, and 2-bit CLOCK is needed.  The first sweep runs the whole
corpus; the second isolates the socialnet family where the extra bit
matters most.
"""

from conftest import run_once, shape_checks_enabled

from repro.experiments import ablations


def test_clock_bits_corpus(benchmark, corpus_config):
    result = run_once(benchmark, ablations.run_clock_bits_sweep,
                      corpus_config)
    print()
    print(result.render())
    outcomes = result.outcomes
    for bits, (mean, wins) in outcomes.items():
        benchmark.extra_info[f"bits_{bits}"] = round(mean, 4)
    if shape_checks_enabled(corpus_config):
        # The second bit never hurts on aggregate.
        assert outcomes[2][0] >= outcomes[1][0] - 0.01


def test_clock_bits_socialnet(benchmark, corpus_config):
    config = corpus_config.scaled(families=("socialnet",))
    result = run_once(benchmark, ablations.run_clock_bits_sweep, config)
    print()
    print(result.render())
    outcomes = result.outcomes
    benchmark.extra_info["socialnet_1bit"] = round(outcomes[1][0], 4)
    benchmark.extra_info["socialnet_2bit"] = round(outcomes[2][0], 4)
    if shape_checks_enabled(corpus_config):
        # High-reuse traces: 2 bits strictly better than 1 (paper §3).
        assert outcomes[2][0] >= outcomes[1][0]
