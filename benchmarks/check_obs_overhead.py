"""Observability overhead gate for the fast simulation path.

The telemetry subsystem (``repro.obs``) is opt-in, but when a caller
*does* pass ``SimOptions(metrics=...)`` the fast path must stay fast:
the per-cell recording is a handful of counter updates, not per-request
work.  This gate replays the frozen ``BENCH_WORKLOAD`` (the workload
behind ``BENCH_throughput.json``) through ``simulate`` on the
vectorized path in three variants -- uninstrumented, with a live
:class:`MetricsRegistry`, and with windowed time-series sampling at
cadence 1/1000 (``SimOptions(timeseries=...)``, whose fast-path cost is
one post-hoc ``reduceat`` over the hit mask) -- and fails when either
instrumented variant's throughput drops more than ``--tolerance``
(default 5 %) below the uninstrumented run.

Exit status 1 on regression, 0 when within tolerance.

Usage::

    python benchmarks/check_obs_overhead.py
    python benchmarks/check_obs_overhead.py --tolerance 0.10 --repeats 5
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np                                        # noqa: E402

from repro.experiments.throughput import BENCH_WORKLOAD   # noqa: E402
from repro.obs import MetricsRegistry, TimeSeriesRecorder  # noqa: E402
from repro.policies.registry import make                  # noqa: E402
from repro.sim import SimOptions, simulate                # noqa: E402
from repro.traces import from_keys                        # noqa: E402
from repro.traces.synthetic import zipf_trace             # noqa: E402

#: Fast-engine policies representative of the benchmark's spread.
POLICIES = ("FIFO", "LRU", "QD-LP-FIFO")


def _best_of(repeats, fn):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tolerance", type=float, default=0.05,
                        help="allowed fractional throughput loss with "
                             "instrumentation enabled (default 5%%)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats per variant (best-of)")
    args = parser.parse_args(argv)

    spec = BENCH_WORKLOAD
    rng = np.random.default_rng(int(spec["seed"]))
    keys = zipf_trace(int(spec["num_objects"]), int(spec["num_requests"]),
                      float(spec["alpha"]), rng)
    trace = from_keys(keys.tolist(), name="obs-overhead")
    capacity = int(spec["capacity"])
    n = len(keys)

    failures = []
    print(f"obs overhead gate: {n} requests, capacity {capacity}, "
          f"tolerance {args.tolerance:.0%}")
    for name in POLICIES:
        plain_opts = SimOptions(fast=True)

        def run_plain(name=name, opts=plain_opts):
            simulate(make(name, capacity), trace, opts)

        def run_instrumented(name=name):
            # A fresh registry per run: steady-state cost, not re-use
            # of already-created metric objects from a previous run.
            opts = SimOptions(fast=True, metrics=MetricsRegistry())
            simulate(make(name, capacity), trace, opts)

        def run_timeseries(name=name):
            # Windowed sampling at one sample per 1000 requests; the
            # fast path pays one reduceat over the hit mask, not
            # per-request tick() calls.
            opts = SimOptions(
                fast=True,
                timeseries=TimeSeriesRecorder(cadence=1000))
            simulate(make(name, capacity), trace, opts)

        t_plain = _best_of(args.repeats, run_plain)
        floor = 1.0 - args.tolerance
        for label, variant in (("instrumented", run_instrumented),
                               ("timeseries", run_timeseries)):
            t_obs = _best_of(args.repeats, variant)
            ratio = t_plain / t_obs  # variant throughput / plain
            status = "ok" if ratio >= floor else "REGRESSED"
            print(f"{name:14s} plain {n / t_plain / 1e6:6.2f} M req/s  "
                  f"{label:12s} {n / t_obs / 1e6:6.2f} M req/s  "
                  f"ratio {ratio:5.3f}  floor {floor:.3f}  {status}")
            if ratio < floor:
                failures.append(
                    f"{name}: {label} throughput is {ratio:.1%} of "
                    f"plain (floor {floor:.0%})")

    if failures:
        print("\nobs overhead gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("obs overhead within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
