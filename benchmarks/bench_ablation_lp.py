"""Bench A4 -- Lazy Promotion techniques (paper §3/§5).

Strict LP (reinsertion) vs the production relaxations (periodic
promotion, promote-old-only) vs eager LRU.  Shape asserted: the strict
LP policies beat LRU on a clear majority of traces (the paper's §3
headline), and the relaxations stay within a few points of LRU.
"""

from conftest import run_once, shape_checks_enabled

from repro.experiments import ablations


def test_lp_techniques(benchmark, corpus_config):
    result = run_once(benchmark, ablations.run_lp_technique_study,
                      corpus_config)
    print()
    print(result.render())

    outcomes = result.outcomes
    for label, (mean, wins) in outcomes.items():
        benchmark.extra_info[label] = round(mean, 4)
    if not shape_checks_enabled(corpus_config):
        return
    # §3: reinsertion-style LP beats LRU on most traces.
    assert outcomes["FIFO-Reinsertion"][1] > 0.5
    assert outcomes["2-bit-CLOCK"][1] > 0.5
    # The relaxations must not collapse: within 5 points of LRU.
    lru = outcomes["LRU (eager)"][0]
    for label in ("PeriodicPromotion-LRU", "PromoteOldOnly-LRU"):
        assert outcomes[label][0] > lru - 0.05
