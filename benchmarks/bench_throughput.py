"""Bench X1 -- the throughput argument (paper §1/§2).

Two parts:

1. A comparative sweep (the experiment): requests/second per policy on
   a hot Zipf workload, written to results/throughput.txt.
2. Per-policy microbenchmarks under pytest-benchmark proper, so the
   timing table shows the relative hit-path cost of FIFO vs LRU vs the
   complex state of the art.
"""

import numpy as np
import pytest
from conftest import run_once

from repro.experiments import throughput
from repro.policies.registry import make
from repro.traces.synthetic import zipf_trace

_NUM_OBJECTS = 2000
_NUM_REQUESTS = 20_000


@pytest.fixture(scope="module")
def hot_keys():
    rng = np.random.default_rng(99)
    return zipf_trace(_NUM_OBJECTS, _NUM_REQUESTS, 1.1, rng).tolist()


def test_throughput_experiment(benchmark):
    result = run_once(benchmark, throughput.run)
    print()
    print(result.render())
    relative = result.relative_to("LRU")
    # The FIFO family's hit path must not be slower than LRU's.
    assert relative["FIFO"] > 1.0
    benchmark.extra_info.update(
        {name: round(v / 1e3, 1) for name, v in
         result.ops_per_second.items()})


def test_fast_engine_speedup(benchmark):
    """Smoke-scale fast-vs-reference comparison: every fast engine must
    agree with its reference bit-for-bit (asserted inside) and the
    vectorizable FIFO must actually be faster.  The full frozen
    workload behind BENCH_throughput.json runs via
    check_bench_regression.py."""
    smoke = {"num_objects": 20_000, "num_requests": 100_000,
             "alpha": 1.5, "capacity": 10_000}
    result = run_once(
        benchmark, lambda: throughput.run_fast_comparison(
            workload=smoke, repeats=1))
    print()
    print(result.render())
    assert set(result.rows) == set(throughput.FAST_POLICIES)
    assert result.speedup("FIFO") > 1.0
    benchmark.extra_info.update(
        {f"fast:{name}": row["speedup"]
         for name, row in result.rows.items()})


@pytest.mark.parametrize("policy_name", [
    "FIFO", "FIFO-Reinsertion", "2-bit-CLOCK", "SIEVE", "S3-FIFO",
    "QD-LP-FIFO", "LRU", "SLRU", "2Q", "ARC", "LIRS", "LeCaR",
    "CACHEUS", "LHD", "LRFU", "Hyperbolic",
])
def test_request_throughput(benchmark, policy_name, hot_keys):
    """Replay 20k hot requests; pytest-benchmark reports the per-run
    time, i.e. the end-to-end cost of the policy's request path."""

    def replay():
        policy = make(policy_name, _NUM_OBJECTS // 2)
        request = policy.request
        for key in hot_keys:
            request(key)
        return policy.stats.hit_ratio

    hit_ratio = benchmark(replay)
    assert hit_ratio > 0.3
