"""Deterministic instrumented smoke sweep for the CI regression gate.

Runs a small fixed-seed (policy x size) sweep with the full temporal
observability stack enabled -- metrics registry, windowed
:class:`TimeSeriesRecorder`, and :class:`SpanTracer` -- checkpointed
under a known run id.  The run directory then holds:

* ``journal.jsonl`` -- results + final metrics + timeseries lines,
  the input to ``repro diff`` against the committed baseline at
  ``benchmarks/baselines/obs-smoke/journal.jsonl``;
* ``trace.json`` -- Chrome trace-event export (validated on write),
  uploaded as a CI artifact and loadable in ``chrome://tracing``;
* ``timeseries.jsonl`` -- the windowed curves as standalone JSONL for
  ``repro timeseries`` without journal access;
* ``reqtrace.jsonl`` + ``reqtrace.chrome.json`` -- kept request traces
  from a seeded LRU overload run with tail sampling.  The JSONL is
  diffed at **zero tolerance** against
  ``benchmarks/baselines/obs-smoke/reqtrace.jsonl`` when
  ``--reqtrace-baseline`` is given: head sampling, tail-keep rules,
  span ids and virtual-clock latencies are all seeded, so any byte of
  drift is a real behaviour change in the tracing stack.

The simulated workload is a seeded working-set-shift trace, so every
simulated quantity (results, sim counters, windowed curves) is
bit-reproducible across machines; only ``*_seconds`` metrics vary,
and ``repro diff`` ignores those by default.

Usage::

    python benchmarks/run_obs_smoke.py --runs-dir runs-ci \
        --reqtrace-baseline benchmarks/baselines/obs-smoke/reqtrace.jsonl
    PYTHONPATH=src python -m repro.cli diff \
        benchmarks/baselines/obs-smoke/journal.jsonl \
        runs-ci/obs-smoke --miss-ratio-tolerance 0.05
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np                                        # noqa: E402

from repro.obs import (                                   # noqa: E402
    MetricsRegistry,
    SpanTracer,
    TimeSeriesRecorder,
)
from repro.sim.options import SimOptions                  # noqa: E402
from repro.sim.runner import run_sweep                    # noqa: E402
from repro.traces.synthetic import working_set_shift_trace  # noqa: E402
from repro.traces.trace import Trace                      # noqa: E402

SEED = 20260806
POLICIES = ("LRU", "FIFO", "QD-LP-FIFO")
SIZES = (0.01, 0.1)
CADENCE = 1000

# Cluster phase: a fixed-seed shard-kill run whose per-shard counters
# (service_requests_total{shard=}, cluster_requests_total{outcome=},
# cluster_ring_nodes, cluster_shard_up{shard=}) land in the same
# registry, so `repro diff` regression-gates the router's behaviour
# and label layout alongside the sweep.
CLUSTER_SHARDS = 4
CLUSTER_REQUESTS = 4000
CLUSTER_UNIVERSE = 800
CLUSTER_TICK = 0.01

# Request-trace phase: an LRU service under a seeded step overload,
# head-sampled at 20% with tail keep rules, all on a VirtualClock.
# Every kept trace -- ids, spans, latencies, keep reasons -- is
# bit-reproducible, which is what lets CI diff the JSONL at zero
# tolerance.
REQTRACE_SAMPLE = 0.2
REQTRACE_REQUESTS = 6000
REQTRACE_UNIVERSE = 400
REQTRACE_RATE = 120.0
REQTRACE_PEAK = 800.0
REQTRACE_DURATION = 8.0


def build_trace() -> Trace:
    """The frozen smoke workload: three abrupt working-set shifts."""
    rng = np.random.default_rng(SEED)
    keys = working_set_shift_trace(
        objects_per_phase=1500, requests_per_phase=10_000, num_phases=3,
        alpha=1.0, overlap=0.2, rng=rng)
    return Trace(name="obs-smoke-shift", keys=keys,
                 family="synthetic", group="block")


def run_cluster_phase(registry: MetricsRegistry) -> None:
    """Drive a deterministic kill-one-shard cluster run into *registry*.

    Virtual-clock, fixed seed, single thread: every counter and gauge
    it contributes is bit-identical across machines (latency histograms
    are ``*_seconds`` and diff-ignored).
    """
    from repro.exec.clock import VirtualClock
    from repro.policies.registry import make
    from repro.cluster import (
        ClusterConfig,
        build_cluster,
        make_cluster_workload,
        run_cluster_load,
    )

    clock = VirtualClock()
    cluster = build_cluster(
        lambda: make("QD-LP-FIFO", 100),
        shards=CLUSTER_SHARDS,
        config=ClusterConfig(replicas=1, hot_key_threshold=4,
                             front_cache_size=8),
        clock=clock,
        registry=registry,
    )
    duration = CLUSTER_REQUESTS * CLUSTER_TICK
    cluster.kill("s1", 0.4 * duration, 0.7 * duration)
    workload = make_cluster_workload(CLUSTER_REQUESTS,
                                     universe=CLUSTER_UNIVERSE,
                                     alpha=1.1, seed=SEED)
    report = run_cluster_load(cluster, workload.keys, threads=1,
                              tick=CLUSTER_TICK)
    report.check_accounting()
    cluster.metrics.check_conservation()
    print(f"obs smoke cluster: {report.requests} requests, "
          f"availability {report.availability:.4f}, "
          f"{report.outcomes['replica_hit']} replica hits")


def run_reqtrace_phase(registry: MetricsRegistry):
    """Drive the seeded request-trace overload run into *registry*.

    An LRU :class:`CacheService` on a VirtualClock, offered a step
    overload through the open-loop engine with request tracing on.
    Returns the :class:`RequestTracer` so the caller can write the
    kept traces into the run directory once it exists; the sampler
    counters (``reqtrace_*``) land in the shared registry and are
    regression-gated by ``repro diff`` alongside everything else.
    """
    from repro.exec.clock import VirtualClock
    from repro.obs import RequestTracer
    from repro.policies.registry import make
    from repro.service import (
        CacheService,
        InMemoryBackend,
        ServiceConfig,
        run_open_load,
    )
    from repro.service.overload import (
        AdmissionQueue,
        ServiceCostModel,
        make_limiter,
        make_schedule,
    )
    from repro.traces.synthetic import zipf_trace

    clock = VirtualClock()
    tracer = RequestTracer(sample=REQTRACE_SAMPLE, seed=SEED,
                           clock=clock, registry=registry)
    service = CacheService(make("LRU", 64), InMemoryBackend(),
                           ServiceConfig(), clock=clock,
                           registry=registry, tracer=tracer)
    rng = np.random.default_rng(SEED)
    keys = zipf_trace(REQTRACE_UNIVERSE, REQTRACE_REQUESTS, 1.1,
                      rng).tolist()
    schedule = make_schedule("step", rate=REQTRACE_RATE,
                             duration=REQTRACE_DURATION,
                             peak_rate=REQTRACE_PEAK, seed=SEED)
    report = run_open_load(service, keys, schedule,
                           queue=AdmissionQueue(capacity=128,
                                                deadline=0.25),
                           limiter=make_limiter("static",
                                                static_limit=4),
                           cost=ServiceCostModel(), registry=registry,
                           tracer=tracer)
    report.check_conservation()
    summary = tracer.summary()
    print(f"obs smoke reqtrace: {report.offered} offered, "
          f"{summary['kept']} kept of {summary['sampled']} sampled "
          f"/ {summary['requests']} requests")
    return tracer


def check_reqtrace_baseline(trace_path: Path, baseline: Path) -> bool:
    """Zero-tolerance comparison of kept traces against the baseline.

    Both files are compared as parsed JSON rows (not raw bytes) so
    the gate is insensitive to key ordering but catches any change in
    sampling decisions, span structure, ids, or latencies.
    """
    current = [json.loads(line)
               for line in trace_path.read_text().splitlines()]
    expected = [json.loads(line)
                for line in baseline.read_text().splitlines()]
    if current == expected:
        print(f"reqtrace baseline: {len(current)} traces match "
              f"{baseline}")
        return True
    print(f"reqtrace baseline MISMATCH vs {baseline}: "
          f"{len(current)} traces now, {len(expected)} expected",
          file=sys.stderr)
    for index, (now, then) in enumerate(zip(current, expected)):
        if now != then:
            print(f"  first divergent row {index}: "
                  f"trace {then.get('trace_id')} -> "
                  f"{now.get('trace_id')}", file=sys.stderr)
            break
    return False


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs-dir", default="runs-ci",
                        help="runs root to create the run under")
    parser.add_argument("--run-id", default="obs-smoke",
                        help="run id (directory name) for the journal")
    parser.add_argument("--reqtrace-baseline", default=None,
                        help="committed reqtrace.jsonl to diff the "
                             "kept request traces against at zero "
                             "tolerance")
    args = parser.parse_args(argv)

    registry = MetricsRegistry()
    recorder = TimeSeriesRecorder(registry, cadence=CADENCE)
    tracer = SpanTracer(registry)
    opts = SimOptions(metrics=registry, timeseries=recorder,
                      tracer=tracer)

    # The cluster and reqtrace phases share the registry (their
    # counters ride the journal's metrics line) but not the recorder:
    # the sweep samples on request counts, the others on virtual
    # seconds, and mixing the two time bases would corrupt the
    # windowed curves.
    run_cluster_phase(registry)
    reqtracer = run_reqtrace_phase(registry)

    result = run_sweep(list(POLICIES), [build_trace()],
                       size_fractions=SIZES, options=opts,
                       checkpoint=True, run_id=args.run_id,
                       runs_dir=args.runs_dir)
    run_dir = Path(args.runs_dir) / args.run_id
    recorder.write_jsonl(run_dir / "timeseries.jsonl")
    reqtrace_path = run_dir / "reqtrace.jsonl"
    reqtracer.write_jsonl(reqtrace_path)
    reqtracer.write_chrome_trace(run_dir / "reqtrace.chrome.json")

    print(f"obs smoke sweep: {len(result.records)} cells "
          f"({result.accelerated} fast), run {run_dir}")
    for record in sorted(result.records,
                         key=lambda r: (r.policy, r.size_fraction)):
        print(f"  {record.policy:12s} size {record.size_fraction:<5g} "
              f"miss ratio {record.miss_ratio:.4f}")
    if not result.ok:
        print(f"FAILED cells: {result.failures}", file=sys.stderr)
        return 1
    for artifact in ("journal.jsonl", "trace.json", "timeseries.jsonl",
                     "reqtrace.jsonl", "reqtrace.chrome.json"):
        if not (run_dir / artifact).is_file():
            print(f"missing artifact: {run_dir / artifact}",
                  file=sys.stderr)
            return 1
    if args.reqtrace_baseline is not None:
        if not check_reqtrace_baseline(reqtrace_path,
                                       Path(args.reqtrace_baseline)):
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
