"""Deterministic instrumented smoke sweep for the CI regression gate.

Runs a small fixed-seed (policy x size) sweep with the full temporal
observability stack enabled -- metrics registry, windowed
:class:`TimeSeriesRecorder`, and :class:`SpanTracer` -- checkpointed
under a known run id.  The run directory then holds:

* ``journal.jsonl`` -- results + final metrics + timeseries lines,
  the input to ``repro diff`` against the committed baseline at
  ``benchmarks/baselines/obs-smoke/journal.jsonl``;
* ``trace.json`` -- Chrome trace-event export (validated on write),
  uploaded as a CI artifact and loadable in ``chrome://tracing``;
* ``timeseries.jsonl`` -- the windowed curves as standalone JSONL for
  ``repro timeseries`` without journal access.

The simulated workload is a seeded working-set-shift trace, so every
simulated quantity (results, sim counters, windowed curves) is
bit-reproducible across machines; only ``*_seconds`` metrics vary,
and ``repro diff`` ignores those by default.

Usage::

    python benchmarks/run_obs_smoke.py --runs-dir runs-ci
    PYTHONPATH=src python -m repro.cli diff \
        benchmarks/baselines/obs-smoke/journal.jsonl \
        runs-ci/obs-smoke --miss-ratio-tolerance 0.05
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np                                        # noqa: E402

from repro.obs import (                                   # noqa: E402
    MetricsRegistry,
    SpanTracer,
    TimeSeriesRecorder,
)
from repro.sim.options import SimOptions                  # noqa: E402
from repro.sim.runner import run_sweep                    # noqa: E402
from repro.traces.synthetic import working_set_shift_trace  # noqa: E402
from repro.traces.trace import Trace                      # noqa: E402

SEED = 20260806
POLICIES = ("LRU", "FIFO", "QD-LP-FIFO")
SIZES = (0.01, 0.1)
CADENCE = 1000

# Cluster phase: a fixed-seed shard-kill run whose per-shard counters
# (service_requests_total{shard=}, cluster_requests_total{outcome=},
# cluster_ring_nodes, cluster_shard_up{shard=}) land in the same
# registry, so `repro diff` regression-gates the router's behaviour
# and label layout alongside the sweep.
CLUSTER_SHARDS = 4
CLUSTER_REQUESTS = 4000
CLUSTER_UNIVERSE = 800
CLUSTER_TICK = 0.01


def build_trace() -> Trace:
    """The frozen smoke workload: three abrupt working-set shifts."""
    rng = np.random.default_rng(SEED)
    keys = working_set_shift_trace(
        objects_per_phase=1500, requests_per_phase=10_000, num_phases=3,
        alpha=1.0, overlap=0.2, rng=rng)
    return Trace(name="obs-smoke-shift", keys=keys,
                 family="synthetic", group="block")


def run_cluster_phase(registry: MetricsRegistry) -> None:
    """Drive a deterministic kill-one-shard cluster run into *registry*.

    Virtual-clock, fixed seed, single thread: every counter and gauge
    it contributes is bit-identical across machines (latency histograms
    are ``*_seconds`` and diff-ignored).
    """
    from repro.exec.clock import VirtualClock
    from repro.policies.registry import make
    from repro.cluster import (
        ClusterConfig,
        build_cluster,
        make_cluster_workload,
        run_cluster_load,
    )

    clock = VirtualClock()
    cluster = build_cluster(
        lambda: make("QD-LP-FIFO", 100),
        shards=CLUSTER_SHARDS,
        config=ClusterConfig(replicas=1, hot_key_threshold=4,
                             front_cache_size=8),
        clock=clock,
        registry=registry,
    )
    duration = CLUSTER_REQUESTS * CLUSTER_TICK
    cluster.kill("s1", 0.4 * duration, 0.7 * duration)
    workload = make_cluster_workload(CLUSTER_REQUESTS,
                                     universe=CLUSTER_UNIVERSE,
                                     alpha=1.1, seed=SEED)
    report = run_cluster_load(cluster, workload.keys, threads=1,
                              tick=CLUSTER_TICK)
    report.check_accounting()
    cluster.metrics.check_conservation()
    print(f"obs smoke cluster: {report.requests} requests, "
          f"availability {report.availability:.4f}, "
          f"{report.outcomes['replica_hit']} replica hits")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs-dir", default="runs-ci",
                        help="runs root to create the run under")
    parser.add_argument("--run-id", default="obs-smoke",
                        help="run id (directory name) for the journal")
    args = parser.parse_args(argv)

    registry = MetricsRegistry()
    recorder = TimeSeriesRecorder(registry, cadence=CADENCE)
    tracer = SpanTracer(registry)
    opts = SimOptions(metrics=registry, timeseries=recorder,
                      tracer=tracer)

    # The cluster phase shares the registry (its counters ride the
    # journal's metrics line) but not the recorder: the sweep samples
    # on request counts, the cluster on virtual seconds, and mixing
    # the two time bases would corrupt the windowed curves.
    run_cluster_phase(registry)

    result = run_sweep(list(POLICIES), [build_trace()],
                       size_fractions=SIZES, options=opts,
                       checkpoint=True, run_id=args.run_id,
                       runs_dir=args.runs_dir)
    run_dir = Path(args.runs_dir) / args.run_id
    recorder.write_jsonl(run_dir / "timeseries.jsonl")

    print(f"obs smoke sweep: {len(result.records)} cells "
          f"({result.accelerated} fast), run {run_dir}")
    for record in sorted(result.records,
                         key=lambda r: (r.policy, r.size_fraction)):
        print(f"  {record.policy:12s} size {record.size_fraction:<5g} "
              f"miss ratio {record.miss_ratio:.4f}")
    if not result.ok:
        print(f"FAILED cells: {result.failures}", file=sys.stderr)
        return 1
    for artifact in ("journal.jsonl", "trace.json", "timeseries.jsonl"):
        if not (run_dir / artifact).is_file():
            print(f"missing artifact: {run_dir / artifact}",
                  file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
