"""Deterministic instrumented smoke sweep for the CI regression gate.

Runs a small fixed-seed (policy x size) sweep with the full temporal
observability stack enabled -- metrics registry, windowed
:class:`TimeSeriesRecorder`, and :class:`SpanTracer` -- checkpointed
under a known run id.  The run directory then holds:

* ``journal.jsonl`` -- results + final metrics + timeseries lines,
  the input to ``repro diff`` against the committed baseline at
  ``benchmarks/baselines/obs-smoke/journal.jsonl``;
* ``trace.json`` -- Chrome trace-event export (validated on write),
  uploaded as a CI artifact and loadable in ``chrome://tracing``;
* ``timeseries.jsonl`` -- the windowed curves as standalone JSONL for
  ``repro timeseries`` without journal access.

The simulated workload is a seeded working-set-shift trace, so every
simulated quantity (results, sim counters, windowed curves) is
bit-reproducible across machines; only ``*_seconds`` metrics vary,
and ``repro diff`` ignores those by default.

Usage::

    python benchmarks/run_obs_smoke.py --runs-dir runs-ci
    PYTHONPATH=src python -m repro.cli diff \
        benchmarks/baselines/obs-smoke/journal.jsonl \
        runs-ci/obs-smoke --miss-ratio-tolerance 0.05
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np                                        # noqa: E402

from repro.obs import (                                   # noqa: E402
    MetricsRegistry,
    SpanTracer,
    TimeSeriesRecorder,
)
from repro.sim.options import SimOptions                  # noqa: E402
from repro.sim.runner import run_sweep                    # noqa: E402
from repro.traces.synthetic import working_set_shift_trace  # noqa: E402
from repro.traces.trace import Trace                      # noqa: E402

SEED = 20260806
POLICIES = ("LRU", "FIFO", "QD-LP-FIFO")
SIZES = (0.01, 0.1)
CADENCE = 1000


def build_trace() -> Trace:
    """The frozen smoke workload: three abrupt working-set shifts."""
    rng = np.random.default_rng(SEED)
    keys = working_set_shift_trace(
        objects_per_phase=1500, requests_per_phase=10_000, num_phases=3,
        alpha=1.0, overlap=0.2, rng=rng)
    return Trace(name="obs-smoke-shift", keys=keys,
                 family="synthetic", group="block")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs-dir", default="runs-ci",
                        help="runs root to create the run under")
    parser.add_argument("--run-id", default="obs-smoke",
                        help="run id (directory name) for the journal")
    args = parser.parse_args(argv)

    registry = MetricsRegistry()
    recorder = TimeSeriesRecorder(registry, cadence=CADENCE)
    tracer = SpanTracer(registry)
    opts = SimOptions(metrics=registry, timeseries=recorder,
                      tracer=tracer)

    result = run_sweep(list(POLICIES), [build_trace()],
                       size_fractions=SIZES, options=opts,
                       checkpoint=True, run_id=args.run_id,
                       runs_dir=args.runs_dir)
    run_dir = Path(args.runs_dir) / args.run_id
    recorder.write_jsonl(run_dir / "timeseries.jsonl")

    print(f"obs smoke sweep: {len(result.records)} cells "
          f"({result.accelerated} fast), run {run_dir}")
    for record in sorted(result.records,
                         key=lambda r: (r.policy, r.size_fraction)):
        print(f"  {record.policy:12s} size {record.size_fraction:<5g} "
              f"miss ratio {record.miss_ratio:.4f}")
    if not result.ok:
        print(f"FAILED cells: {result.failures}", file=sys.stderr)
        return 1
    for artifact in ("journal.jsonl", "trace.json", "timeseries.jsonl"):
        if not (run_dir / artifact).is_file():
            print(f"missing artifact: {run_dir / artifact}",
                  file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
