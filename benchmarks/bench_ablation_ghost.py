"""Bench A2 -- ghost-queue size ablation (paper §4/§5).

The ghost FIFO ("as many entries as the main cache") is QD's safety
net: objects demoted too eagerly get a second chance directly into the
main cache.  The sweep disables it (factor 0) and oversizes it
(factor 2) around the paper's 1.0.
"""

from conftest import run_once, shape_checks_enabled

from repro.experiments import ablations


def test_ghost_sweep(benchmark, corpus_config):
    result = run_once(benchmark, ablations.run_ghost_sweep, corpus_config)
    print()
    print(result.render())

    outcomes = result.outcomes
    for factor, (mean, wins) in outcomes.items():
        benchmark.extra_info[f"ghost_{factor}"] = round(mean, 4)
    if not shape_checks_enabled(corpus_config):
        return
    # History must help: the paper's ghost (1.0x) beats no ghost at all.
    assert outcomes[1.0][0] > outcomes[0.0][0]
