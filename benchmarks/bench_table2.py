"""Bench T2 -- regenerate Table 2: miss ratios of LRU/ARC/LHD/Belady.

Paper numbers (their MSR and Twitter traces):
    MSR     LRU 0.5263  ARC 0.4899  LHD 0.5131  Belady 0.4438
    Twitter LRU 0.2005  ARC 0.1841  LHD 0.1756  Belady 0.1309

Shape to reproduce: Belady < ARC < LRU everywhere, LHD between ARC and
LRU on the MSR-like trace (LHD trails ARC there in the paper too).
"""

from conftest import run_once

from repro.experiments import fig3


def test_table2(benchmark):
    result = run_once(benchmark, fig3.run, scale=1.0)
    print()
    print(result.render().split("Table 2")[-1])

    for trace_name in ("MSR", "Twitter"):
        ratios = {policy: result.miss_ratios[(trace_name, policy)]
                  for policy in fig3.POLICIES}
        assert ratios["Belady"] < ratios["ARC"] < ratios["LRU"]
        assert ratios["Belady"] < ratios["LHD"] < ratios["LRU"]
        for policy, value in ratios.items():
            benchmark.extra_info[f"{trace_name}_{policy}"] = round(value, 4)
