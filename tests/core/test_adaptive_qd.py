"""Unit tests for the adaptive QD wrapper and CLOCK resizing."""

import pytest

from repro.core.adaptive_qd import AdaptiveQDLPFIFO
from repro.core.clock import KBitClock
from tests.conftest import drive


class TestClockResize:
    def test_grow_keeps_contents(self):
        clock = KBitClock(4)
        for key in "abcd":
            clock.request(key)
        clock.resize(8)
        assert clock.capacity == 8
        assert len(clock) == 4

    def test_shrink_evicts_down(self):
        clock = KBitClock(8)
        for key in "abcdefgh":
            clock.request(key)
        clock.resize(3)
        assert len(clock) == 3
        assert clock.capacity == 3

    def test_shrink_prefers_unvisited_victims(self):
        clock = KBitClock(4, bits=1)
        for key in "abcd":
            clock.request(key)
        clock.request("a")  # a visited
        clock.resize(1)
        assert "a" in clock

    def test_invalid_resize(self):
        with pytest.raises(ValueError):
            KBitClock(4).resize(0)


class TestAdaptiveQDLPFIFO:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveQDLPFIFO(100, min_fraction=0.2, initial_fraction=0.1)
        with pytest.raises(ValueError):
            AdaptiveQDLPFIFO(100, step=1.0)

    def test_name_and_initial_fraction(self):
        cache = AdaptiveQDLPFIFO(100)
        assert cache.name == "Adaptive-QD-LP-FIFO"
        assert cache.probation_fraction == pytest.approx(0.1)

    def test_fraction_stays_in_bounds(self, zipf_keys):
        cache = AdaptiveQDLPFIFO(60, window=100)
        for key in zipf_keys:
            cache.request(key)
            assert (cache.min_fraction <= cache.probation_fraction
                    <= cache.max_fraction)

    def test_budget_partition_always_consistent(self, zipf_keys):
        cache = AdaptiveQDLPFIFO(60, window=100)
        for key in zipf_keys:
            cache.request(key)
            assert (cache.probation_capacity + cache.main_capacity
                    == cache.capacity)
            assert len(cache) <= cache.capacity
            assert cache.main.capacity == cache.main_capacity

    def test_adaptation_actually_moves(self, zipf_keys):
        cache = AdaptiveQDLPFIFO(60, window=100)
        seen = set()
        for key in zipf_keys:
            cache.request(key)
            seen.add(round(cache.probation_fraction, 4))
        assert len(seen) > 1, "the controller never adapted"

    def test_stats_consistent(self, zipf_keys):
        cache = AdaptiveQDLPFIFO(60, window=100)
        hits = sum(drive(cache, zipf_keys))
        assert cache.stats.hits == hits
        assert cache.stats.requests == len(zipf_keys)

    def test_competitive_with_fixed(self, rng):
        """A8's expectation: adaptive lands within a few points of the
        fixed design on a standard workload."""
        from repro.core.qdlpfifo import QDLPFIFO
        from repro.traces.synthetic import one_hit_wonder_trace
        keys = one_hit_wonder_trace(3000, 50000, 1.0, 0.3, rng).tolist()
        fixed = QDLPFIFO(500)
        adaptive = AdaptiveQDLPFIFO(500)
        drive(fixed, keys)
        drive(adaptive, keys)
        assert abs(fixed.stats.miss_ratio
                   - adaptive.stats.miss_ratio) < 0.05
