"""Tests for the promotion (structural reordering) accounting --
the simulator's proxy for the paper's §2 throughput argument."""

from repro.core.clock import FIFOReinsertion
from repro.core.qd import QDCache
from repro.core.sieve import Sieve
from repro.policies.fifo import FIFO
from repro.policies.lru import LRU
from repro.policies.arc import ARC
from tests.conftest import drive


class TestPromotionCounting:
    def test_fifo_never_promotes(self, zipf_keys):
        cache = FIFO(50)
        drive(cache, zipf_keys)
        assert cache.stats.promotions == 0

    def test_sieve_never_promotes(self, zipf_keys):
        cache = Sieve(50)
        drive(cache, zipf_keys)
        assert cache.stats.promotions == 0

    def test_lru_promotes_every_hit(self, zipf_keys):
        cache = LRU(50)
        drive(cache, zipf_keys)
        assert cache.stats.promotions == cache.stats.hits

    def test_arc_promotes_every_hit(self, zipf_keys):
        cache = ARC(50)
        drive(cache, zipf_keys)
        assert cache.stats.promotions == cache.stats.hits

    def test_clock_promotes_far_less_than_lru(self, zipf_keys):
        """The paper's point: reinsertion happens per *eviction scan*,
        not per hit, so LP-FIFO's promotion traffic is a fraction of
        LRU's."""
        lru, clock = LRU(50), FIFOReinsertion(50)
        drive(lru, zipf_keys)
        drive(clock, zipf_keys)
        assert clock.stats.promotions < lru.stats.promotions / 2

    def test_promotions_per_request(self):
        cache = LRU(10)
        assert cache.stats.promotions_per_request == 0.0
        drive(cache, [1, 1, 1, 2])
        assert cache.stats.promotions_per_request == 0.5

    def test_reset_clears_promotions(self, zipf_keys):
        cache = LRU(50)
        drive(cache, zipf_keys[:100])
        cache.stats.reset()
        assert cache.stats.promotions == 0

    def test_qd_aggregates_main_cache_promotions(self, zipf_keys):
        cache = QDCache(50, ARC)
        drive(cache, zipf_keys)
        assert cache.promotion_count == (
            cache.stats.promotions + cache.main.stats.promotions)
        # The wrapper itself promotes only on probation -> main moves.
        assert cache.stats.promotions <= cache.stats.misses
