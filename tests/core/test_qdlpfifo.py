"""Unit tests for QD-LP-FIFO, the paper's headline algorithm."""

from repro.core.clock import KBitClock
from repro.core.qdlpfifo import QDLPFIFO
from repro.policies.fifo import FIFO
from repro.policies.lru import LRU
from tests.conftest import drive


class TestQDLPFIFO:
    def test_structure(self):
        cache = QDLPFIFO(100)
        assert cache.name == "QD-LP-FIFO"
        assert isinstance(cache.main, KBitClock)
        assert cache.main.bits == 2
        assert cache.probation_capacity == 10
        assert cache.main_capacity == 90
        assert cache.ghost.max_entries == 90

    def test_clock_bits_configurable(self):
        cache = QDLPFIFO(100, clock_bits=1)
        assert cache.main.bits == 1

    def test_capacity_invariant(self, zipf_keys):
        cache = QDLPFIFO(40)
        for key in zipf_keys:
            cache.request(key)
            assert len(cache) <= 40

    def test_stats_consistent(self, zipf_keys):
        cache = QDLPFIFO(40)
        hits = sum(drive(cache, zipf_keys))
        assert cache.stats.hits == hits
        assert cache.stats.misses == len(zipf_keys) - hits

    def test_beats_fifo_and_lru_on_ohw_workload(self, rng):
        """On a one-hit-wonder-heavy workload, QD-LP-FIFO must clearly
        beat both FIFO and LRU -- that is the paper's whole point."""
        from repro.traces.synthetic import one_hit_wonder_trace
        keys = one_hit_wonder_trace(3000, 50000, 1.0, 0.3, rng).tolist()
        capacity = 300
        results = {}
        for policy in (FIFO(capacity), LRU(capacity), QDLPFIFO(capacity)):
            for key in keys:
                policy.request(key)
            results[policy.name] = policy.stats.miss_ratio
        assert results["QD-LP-FIFO"] < results["LRU"]
        assert results["QD-LP-FIFO"] < results["FIFO"]

    def test_deterministic(self, zipf_keys):
        a = QDLPFIFO(50)
        b = QDLPFIFO(50)
        assert drive(a, zipf_keys) == drive(b, zipf_keys)

    def test_repeated_working_set_fully_cached(self):
        """A working set smaller than the cache converges to all-hits."""
        cache = QDLPFIFO(100)
        keys = list(range(30)) * 20
        outcomes = drive(cache, keys)
        assert all(outcomes[-30:])
