"""Unit tests for S3-FIFO."""

import pytest

from repro.core.s3fifo import S3FIFO
from repro.policies.fifo import FIFO
from tests.conftest import drive


class TestS3FIFO:
    def test_space_partition(self):
        cache = S3FIFO(100)
        assert cache.small_capacity == 10
        assert cache.main_capacity == 90
        assert cache.ghost.max_entries == 90

    def test_capacity_one_rejected(self):
        with pytest.raises(ValueError):
            S3FIFO(1)

    def test_bad_small_fraction_rejected(self):
        with pytest.raises(ValueError):
            S3FIFO(10, small_fraction=1.5)

    def test_miss_enters_small_queue(self):
        cache = S3FIFO(100)
        cache.request("a")
        assert cache.in_small("a")
        assert not cache.in_main("a")

    def test_single_access_objects_evicted_to_ghost(self):
        cache = S3FIFO(20)  # small holds 2
        for key in ["a", "b", "c"]:
            cache.request(key)
        assert "a" not in cache
        assert "a" in cache.ghost

    def test_one_hit_is_not_enough_for_main(self):
        """S3-FIFO's threshold is freq > 1: an object touched once
        after insertion still goes to the ghost, unlike the QD wrapper."""
        cache = S3FIFO(20)  # small holds 2
        cache.request("a")
        cache.request("a")   # freq 1
        cache.request("b")
        cache.request("c")   # a evicted from small
        assert not cache.in_main("a")
        assert "a" in cache.ghost

    def test_two_hits_graduate_to_main(self):
        cache = S3FIFO(20)
        cache.request("a")
        cache.request("a")
        cache.request("a")   # freq 2
        cache.request("b")
        cache.request("c")
        assert cache.in_main("a")

    def test_ghost_hit_admits_to_main(self):
        cache = S3FIFO(20)
        for key in ["a", "b", "c"]:
            cache.request(key)
        assert "a" in cache.ghost
        cache.request("a")
        assert cache.in_main("a")
        assert "a" not in cache.ghost

    def test_main_reinsertion_protects_hot_objects(self):
        cache = S3FIFO(10, small_fraction=0.2)  # small 2, main 8
        # Install "h" in main and keep it hot.
        cache.request("h")
        cache.request("h")
        cache.request("h")
        cache.request("x1")
        cache.request("x2")   # h graduates to main
        assert cache.in_main("h")
        for i in range(40):   # churn the cache, touching h regularly
            cache.request(f"y{i}")
            cache.request("h")
        assert "h" in cache  # lazy promotion reinserts it each pass

    def test_capacity_never_exceeded(self, zipf_keys):
        cache = S3FIFO(30)
        for key in zipf_keys:
            cache.request(key)
            assert len(cache) <= 30

    def test_beats_fifo_on_skewed_workload(self, zipf_keys):
        s3 = S3FIFO(50)
        fifo = FIFO(50)
        drive(s3, zipf_keys)
        drive(fifo, zipf_keys)
        assert s3.stats.miss_ratio < fifo.stats.miss_ratio

    def test_stats_consistency(self, zipf_keys):
        cache = S3FIFO(50)
        hits = sum(drive(cache, zipf_keys))
        assert cache.stats.hits == hits
        assert cache.stats.requests == len(zipf_keys)
