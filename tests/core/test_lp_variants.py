"""Unit tests for the §5 alternative Lazy Promotion techniques."""

import pytest

from repro.core.lp_variants import PeriodicPromotionLRU, PromoteOldOnlyLRU
from repro.policies.lru import LRU
from tests.conftest import drive


class TestPeriodicPromotionLRU:
    def test_basic_hit_miss(self):
        cache = PeriodicPromotionLRU(3)
        assert cache.request("a") is False
        assert cache.request("a") is True

    def test_hit_within_period_does_not_promote(self):
        cache = PeriodicPromotionLRU(3, period=100)
        for key in "abc":
            cache.request(key)
        cache.request("a")   # within period: no movement
        assert list(cache._queue.keys()) == ["c", "b", "a"]

    def test_hit_after_period_promotes(self):
        cache = PeriodicPromotionLRU(3, period=2)
        for key in "abc":
            cache.request(key)
        cache.request("a")   # a promoted at t1, now t4: 3 >= 2
        assert list(cache._queue.keys()) == ["a", "c", "b"]

    def test_default_period_is_capacity(self):
        cache = PeriodicPromotionLRU(17)
        assert cache.period == 17

    def test_capacity_never_exceeded(self, zipf_keys):
        cache = PeriodicPromotionLRU(30)
        for key in zipf_keys:
            cache.request(key)
            assert len(cache) <= 30

    def test_large_period_approaches_fifo(self, zipf_keys):
        """With an infinite period no promotion ever happens: the
        policy must produce exactly FIFO's decisions."""
        from repro.policies.fifo import FIFO
        lazy = PeriodicPromotionLRU(40, period=10 ** 9)
        fifo = FIFO(40)
        for key in zipf_keys:
            assert lazy.request(key) == fifo.request(key)

    def test_period_one_is_plain_lru(self, zipf_keys):
        lazy = PeriodicPromotionLRU(40, period=1)
        lru = LRU(40)
        for key in zipf_keys:
            assert lazy.request(key) == lru.request(key)


class TestPromoteOldOnlyLRU:
    def test_validation(self):
        with pytest.raises(ValueError):
            PromoteOldOnlyLRU(10, old_fraction=0.0)
        with pytest.raises(ValueError):
            PromoteOldOnlyLRU(10, old_fraction=1.5)

    def test_basic_hit_miss(self):
        cache = PromoteOldOnlyLRU(3)
        assert cache.request("a") is False
        assert cache.request("a") is True

    def test_young_hit_is_noop(self):
        cache = PromoteOldOnlyLRU(10, old_fraction=0.5)
        for key in "abc":
            cache.request(key)
        cache.request("c")   # c is young (age 1 < 5): no movement
        assert list(cache._queue.keys()) == ["c", "b", "a"]

    def test_old_hit_promotes(self):
        cache = PromoteOldOnlyLRU(4, old_fraction=0.5)
        cache.request("a")
        for key in "bcd":
            cache.request(key)
        # a's age is 3 >= (1-0.5)*4 = 2: the hit promotes it.
        cache.request("a")
        assert list(cache._queue.keys())[0] == "a"

    def test_old_fraction_one_is_plain_lru(self, zipf_keys):
        promote_all = PromoteOldOnlyLRU(40, old_fraction=1.0)
        lru = LRU(40)
        for key in zipf_keys:
            assert promote_all.request(key) == lru.request(key)

    def test_capacity_never_exceeded(self, zipf_keys):
        cache = PromoteOldOnlyLRU(30)
        for key in zipf_keys:
            cache.request(key)
            assert len(cache) <= 30

    def test_competitive_with_lru_despite_fewer_promotions(self, zipf_keys):
        """The §5 point: skipping young promotions costs almost no miss
        ratio (here: within 3 points of LRU) while cutting promotion
        traffic drastically."""
        lazy = PromoteOldOnlyLRU(60, old_fraction=0.5)
        lru = LRU(60)
        drive(lazy, zipf_keys)
        drive(lru, zipf_keys)
        assert lazy.stats.miss_ratio <= lru.stats.miss_ratio + 0.03
