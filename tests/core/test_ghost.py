"""Unit tests for the metadata-only ghost queue."""

import pytest
from hypothesis import given, strategies as st

from repro.core.ghost import GhostQueue


class TestGhostQueue:
    def test_add_and_contains(self):
        ghost = GhostQueue(3)
        ghost.add("a")
        assert "a" in ghost
        assert "b" not in ghost
        assert len(ghost) == 1

    def test_fifo_eviction_when_full(self):
        ghost = GhostQueue(2)
        ghost.add("a")
        ghost.add("b")
        ghost.add("c")
        assert "a" not in ghost
        assert "b" in ghost and "c" in ghost

    def test_re_add_refreshes_position(self):
        ghost = GhostQueue(2)
        ghost.add("a")
        ghost.add("b")
        ghost.add("a")   # refresh: a becomes youngest
        ghost.add("c")   # evicts b, not a
        assert "a" in ghost
        assert "b" not in ghost

    def test_remove(self):
        ghost = GhostQueue(2)
        ghost.add("a")
        assert ghost.remove("a") is True
        assert ghost.remove("a") is False
        assert "a" not in ghost

    def test_zero_capacity_stays_empty(self):
        ghost = GhostQueue(0)
        ghost.add("a")
        assert len(ghost) == 0
        assert "a" not in ghost

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            GhostQueue(-1)

    def test_iteration_oldest_first(self):
        ghost = GhostQueue(10)
        for key in "abc":
            ghost.add(key)
        assert list(ghost) == ["a", "b", "c"]

    def test_clear(self):
        ghost = GhostQueue(5)
        for key in "abc":
            ghost.add(key)
        ghost.clear()
        assert len(ghost) == 0

    @given(st.lists(st.integers(0, 30), max_size=300),
           st.integers(1, 10))
    def test_never_exceeds_max_entries(self, keys, max_entries):
        ghost = GhostQueue(max_entries)
        for key in keys:
            ghost.add(key)
            assert len(ghost) <= max_entries

    @given(st.lists(st.integers(0, 10), min_size=5, max_size=100))
    def test_most_recent_key_always_present(self, keys):
        ghost = GhostQueue(3)
        for key in keys:
            ghost.add(key)
        assert keys[-1] in ghost
