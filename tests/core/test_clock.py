"""Unit tests for the LP-FIFO family (FIFO-Reinsertion, k-bit CLOCK)."""

import pytest

from repro.core.clock import FIFOReinsertion, KBitClock, two_bit_clock


class TestFIFOReinsertion:
    def test_basic_fifo_eviction_of_untouched_objects(self):
        cache = FIFOReinsertion(2)
        cache.request("a")
        cache.request("b")
        cache.request("c")  # a untouched -> evicted
        assert "a" not in cache
        assert "b" in cache and "c" in cache

    def test_hit_sets_visited_and_earns_reinsertion(self):
        cache = FIFOReinsertion(2)
        cache.request("a")
        cache.request("b")
        cache.request("a")        # mark a visited (no movement)
        cache.request("c")        # a is reinserted; b evicted instead
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache

    def test_hit_does_not_move_object(self):
        """Lazy promotion: a hit only flips a bit; the queue order is
        unchanged until eviction time."""
        cache = FIFOReinsertion(3)
        for key in "abc":
            cache.request(key)
        cache.request("a")
        assert list(cache._queue.keys()) == ["c", "b", "a"]

    def test_reinsertion_clears_the_bit(self):
        cache = FIFOReinsertion(2)
        cache.request("a")
        cache.request("b")
        cache.request("a")   # visited
        cache.request("c")   # reinserts a (bit cleared), evicts b
        cache.request("d")   # now c is the tail... order: [d?]...
        # After the reinsertion the queue held [c, a]; d's miss evicts
        # the unvisited tail a (its bit was consumed by reinsertion).
        assert "a" not in cache
        assert "c" in cache and "d" in cache

    def test_all_visited_terminates(self):
        cache = FIFOReinsertion(3)
        for key in "abc":
            cache.request(key)
        for key in "abc":
            cache.request(key)   # everything visited
        cache.request("d")       # must terminate and evict exactly one
        assert len(cache) == 3
        assert "d" in cache

    def test_capacity_never_exceeded(self, zipf_keys):
        cache = FIFOReinsertion(50)
        for key in zipf_keys:
            cache.request(key)
            assert len(cache) <= 50

    def test_stats_consistency(self, zipf_keys):
        cache = FIFOReinsertion(50)
        hits = sum(cache.request(key) for key in zipf_keys)
        assert cache.stats.hits == hits
        assert cache.stats.requests == len(zipf_keys)


class TestKBitClock:
    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            KBitClock(10, bits=0)

    def test_max_freq_saturates(self):
        cache = KBitClock(4, bits=2)
        cache.request("a")
        for _ in range(10):
            cache.request("a")
        assert cache._queue.node("a").freq == 3

    def test_one_bit_equals_fifo_reinsertion(self, zipf_keys):
        """bits=1 must reproduce FIFO-Reinsertion decision-for-decision."""
        one_bit = KBitClock(40, bits=1)
        reinsertion = FIFOReinsertion(40)
        for key in zipf_keys:
            assert one_bit.request(key) == reinsertion.request(key)
        assert one_bit.stats.misses == reinsertion.stats.misses

    def test_two_bit_decrements_on_scan(self):
        cache = KBitClock(2, bits=2)
        cache.request("a")
        cache.request("a")  # freq 1
        cache.request("b")
        cache.request("c")  # a survives (freq 1 -> 0), b evicted
        assert "a" in cache
        assert "b" not in cache
        assert cache._queue.node("a").freq == 0

    def test_frequent_object_survives_multiple_scans(self):
        cache = KBitClock(2, bits=2)
        cache.request("a")
        for _ in range(3):
            cache.request("a")  # freq -> 3
        for key in ["b", "c", "d", "e"]:
            cache.request(key)
        assert "a" in cache  # 3 lives were enough for 4 insertions

    def test_factory_helper(self):
        cache = two_bit_clock(16)
        assert cache.bits == 2
        assert cache.max_freq == 3
        assert cache.name == "2-bit-CLOCK"

    def test_capacity_one(self):
        cache = KBitClock(1, bits=2)
        assert cache.request("a") is False
        assert cache.request("a") is True
        assert cache.request("b") is False
        assert len(cache) == 1

    def test_two_bit_better_than_one_bit_on_high_reuse(self, rng):
        """The paper's social-network observation: with most objects
        accessed repeatedly, the extra bit lowers the miss ratio."""
        from repro.traces.synthetic import zipf_trace
        keys = zipf_trace(2000, 60000, 1.3, rng).tolist()
        one = KBitClock(100, bits=1)
        two = KBitClock(100, bits=2)
        for key in keys:
            one.request(key)
            two.request(key)
        assert two.stats.miss_ratio <= one.stats.miss_ratio
