"""Unit tests for SIEVE."""

from repro.core.sieve import Sieve
from repro.policies.fifo import FIFO
from tests.conftest import drive


class TestSieve:
    def test_basic_insert_and_hit(self):
        cache = Sieve(3)
        assert cache.request("a") is False
        assert cache.request("a") is True
        assert "a" in cache

    def test_unvisited_tail_evicted_first(self):
        cache = Sieve(2)
        cache.request("a")
        cache.request("b")
        cache.request("c")   # a unvisited at tail -> evicted
        assert "a" not in cache
        assert "b" in cache and "c" in cache

    def test_visited_object_survives_hand_pass(self):
        cache = Sieve(2)
        cache.request("a")
        cache.request("a")   # visited
        cache.request("b")
        cache.request("c")   # hand clears a's bit, evicts b
        assert "a" in cache
        assert "b" not in cache

    def test_survivor_keeps_queue_position(self):
        """Unlike CLOCK, SIEVE does not reinsert survivors at the head:
        the hand keeps moving toward the head, so *newer* unvisited
        objects are evicted before an old spared one -- SIEVE's quick
        demotion."""
        cache = Sieve(3)
        cache.request("a")
        cache.request("a")   # a visited
        cache.request("b")
        cache.request("c")
        cache.request("d")   # scan from tail: a spared, b evicted
        assert "a" in cache and "b" not in cache
        cache.request("e")   # hand is at c now: c (newer than a) evicted
        assert "c" not in cache
        assert {"a", "d", "e"} == {n.key for n in cache._queue}

    def test_hand_wraps_to_tail(self):
        cache = Sieve(2)
        cache.request("a")
        cache.request("b")
        cache.request("a")
        cache.request("b")   # both visited
        cache.request("c")   # full scan clears bits, wraps, evicts
        assert len(cache) == 2
        assert "c" in cache

    def test_capacity_never_exceeded(self, zipf_keys):
        cache = Sieve(25)
        for key in zipf_keys:
            cache.request(key)
            assert len(cache) <= 25

    def test_beats_fifo_on_skewed_workload(self, zipf_keys):
        sieve = Sieve(50)
        fifo = FIFO(50)
        drive(sieve, zipf_keys)
        drive(fifo, zipf_keys)
        assert sieve.stats.miss_ratio < fifo.stats.miss_ratio

    def test_long_run_hand_integrity(self, rng):
        """The hand must always point at a resident node (or None)."""
        from repro.traces.synthetic import zipf_trace
        keys = zipf_trace(200, 20000, 0.8, rng).tolist()
        cache = Sieve(20)
        for key in keys:
            cache.request(key)
            hand = cache._hand
            assert hand is None or hand.key in cache._queue.index

    def test_stats_consistency(self, zipf_keys):
        cache = Sieve(50)
        hits = sum(drive(cache, zipf_keys))
        assert cache.stats.hits == hits
        assert cache.stats.requests == len(zipf_keys)
