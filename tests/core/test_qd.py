"""Unit tests for the Quick Demotion wrapper (paper Fig. 4)."""

import pytest

from repro.core.qd import QDCache, wrap_with_qd
from repro.policies.lru import LRU
from repro.policies.arc import ARC
from tests.conftest import drive


def make_qd(capacity=20, **kwargs):
    return QDCache(capacity, LRU, **kwargs)


class TestConstruction:
    def test_space_partition(self):
        cache = make_qd(100)
        assert cache.probation_capacity == 10
        assert cache.main_capacity == 90
        assert cache.ghost.max_entries == 90

    def test_probation_fraction_respected(self):
        cache = make_qd(100, probation_fraction=0.2)
        assert cache.probation_capacity == 20
        assert cache.main_capacity == 80

    def test_ghost_factor(self):
        cache = make_qd(100, ghost_factor=2.0)
        assert cache.ghost.max_entries == 180

    def test_tiny_capacity_keeps_one_slot_each(self):
        cache = make_qd(2)
        assert cache.probation_capacity == 1
        assert cache.main_capacity == 1

    def test_capacity_one_rejected(self):
        with pytest.raises(ValueError):
            make_qd(1)

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError):
            make_qd(20, probation_fraction=0.0)
        with pytest.raises(ValueError):
            make_qd(20, probation_fraction=1.0)

    def test_bad_ghost_factor_rejected(self):
        with pytest.raises(ValueError):
            make_qd(20, ghost_factor=-1.0)

    def test_name_reflects_main_policy(self):
        assert make_qd(20).name == "QD-LRU"
        assert QDCache(20, ARC).name == "QD-ARC"


class TestRequestFlow:
    def test_miss_inserts_into_probation(self):
        cache = make_qd(20)
        assert cache.request("a") is False
        assert cache.in_probation("a")
        assert not cache.in_main("a")

    def test_probation_hit_marks_but_does_not_move(self):
        cache = make_qd(20)
        cache.request("a")
        assert cache.request("a") is True
        assert cache.in_probation("a")

    def test_untouched_probation_eviction_goes_to_ghost(self):
        cache = make_qd(20)  # probation holds 2
        cache.request("a")
        cache.request("b")
        cache.request("c")   # probation full: a evicted (never hit)
        assert "a" not in cache
        assert "a" in cache.ghost

    def test_accessed_object_graduates_to_main(self):
        cache = make_qd(20)  # probation holds 2
        cache.request("a")
        cache.request("a")   # mark accessed
        cache.request("b")
        cache.request("c")   # a demoted from probation -> main
        assert cache.in_main("a")
        assert "a" not in cache.ghost
        assert "a" in cache

    def test_ghost_hit_admits_directly_into_main(self):
        cache = make_qd(20)
        cache.request("a")
        cache.request("b")
        cache.request("c")   # a -> ghost
        assert "a" in cache.ghost
        assert cache.request("a") is False  # still a miss...
        assert cache.in_main("a")           # ...but admitted to main
        assert "a" not in cache.ghost

    def test_main_hit_delegates(self):
        cache = make_qd(20)
        cache.request("a")
        cache.request("b")
        cache.request("c")
        cache.request("a")   # ghost hit -> main
        assert cache.request("a") is True
        assert cache.in_main("a")

    def test_contains_covers_both_segments(self):
        cache = make_qd(20)
        cache.request("a")
        cache.request("a")
        cache.request("b")
        cache.request("c")
        assert "a" in cache and "c" in cache
        assert len(cache) == 3


class TestInvariants:
    def test_capacity_never_exceeded(self, zipf_keys):
        cache = make_qd(30)
        for key in zipf_keys:
            cache.request(key)
            assert len(cache) <= 30

    def test_ghost_never_holds_cached_keys(self, zipf_keys):
        cache = make_qd(30)
        for key in zipf_keys[:1000]:
            cache.request(key)
            assert key not in cache.ghost or key not in cache

    def test_segments_disjoint(self, zipf_keys):
        cache = make_qd(30)
        for key in zipf_keys[:1000]:
            cache.request(key)
            assert not (cache.in_probation(key) and cache.in_main(key))

    def test_stats_count_wrapper_level_only(self, zipf_keys):
        cache = make_qd(30)
        hits = sum(drive(cache, zipf_keys))
        assert cache.stats.hits == hits
        assert cache.stats.requests == len(zipf_keys)

    def test_admit_evict_event_balance(self, zipf_keys):
        """Every key is either resident or has equal admits/evicts."""
        from tests.core.test_base import RecordingListener
        listener = RecordingListener()
        cache = make_qd(30)
        cache.add_listener(listener)
        for key in zipf_keys:
            cache.request(key)
        from collections import Counter
        admits = Counter(listener.admits)
        evicts = Counter(listener.evicts)
        for key, count in admits.items():
            expected = count - 1 if key in cache else count
            assert evicts.get(key, 0) == expected, key

    def test_probation_to_main_move_fires_no_admit(self):
        from tests.core.test_base import RecordingListener
        listener = RecordingListener()
        cache = make_qd(20)
        cache.add_listener(listener)
        cache.request("a")
        cache.request("a")
        cache.request("b")
        cache.request("c")   # a graduates probation -> main
        assert listener.admits.count("a") == 1
        assert "a" not in listener.evicts


class TestWrapFactory:
    def test_wrap_with_qd(self):
        factory = wrap_with_qd(LRU, probation_fraction=0.2)
        cache = factory(50)
        assert isinstance(cache, QDCache)
        assert cache.probation_capacity == 10
        assert cache.name == "QD-LRU"
