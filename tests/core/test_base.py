"""Unit tests for the cache abstraction (stats, listeners, base class)."""

import pytest

from repro.core.base import (
    CacheListener,
    CacheStats,
    EvictionEvent,
    validate_capacity,
)
from repro.policies.fifo import FIFO
from repro.policies.lru import LRU


class TestCacheStats:
    def test_initial_state(self):
        stats = CacheStats()
        assert stats.requests == 0
        assert stats.miss_ratio == 0.0
        assert stats.hit_ratio == 0.0

    def test_record_accumulates(self):
        stats = CacheStats()
        for hit in [True, False, False, True, False]:
            stats.record(hit)
        assert stats.hits == 2
        assert stats.misses == 3
        assert stats.requests == 5
        assert stats.miss_ratio == pytest.approx(0.6)
        assert stats.hit_ratio == pytest.approx(0.4)

    def test_ratios_complement(self):
        stats = CacheStats(hits=7, misses=13)
        assert stats.miss_ratio + stats.hit_ratio == pytest.approx(1.0)

    def test_reset(self):
        stats = CacheStats(hits=3, misses=4)
        stats.reset()
        assert stats.requests == 0


class RecordingListener(CacheListener):
    def __init__(self):
        self.admits = []
        self.evicts = []
        self.hits = []

    def on_admit(self, key):
        self.admits.append(key)

    def on_evict(self, key):
        self.evicts.append(key)

    def on_hit(self, key):
        self.hits.append(key)


class TestListeners:
    def test_admit_and_evict_events(self):
        cache = FIFO(2)
        listener = RecordingListener()
        cache.add_listener(listener)
        cache.request("a")
        cache.request("b")
        cache.request("c")  # evicts a
        assert listener.admits == ["a", "b", "c"]
        assert listener.evicts == ["a"]

    def test_hit_events(self):
        cache = LRU(2)
        listener = RecordingListener()
        cache.add_listener(listener)
        cache.request("a")
        cache.request("a")
        cache.request("a")
        assert listener.hits == ["a", "a"]

    def test_remove_listener(self):
        cache = FIFO(2)
        listener = RecordingListener()
        cache.add_listener(listener)
        cache.request("a")
        cache.remove_listener(listener)
        cache.request("b")
        assert listener.admits == ["a"]

    def test_remove_unknown_listener_raises(self):
        cache = FIFO(2)
        with pytest.raises(ValueError):
            cache.remove_listener(RecordingListener())


class TestValidateCapacity:
    """One shared validator guards every capacity-carrying constructor."""

    def test_accepts_plain_ints(self):
        assert validate_capacity(1) == 1
        assert validate_capacity(10_000) == 10_000

    def test_accepts_whole_floats_as_ints(self):
        assert validate_capacity(8.0) == 8
        assert isinstance(validate_capacity(8.0), int)

    @pytest.mark.parametrize("bad", [0, -1, -100])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ValueError, match=">= 1"):
            validate_capacity(bad)

    def test_rejects_fractional_instead_of_truncating(self):
        with pytest.raises(ValueError, match="whole number"):
            validate_capacity(2.7)

    @pytest.mark.parametrize("bad", [True, False])
    def test_rejects_booleans(self, bad):
        with pytest.raises(TypeError, match="integer"):
            validate_capacity(bad)

    @pytest.mark.parametrize("bad", ["10", None, [4]])
    def test_rejects_non_numeric(self, bad):
        with pytest.raises(TypeError, match="integer"):
            validate_capacity(bad)

    def test_message_names_the_parameter(self):
        with pytest.raises(ValueError, match="capacity_bytes"):
            validate_capacity(0, what="capacity_bytes")


class TestEvictionPolicyBase:
    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            FIFO(0)
        with pytest.raises(ValueError):
            LRU(-5)

    def test_capacity_zero_rejected_via_registry_too(self):
        from repro.policies.registry import make

        for name in ("LRU", "FIFO", "QD-LP-FIFO"):
            with pytest.raises(ValueError, match="capacity"):
                make(name, 0)

    def test_fractional_and_boolean_capacity_rejected(self):
        with pytest.raises(ValueError, match="whole number"):
            LRU(2.7)
        with pytest.raises(TypeError, match="integer"):
            FIFO(True)

    def test_warm_resets_stats_but_keeps_content(self):
        cache = LRU(10)
        cache.warm(["a", "b", "c"])
        assert cache.stats.requests == 0
        assert "a" in cache and "b" in cache and "c" in cache
        assert cache.request("a") is True

    def test_repr_mentions_name_and_capacity(self):
        cache = LRU(5)
        text = repr(cache)
        assert "LRU" in text and "5" in text


class TestEvictionEvent:
    def test_residency(self):
        event = EvictionEvent(key="x", admit_time=10, evict_time=25, hits=3)
        assert event.residency == 15
