"""Composition tests: the QD wrapper must be sound around *any* main
policy -- the paper's LEGO claim, tested against the whole zoo."""

import pytest

from repro.core.qd import QDCache
from repro.policies.arc import ARC
from repro.policies.cacheus import CACHEUS
from repro.policies.hyperbolic import Hyperbolic
from repro.policies.lecar import LeCaR
from repro.policies.lfu import LFU
from repro.policies.lhd import LHD
from repro.policies.lirs import LIRS
from repro.policies.lru import LRU
from repro.policies.mq import MQ
from repro.policies.slru import SLRU
from repro.policies.twoq import TwoQ
from repro.policies.wtinylfu import WTinyLFU

MAIN_FACTORIES = [
    LRU, LFU, SLRU, TwoQ, MQ, Hyperbolic,
    ARC, LIRS, CACHEUS, LeCaR, LHD, WTinyLFU,
]


@pytest.mark.parametrize("main_factory", MAIN_FACTORIES,
                         ids=lambda f: f.__name__)
class TestQDAroundEverything:
    def test_invariants_hold(self, main_factory, zipf_keys):
        cache = QDCache(40, main_factory)
        hits = 0
        for key in zipf_keys:
            resident = key in cache
            hit = cache.request(key)
            assert hit == resident
            assert key in cache
            assert len(cache) <= 40
            hits += hit
        assert cache.stats.hits == hits
        assert cache.stats.requests == len(zipf_keys)

    def test_segments_partition_contents(self, main_factory, zipf_keys):
        cache = QDCache(40, main_factory)
        for key in zipf_keys[:1500]:
            cache.request(key)
            assert not (cache.in_probation(key) and cache.in_main(key))
            assert len(cache._probation) <= cache.probation_capacity
            assert len(cache.main) <= cache.main_capacity

    def test_ghost_disjoint_from_cache(self, main_factory, zipf_keys):
        cache = QDCache(40, main_factory)
        for key in zipf_keys[:1500]:
            cache.request(key)
            if key in cache.ghost:
                assert key not in cache

    def test_deterministic(self, main_factory, zipf_keys):
        a = QDCache(40, main_factory)
        b = QDCache(40, main_factory)
        outcomes_a = [a.request(k) for k in zipf_keys[:2000]]
        outcomes_b = [b.request(k) for k in zipf_keys[:2000]]
        assert outcomes_a == outcomes_b


def test_qd_around_qd_is_legal(zipf_keys):
    """Even stacking QD twice must stay sound (a degenerate LEGO)."""
    cache = QDCache(50, lambda c: QDCache(c, LRU))
    for key in zipf_keys:
        cache.request(key)
        assert len(cache) <= 50
    assert cache.stats.requests == len(zipf_keys)
