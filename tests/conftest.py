"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.traces.synthetic import zipf_trace
from repro.traces.trace import Trace


@pytest.fixture
def rng():
    """A fresh deterministic numpy RNG per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def zipf_keys(rng):
    """A 5000-request Zipf key list over 500 objects (list of ints)."""
    return zipf_trace(500, 5000, 1.0, rng).tolist()


@pytest.fixture
def small_trace(rng):
    """A small Trace object for simulator-level tests."""
    keys = zipf_trace(300, 3000, 0.9, rng)
    return Trace(name="test-zipf", keys=keys, family="test", group="block")


def drive(policy, keys):
    """Feed keys through a policy; returns the hit/miss boolean list."""
    return [policy.request(key) for key in keys]
