"""Multi-threaded cluster stress: conservation while a shard dies.

The issue's acceptance criterion at fleet scale: 8 threads hammer a
4-shard cluster with overlapping Zipf keys while one shard is taken
down mid-run and brought back, and the cluster-wide invariant
``hit + miss + replica_hit + stale + shed + error == requests`` must
hold exactly -- no lost or double-counted request, no deadlock.
Deadlocks are guarded twice: a `pytest-timeout` marker (enforced in
CI) plus an in-test join deadline.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.policies.lru import LRU
from repro.policies.registry import make
from repro.cluster import CLUSTER_OUTCOMES, ClusterConfig, build_cluster

THREADS = 8
REQUESTS_PER_THREAD = 2000
SHARDS = 4
JOIN_DEADLINE = 60.0


def zipf_slices(rng, num_objects=400, alpha=0.9):
    from repro.traces.synthetic import zipf_trace

    keys = zipf_trace(num_objects, THREADS * REQUESTS_PER_THREAD,
                      alpha, rng).tolist()
    return [[f"k{key}" for key in keys[t::THREADS]]
            for t in range(THREADS)]


def hammer_with_kill(cluster, key_slices, victim="s1"):
    """Drive the slices from worker threads; kill+revive one shard.

    The main thread flips the victim down once a quarter of the traffic
    has been served and back up at three quarters, so every worker
    crosses both fault boundaries mid-flight.
    """
    errors = []
    total = sum(len(s) for s in key_slices)

    def worker(keys):
        try:
            for key in keys:
                cluster.get(key)
        except BaseException as exc:
            errors.append(exc)

    pool = [threading.Thread(target=worker, args=(s,), daemon=True)
            for s in key_slices]
    for thread in pool:
        thread.start()

    deadline = time.monotonic() + JOIN_DEADLINE
    killed = revived = False
    while any(thread.is_alive() for thread in pool):
        if time.monotonic() > deadline:
            pytest.fail("stress workers still running at the deadline "
                        "-- deadlock or livelock in CacheCluster")
        done = cluster.metrics.requests
        if not killed and done >= total // 4:
            cluster.set_down(victim)
            killed = True
        if killed and not revived and done >= 3 * total // 4:
            cluster.set_down(victim, False)
            revived = True
        time.sleep(0.005)
    for thread in pool:
        thread.join(timeout=1.0)
    assert not errors, f"worker raised: {errors[0]!r}"
    assert killed, "the kill never fired -- workload finished too fast?"


@pytest.mark.timeout(120)
class TestClusterStressInvariant:
    def test_kill_one_shard_conservation_with_replication(self, rng):
        cluster = build_cluster(
            lambda: LRU(100), shards=SHARDS,
            config=ClusterConfig(replicas=1, hot_key_threshold=4))
        hammer_with_kill(cluster, zipf_slices(rng))
        cluster.metrics.check_conservation()
        snap = cluster.metrics.snapshot()
        total = THREADS * REQUESTS_PER_THREAD
        assert snap["requests"] == total
        assert sum(snap[outcome] for outcome in CLUSTER_OUTCOMES) == total
        # With a replica per hot key the outage is nearly invisible.
        assert snap["error"] < total * 0.05
        # No shard exceeded its capacity under contention.
        for service in cluster.shards.values():
            assert len(service.policy) <= service.policy.capacity

    def test_kill_one_shard_conservation_without_replication(self, rng):
        """Errors surface honestly but the accounting still balances."""
        cluster = build_cluster(
            lambda: make("QD-LP-FIFO", 100), shards=SHARDS,
            config=ClusterConfig(replicas=0))
        hammer_with_kill(cluster, zipf_slices(rng))
        cluster.metrics.check_conservation()
        snap = cluster.metrics.snapshot()
        total = THREADS * REQUESTS_PER_THREAD
        assert snap["requests"] == total
        assert snap["error"] > 0          # the dead arc really erred

    def test_front_cache_under_contention(self, rng):
        """The hot-key front cache stays consistent across threads."""
        cluster = build_cluster(
            lambda: LRU(100), shards=SHARDS,
            config=ClusterConfig(replicas=1, hot_key_threshold=4,
                                 front_cache_size=8,
                                 front_cache_ttl=30.0))
        hammer_with_kill(cluster, zipf_slices(rng, alpha=1.2))
        cluster.metrics.check_conservation()
        assert cluster.metrics.snapshot()["front_hits"] > 0
