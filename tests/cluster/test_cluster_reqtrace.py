"""Request tracing through the sharded cluster.

Cluster hops -- primary routing, replica peeks, failover -- become
child spans carrying ``shard=`` labels, and the per-shard services
(which share the cluster's tracer) nest their own spans underneath
instead of starting fresh roots.
"""

from __future__ import annotations

from repro.exec.clock import VirtualClock
from repro.cluster import ClusterConfig, build_cluster
from repro.obs.reqtrace import RequestTracer, TailRules
from repro.policies.lru import LRU

KEEP_ALL = TailRules(keep_fraction=1.0)


def build_traced_cluster(shards=3, replicas=1, sample=1.0):
    clock = VirtualClock()
    tracer = RequestTracer(sample=sample, seed=0, clock=clock,
                           tail=KEEP_ALL)
    cluster = build_cluster(lambda: LRU(20), shards=shards,
                            config=ClusterConfig(replicas=replicas),
                            clock=clock, tracer=tracer)
    return cluster, tracer, clock


def spans_by_name(trace):
    by_name = {}
    for span in trace.spans:
        by_name.setdefault(span["name"], []).append(span)
    return by_name


class TestClusterSpans:
    def test_root_notes_primary_shard_and_nests_service_span(self):
        cluster, tracer, _clock = build_traced_cluster()
        result = cluster.get("k1")
        assert result.outcome == "miss"
        (trace,) = tracer.kept
        names = spans_by_name(trace)
        (root,) = names["cluster.get"]
        assert root["args"]["shard"] == result.shard
        assert root["args"]["served_by"] == result.shard
        # The shard's own service span joined the same trace under the
        # cluster hop instead of rooting a trace of its own.
        (service,) = names["service.get"]
        assert service["parent_id"] == root["span_id"]
        assert service["args"]["shard"] == result.shard

    def test_unsampled_requests_leave_shards_dark(self):
        cluster, tracer, _clock = build_traced_cluster(sample=0.0)
        cluster.get("k1")
        summary = tracer.summary()
        # One root attempt at the cluster edge, nothing mid-stack.
        assert summary["requests"] == 1
        assert summary["sampled"] == 0

    def test_failover_records_replica_peeks_and_fallback(self):
        cluster, tracer, clock = build_traced_cluster()
        # Warm the key so ownership is established, then find its
        # primary and kill it for a window covering the next request.
        warm = cluster.get("hot")
        primary = warm.shard
        clock.advance(1.0)
        cluster.kill(primary, clock.now(), clock.now() + 10.0)
        clock.advance(0.5)
        result = cluster.get("hot")
        assert result.outcome in ("replica_hit", "miss", "hit")
        trace = list(tracer.kept)[-1]
        names = spans_by_name(trace)
        (root,) = names["cluster.get"]
        assert root["args"]["primary_down"] is True
        peeks = names.get("replica.peek", [])
        if peeks:               # replica probed before/instead of failover
            assert all(p["args"]["shard"] != primary for p in peeks)
        if "failover" in root["args"]:
            assert root["args"]["failover"] != primary
        assert root["args"]["served_by"] != primary

    def test_engine_ctx_joins_cluster_and_shard_spans(self):
        cluster, tracer, _clock = build_traced_cluster()
        root = tracer.start("request", key="'k'")
        cluster.get("k", ctx=root.ctx)
        root.end(outcome="hit")
        (trace,) = tracer.kept
        names = spans_by_name(trace)
        assert set(names) >= {"request", "cluster.get", "service.get"}
        (cluster_span,) = names["cluster.get"]
        assert cluster_span["parent_id"] == \
            names["request"][0]["span_id"]

    def test_untraced_cluster_unchanged(self):
        clock = VirtualClock()
        cluster = build_cluster(lambda: LRU(20), shards=3,
                                config=ClusterConfig(replicas=1),
                                clock=clock)
        assert cluster.get("k1").outcome == "miss"
        assert cluster.get("k1").outcome == "hit"
