"""Tests for the cluster load harness and the Zipf+Pareto workload."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exec.clock import VirtualClock
from repro.policies import LRU
from repro.cluster import (
    ClusterConfig,
    build_cluster,
    make_cluster_workload,
    pareto_sizes_kb,
    run_cluster_load,
    zipf_ranks,
)


def virtual_cluster(replicas=1, shards=4):
    return build_cluster(
        lambda: LRU(100),
        shards=shards,
        config=ClusterConfig(replicas=replicas, hot_key_threshold=3),
        clock=VirtualClock(),
    )


class TestWorkload:
    def test_deterministic_for_same_seed(self):
        one = make_cluster_workload(500, universe=1000, seed=9)
        two = make_cluster_workload(500, universe=1000, seed=9)
        assert one.keys == two.keys
        assert np.array_equal(one.sizes_kb, two.sizes_kb)

    def test_different_seed_differs(self):
        one = make_cluster_workload(500, universe=1000, seed=9)
        two = make_cluster_workload(500, universe=1000, seed=10)
        assert one.keys != two.keys

    def test_zipf_head_is_heavy(self):
        workload = make_cluster_workload(5000, universe=10000,
                                         alpha=1.2, seed=1)
        top = max(workload.keys.count("k1"), workload.keys.count("k2"))
        assert top > 5000 / 10000 * 10   # far above uniform

    def test_large_universe_uses_rejection_sampler(self):
        rng = np.random.default_rng(3)
        ranks = zipf_ranks(rng, 2000, 2_000_000, 1.1)
        assert ranks.min() >= 1
        assert ranks.max() <= 2_000_000

    def test_large_universe_needs_alpha_above_one(self):
        rng = np.random.default_rng(3)
        with pytest.raises(ValueError, match="alpha"):
            zipf_ranks(rng, 10, 2_000_000, 1.0)

    def test_pareto_sizes_bounded(self):
        rng = np.random.default_rng(3)
        sizes = pareto_sizes_kb(rng, 10000)
        assert sizes.min() >= 1.0          # scale floor
        assert sizes.max() <= 5000.0       # cap

    def test_validation(self):
        rng = np.random.default_rng(3)
        with pytest.raises(ValueError):
            make_cluster_workload(0)
        with pytest.raises(ValueError):
            zipf_ranks(rng, 10, 0, 1.0)
        with pytest.raises(ValueError):
            zipf_ranks(rng, 10, 5, 0.0)

    def test_describe_mentions_scale(self):
        workload = make_cluster_workload(100, universe=500, seed=2)
        text = workload.describe()
        assert "100 requests" in text and "500-key" in text


class TestRunClusterLoad:
    def test_deterministic_counts_and_invariant(self):
        cluster = virtual_cluster()
        keys = [f"k{i % 20}" for i in range(200)]
        report = run_cluster_load(cluster, keys, threads=1, tick=0.01)
        report.check_accounting()
        assert report.requests == 200
        assert report.outcomes["miss"] == 20
        assert report.outcomes["hit"] == 180
        assert report.availability == 1.0
        assert report.shards == 4

    def test_validation(self):
        cluster = virtual_cluster()
        with pytest.raises(ValueError, match="threads"):
            run_cluster_load(cluster, ["k"], threads=0)
        with pytest.raises(ValueError, match="tick"):
            run_cluster_load(cluster, ["k"], tick=-1)
        with pytest.raises(ValueError, match="threads=1"):
            run_cluster_load(cluster, ["k"], threads=2, tick=0.1)
        with pytest.raises(ValueError, match="checkpoints"):
            run_cluster_load(cluster, ["k"], checkpoints=[1.0])

    def test_tick_requires_virtual_clock(self):
        cluster = build_cluster(lambda: LRU(10), shards=2)
        with pytest.raises(ValueError, match="VirtualClock"):
            run_cluster_load(cluster, ["k"], tick=0.1)

    def test_checkpoints_split_phases_exactly(self):
        cluster = virtual_cluster()
        keys = [f"k{i}" for i in range(100)]
        report = run_cluster_load(cluster, keys, threads=1, tick=0.1,
                                  checkpoints=[3.0, 7.0])
        phases = report.phases()
        assert [p["requests"] for p in phases] == [29, 40, 31]
        assert sum(p["requests"] for p in phases) == 100

    def test_kill_window_degrades_only_the_middle_phase(self):
        cluster = virtual_cluster(replicas=0)
        cluster.kill("s1", 3.0, 7.0)
        keys = [f"k{i}" for i in range(100)]
        report = run_cluster_load(cluster, keys, threads=1, tick=0.1,
                                  checkpoints=[3.0, 7.0])
        before, during, after = report.phases()
        assert before["error"] == 0 and after["error"] == 0
        assert during["error"] > 0

    def test_replication_keeps_availability_during_kill(self):
        keys = make_cluster_workload(2000, universe=300, alpha=1.1,
                                     seed=5).keys
        results = {}
        for replicas in (0, 1):
            cluster = virtual_cluster(replicas=replicas)
            cluster.kill("s1", 5.0, 15.0)
            report = run_cluster_load(cluster, keys, threads=1,
                                      tick=0.01)
            report.check_accounting()
            results[replicas] = report
        assert results[1].availability > results[0].availability
        assert results[1].availability >= 0.99
        assert results[1].outcomes["replica_hit"] > 0

    def test_multi_threaded_conservation(self):
        cluster = build_cluster(lambda: LRU(50), shards=3)
        keys = [f"k{i % 40}" for i in range(1000)]
        report = run_cluster_load(cluster, keys, threads=4)
        report.check_accounting()
        assert report.requests == 1000
        assert report.throughput > 0

    def test_render_mentions_everything(self):
        cluster = virtual_cluster()
        report = run_cluster_load(cluster, ["a", "a", "b"], threads=1)
        text = report.render()
        for token in ("replica_hit=", "availability", "eff hit ratio",
                      "shard s0", "p99"):
            assert token in text


class TestOpenClusterLoad:
    """Open-loop arrivals against the router: 7-outcome conservation."""

    def run_open(self, cluster, schedule, queue=None, limiter=None,
                 cost=None, keys=None):
        from repro.cluster import run_open_cluster_load

        report = run_open_cluster_load(
            cluster, keys or [f"k{i}" for i in range(60)], schedule,
            queue=queue, limiter=limiter, cost=cost)
        report.check_conservation()
        return report

    def test_under_capacity_cluster_serves_everything(self):
        from repro.service.overload import PoissonArrivals

        report = self.run_open(
            virtual_cluster(), PoissonArrivals(rate=50.0, duration=4.0,
                                               seed=1))
        assert report.offered > 0
        assert report.served == report.offered
        assert report.outcomes.get("dropped", 0) == 0

    def test_overloaded_cluster_conserves_with_drops(self):
        from repro.service.overload import (
            AdmissionQueue,
            PoissonArrivals,
            ServiceCostModel,
            StaticLimiter,
        )

        report = self.run_open(
            virtual_cluster(),
            PoissonArrivals(rate=1500.0, duration=3.0, seed=2),
            queue=AdmissionQueue(32, "drop-oldest", deadline=0.2),
            limiter=StaticLimiter(2),
            cost=ServiceCostModel(base_cost=0.01))
        assert report.outcomes["dropped"] > 0
        assert report.drop_ratio > 0.3
        # check_conservation already ran; spell the invariant out once
        # with every cluster outcome name so a regression reads clearly.
        total = sum(report.outcomes.get(name, 0)
                    for name in ("hit", "miss", "replica_hit", "stale",
                                 "shed", "dropped", "error"))
        assert total == report.offered

    def test_replica_hits_count_as_served_during_kill(self):
        from repro.service.overload import PoissonArrivals

        cluster = virtual_cluster(replicas=1)
        cluster.kill("s1", 1.0, 3.0)
        keys = make_cluster_workload(2000, universe=100, alpha=1.1,
                                     seed=7).keys
        report = self.run_open(
            cluster, PoissonArrivals(rate=300.0, duration=5.0, seed=3),
            keys=keys)
        assert report.outcomes.get("replica_hit", 0) > 0
        assert report.served >= report.outcomes["replica_hit"]

    def test_promotions_aggregate_across_shards(self):
        from repro.service.overload import (
            PoissonArrivals,
            ServiceCostModel,
        )

        cluster = virtual_cluster()
        report = self.run_open(
            cluster, PoissonArrivals(rate=100.0, duration=4.0, seed=4),
            cost=ServiceCostModel(promotion_cost=0.001),
            keys=[f"k{i % 10}" for i in range(50)])
        # LRU shards promote on every hit; the probe must see the sum.
        assert report.promotions > 0
        assert report.promotions == sum(
            service.policy.promotion_count
            for service in cluster.shards.values())
