"""Property tests for the consistent-hash ring.

The two invariants the cluster's correctness rests on:

1. every key maps to exactly one primary plus R *distinct* replicas,
   all of them ring members;
2. a single join or leave only reassigns keys in the affected arcs --
   far fewer than a full reshuffle, and never between two surviving
   shards on a leave (keys either move to/from the changed node).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.ring import (
    DEFAULT_VNODES,
    HashRing,
    key_point,
    moved_keys,
    stable_hash,
)

NODE_NAMES = [f"n{i}" for i in range(12)]

nodes_strategy = st.lists(st.sampled_from(NODE_NAMES), min_size=2,
                          max_size=8, unique=True)
keys_strategy = st.lists(
    st.one_of(st.integers(), st.text(max_size=20),
              st.tuples(st.integers(), st.integers())),
    min_size=1, max_size=200, unique=True)


class TestStableHash:
    def test_deterministic_across_instances(self):
        assert stable_hash("abc") == stable_hash("abc")

    def test_64_bit_range(self):
        for text in ("", "a", "key:123", "node:n0:vn:63"):
            assert 0 <= stable_hash(text) < (1 << 64)

    def test_key_point_distinguishes_types(self):
        # "1" (str) and 1 (int) must not collide via repr.
        assert key_point("1") != key_point(1)


class TestRingBasics:
    def test_empty_ring_rejects_lookup(self):
        with pytest.raises(ValueError, match="no nodes"):
            HashRing().primary("k")

    def test_rejects_bad_vnodes(self):
        with pytest.raises(ValueError, match="vnodes"):
            HashRing(vnodes=0)

    def test_rejects_duplicate_node(self):
        ring = HashRing(["a"])
        with pytest.raises(ValueError, match="already"):
            ring.add("a")

    def test_rejects_unknown_removal(self):
        with pytest.raises(ValueError, match="not on the ring"):
            HashRing(["a"]).remove("b")

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError, match="non-empty"):
            HashRing().add("")

    def test_membership_and_len(self):
        ring = HashRing(["a", "b"])
        assert len(ring) == 2
        assert "a" in ring and "c" not in ring
        assert ring.nodes == ["a", "b"]

    def test_single_node_owns_everything(self):
        ring = HashRing(["solo"])
        for key in range(50):
            assert ring.primary(key) == "solo"
        assert ring.ownership() == {"solo": pytest.approx(1.0)}

    def test_owners_count_validation(self):
        with pytest.raises(ValueError, match="count"):
            HashRing(["a"]).owners("k", 0)

    def test_ownership_fractions_sum_to_one(self):
        ring = HashRing(["a", "b", "c"])
        assert sum(ring.ownership().values()) == pytest.approx(1.0)

    def test_vnodes_smooth_the_distribution(self):
        coarse = HashRing(["a", "b", "c", "d"], vnodes=1)
        fine = HashRing(["a", "b", "c", "d"], vnodes=DEFAULT_VNODES)

        def spread(ring):
            fractions = ring.ownership().values()
            return max(fractions) - min(fractions)

        assert spread(fine) < spread(coarse)


class TestPlacementProperties:
    @given(nodes=nodes_strategy, keys=keys_strategy,
           replicas=st.integers(min_value=0, max_value=3))
    @settings(max_examples=50, deadline=None)
    def test_one_primary_plus_distinct_replicas(self, nodes, keys,
                                                replicas):
        """Every key: exactly one primary + R distinct member replicas."""
        ring = HashRing(nodes)
        want = min(1 + replicas, len(nodes))
        for key in keys:
            owners = ring.owners(key, 1 + replicas)
            assert len(owners) == want
            assert len(set(owners)) == len(owners)       # all distinct
            assert all(owner in ring for owner in owners)
            assert owners[0] == ring.primary(key)        # stable primary

    @given(nodes=nodes_strategy, keys=keys_strategy)
    @settings(max_examples=50, deadline=None)
    def test_placement_is_deterministic(self, nodes, keys):
        """Two independently built rings agree on every placement."""
        one, two = HashRing(nodes), HashRing(list(reversed(nodes)))
        for key in keys:
            assert one.primary(key) == two.primary(key)


class TestBoundedMovement:
    @given(nodes=nodes_strategy, keys=keys_strategy)
    @settings(max_examples=50, deadline=None)
    def test_join_moves_only_arc_keys_to_the_joiner(self, nodes, keys):
        """A join moves keys only *onto* the new node, never sideways."""
        ring = HashRing(nodes)
        before = ring.assignments(keys)
        joiner = next(name for name in NODE_NAMES if name not in nodes)
        ring.add(joiner)
        after = ring.assignments(keys)
        for key in moved_keys(before, after):
            assert after[key] == joiner

    @given(nodes=nodes_strategy, keys=keys_strategy)
    @settings(max_examples=50, deadline=None)
    def test_leave_moves_only_the_leavers_keys(self, nodes, keys):
        """A leave moves exactly the departed node's keys, nothing else."""
        ring = HashRing(nodes)
        before = ring.assignments(keys)
        leaver = nodes[0]
        ring.remove(leaver)
        after = ring.assignments(keys)
        moved = set(moved_keys(before, after))
        assert moved == {key for key, owner in before.items()
                        if owner == leaver}

    def test_join_moves_less_than_2_over_n_of_keyspace(self):
        """The acceptance bound: one join moves < 2/N of all keys."""
        nodes = [f"s{i}" for i in range(4)]
        ring = HashRing(nodes)
        keys = [f"k{i}" for i in range(20000)]
        before = ring.assignments(keys)
        ring.add("s4")
        after = ring.assignments(keys)
        moved = moved_keys(before, after)
        # Expect ~1/(N+1) = 20%; assert the issue's 2/N = 50% ceiling
        # with lots of slack, and a sanity floor that something moved.
        assert 0 < len(moved) / len(keys) < 2 / len(nodes)

    def test_rejoin_restores_placement(self):
        """remove(x) then add(x) is placement-neutral (hash stability)."""
        ring = HashRing(["a", "b", "c"])
        keys = list(range(500))
        before = ring.assignments(keys)
        ring.remove("b")
        ring.add("b")
        assert ring.assignments(keys) == before
