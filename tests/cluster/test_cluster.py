"""Unit tests for the CacheCluster router and its helpers."""

from __future__ import annotations

import pytest

from repro.exec.clock import VirtualClock
from repro.obs.metrics import MetricsRegistry
from repro.policies import LRU
from repro.cluster import (
    CLUSTER_OUTCOMES,
    CacheCluster,
    ClusterConfig,
    FrontCache,
    HotKeyTracker,
    build_cluster,
)
from repro.service.backend import InMemoryBackend
from repro.service.service import CacheService, ServiceConfig


def small_cluster(replicas=1, shards=3, registry=None, clock=None,
                  **config_kw):
    clock = clock or VirtualClock()
    return build_cluster(
        lambda: LRU(64),
        shards=shards,
        config=ClusterConfig(replicas=replicas, hot_key_threshold=2,
                             **config_kw),
        clock=clock,
        registry=registry,
    )


class TestClusterConfig:
    @pytest.mark.parametrize("kwargs", [
        {"vnodes": 0},
        {"replicas": -1},
        {"hot_key_threshold": 0},
        {"hot_tracker_size": 0},
        {"front_cache_size": -1},
        {"front_cache_ttl": 0.0},
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            ClusterConfig(**kwargs)

    def test_defaults_are_valid(self):
        ClusterConfig()


class TestHotKeyTracker:
    def test_crosses_threshold(self):
        tracker = HotKeyTracker(size=16, threshold=3)
        assert not tracker.observe("k")
        assert not tracker.observe("k")
        assert tracker.observe("k")
        assert tracker.is_hot("k")
        assert not tracker.is_hot("cold")

    def test_hot_keys_sorted_hottest_first(self):
        tracker = HotKeyTracker(size=16, threshold=2)
        for _ in range(5):
            tracker.observe("a")
        for _ in range(3):
            tracker.observe("b")
        assert tracker.hot_keys() == ["a", "b"]

    def test_prunes_to_bounded_size(self):
        tracker = HotKeyTracker(size=10, threshold=2)
        for i in range(100):
            tracker.observe(f"one-hit-{i}")
        assert len(tracker._counts) <= 2 * tracker.size

    def test_prune_keeps_the_hot_head(self):
        tracker = HotKeyTracker(size=10, threshold=3)
        for _ in range(5):
            tracker.observe("hot")
        for i in range(100):
            tracker.observe(f"cold-{i}")
        assert tracker.is_hot("hot")

    def test_validation(self):
        with pytest.raises(ValueError):
            HotKeyTracker(size=0)
        with pytest.raises(ValueError):
            HotKeyTracker(threshold=0)


class TestFrontCache:
    def test_put_get_and_ttl_expiry(self):
        clock = VirtualClock()
        cache = FrontCache(size=2, ttl=1.0, clock=clock)
        cache.put("k", "v")
        assert cache.get("k") == ("v",)
        clock.advance(1.5)
        assert cache.get("k") is None
        assert len(cache) == 0

    def test_caches_none_values(self):
        cache = FrontCache(size=2, ttl=1.0, clock=VirtualClock())
        cache.put("k", None)
        assert cache.get("k") == (None,)

    def test_lru_eviction_order(self):
        cache = FrontCache(size=2, ttl=10.0, clock=VirtualClock())
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # touch: b becomes LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == (1,)
        assert cache.get("c") == (3,)

    def test_invalidate(self):
        cache = FrontCache(size=2, ttl=10.0, clock=VirtualClock())
        cache.put("a", 1)
        cache.invalidate("a")
        assert cache.get("a") is None


class TestClusterConstruction:
    def test_rejects_empty_shard_map(self):
        with pytest.raises(ValueError, match="at least one shard"):
            CacheCluster({})

    def test_rejects_non_service_shard(self):
        with pytest.raises(TypeError, match="CacheService"):
            CacheCluster({"s0": object()})

    def test_build_cluster_shares_the_clock(self):
        clock = VirtualClock()
        cluster = build_cluster(lambda: LRU(8), shards=3, clock=clock)
        assert all(service.clock is clock
                   for service in cluster.shards.values())
        assert set(cluster.plans) == set(cluster.shards)

    def test_build_cluster_rejects_bad_count(self):
        with pytest.raises(ValueError, match="shards"):
            build_cluster(lambda: LRU(8), shards=0)


class TestServingPath:
    def test_miss_then_hit_on_the_same_shard(self):
        cluster = small_cluster()
        first = cluster.get("k")
        second = cluster.get("k")
        assert first.outcome == "miss" and second.outcome == "hit"
        assert first.shard == second.shard == cluster.ring.primary("k")
        assert second.value == first.value == "value:k"

    def test_conservation_over_mixed_traffic(self):
        cluster = small_cluster()
        for i in range(300):
            cluster.get(f"k{i % 40}")
        cluster.metrics.check_conservation()
        assert cluster.metrics.requests == 300

    def test_every_outcome_key_present_in_snapshot(self):
        cluster = small_cluster()
        cluster.get("k")
        snap = cluster.metrics.snapshot()
        for outcome in CLUSTER_OUTCOMES:
            assert outcome in snap

    def test_hot_key_replicated_to_distinct_shards(self):
        cluster = small_cluster(replicas=1)
        for _ in range(4):
            cluster.get("hot")
        owners = cluster.ring.owners("hot", 2)
        replica = cluster.shards[owners[1]]
        assert replica.peek("hot") is not None
        assert cluster.metrics.snapshot()["replications"] >= 1

    def test_cold_key_not_replicated(self):
        cluster = small_cluster(replicas=1)
        cluster.get("cold-once")
        owners = cluster.ring.owners("cold-once", 2)
        assert cluster.shards[owners[1]].peek("cold-once") is None

    def test_front_cache_absorbs_hot_keys(self):
        cluster = small_cluster(front_cache_size=4)
        for _ in range(5):
            cluster.get("viral")
        snap = cluster.metrics.snapshot()
        assert snap["front_hits"] >= 1
        primary = cluster.ring.primary("viral")
        served_by_shard = cluster.shards[primary].metrics.snapshot()
        assert served_by_shard["requests"] < 5


class TestFaultDomains:
    def test_down_shard_serves_replica_hits(self):
        cluster = small_cluster(replicas=1)
        for _ in range(3):
            cluster.get("hot")          # hot + replicated
        primary = cluster.ring.primary("hot")
        cluster.set_down(primary)
        result = cluster.get("hot")
        assert result.outcome == "replica_hit"
        assert result.shard != primary
        assert result.value == "value:hot"

    def test_down_shard_cold_key_fails_over_to_replica_shard(self):
        cluster = small_cluster(replicas=1)
        primary = cluster.ring.primary("cold")
        cluster.set_down(primary)
        result = cluster.get("cold")
        assert result.outcome == "miss"          # fetched via successor
        assert result.shard == cluster.ring.owners("cold", 2)[1]

    def test_down_shard_without_replicas_errors(self):
        cluster = small_cluster(replicas=0)
        primary = cluster.ring.primary("k")
        cluster.set_down(primary)
        result = cluster.get("k")
        assert result.outcome == "error"
        assert not result.ok
        cluster.metrics.check_conservation()

    def test_kill_window_opens_and_closes_on_the_clock(self):
        clock = VirtualClock()
        cluster = small_cluster(replicas=0, clock=clock)
        primary = cluster.ring.primary("k")
        cluster.kill(primary, 5.0, 10.0)
        assert cluster.get("k").outcome == "miss"     # before the window
        clock.advance(6.0)
        assert cluster.shard_is_down(primary)
        assert cluster.get("k").outcome == "error"
        clock.advance(10.0)
        assert not cluster.shard_is_down(primary)
        assert cluster.get("k").outcome == "hit"      # contents survived

    def test_kill_rejects_bad_window_and_unknown_shard(self):
        cluster = small_cluster()
        with pytest.raises(ValueError, match="end > start"):
            cluster.kill("s0", 5.0, 5.0)
        with pytest.raises(KeyError, match="no shard"):
            cluster.kill("nope", 0.0, 1.0)

    def test_set_down_and_back_up(self):
        cluster = small_cluster(replicas=0)
        cluster.set_down("s0")
        assert cluster.shard_is_down("s0")
        cluster.set_down("s0", False)
        assert not cluster.shard_is_down("s0")


class TestRebalancing:
    def fill(self, cluster, n=400):
        for i in range(n):
            cluster.get(f"k{i}")

    def new_shard(self, cluster):
        return CacheService(LRU(64), InMemoryBackend(), ServiceConfig(),
                            clock=cluster.clock)

    def test_join_migrates_only_moved_keys(self):
        cluster = small_cluster(shards=4)
        self.fill(cluster)
        cached_before = sum(len(s.cached_keys())
                            for s in cluster.shards.values())
        report = cluster.add_shard("s9", self.new_shard(cluster))
        assert report.joined == "s9"
        assert report.keys_before == cached_before
        assert 0 < report.moved_fraction < 2 / 4     # the issue's bound
        assert report.migrated + report.dropped == report.keys_moved
        # Migrated entries now serve as hits from the new shard.
        # (capacity may evict some of the 'migrated' copies)
        migrated = cluster.shards["s9"].cached_keys()
        assert 0 < len(migrated) <= report.migrated
        for key in migrated[:10]:
            assert cluster.get(key).outcome == "hit"

    def test_leave_moves_only_the_leavers_entries(self):
        cluster = small_cluster(shards=4)
        self.fill(cluster)
        leaving_keys = set(cluster.shards["s1"].cached_keys())
        report = cluster.remove_shard("s1")
        assert report.left == "s1"
        assert report.keys_moved == len(leaving_keys)
        assert set(report.by_shard) == {"s1"}
        assert "s1" not in cluster.shards
        # The migrated entries serve from their new owners.
        hits = sum(1 for key in list(leaving_keys)[:20]
                   if cluster.get(key).outcome == "hit")
        assert hits > 0

    def test_remove_without_migration_drops_entries(self):
        cluster = small_cluster(shards=3)
        self.fill(cluster, 100)
        report = cluster.remove_shard("s2", migrate=False)
        assert report.migrated == 0
        assert report.dropped == report.keys_moved

    def test_membership_validation(self):
        cluster = small_cluster(shards=2)
        with pytest.raises(ValueError, match="already"):
            cluster.add_shard("s0", self.new_shard(cluster))
        with pytest.raises(TypeError, match="CacheService"):
            cluster.add_shard("sX", object())
        cluster.remove_shard("s1")
        with pytest.raises(ValueError, match="last shard"):
            cluster.remove_shard("s0")

    def test_render_mentions_the_event(self):
        cluster = small_cluster(shards=2)
        self.fill(cluster, 50)
        report = cluster.add_shard("s9", self.new_shard(cluster))
        assert "join s9" in report.render()


class TestClusterObservability:
    def test_ring_and_up_gauges(self):
        registry = MetricsRegistry()
        cluster = small_cluster(shards=3, registry=registry)
        rows = {(r["name"], tuple(sorted((r.get("labels") or {}).items()))):
                r for r in registry.snapshot()}
        assert rows[("cluster_ring_nodes", ())]["value"] == 3
        assert rows[("cluster_shard_up", (("shard", "s1"),))]["value"] == 1

    def test_gauges_track_kill_and_membership(self):
        registry = MetricsRegistry()
        cluster = small_cluster(shards=3, registry=registry, replicas=0)
        cluster.set_down("s1")
        cluster.get("anything")      # serving path refreshes the gauge
        cluster.shard_is_down("s1")
        cluster.remove_shard("s2")
        rows = {(r["name"], tuple(sorted((r.get("labels") or {}).items()))):
                r for r in registry.snapshot()}
        assert rows[("cluster_ring_nodes", ())]["value"] == 2
        assert rows[("cluster_shard_up", (("shard", "s2"),))]["value"] == 0

    def test_per_shard_service_labels_in_registry(self):
        registry = MetricsRegistry()
        cluster = small_cluster(shards=2, registry=registry)
        cluster.get("k")
        shard_labels = {r["labels"]["shard"]
                        for r in registry.snapshot()
                        if r["name"] == "service_requests_total"}
        assert shard_labels == {"s0", "s1"}

    def test_breaker_transitions_tagged_by_shard(self):
        cluster = small_cluster(shards=2)
        for name, plan in cluster.plans.items():
            for i in range(20):
                plan.fail(f"k{i}")
        for i in range(20):
            cluster.get(f"k{i}")
        transitions = cluster.breaker_transitions()
        assert transitions, "breaker should have tripped"
        assert all(shard in cluster.shards
                   for _, shard, _, _ in transitions)
        times = [t for t, _, _, _ in transitions]
        assert times == sorted(times)
