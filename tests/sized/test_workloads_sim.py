"""Unit tests for sized workloads and the sized simulator."""

import pytest

from repro.sized.policies import SizedLRU
from repro.sized.simulator import SizedSimResult, simulate_sized
from repro.sized.workloads import (
    attach_sizes,
    lognormal_size,
    pareto_size,
    total_bytes,
    unique_bytes,
)


class TestSizeFunctions:
    def test_deterministic_per_key(self):
        assert lognormal_size(42, seed=0) == lognormal_size(42, seed=0)
        assert pareto_size(42, seed=0) == pareto_size(42, seed=0)

    def test_seed_changes_sizes(self):
        sizes_a = [lognormal_size(k, seed=0) for k in range(200)]
        sizes_b = [lognormal_size(k, seed=1) for k in range(200)]
        assert sizes_a != sizes_b

    def test_lognormal_median_roughly_respected(self):
        sizes = [lognormal_size(k, seed=0, median=4096) for k in range(5000)]
        median = sorted(sizes)[len(sizes) // 2]
        assert 2000 < median < 8000

    def test_pareto_heavy_tail(self):
        sizes = [pareto_size(k, seed=0, scale=1000, alpha=1.5)
                 for k in range(5000)]
        assert min(sizes) >= 1000 * 0.99
        assert max(sizes) > 20 * min(sizes)

    def test_sizes_bounded(self):
        for k in range(1000):
            assert 1 <= lognormal_size(k, max_size=10_000) <= 10_000
            assert 1 <= pareto_size(k, max_size=10_000) <= 10_000


class TestAttachSizes:
    def test_same_key_same_size(self):
        keys, sizes = attach_sizes([1, 2, 1, 3, 1])
        assert sizes[0] == sizes[2] == sizes[4]

    def test_unknown_distribution(self):
        with pytest.raises(ValueError):
            attach_sizes([1], distribution="weibull")

    def test_accepts_trace_objects(self, small_trace):
        keys, sizes = attach_sizes(small_trace)
        assert len(keys) == len(sizes) == small_trace.num_requests

    def test_totals(self):
        keys, sizes = attach_sizes([1, 2, 1])
        assert total_bytes((keys, sizes)) == sum(sizes)
        assert unique_bytes((keys, sizes)) == sizes[0] + sizes[1]


class TestSimulateSized:
    def test_result_fields(self):
        cache = SizedLRU(1000)
        result = simulate_sized(cache, ([1, 2, 1], [100, 100, 100]))
        assert result.requests == 3
        assert result.misses == 2
        assert result.miss_ratio == pytest.approx(2 / 3)
        assert result.byte_miss_ratio == pytest.approx(2 / 3)
        assert result.total_bytes == 300

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            simulate_sized(SizedLRU(10), ([1, 2], [1]))

    def test_zero_requests(self):
        result = SizedSimResult("x", 0, 0, 0, 0)
        assert result.miss_ratio == 0.0
        assert result.byte_miss_ratio == 0.0


class TestSizedStudyExperiment:
    def test_runs_and_renders(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        from repro.experiments import sized_study
        from repro.experiments.common import CorpusConfig
        result = sized_study.run(
            CorpusConfig(scale=0.1, traces_per_family=1))
        assert result.num_traces == 4
        text = result.render()
        assert "A6" in text and "GDSF" in text
        for ratios in (result.object_miss_ratio, result.byte_miss_ratio):
            assert all(0 < v < 1 for v in ratios.values())
