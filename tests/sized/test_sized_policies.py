"""Unit tests for the size-aware baseline policies."""

import pytest

from repro.sized.base import SizedStats
from repro.sized.policies import GDSF, SizedClock, SizedFIFO, SizedLRU

ALL_FACTORIES = [SizedFIFO, SizedLRU, lambda b: SizedClock(b, 2), GDSF]


class TestSizedStats:
    def test_byte_accounting(self):
        stats = SizedStats()
        stats.record(True, 100)
        stats.record(False, 300)
        assert stats.miss_ratio == pytest.approx(0.5)
        assert stats.byte_miss_ratio == pytest.approx(0.75)

    def test_empty(self):
        stats = SizedStats()
        assert stats.miss_ratio == 0.0
        assert stats.byte_miss_ratio == 0.0

    def test_reset(self):
        stats = SizedStats()
        stats.record(True, 10)
        stats.reset()
        assert stats.requests == 0
        assert stats.hit_bytes == 0


class TestSizedCapacityValidation:
    """capacity_bytes goes through the shared validate_capacity guard."""

    @pytest.mark.parametrize("factory", ALL_FACTORIES)
    def test_rejects_zero_capacity(self, factory):
        with pytest.raises(ValueError, match="capacity_bytes"):
            factory(0)

    @pytest.mark.parametrize("factory", ALL_FACTORIES)
    def test_rejects_fractional_capacity(self, factory):
        # Used to silently truncate: capacity_bytes=2.7 meant 2 bytes.
        with pytest.raises(ValueError, match="whole number"):
            factory(2.7)

    @pytest.mark.parametrize("factory", ALL_FACTORIES)
    def test_rejects_boolean_capacity(self, factory):
        with pytest.raises(TypeError, match="integer"):
            factory(True)


class TestCommonBehaviour:
    @pytest.mark.parametrize("factory", ALL_FACTORIES)
    def test_byte_budget_never_exceeded(self, factory, rng):
        cache = factory(10_000)
        for _ in range(3000):
            key = int(rng.integers(0, 300))
            size = int(rng.integers(1, 900))
            cache.request(key, size)
            assert cache.used_bytes <= 10_000

    @pytest.mark.parametrize("factory", ALL_FACTORIES)
    def test_used_bytes_matches_contents(self, factory, rng):
        cache = factory(5_000)
        sizes = {}
        for _ in range(2000):
            key = int(rng.integers(0, 100))
            size = int(rng.integers(1, 400))
            cache.request(key, size)
            sizes[key] = size
        resident = sum(sizes[k] for k in sizes if k in cache)
        assert resident == cache.used_bytes

    @pytest.mark.parametrize("factory", ALL_FACTORIES)
    def test_oversized_object_bypasses(self, factory):
        cache = factory(100)
        assert cache.request("huge", 101) is False
        assert "huge" not in cache
        assert cache.used_bytes == 0

    @pytest.mark.parametrize("factory", ALL_FACTORIES)
    def test_hit_miss_semantics(self, factory):
        cache = factory(1000)
        assert cache.request("a", 10) is False
        assert cache.request("a", 10) is True
        assert len(cache) == 1

    @pytest.mark.parametrize("factory", ALL_FACTORIES)
    def test_resize_on_rerequest(self, factory):
        cache = factory(1000)
        cache.request("a", 100)
        cache.request("a", 700)
        assert cache.used_bytes == 700

    @pytest.mark.parametrize("factory", ALL_FACTORIES)
    def test_invalid_size_rejected(self, factory):
        cache = factory(100)
        with pytest.raises(ValueError):
            cache.request("a", 0)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            SizedLRU(0)


class TestSizedLRU:
    def test_evicts_least_recent_first(self):
        cache = SizedLRU(100)
        cache.request("a", 40)
        cache.request("b", 40)
        cache.request("a", 40)   # refresh a
        cache.request("c", 40)   # must evict b, not a
        assert "a" in cache and "c" in cache
        assert "b" not in cache


class TestSizedClock:
    def test_visited_object_survives(self):
        cache = SizedClock(100, bits=1)
        cache.request("a", 40)
        cache.request("a", 40)   # freq 1
        cache.request("b", 40)
        cache.request("c", 40)   # a reinserted, b evicted
        assert "a" in cache
        assert "b" not in cache

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            SizedClock(100, bits=0)


class TestGDSF:
    def test_upward_resize_of_minimum_priority_object_terminates(self):
        """Regression: resizing the minimum-priority object over budget
        used to livelock (_shrink popped it, pushed it straight back,
        and popped it again forever).  It must evict the *other*
        entries and keep the resized one."""
        cache = GDSF(100)
        cache.request("big", 90)    # priority 1/90 -- the minimum
        cache.request("small", 1)   # priority 1/1
        assert cache.request("big", 100) is True  # resize over budget
        assert "big" in cache
        assert "small" not in cache
        assert cache.used_bytes == 100

    def test_upward_resize_beyond_capacity_drops_resized_object(self):
        cache = GDSF(100)
        cache.request("big", 90)
        cache.request("small", 1)
        assert cache.request("big", 150) is True  # can never fit
        assert "big" not in cache
        assert cache.used_bytes <= 100

    def test_small_hot_object_beats_large_cold(self):
        cache = GDSF(1000)
        for _ in range(5):
            cache.request("small-hot", 100)
        cache.request("large-cold", 900)  # must evict something
        assert "small-hot" in cache

    def test_inflation_monotone(self, rng):
        cache = GDSF(2_000)
        last = 0.0
        for _ in range(2000):
            cache.request(int(rng.integers(0, 200)),
                          int(rng.integers(1, 300)))
            assert cache._inflation >= last
            last = cache._inflation

    def test_prefers_small_objects_object_mr(self, rng):
        """GDSF's signature: better *object* miss ratio than sized LRU
        on a workload with uncorrelated sizes."""
        from repro.traces.synthetic import zipf_trace
        from repro.sized.workloads import attach_sizes
        from repro.sized.simulator import simulate_sized
        keys = zipf_trace(2000, 40000, 0.9, rng)
        sized = attach_sizes(keys, "lognormal", seed=3)
        from repro.sized.workloads import unique_bytes
        cap = unique_bytes(sized) // 10
        gdsf = simulate_sized(GDSF(cap), sized)
        lru = simulate_sized(SizedLRU(cap), sized)
        assert gdsf.miss_ratio < lru.miss_ratio
