"""Property-based tests for the size-aware policies."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sized.policies import GDSF, SizedClock, SizedFIFO, SizedLRU
from repro.sized.qd import SizedQDCache, SizedQDLPFIFO

FACTORIES = {
    "Sized-FIFO": SizedFIFO,
    "Sized-LRU": SizedLRU,
    "Sized-CLOCK": lambda b: SizedClock(b, 2),
    "GDSF": GDSF,
    "Sized-QD-LRU": lambda b: SizedQDCache(b, SizedLRU),
    "Sized-QD-LP-FIFO": SizedQDLPFIFO,
}

requests_strategy = st.lists(
    st.tuples(st.integers(0, 25), st.integers(1, 120)),
    min_size=1, max_size=250)


@pytest.mark.parametrize("name", sorted(FACTORIES))
@given(requests=requests_strategy, capacity=st.integers(50, 600))
@settings(max_examples=20, deadline=None)
def test_sized_invariants(name, requests, capacity):
    """Byte budget, hit semantics and stats hold under random traffic
    with changing object sizes."""
    cache = FACTORIES[name](capacity)
    current_size = {}
    for key, size in requests:
        resident_before = key in cache
        hit = cache.request(key, size)
        assert hit == resident_before
        current_size[key] = size
        assert cache.used_bytes <= capacity
        assert cache.used_bytes >= 0
        if hit and cache.admits(size):
            # A hit must leave the (resized) object resident, as long
            # as some segment of the cache can hold it at all.
            assert key in cache
    stats = cache.stats
    assert stats.hits + stats.misses == len(requests)
    assert stats.hit_bytes + stats.miss_bytes == sum(
        size for _, size in requests)


@pytest.mark.parametrize("name", sorted(FACTORIES))
@given(requests=requests_strategy, capacity=st.integers(50, 600))
@settings(max_examples=10, deadline=None)
def test_sized_determinism(name, requests, capacity):
    a = FACTORIES[name](capacity)
    b = FACTORIES[name](capacity)
    outcomes_a = [a.request(k, s) for k, s in requests]
    outcomes_b = [b.request(k, s) for k, s in requests]
    assert outcomes_a == outcomes_b


@given(requests=requests_strategy, capacity=st.integers(50, 600))
@settings(max_examples=20, deadline=None)
def test_sized_qd_used_bytes_matches_parts(requests, capacity):
    cache = SizedQDLPFIFO(capacity)
    for key, size in requests:
        cache.request(key, size)
        assert cache.used_bytes == (cache._probation_used
                                    + cache.main.used_bytes)
        assert cache._probation_used <= cache.probation_bytes
        assert cache.main.used_bytes <= cache.main_bytes
