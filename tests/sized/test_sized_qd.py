"""Unit tests for size-aware Quick Demotion."""

import pytest

from repro.sized.policies import SizedLRU
from repro.sized.qd import SizedGhost, SizedQDCache, SizedQDLPFIFO
from repro.sized.simulator import simulate_sized
from repro.sized.workloads import attach_sizes, unique_bytes


class TestSizedGhost:
    def test_byte_bounded(self):
        ghost = SizedGhost(100)
        ghost.add("a", 60)
        ghost.add("b", 60)   # over budget: a falls off
        assert "a" not in ghost
        assert "b" in ghost
        assert ghost.used_bytes == 60

    def test_keeps_at_least_one_entry(self):
        ghost = SizedGhost(10)
        ghost.add("big", 50)   # oversized entries still remembered once
        assert "big" in ghost

    def test_remove(self):
        ghost = SizedGhost(100)
        ghost.add("a", 10)
        assert ghost.remove("a") is True
        assert ghost.remove("a") is False
        assert ghost.used_bytes == 0

    def test_re_add_refreshes(self):
        ghost = SizedGhost(100)
        ghost.add("a", 40)
        ghost.add("b", 40)
        ghost.add("a", 40)
        ghost.add("c", 40)   # b is now oldest -> dropped
        assert "a" in ghost and "c" in ghost and "b" not in ghost

    def test_zero_capacity(self):
        ghost = SizedGhost(0)
        ghost.add("a", 1)
        assert "a" not in ghost

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            SizedGhost(-1)


class TestSizedQDCache:
    def make(self, capacity=1000, **kwargs):
        return SizedQDCache(capacity, SizedLRU, **kwargs)

    def test_byte_partition(self):
        cache = self.make(1000)
        assert cache.probation_bytes == 100
        assert cache.main_bytes == 900

    def test_validation(self):
        with pytest.raises(ValueError):
            self.make(1)
        with pytest.raises(ValueError):
            self.make(1000, probation_fraction=0.0)

    def test_miss_enters_probation(self):
        cache = self.make(1000)
        cache.request("a", 50)
        assert cache.in_probation("a")

    def test_oversized_for_probation_goes_to_main(self):
        cache = self.make(1000)   # probation budget 100
        cache.request("big", 500)
        assert cache.in_main("big")

    def test_untouched_demotion_ghosts(self):
        cache = self.make(1000)   # probation 100
        cache.request("a", 60)
        cache.request("b", 60)    # a demoted: never hit -> ghost
        assert "a" not in cache
        assert "a" in cache.ghost

    def test_visited_demotion_graduates(self):
        cache = self.make(1000)
        cache.request("a", 60)
        cache.request("a", 60)    # mark visited
        cache.request("b", 60)    # a demoted -> main
        assert cache.in_main("a")

    def test_ghost_hit_straight_to_main(self):
        cache = self.make(1000)
        cache.request("a", 60)
        cache.request("b", 60)    # a -> ghost
        cache.request("a", 60)    # ghost hit: main admission
        assert cache.in_main("a")
        assert "a" not in cache.ghost

    def test_budget_never_exceeded(self, rng):
        cache = self.make(5000)
        for _ in range(4000):
            key = int(rng.integers(0, 400))
            size = int(rng.integers(1, 300))
            cache.request(key, size)
            assert cache.used_bytes <= 5000

    def test_stats_consistent(self, rng):
        cache = self.make(2000)
        hits = 0
        for _ in range(2000):
            hits += cache.request(int(rng.integers(0, 100)), 25)
        assert cache.stats.hits == hits


class TestSizedQDLPFIFO:
    def test_name_and_structure(self):
        cache = SizedQDLPFIFO(1000)
        assert cache.name == "Sized-QD-LP-FIFO"
        assert cache.main.name == "Sized-2-bit-CLOCK"

    def test_beats_sized_lru_on_ohw_bytes(self, rng):
        """The §5 future-work claim, demonstrated: size-aware QD+LP
        yields a lower byte miss ratio than sized LRU on a one-hit
        -wonder-heavy workload."""
        from repro.traces.synthetic import one_hit_wonder_trace
        keys = one_hit_wonder_trace(3000, 50000, 1.0, 0.3, rng)
        sized = attach_sizes(keys, "lognormal", seed=2)
        capacity = unique_bytes(sized) // 10
        qd = simulate_sized(SizedQDLPFIFO(capacity), sized)
        lru = simulate_sized(SizedLRU(capacity), sized)
        assert qd.byte_miss_ratio < lru.byte_miss_ratio
        assert qd.miss_ratio < lru.miss_ratio
