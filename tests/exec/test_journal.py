"""Unit tests for the JSONL checkpoint journal."""

import json

import pytest

from repro.exec import Journal, new_run_id, runs_root


class TestRunsRoot:
    def test_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path))
        assert runs_root() == tmp_path

    def test_explicit_override_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RUNS_DIR", "/elsewhere")
        assert runs_root(tmp_path) == tmp_path

    def test_run_ids_unique(self):
        assert new_run_id() != new_run_id()


class TestJournal:
    def test_create_writes_meta(self, tmp_path):
        journal = Journal.create(run_id="r1", root=tmp_path,
                                 meta={"policies": ["LRU"]})
        journal.close()
        state = Journal.open("r1", root=tmp_path).load()
        assert state.meta == {"policies": ["LRU"]}

    def test_result_roundtrip(self, tmp_path):
        with Journal.create(run_id="r1", root=tmp_path) as journal:
            journal.record_result(("t", "LRU", 0.001), {"misses": 3})
            journal.record_result(("t", "FIFO", 0.1), {"misses": 9})
        state = Journal.open("r1", root=tmp_path).load()
        assert state.results[("t", "LRU", 0.001)] == {"misses": 3}
        assert state.results[("t", "FIFO", 0.1)] == {"misses": 9}

    def test_last_result_wins(self, tmp_path):
        with Journal.create(run_id="r1", root=tmp_path) as journal:
            journal.record_result(("t",), {"misses": 1})
            journal.record_result(("t",), {"misses": 2})
        state = Journal.open("r1", root=tmp_path).load()
        assert state.results[("t",)] == {"misses": 2}

    def test_failures_recorded_but_not_skipped(self, tmp_path):
        with Journal.create(run_id="r1", root=tmp_path) as journal:
            journal.record_failure(("t",), attempts=3, failure_kind="crash",
                                   error="boom")
        state = Journal.open("r1", root=tmp_path).load()
        assert state.results == {}
        assert state.failures[0]["failure_kind"] == "crash"

    def test_torn_final_line_ignored(self, tmp_path):
        journal = Journal.create(run_id="r1", root=tmp_path)
        journal.record_result(("t",), {"misses": 1})
        journal.close()
        with journal.path.open("a") as handle:
            handle.write('{"kind": "result", "key": ["u"], "payl')  # torn
        state = journal.load()
        assert state.results == {("t",): {"misses": 1}}

    def test_open_missing_run_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no-such-run"):
            Journal.open("no-such-run", root=tmp_path)

    def test_lines_are_valid_json(self, tmp_path):
        with Journal.create(run_id="r1", root=tmp_path,
                            meta={"a": 1}) as journal:
            journal.record_result(("t", 0.5), {"x": 1})
        lines = journal.path.read_text().splitlines()
        assert len(lines) == 2
        for line in lines:
            json.loads(line)
