"""Executor/journal observability: attempt counters, metrics lines."""

from repro.exec import NO_RETRY, FaultPlan, Journal, RetryPolicy, Task, run_tasks
from repro.obs import MetricsRegistry
from repro.sim.options import SimOptions
from repro.sim.runner import run_sweep


def double(payload):
    """Module-level task body (must be importable by workers)."""
    return payload * 2


def tasks_for(*keys):
    return [Task(key=(key,), payload=key) for key in keys]


class TestExecutorMetrics:
    def test_clean_run_counts_attempts_and_durations(self):
        registry = MetricsRegistry()
        outcome = run_tasks(tasks_for("a", "b", "c"), double,
                            registry=registry)
        assert outcome.failures.ok
        values = registry.counter_values()
        assert values["exec_attempts_total"] == 3
        assert "exec_retries_total" not in values or \
            values["exec_retries_total"] == 0
        durations = sum(row["count"] for row in registry.snapshot()
                        if row["name"] == "exec_task_seconds")
        assert durations == 3

    def test_retries_counted(self):
        registry = MetricsRegistry()
        plan = FaultPlan().fail(("b",), attempt=1)
        outcome = run_tasks(
            tasks_for("a", "b"), double,
            retry=RetryPolicy(max_attempts=3, base_delay=0.0),
            fault_plan=plan, registry=registry)
        assert outcome.failures.ok
        values = registry.counter_values()
        assert values["exec_attempts_total"] == 3   # a once, b twice
        assert values["exec_retries_total"] == 1

    def test_exhausted_failures_counted_by_kind(self):
        registry = MetricsRegistry()
        plan = FaultPlan().fail(("a",))
        outcome = run_tasks(tasks_for("a"), double, retry=NO_RETRY,
                            fault_plan=plan, registry=registry)
        assert not outcome.failures.ok
        values = registry.counter_values()
        assert sum(v for k, v in values.items()
                   if k.startswith("exec_failures_total")) == 1


class TestJournalMetricsLine:
    def test_record_metrics_round_trip(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("cells_total").inc(4)
        with Journal.create(run_id="r1", root=tmp_path) as journal:
            journal.record_result(("t",), {"misses": 1})
            journal.record_metrics(registry.snapshot())
        state = Journal.open("r1", root=tmp_path).load()
        assert state.metrics == registry.snapshot()
        assert state.results[("t",)] == {"misses": 1}

    def test_last_metrics_line_wins(self, tmp_path):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.counter("n_total").inc(1)
        second.counter("n_total").inc(2)
        with Journal.create(run_id="r1", root=tmp_path) as journal:
            journal.record_metrics(first.snapshot())
            journal.record_metrics(second.snapshot())
        state = Journal.open("r1", root=tmp_path).load()
        assert state.metrics == second.snapshot()

    def test_metrics_absent_when_never_recorded(self, tmp_path):
        with Journal.create(run_id="r1", root=tmp_path) as journal:
            journal.record_result(("t",), {"misses": 1})
        state = Journal.open("r1", root=tmp_path).load()
        assert state.metrics is None


class TestSweepMetrics:
    def test_sweep_populates_registry_and_journal(self, small_trace,
                                                  tmp_path):
        registry = MetricsRegistry()
        result = run_sweep(
            ["FIFO", "LIRS"], [small_trace], [0.1],
            SimOptions(metrics=registry),
            checkpoint=True, runs_dir=tmp_path)
        assert result.metrics is registry
        values = registry.counter_values()
        # FIFO rides the vectorized fast path; LIRS has no fast engine
        # and goes through the executor.
        assert values["sweep_cells_total{path=fast}"] == 1
        assert values["sweep_cells_total{path=exec}"] == 1
        assert values["sweep_cells_total{path=resumed}"] == 0

        state = Journal.open(result.run_id, root=tmp_path).load()
        assert state.metrics is not None
        names = {row["name"] for row in state.metrics}
        assert "sweep_cells_total" in names
        assert "sweep_cell_seconds" in names

    def test_resumed_cells_counted(self, small_trace, tmp_path):
        first = run_sweep(["FIFO"], [small_trace], [0.1],
                          checkpoint=True, runs_dir=tmp_path)
        registry = MetricsRegistry()
        resumed = run_sweep(["FIFO"], [small_trace], [0.1],
                            SimOptions(metrics=registry),
                            resume=first.run_id, runs_dir=tmp_path)
        assert resumed.records == first.records
        values = registry.counter_values()
        assert values["sweep_cells_total{path=resumed}"] == 1
        assert values["sweep_cells_total{path=fast}"] == 0
