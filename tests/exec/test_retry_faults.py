"""Unit tests for RetryPolicy and the deterministic FaultPlan."""

import pickle

import pytest

from repro.exec import CRASH, ERROR, NO_RETRY, FaultPlan, RetryPolicy


class TestRetryPolicy:
    def test_defaults(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 3
        assert policy.timeout is None

    def test_backoff_doubles(self):
        policy = RetryPolicy(max_attempts=4, base_delay=0.5)
        assert policy.backoff(1) == 0.5
        assert policy.backoff(2) == 1.0
        assert policy.backoff(3) == 2.0

    def test_no_retry_constant(self):
        assert NO_RETRY.max_attempts == 1
        assert NO_RETRY.backoff(1) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(timeout=0.0)
        with pytest.raises(ValueError):
            RetryPolicy().backoff(0)


class TestFaultPlan:
    def test_fault_for_specific_attempt(self):
        plan = FaultPlan().fail(("a",), attempt=2)
        assert plan.fault_for(("a",), 1) is None
        assert plan.fault_for(("a",), 2) == ERROR

    def test_fault_for_every_attempt(self):
        plan = FaultPlan().fail(("a",), kind=CRASH)
        assert plan.fault_for(("a",), 1) == CRASH
        assert plan.fault_for(("a",), 7) == CRASH

    def test_delay_lookup(self):
        plan = FaultPlan().delay(("a",), 3.5, attempt=1)
        assert plan.delay_for(("a",), 1) == 3.5
        assert plan.delay_for(("a",), 2) == 0.0
        assert plan.delay_for(("b",), 1) == 0.0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan().fail(("a",), kind="meteor")

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan().delay(("a",), -1.0)

    def test_picklable(self):
        plan = (FaultPlan().fail(("a",), kind=CRASH)
                .delay(("b",), 2.0).abort_after_completions(5))
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.fault_for(("a",), 1) == CRASH
        assert clone.delay_for(("b",), 3) == 2.0
        assert clone.abort_after == 5
