"""The shared Clock abstraction (repro.exec.clock)."""

from __future__ import annotations

import threading

import pytest

from repro.exec import RetryPolicy, Task, run_tasks
from repro.exec.clock import SystemClock, VirtualClock
from repro.exec.faults import FaultPlan


class TestVirtualClock:
    def test_starts_at_zero_and_advances(self):
        clock = VirtualClock()
        assert clock.now() == 0.0
        assert clock.advance(2.5) == 2.5
        assert clock.now() == 2.5

    def test_sleep_advances_instead_of_blocking(self):
        clock = VirtualClock(start=10.0)
        clock.sleep(5.0)
        assert clock.now() == 15.0

    def test_rejects_negative_values(self):
        with pytest.raises(ValueError):
            VirtualClock(start=-1.0)
        clock = VirtualClock()
        with pytest.raises(ValueError):
            clock.advance(-0.1)
        with pytest.raises(ValueError):
            clock.sleep(-0.1)

    def test_thread_safe_advances(self):
        clock = VirtualClock()

        def spin():
            for _ in range(1000):
                clock.advance(0.001)

        pool = [threading.Thread(target=spin) for _ in range(4)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert clock.now() == pytest.approx(4.0)


class TestSystemClock:
    def test_now_is_monotonic(self):
        clock = SystemClock()
        a = clock.now()
        b = clock.now()
        assert b >= a

    def test_sleep_rejects_negative(self):
        with pytest.raises(ValueError):
            SystemClock().sleep(-1.0)

    def test_sleep_zero_is_free(self):
        SystemClock().sleep(0.0)  # must not raise or block


class TestExecutorUsesVirtualTime:
    """The serial executor's timeout budget runs on the virtual clock."""

    def test_injected_delay_times_out_without_sleeping(self):
        plan = FaultPlan().delay(("slow",), seconds=10.0)
        outcome = run_tasks(
            [Task(key=("slow",), payload=1)],
            lambda payload: payload,
            retry=RetryPolicy(max_attempts=1, base_delay=0.0, timeout=1.0),
            fault_plan=plan,
            sleep=lambda _: None,
        )
        assert not outcome.failures.ok
        assert outcome.failures.failures[0].kind == "timeout"

    def test_delay_under_budget_passes(self):
        plan = FaultPlan().delay(("fast",), seconds=0.5)
        outcome = run_tasks(
            [Task(key=("fast",), payload=7)],
            lambda payload: payload,
            retry=RetryPolicy(max_attempts=1, base_delay=0.0, timeout=1.0),
            fault_plan=plan,
            sleep=lambda _: None,
        )
        assert outcome.failures.ok
        assert outcome.results[("fast",)] == 7
