"""The shared Clock abstraction (repro.exec.clock)."""

from __future__ import annotations

import threading

import pytest

from repro.exec import RetryPolicy, Task, run_tasks
from repro.exec.clock import SystemClock, VirtualClock
from repro.exec.faults import FaultPlan


class TestVirtualClock:
    def test_starts_at_zero_and_advances(self):
        clock = VirtualClock()
        assert clock.now() == 0.0
        assert clock.advance(2.5) == 2.5
        assert clock.now() == 2.5

    def test_sleep_advances_instead_of_blocking(self):
        clock = VirtualClock(start=10.0)
        clock.sleep(5.0)
        assert clock.now() == 15.0

    def test_rejects_negative_values(self):
        with pytest.raises(ValueError):
            VirtualClock(start=-1.0)
        clock = VirtualClock()
        with pytest.raises(ValueError):
            clock.advance(-0.1)
        with pytest.raises(ValueError):
            clock.sleep(-0.1)

    def test_thread_safe_advances(self):
        clock = VirtualClock()

        def spin():
            for _ in range(1000):
                clock.advance(0.001)

        pool = [threading.Thread(target=spin) for _ in range(4)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert clock.now() == pytest.approx(4.0)


class TestSleepUntil:
    def test_advances_to_the_deadline(self):
        clock = VirtualClock(start=2.0)
        clock.sleep_until(5.0)
        assert clock.now() == 5.0

    def test_past_deadline_is_a_noop(self):
        clock = VirtualClock(start=10.0)
        clock.sleep_until(3.0)
        assert clock.now() == 10.0

    def test_system_clock_past_deadline_returns_immediately(self):
        clock = SystemClock()
        clock.sleep_until(clock.now() - 1.0)   # must not block or raise

    def test_absolute_deadlines_do_not_drift(self):
        """Pacing via sleep_until absorbs time spent inside the loop."""
        clock = VirtualClock()
        origin = clock.now()
        for index in range(1, 6):
            clock.sleep(0.03)                  # "work" inside the tick
            clock.sleep_until(origin + index * 0.1)
        assert clock.now() == pytest.approx(0.5)


class TestOrderedWaiters:
    def test_manual_mode_parks_until_advance(self):
        clock = VirtualClock(manual=True)
        woke = threading.Event()

        def sleeper():
            clock.sleep(1.0)
            woke.set()

        thread = threading.Thread(target=sleeper, daemon=True)
        thread.start()
        while clock.pending_waiters() == 0:
            pass
        assert not woke.wait(0.05)             # parked, not self-advancing
        clock.advance(1.0)
        assert woke.wait(5.0)
        thread.join(timeout=5.0)

    def test_waiters_wake_in_deadline_then_registration_order(self):
        """advance() releases due sleepers deterministically ordered."""
        clock = VirtualClock(manual=True)
        order = []
        lock = threading.Lock()
        specs = [("a", 10.0), ("b", 3.0), ("c", 10.0), ("d", 5.0)]

        def sleeper(name, deadline):
            clock.sleep_until(deadline)
            with lock:
                order.append(name)

        pool = []
        for name, deadline in specs:
            thread = threading.Thread(target=sleeper,
                                      args=(name, deadline), daemon=True)
            thread.start()
            # Serialise registration so `seq` follows spec order.
            while clock.pending_waiters() < len(pool) + 1:
                pass
            pool.append(thread)

        clock.advance(20.0)                    # releases all four
        for thread in pool:
            thread.join(timeout=5.0)
        assert order == ["b", "d", "a", "c"]

    def test_partial_advance_releases_only_due_waiters(self):
        clock = VirtualClock(manual=True)
        woke = []
        lock = threading.Lock()

        def sleeper(name, deadline):
            clock.sleep_until(deadline)
            with lock:
                woke.append(name)

        threads = []
        for name, deadline in [("early", 3.0), ("late", 8.0)]:
            thread = threading.Thread(target=sleeper,
                                      args=(name, deadline), daemon=True)
            thread.start()
            while clock.pending_waiters() < len(threads) + 1:
                pass
            threads.append(thread)

        clock.advance(4.0)
        with lock:
            assert woke == ["early"]
        assert clock.pending_waiters() == 1
        clock.advance(10.0)
        for thread in threads:
            thread.join(timeout=5.0)
        assert woke == ["early", "late"]

    def test_auto_mode_lone_sleeper_never_blocks(self):
        clock = VirtualClock()                 # manual=False (default)
        clock.sleep(2.0)
        assert clock.now() == 2.0
        assert not clock.manual


class TestSystemClock:
    def test_now_is_monotonic(self):
        clock = SystemClock()
        a = clock.now()
        b = clock.now()
        assert b >= a

    def test_sleep_rejects_negative(self):
        with pytest.raises(ValueError):
            SystemClock().sleep(-1.0)

    def test_sleep_zero_is_free(self):
        SystemClock().sleep(0.0)  # must not raise or block


class TestExecutorUsesVirtualTime:
    """The serial executor's timeout budget runs on the virtual clock."""

    def test_injected_delay_times_out_without_sleeping(self):
        plan = FaultPlan().delay(("slow",), seconds=10.0)
        outcome = run_tasks(
            [Task(key=("slow",), payload=1)],
            lambda payload: payload,
            retry=RetryPolicy(max_attempts=1, base_delay=0.0, timeout=1.0),
            fault_plan=plan,
            sleep=lambda _: None,
        )
        assert not outcome.failures.ok
        assert outcome.failures.failures[0].kind == "timeout"

    def test_delay_under_budget_passes(self):
        plan = FaultPlan().delay(("fast",), seconds=0.5)
        outcome = run_tasks(
            [Task(key=("fast",), payload=7)],
            lambda payload: payload,
            retry=RetryPolicy(max_attempts=1, base_delay=0.0, timeout=1.0),
            fault_plan=plan,
            sleep=lambda _: None,
        )
        assert outcome.failures.ok
        assert outcome.results[("fast",)] == 7
