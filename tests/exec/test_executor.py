"""Unit tests for the fault-tolerant executor.

All failure paths are driven by the deterministic FaultPlan -- no real
sleeps and (except for the explicit crash-isolation tests, which kill
real worker processes) no timing dependence.
"""

import pytest

from repro.exec import (
    CRASH,
    NO_RETRY,
    FaultPlan,
    Journal,
    RetryPolicy,
    SweepInterrupted,
    Task,
    run_tasks,
)


def double(payload):
    """Module-level task body (must be importable by workers)."""
    return payload * 2


def explode(payload):
    raise RuntimeError(f"cannot process {payload!r}")


def tasks_for(*keys):
    return [Task(key=(key,), payload=key) for key in keys]


class TestSerialBasics:
    def test_all_tasks_run(self):
        outcome = run_tasks(tasks_for("a", "b", "c"), double)
        assert outcome.results == {("a",): "aa", ("b",): "bb", ("c",): "cc"}
        assert outcome.failures.ok
        assert outcome.executed == 3
        assert outcome.resumed == 0

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            run_tasks(tasks_for("a") + tasks_for("a"), double)

    def test_completed_tasks_skipped(self):
        outcome = run_tasks(tasks_for("a", "b"), explode,
                            completed={("a",): "cached-a", ("b",): "cached-b"})
        assert outcome.results == {("a",): "cached-a", ("b",): "cached-b"}
        assert outcome.resumed == 2
        assert outcome.executed == 0

    def test_task_exception_degrades_not_raises(self):
        outcome = run_tasks(tasks_for("a", "b"), explode, retry=NO_RETRY)
        assert outcome.results == {}
        assert len(outcome.failures) == 2
        assert all(f.kind == "error" for f in outcome.failures)
        assert "cannot process" in outcome.failures.failures[0].error


class TestRetry:
    def test_injected_fault_retried_to_success(self):
        plan = FaultPlan().fail(("a",), attempt=1)
        sleeps = []
        outcome = run_tasks(
            tasks_for("a"), double, fault_plan=plan,
            retry=RetryPolicy(max_attempts=2, base_delay=0.25),
            sleep=sleeps.append)
        assert outcome.results == {("a",): "aa"}
        assert outcome.failures.ok
        assert sleeps == [0.25]  # one backoff before the retry

    def test_backoff_is_exponential(self):
        plan = (FaultPlan().fail(("a",), attempt=1)
                .fail(("a",), attempt=2).fail(("a",), attempt=3))
        sleeps = []
        outcome = run_tasks(
            tasks_for("a"), double, fault_plan=plan,
            retry=RetryPolicy(max_attempts=4, base_delay=0.5),
            sleep=sleeps.append)
        assert outcome.failures.ok
        assert sleeps == [0.5, 1.0, 2.0]

    def test_exhausted_attempts_fail_with_count(self):
        plan = FaultPlan().fail(("a",))  # every attempt
        outcome = run_tasks(
            tasks_for("a", "b"), double, fault_plan=plan,
            retry=RetryPolicy(max_attempts=3, base_delay=0.0),
            sleep=lambda _: None)
        assert outcome.results == {("b",): "bb"}
        failure = outcome.failures.failures[0]
        assert failure.key == ("a",)
        assert failure.attempts == 3
        assert failure.kind == "error"

    def test_serial_crash_fault_isolated(self):
        plan = FaultPlan().fail(("a",), kind=CRASH)
        outcome = run_tasks(tasks_for("a", "b"), double, fault_plan=plan,
                            retry=NO_RETRY)
        assert outcome.results == {("b",): "bb"}
        assert outcome.failures.failures[0].kind == "crash"


class TestVirtualTimeout:
    def test_delay_over_budget_is_timeout(self):
        plan = FaultPlan().delay(("a",), 30.0)
        outcome = run_tasks(
            tasks_for("a", "b"), double, fault_plan=plan,
            retry=RetryPolicy(max_attempts=2, base_delay=0.0, timeout=5.0),
            sleep=lambda _: None)
        assert outcome.results == {("b",): "bb"}
        failure = outcome.failures.failures[0]
        assert failure.kind == "timeout"
        assert failure.attempts == 2

    def test_timeout_then_fast_retry_succeeds(self):
        plan = FaultPlan().delay(("a",), 30.0, attempt=1)
        outcome = run_tasks(
            tasks_for("a"), double, fault_plan=plan,
            retry=RetryPolicy(max_attempts=2, base_delay=0.0, timeout=5.0),
            sleep=lambda _: None)
        assert outcome.results == {("a",): "aa"}
        assert outcome.failures.ok

    def test_delay_under_budget_is_fine(self):
        plan = FaultPlan().delay(("a",), 3.0)
        outcome = run_tasks(
            tasks_for("a"), double, fault_plan=plan,
            retry=RetryPolicy(max_attempts=1, base_delay=0.0, timeout=5.0))
        assert outcome.results == {("a",): "aa"}


class TestJournalIntegration:
    def test_results_checkpointed_as_they_complete(self, tmp_path):
        journal = Journal.create(run_id="r1", root=tmp_path)
        run_tasks(tasks_for("a", "b"), double, journal=journal)
        journal.close()
        state = journal.load()
        assert state.results == {("a",): "aa", ("b",): "bb"}

    def test_abort_after_leaves_resumable_journal(self, tmp_path):
        journal = Journal.create(run_id="r1", root=tmp_path)
        plan = FaultPlan().abort_after_completions(2)
        with pytest.raises(SweepInterrupted):
            run_tasks(tasks_for("a", "b", "c", "d"), double,
                      journal=journal, fault_plan=plan)
        journal.close()
        completed = {key: payload
                     for key, payload in journal.load().results.items()}
        assert completed == {("a",): "aa", ("b",): "bb"}
        # resuming skips the journalled tasks and finishes the rest
        outcome = run_tasks(tasks_for("a", "b", "c", "d"), double,
                            completed=completed)
        assert outcome.resumed == 2
        assert outcome.executed == 2
        assert outcome.results == {("a",): "aa", ("b",): "bb",
                                   ("c",): "cc", ("d",): "dd"}

    def test_failures_journalled(self, tmp_path):
        journal = Journal.create(run_id="r1", root=tmp_path)
        plan = FaultPlan().fail(("a",))
        run_tasks(tasks_for("a"), double, journal=journal, fault_plan=plan,
                  retry=NO_RETRY)
        journal.close()
        state = journal.load()
        assert state.failures[0]["failure_kind"] == "error"


class TestParallel:
    def test_parallel_matches_serial(self):
        tasks = tasks_for("a", "b", "c", "d", "e")
        serial = run_tasks(tasks, double, workers=1)
        parallel = run_tasks(tasks, double, workers=3)
        assert parallel.results == serial.results

    def test_injected_error_isolated(self):
        plan = FaultPlan().fail(("b",))
        outcome = run_tasks(tasks_for("a", "b", "c", "d"), double,
                            workers=2, fault_plan=plan, retry=NO_RETRY)
        assert outcome.results == {("a",): "aa", ("c",): "cc", ("d",): "dd"}
        assert [f.key for f in outcome.failures] == [("b",)]

    def test_real_worker_crash_isolated(self):
        """An os._exit in a worker kills exactly one attempt, not the
        sweep -- the acceptance criterion for crash isolation."""
        plan = FaultPlan().fail(("b",), kind=CRASH)
        outcome = run_tasks(tasks_for("a", "b", "c", "d"), double,
                            workers=2, fault_plan=plan, retry=NO_RETRY)
        assert outcome.results == {("a",): "aa", ("c",): "cc", ("d",): "dd"}
        failure = outcome.failures.failures[0]
        assert failure.key == ("b",)
        assert failure.kind == "crash"

    def test_crash_then_clean_retry_recovers_everything(self):
        plan = FaultPlan().fail(("b",), attempt=1, kind=CRASH)
        outcome = run_tasks(
            tasks_for("a", "b", "c", "d"), double, workers=2,
            fault_plan=plan,
            retry=RetryPolicy(max_attempts=2, base_delay=0.0))
        assert outcome.failures.ok
        assert outcome.results == {("a",): "aa", ("b",): "bb",
                                   ("c",): "cc", ("d",): "dd"}

    def test_failures_reported_in_task_order(self):
        plan = FaultPlan().fail(("d",)).fail(("a",))
        outcome = run_tasks(tasks_for("a", "b", "c", "d"), double,
                            workers=2, fault_plan=plan, retry=NO_RETRY)
        assert [f.key for f in outcome.failures] == [("a",), ("d",)]
