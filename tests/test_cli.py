"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(
            ["simulate", "--policy", "LRU"])
        assert args.family == "msr"
        assert args.size == 0.1

    def test_experiment_ids_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "QD-LP-FIFO" in out
        assert "Belady" in out
        assert "sota:" in out

    def test_simulate_synthetic(self, capsys):
        code = main(["simulate", "--policy", "LRU", "--family", "wiki",
                     "--scale", "0.05", "--size", "0.1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "miss ratio" in out
        assert "wiki-000" in out

    def test_simulate_unknown_policy(self, capsys):
        code = main(["simulate", "--policy", "Nope", "--scale", "0.05"])
        assert code == 2  # user error, not runtime failure
        assert "unknown policy" in capsys.readouterr().err

    def test_simulate_unknown_family(self, capsys):
        code = main(["simulate", "--policy", "LRU", "--family", "nope"])
        assert code == 2
        assert "unknown family" in capsys.readouterr().err

    def test_simulate_missing_trace_file(self, capsys, tmp_path):
        code = main(["simulate", "--policy", "LRU",
                     "--trace", str(tmp_path / "missing.csv")])
        assert code == 2

    def test_simulate_corrupt_trace_file(self, capsys, tmp_path):
        path = tmp_path / "corrupt.bin"
        path.write_bytes(b"NOPE" + b"\x00" * 20)
        code = main(["simulate", "--policy", "LRU", "--trace", str(path)])
        assert code == 2
        assert "magic" in capsys.readouterr().err

    def test_simulate_from_csv(self, capsys, tmp_path, small_trace):
        from repro.traces.io import write_csv
        path = tmp_path / "t.csv"
        write_csv(small_trace, path)
        code = main(["simulate", "--policy", "FIFO", "--trace", str(path),
                     "--size", "0.1"])
        assert code == 0
        assert "miss ratio" in capsys.readouterr().out

    def test_corpus_listing(self, capsys):
        code = main(["corpus", "--scale", "0.05",
                     "--traces-per-family", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "msr-000" in out
        assert "socialnet-000" in out

    def test_corpus_export_binary(self, capsys, tmp_path):
        code = main(["corpus", "--scale", "0.05", "--traces-per-family",
                     "1", "--out", str(tmp_path), "--format", "binary"])
        assert code == 0
        files = list(tmp_path.glob("*.bin"))
        assert len(files) == 10
        from repro.traces.io import read_binary
        trace = read_binary(files[0])
        assert trace.num_requests > 0

    def test_corpus_export_csv(self, capsys, tmp_path):
        code = main(["corpus", "--scale", "0.05", "--traces-per-family",
                     "1", "--out", str(tmp_path), "--format", "csv"])
        assert code == 0
        assert len(list(tmp_path.glob("*.csv"))) == 10

    def test_experiment_table1(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        code = main(["experiment", "table1", "--tier", "tiny"])
        assert code == 0
        assert "Table 1" in capsys.readouterr().out


class TestExitCodes:
    """Interrupt and crash handling at the top-level entry point."""

    def test_keyboard_interrupt_exits_130(self, capsys, monkeypatch):
        def interrupted(args):
            raise KeyboardInterrupt
        monkeypatch.setattr("repro.cli._cmd_list", interrupted)
        assert main(["list"]) == 130
        assert "interrupted" in capsys.readouterr().err

    def test_unexpected_error_exits_1(self, capsys, monkeypatch):
        def broken(args):
            raise RuntimeError("wires crossed")
        monkeypatch.setattr("repro.cli._cmd_list", broken)
        assert main(["list"]) == 1
        err = capsys.readouterr().err
        assert "RuntimeError" in err
        assert "wires crossed" in err


class TestSweepFlags:
    """Checkpoint/resume plumbing through the experiment command."""

    def test_checkpoint_writes_journal(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "results"))
        runs = tmp_path / "runs"
        code = main(["experiment", "fig2", "--tier", "tiny",
                     "--checkpoint", "--run-id", "cli-test",
                     "--runs-dir", str(runs)])
        assert code == 0
        assert (runs / "cli-test" / "journal.jsonl").exists()
        assert "cli-test" in capsys.readouterr().err

    def test_resume_reuses_journal(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "results"))
        runs = tmp_path / "runs"
        main(["experiment", "fig2", "--tier", "tiny", "--checkpoint",
              "--run-id", "cli-test", "--runs-dir", str(runs)])
        capsys.readouterr()
        code = main(["experiment", "fig2", "--tier", "tiny",
                     "--resume", "cli-test", "--runs-dir", str(runs)])
        assert code == 0
        assert "Fig. 2" in capsys.readouterr().out

    def test_resume_unknown_run_is_user_error(self, capsys, tmp_path,
                                              monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "results"))
        code = main(["experiment", "fig2", "--tier", "tiny",
                     "--resume", "ghost",
                     "--runs-dir", str(tmp_path / "runs")])
        assert code == 2
        assert "ghost" in capsys.readouterr().err


class TestExperimentCommands:
    """Each CLI experiment id dispatches and renders (tiny tier)."""

    def test_experiment_fig3(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        assert main(["experiment", "fig3", "--tier", "tiny"]) == 0
        assert "Fig. 3" in capsys.readouterr().out

    def test_experiment_ablation_clockbits(self, capsys, tmp_path,
                                           monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        assert main(["experiment", "ablation-clockbits",
                     "--tier", "tiny"]) == 0
        assert "bit-width" in capsys.readouterr().out

    def test_experiment_extensions(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        assert main(["experiment", "extensions", "--tier", "tiny"]) == 0
        assert "S3-FIFO" in capsys.readouterr().out

    def test_experiment_outage(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        assert main(["experiment", "outage", "--tier", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "availability" in out
        assert "QD-LP-FIFO" in out
        assert (tmp_path / "outage.txt").exists()


class TestLoadgenCommand:
    """The service-layer load test command (and its ^C contract)."""

    def test_loadgen_happy_path(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        code = main(["loadgen", "--policy", "LRU", "--threads", "2",
                     "--requests", "2000", "--objects", "200"])
        assert code == 0
        out = capsys.readouterr().out
        assert "availability" in out
        assert "p99" in out
        assert (tmp_path / "loadgen.txt").exists()

    def test_loadgen_unknown_policy(self, capsys):
        code = main(["loadgen", "--policy", "Nope"])
        assert code == 2
        assert "unknown policy" in capsys.readouterr().err

    def test_loadgen_bad_config_is_user_error(self, capsys):
        code = main(["loadgen", "--ttl", "-5"])
        assert code == 2
        assert "ttl" in capsys.readouterr().err

    def test_loadgen_bad_request_count(self, capsys):
        code = main(["loadgen", "--requests", "0"])
        assert code == 2
        assert "--requests" in capsys.readouterr().err

    def test_loadgen_interrupt_exits_130_and_flushes(self, capsys,
                                                     tmp_path,
                                                     monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        from repro.service.loadgen import LoadInterrupted, LoadReport

        def interrupted(service, keys, threads=1, tick=0.0):
            report = LoadReport(
                requests=7,
                outcomes={"hit": 3, "miss": 4, "stale": 0, "shed": 0,
                          "error": 0},
                coalesced=0, fetch_attempts=4, fetch_failures=0,
                latency_p50=0.0, latency_p90=0.0, latency_p99=0.0,
                elapsed=0.1, threads=threads, interrupted=True)
            raise LoadInterrupted(report)

        monkeypatch.setattr("repro.service.run_load", interrupted)
        code = main(["loadgen", "--requests", "100"])
        assert code == 130
        err = capsys.readouterr().err
        assert "partial metrics" in err
        partial = tmp_path / "loadgen_partial.txt"
        assert partial.exists()
        assert "requests      : 7" in partial.read_text()

    def test_loadgen_interrupt_before_run_still_exits_130(self, capsys,
                                                          monkeypatch):
        def boom(args):
            raise KeyboardInterrupt
        monkeypatch.setattr("repro.cli._cmd_loadgen", boom)
        assert main(["loadgen"]) == 130

    def test_loadgen_cluster_mode(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        code = main(["loadgen", "--shards", "3", "--threads", "2",
                     "--requests", "1500", "--objects", "300"])
        assert code == 0
        out = capsys.readouterr().out
        assert "3 shard(s)" in out
        assert "replica_hit=" in out
        assert (tmp_path / "loadgen_cluster.txt").exists()
        assert (tmp_path / "loadgen_cluster_metrics.jsonl").exists()

    def test_loadgen_cluster_kill_shard(self, capsys, tmp_path,
                                        monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        code = main(["loadgen", "--shards", "4", "--replicas", "1",
                     "--kill-shard", "s1", "--requests", "1500",
                     "--objects", "300"])
        assert code == 0
        out = capsys.readouterr().out
        assert "availability" in out

    def test_loadgen_kill_shard_validation(self, capsys):
        code = main(["loadgen", "--shards", "4", "--kill-shard", "nope",
                     "--requests", "100"])
        assert code == 2
        assert "--kill-shard" in capsys.readouterr().err

    def test_loadgen_kill_needs_two_shards(self, capsys):
        code = main(["loadgen", "--shards", "1", "--kill-shard", "s0",
                     "--requests", "100"])
        assert code == 2
        assert "2 shards" in capsys.readouterr().err
