"""Unit tests for the lock-contention scalability model."""

import pytest

from repro.concurrency.model import (
    PolicyProfile,
    profile_policy,
    scaling_table,
    simulate_scaling,
)


def profile(hit_ratio=0.9, promotions=0.0, name="x"):
    return PolicyProfile(name=name, hit_ratio=hit_ratio,
                         promotions_per_request=promotions)


class TestPolicyProfile:
    def test_miss_ratio_complement(self):
        assert profile(hit_ratio=0.7).miss_ratio == pytest.approx(0.3)

    def test_profile_policy_measures_real_runs(self, zipf_keys):
        from repro.policies.lru import LRU
        measured = profile_policy(LRU(100), zipf_keys)
        assert measured.name == "LRU"
        assert 0 < measured.hit_ratio < 1
        # LRU promotes on every hit.
        assert measured.promotions_per_request == pytest.approx(
            measured.hit_ratio)


class TestSimulateScaling:
    def test_invalid_threads(self):
        with pytest.raises(ValueError):
            simulate_scaling(profile(), thread_counts=(0,))

    def test_single_thread_throughput_reasonable(self):
        points = simulate_scaling(profile(), thread_counts=(1,),
                                  requests_per_thread=500)
        point = points[0]
        assert point.threads == 1
        assert 0 < point.throughput <= 1.0  # at most 1/base_work
        assert 0 <= point.lock_utilisation <= 1

    def test_lock_free_policy_scales_linearly_at_first(self):
        points = simulate_scaling(
            profile(hit_ratio=1.0, promotions=0.0),
            thread_counts=(1, 2, 4), requests_per_thread=500)
        by_threads = {p.threads: p.throughput for p in points}
        assert by_threads[2] == pytest.approx(2 * by_threads[1], rel=0.05)
        assert by_threads[4] == pytest.approx(4 * by_threads[1], rel=0.05)

    def test_locked_policy_saturates(self):
        points = simulate_scaling(
            profile(hit_ratio=0.95, promotions=0.95),
            thread_counts=(1, 8, 32), requests_per_thread=500)
        by_threads = {p.threads: p.throughput for p in points}
        # Once the lock saturates, more threads add nothing.
        assert by_threads[32] == pytest.approx(by_threads[8], rel=0.1)
        assert points[-1].lock_utilisation > 0.9

    def test_lock_free_beats_locked_at_scale(self):
        free = simulate_scaling(profile(hit_ratio=0.95, promotions=0.0),
                                thread_counts=(32,),
                                requests_per_thread=500)[0]
        locked = simulate_scaling(profile(hit_ratio=0.95, promotions=0.95),
                                  thread_counts=(32,),
                                  requests_per_thread=500)[0]
        assert free.throughput > 3 * locked.throughput

    def test_deterministic(self):
        a = simulate_scaling(profile(), thread_counts=(4,),
                             requests_per_thread=300)
        b = simulate_scaling(profile(), thread_counts=(4,),
                             requests_per_thread=300)
        assert a == b


class TestScalingTable:
    def test_one_curve_per_profile(self):
        curves = scaling_table(
            [profile(name="a"), profile(name="b", promotions=0.9)],
            thread_counts=(1, 4), requests_per_thread=200)
        assert set(curves) == {"a", "b"}
        assert all(len(points) == 2 for points in curves.values())


class TestScalabilityExperiment:
    def test_runs_and_renders(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        from repro.experiments import scalability
        result = scalability.run(num_objects=500, num_requests=5000,
                                 thread_counts=(1, 8))
        assert "X3" in result.render()
        # The paper's shape, even at toy scale.
        assert result.speedup("FIFO", 8) > result.speedup("LRU", 8)
