"""X6 integration: the goodput-vs-hit-ratio crossover, deterministic.

Runs the full study at the TINY tier (virtual clock, seeded arrivals)
and asserts the paper-level claims the experiment exists to show:
promotion-heavy LRU loses delivered goodput under a step overload
while FIFO and QD-LP-FIFO ride it, and the adaptive admission stack
keeps p99 queue delay bounded where the static stack collapses.
"""

from __future__ import annotations

import pytest

from repro.experiments import overload_study
from repro.experiments.common import CorpusConfig
from repro.experiments.overload_study import (
    MODES,
    POLICIES,
    OverloadScenario,
)

TINY = CorpusConfig(scale=0.1, traces_per_family=1)


@pytest.fixture(autouse=True)
def results_tmpdir(tmp_path, monkeypatch):
    """Redirect results/ artifacts into the test's tmp dir."""
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    yield tmp_path


@pytest.fixture(scope="module")
def study():
    """One TINY run shared by every assertion (it is the slow part)."""
    return overload_study.run(TINY)


class TestStudyShape:
    def test_full_grid_of_rows(self, study):
        assert len(study.rows) == len(POLICIES) * len(MODES)
        for policy in POLICIES:
            for mode in MODES:
                row = study.row(policy, mode)
                assert row.policy == policy and row.mode == mode

    def test_conservation_in_every_cell(self, study):
        for row in study.rows:
            row.report.check_conservation()
            assert row.report.offered > 0

    def test_unknown_row_raises(self, study):
        with pytest.raises(KeyError):
            study.row("LRU", "imaginary")

    def test_render_mentions_the_study(self, study):
        text = study.render()
        assert "X6" in text
        for policy in POLICIES:
            assert policy in text


class TestPaperClaims:
    def test_lazy_promotion_beats_lru_on_goodput(self, study):
        """The headline: under overload, fewer promotions = more served."""
        lru = study.row("LRU", "adaptive")
        fifo = study.row("FIFO", "adaptive")
        qdlp = study.row("QD-LP-FIFO", "adaptive")
        assert fifo.goodput > lru.goodput
        assert qdlp.goodput > lru.goodput

    def test_qdlp_keeps_the_hit_ratio_too(self, study):
        """QD-LP-FIFO is not trading hit ratio for its goodput."""
        lru = study.row("LRU", "adaptive")
        qdlp = study.row("QD-LP-FIFO", "adaptive")
        assert qdlp.goodput > lru.goodput
        assert qdlp.hit_ratio > lru.hit_ratio * 0.9

    def test_promotion_lock_is_the_bottleneck(self, study):
        """LRU pays promotions for ~every hit; FIFO pays none."""
        lru = study.row("LRU", "adaptive").report
        fifo = study.row("FIFO", "adaptive").report
        assert fifo.promotions == 0
        assert fifo.lock_busy == 0.0
        assert lru.promotions > 0
        assert lru.lock_busy > 0.0

    def test_adaptive_bounds_p99_where_static_collapses(self, study):
        """The robustness claim, on the worst-behaved policy (LRU)."""
        static = study.row("LRU", "static")
        adaptive = study.row("LRU", "adaptive")
        scenario = study.scenario
        # Static mode queues everything: requests are served later than
        # the deadline the adaptive stack enforces, and its unbounded
        # backlog dwarfs the adaptive mode's bounded queue.
        assert static.p99_queue_delay > scenario.queue_deadline
        assert static.p99_queue_delay > 2 * adaptive.p99_queue_delay
        assert (static.report.max_queue_depth
                > 2 * scenario.queue_capacity)
        # Adaptive mode drops on time instead: p99 of *served* requests
        # stays within the dispatch deadline.
        assert adaptive.p99_queue_delay <= scenario.queue_deadline
        assert adaptive.drop_ratio > 0.0

    def test_lru_sheds_more_than_lazy_policies(self, study):
        lru = study.row("LRU", "adaptive")
        qdlp = study.row("QD-LP-FIFO", "adaptive")
        assert lru.drop_ratio > qdlp.drop_ratio


class TestDeterminism:
    def test_same_scenario_same_numbers(self, study, results_tmpdir):
        again = overload_study.run(TINY)
        for row, row2 in zip(study.rows, again.rows):
            assert (row.policy, row.mode) == (row2.policy, row2.mode)
            assert row.report.outcomes == row2.report.outcomes
            assert row.goodput == row2.goodput
            assert row.p99_queue_delay == row2.p99_queue_delay
        # This rerun happened inside our own results dir: the rendered
        # table must have been persisted as an artifact.
        assert list(results_tmpdir.rglob("*overload*")), \
            "expected a persisted overload artifact"


class TestScenarioValidation:
    def test_rejects_bad_cache_fraction(self):
        with pytest.raises(ValueError, match="cache_fraction"):
            OverloadScenario(cache_fraction=0.0)

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError, match="peak_rate"):
            OverloadScenario(peak_rate=-1.0)

    def test_rejects_bad_mode(self):
        scenario = OverloadScenario(duration=1.0, num_requests=100,
                                    num_objects=50)
        with pytest.raises(ValueError, match="mode"):
            overload_study.run_cell("LRU", "sideways", scenario, [1, 2])
