"""The X4 backend-outage experiment (deterministic, virtual clock)."""

from __future__ import annotations

import pytest

from repro.experiments import outage
from repro.experiments.common import TINY


@pytest.fixture(scope="module")
def tiny_result(tmp_path_factory):
    # Built once per module: three policies x 2000 requests is cheap
    # but not free.
    import os

    old = os.environ.get("REPRO_RESULTS_DIR")
    os.environ["REPRO_RESULTS_DIR"] = str(
        tmp_path_factory.mktemp("outage-results"))
    try:
        yield outage.run(TINY)
    finally:
        if old is None:
            os.environ.pop("REPRO_RESULTS_DIR", None)
        else:
            os.environ["REPRO_RESULTS_DIR"] = old


class TestScenarioValidation:
    def test_rejects_bad_window(self):
        with pytest.raises(ValueError, match="outage window"):
            outage.OutageScenario(outage_start=0.7, outage_end=0.4)

    def test_rejects_bad_cache_fraction(self):
        with pytest.raises(ValueError, match="cache_fraction"):
            outage.OutageScenario(cache_fraction=0.0)

    def test_rejects_bad_ttl_fractions(self):
        with pytest.raises(ValueError, match="ttl_fraction"):
            outage.OutageScenario(ttl_fraction=0.0)

    def test_window_scales_with_duration(self):
        scenario = outage.OutageScenario(num_requests=1000,
                                         outage_start=0.5,
                                         outage_end=0.75)
        start, end = scenario.window()
        assert start == pytest.approx(0.5 * scenario.duration)
        assert end == pytest.approx(0.75 * scenario.duration)


class TestOutageRun:
    def test_covers_all_three_policies(self, tiny_result):
        assert [row.policy for row in tiny_result.rows] == [
            "LRU", "FIFO-Reinsertion", "QD-LP-FIFO"]

    def test_outage_produces_errors_and_stale_serves(self, tiny_result):
        for row in tiny_result.rows:
            assert row.report.outcomes["error"] > 0     # outage is visible
            assert row.report.outcomes["stale"] > 0     # degradation works
            assert 0.0 < row.availability < 1.0

    def test_breaker_tripped_during_outage(self, tiny_result):
        for row in tiny_result.rows:
            opens = [dst for _, _, dst in row.report.breaker_transitions
                     if dst == "open"]
            assert opens, f"{row.policy}: breaker never opened"

    def test_accounting_invariant_per_policy(self, tiny_result):
        for row in tiny_result.rows:
            row.report.check_accounting()
            counts = row.report.outcomes
            assert sum(counts.values()) == row.report.requests

    def test_effective_beats_fresh_hit_ratio(self, tiny_result):
        # Stale serves only add to the effective ratio.
        for row in tiny_result.rows:
            assert row.effective_hit_ratio >= row.fresh_hit_ratio

    def test_render_and_row_lookup(self, tiny_result):
        text = tiny_result.render()
        assert "availability" in text
        assert "QD-LP-FIFO" in text
        assert tiny_result.row("LRU").policy == "LRU"
        with pytest.raises(KeyError):
            tiny_result.row("Nope")

    def test_deterministic_across_runs(self, tiny_result):
        again = outage.run(TINY)
        for first, second in zip(tiny_result.rows, again.rows):
            assert first.report.outcomes == second.report.outcomes
            assert first.report.breaker_transitions == \
                second.report.breaker_transitions
