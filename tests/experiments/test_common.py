"""Unit tests for the experiment plumbing (configs, artifacts)."""


import pytest

from repro.experiments.common import (
    FULL,
    QUICK,
    TINY,
    CorpusConfig,
    default_workers,
    results_dir,
    write_result,
)


class TestCorpusConfig:
    def test_build_respects_counts(self):
        config = CorpusConfig(scale=0.05, traces_per_family=1)
        assert len(config.build()) == 10

    def test_family_filter(self):
        config = CorpusConfig(scale=0.05, traces_per_family=1,
                              families=("msr",))
        corpus = config.build()
        assert len(corpus) == 1
        assert corpus[0].family == "msr"

    def test_scaled_returns_modified_copy(self):
        modified = QUICK.scaled(scale=0.2)
        assert modified.scale == 0.2
        assert modified.traces_per_family == QUICK.traces_per_family
        assert QUICK.scale == 1.0  # original untouched

    def test_presets_ordered_by_cost(self):
        assert TINY.scale < QUICK.scale <= FULL.scale
        assert (TINY.traces_per_family or 99) <= (
            QUICK.traces_per_family or 99)

    def test_configs_are_frozen(self):
        with pytest.raises(Exception):
            QUICK.scale = 0.5

    def test_deterministic_build(self):
        import numpy as np
        a = TINY.build()
        b = TINY.build()
        assert all(np.array_equal(x.keys, y.keys) for x, y in zip(a, b))


class TestArtifacts:
    def test_results_dir_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "out"))
        path = results_dir()
        assert path == tmp_path / "out"
        assert path.is_dir()

    def test_write_result(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        path = write_result("mytest", "hello\nworld")
        assert path.read_text() == "hello\nworld\n"
        assert path.name == "mytest.txt"


class TestWorkers:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert default_workers() == 3

    def test_minimum_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "0")
        assert default_workers() == 1

    def test_default_positive(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert default_workers() >= 1
