"""X7 tiered experiment: runs at tiny tier and reproduces the QD story."""

import pytest

from repro.experiments import tiered
from repro.experiments.common import TINY


@pytest.fixture(scope="module")
def tiny_result(tmp_path_factory):
    import os
    results = tmp_path_factory.mktemp("results")
    old = os.environ.get("REPRO_RESULTS_DIR")
    os.environ["REPRO_RESULTS_DIR"] = str(results)
    try:
        yield tiered.run(TINY)
    finally:
        if old is None:
            os.environ.pop("REPRO_RESULTS_DIR", None)
        else:
            os.environ["REPRO_RESULTS_DIR"] = old


class TestTieredStudy:
    def test_covers_the_grid(self, tiny_result):
        assert tiny_result.num_traces == 4
        for policy in tiered.DRAM_POLICIES:
            for admission in tiered.ADMISSIONS:
                assert (policy, admission) in tiny_result.hit_ratio

    def test_metrics_sane(self, tiny_result):
        for cell, ratio in tiny_result.hit_ratio.items():
            assert 0 < ratio < 1, cell
        for cell, amp in tiny_result.flash_write_amp.items():
            assert amp >= 1.0, cell
        for cell, cost in tiny_result.cost_per_request.items():
            assert cost > 0, cell

    def test_qd_story_flash_write_savings(self, tiny_result):
        """The headline: QD cuts flash writes at a no-worse hit ratio."""
        qd = ("Sized-QD-LP-FIFO", "admit-all")
        lru = ("Sized-LRU", "admit-all")
        assert tiny_result.flash_write_bytes[qd] < \
            tiny_result.flash_write_bytes[lru]
        assert tiny_result.hit_ratio[qd] >= tiny_result.hit_ratio[lru]
        assert tiny_result.flash_write_savings() > 0

    def test_ghost_admission_slashes_writes(self, tiny_result):
        """Probationary admission cuts write volume for every policy."""
        for policy in tiered.DRAM_POLICIES:
            assert tiny_result.flash_write_bytes[(policy, "ghost")] < \
                0.5 * tiny_result.flash_write_bytes[(policy, "admit-all")]

    def test_deterministic(self, tiny_result):
        again = tiered.run(TINY)
        assert again.hit_ratio == tiny_result.hit_ratio
        assert again.flash_write_bytes == tiny_result.flash_write_bytes

    def test_render_mentions_the_savings(self, tiny_result):
        text = tiny_result.render()
        assert "X7" in text
        assert "flash-write savings" in text
        for policy in tiered.DRAM_POLICIES:
            assert policy in text
