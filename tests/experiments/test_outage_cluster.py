"""The X3-cluster shard-kill experiment (deterministic, virtual clock)."""

from __future__ import annotations

import pytest

from repro.experiments import outage_cluster
from repro.experiments.common import TINY


@pytest.fixture(scope="module")
def tiny_result(tmp_path_factory):
    # Built once per module: 3 policies x 2 replication arms.
    import os

    old = os.environ.get("REPRO_RESULTS_DIR")
    os.environ["REPRO_RESULTS_DIR"] = str(
        tmp_path_factory.mktemp("outage-cluster-results"))
    try:
        yield outage_cluster.run(TINY)
    finally:
        if old is None:
            os.environ.pop("REPRO_RESULTS_DIR", None)
        else:
            os.environ["REPRO_RESULTS_DIR"] = old


class TestScenarioValidation:
    def test_rejects_bad_window(self):
        with pytest.raises(ValueError, match="kill window"):
            outage_cluster.ClusterScenario(kill_start=0.7, kill_end=0.4)

    def test_rejects_single_shard(self):
        with pytest.raises(ValueError, match="shards"):
            outage_cluster.ClusterScenario(shards=1)

    def test_rejects_unknown_victim(self):
        with pytest.raises(ValueError, match="killed_shard"):
            outage_cluster.ClusterScenario(shards=4, killed_shard="s7")

    def test_window_scales_with_duration(self):
        scenario = outage_cluster.ClusterScenario(num_requests=1000)
        start, end = scenario.window()
        assert start == pytest.approx(0.4 * scenario.duration)
        assert end == pytest.approx(0.7 * scenario.duration)


class TestClusterOutageRun:
    def test_covers_every_policy_and_both_arms(self, tiny_result):
        arms = {(row.policy, row.replicas) for row in tiny_result.rows}
        assert arms == {(policy, replicas)
                        for policy in outage_cluster.POLICIES
                        for replicas in (1, 0)}

    def test_replication_meets_the_availability_bar(self, tiny_result):
        """The acceptance criterion: >= 99% availability with replicas."""
        for policy in outage_cluster.POLICIES:
            with_repl = tiny_result.row(policy, 1)
            without = tiny_result.row(policy, 0)
            assert with_repl.availability >= 0.99
            assert with_repl.availability > without.availability
            assert with_repl.report.outcomes["replica_hit"] > 0

    def test_without_replication_the_kill_window_is_visible(
            self, tiny_result):
        for policy in outage_cluster.POLICIES:
            row = tiny_result.row(policy, 0)
            phases = row.phase_availability()
            assert phases["during"] < phases["before"]
            assert row.report.outcomes["error"] > 0

    def test_recovery_after_the_window(self, tiny_result):
        for row in tiny_result.rows:
            assert row.phase_availability()["after"] >= 0.999

    def test_accounting_invariant_per_arm(self, tiny_result):
        for row in tiny_result.rows:
            row.report.check_accounting()

    def test_render_and_row_lookup(self, tiny_result):
        text = tiny_result.render()
        assert "replica" in text and "QD-LP-FIFO" in text
        assert "killing shard s1" in text
        with pytest.raises(KeyError):
            tiny_result.row("Nope", 1)

    def test_deterministic_across_runs(self, tiny_result):
        again = outage_cluster.run(TINY)
        for first, second in zip(tiny_result.rows, again.rows):
            assert first.report.outcomes == second.report.outcomes
            assert first.report.latency_p99 == second.report.latency_p99
