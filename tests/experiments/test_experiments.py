"""Integration tests: every experiment pipeline runs end-to-end on the
TINY corpus and produces sane, renderable results."""

import math

import pytest

from repro.experiments import (
    ablations,
    extensions,
    fig2,
    fig3,
    fig5,
    table1,
    throughput,
)
from repro.experiments.common import CorpusConfig

TINY = CorpusConfig(scale=0.1, traces_per_family=1)


@pytest.fixture(autouse=True)
def results_tmpdir(tmp_path, monkeypatch):
    """Redirect results/ artifacts into the test's tmp dir."""
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    yield tmp_path


class TestTable1:
    def test_rows_cover_all_families(self, results_tmpdir):
        result = table1.run(TINY)
        assert len(result.rows) == 10
        assert {r.family for r in result.rows} == {
            "msr", "fiu", "cloudphysics", "cdn", "tencent_photo", "wiki",
            "tencent_cbs", "alibaba", "twitter", "socialnet"}

    def test_render_and_artifact(self, results_tmpdir):
        result = table1.run(TINY)
        text = result.render()
        assert "Table 1" in text
        assert "TOTAL" in text
        assert (results_tmpdir / "table1.txt").exists()


class TestFig2:
    @pytest.fixture(scope="class")
    def result(self, tmp_path_factory):
        import os
        os.environ["REPRO_RESULTS_DIR"] = str(tmp_path_factory.mktemp("r"))
        return fig2.run(TINY, workers=1)

    def test_win_fractions_computed_per_challenger(self, result):
        assert set(result.by_family) == {"FIFO-Reinsertion", "2-bit-CLOCK"}
        rows = result.by_family["FIFO-Reinsertion"]
        assert len(rows) == 20  # 10 families x 2 sizes

    def test_demotion_ages_show_quick_demotion(self, result):
        """Fig. 2(e): FIFO-Reinsertion demotes never-hit objects much
        faster than LRU."""
        assert (result.demotion_age_fifo_reinsertion
                < result.demotion_age_lru)

    def test_render(self, result):
        text = result.render()
        assert "Fig. 2" in text
        assert "datasets won" in text


class TestFig3:
    @pytest.fixture(scope="class")
    def result(self, tmp_path_factory):
        import os
        os.environ["REPRO_RESULTS_DIR"] = str(tmp_path_factory.mktemp("r"))
        return fig3.run(scale=0.3)

    def test_all_cells_present(self, result):
        for trace_name in ("MSR", "Twitter"):
            for policy in fig3.POLICIES:
                deciles = result.shares[(trace_name, policy)]
                assert len(deciles) == fig3.NUM_DECILES
                assert sum(deciles) == pytest.approx(1.0, abs=1e-6)
                assert (trace_name, policy) in result.miss_ratios

    def test_efficient_policies_spend_less_on_unpopular(self, result):
        """The Fig. 3 headline: the efficient policies (ARC, Belady)
        spend a smaller space-time share on the unpopular half than
        LRU does."""
        for trace_name in ("MSR", "Twitter"):
            shares = {p: result.unpopular_share(trace_name, p)
                      for p in fig3.POLICIES}
            assert shares["Belady"] < shares["LRU"]
            assert shares["ARC"] < shares["LRU"]

    def test_belady_has_lowest_miss_ratio(self, result):
        """Table 2 ordering: Belady below every online policy."""
        for trace_name in ("MSR", "Twitter"):
            ratios = {p: result.miss_ratios[(trace_name, p)]
                      for p in fig3.POLICIES}
            assert ratios["Belady"] == min(ratios.values())

    def test_arc_beats_lru_on_msr(self, result):
        assert (result.miss_ratios[("MSR", "ARC")]
                < result.miss_ratios[("MSR", "LRU")])

    def test_render(self, result):
        text = result.render()
        assert "Fig. 3" in text
        assert "Table 2" in text


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self, tmp_path_factory):
        import os
        os.environ["REPRO_RESULTS_DIR"] = str(tmp_path_factory.mktemp("r"))
        return fig5.run(TINY, workers=1)

    def test_summaries_cover_matrix(self, result):
        for group in fig5.GROUPS:
            for size in fig5.SIZES:
                for policy in fig5.POLICIES[1:]:
                    assert (group, size, policy) in result.summaries

    def test_qd_gains_computed_for_all_sota(self, result):
        assert set(result.qd_gains) == {"ARC", "LIRS", "CACHEUS",
                                        "LeCaR", "LHD"}
        for mean_gain, max_gain in result.qd_gains.values():
            assert max_gain >= mean_gain
            assert not math.isnan(mean_gain)

    def test_sota_beats_lru_on_average(self, result):
        """ARC must reduce miss ratios relative to LRU on average (the
        paper's 6.2% yardstick -- sign only at tiny scale)."""
        assert result.arc_vs_lru_mean > 0

    def test_render(self, result):
        text = result.render()
        assert "Fig. 5" in text
        assert "QD-X vs X" in text


class TestAblations:
    def test_probation_sweep(self, results_tmpdir):
        result = ablations.run_probation_sweep(
            TINY, fractions=(0.1, 0.5))
        assert set(result.outcomes) == {0.1, 0.5}
        assert "probation" in result.render()

    def test_ghost_sweep_zero_disables_history(self, results_tmpdir):
        result = ablations.run_ghost_sweep(TINY, factors=(0.0, 1.0))
        assert set(result.outcomes) == {0.0, 1.0}

    def test_clock_bits_sweep(self, results_tmpdir):
        result = ablations.run_clock_bits_sweep(TINY, bits=(1, 2))
        assert set(result.outcomes) == {1, 2}
        assert result.best() in (1, 2)


class TestExtensions:
    def test_means_cover_all_cells(self, results_tmpdir):
        result = extensions.run(TINY, workers=1)
        for policy in extensions.POLICIES[1:]:
            for group in ("block", "web"):
                for size in (0.001, 0.1):
                    assert (group, size, policy) in result.means
        assert "S3-FIFO" in result.render()


class TestThroughput:
    def test_measures_each_policy(self, results_tmpdir):
        result = throughput.run(policies=("FIFO", "LRU", "ARC"),
                                num_objects=500, num_requests=20000)
        assert set(result.ops_per_second) == {"FIFO", "LRU", "ARC"}
        assert all(v > 0 for v in result.ops_per_second.values())
        assert all(0 < h < 1 for h in result.hit_ratio.values())

    def test_relative_speedup(self, results_tmpdir):
        result = throughput.run(policies=("FIFO", "LRU"),
                                num_objects=500, num_requests=20000)
        relative = result.relative_to("LRU")
        assert relative["LRU"] == pytest.approx(1.0)

    def test_render(self, results_tmpdir):
        result = throughput.run(policies=("FIFO", "LRU"),
                                num_objects=300, num_requests=5000)
        assert "k-requests/s" in result.render()
