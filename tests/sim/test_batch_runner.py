"""BatchRunner + fast-path integration: one interned trace, many cells.

Covers the sharing contract (interning happens once per trace no matter
how many cells replay it), the fallback contract (``None`` for policies
without engines, reference results for everything), and the
``run_sweep``/``simulate``/``simulated_mrc`` wiring on top.
"""

import numpy as np
import pytest

from repro.analysis.mrc import simulated_mrc
from repro.policies.registry import make
from repro.sim.fast.batch import BatchRunner
from repro.sim.runner import run_sweep
from repro.sim.simulator import simulate
from repro.traces.synthetic import zipf_trace
from repro.traces.trace import Trace, from_keys


@pytest.fixture()
def trace():
    rng = np.random.default_rng(5)
    return Trace(name="t0", keys=zipf_trace(400, 4000, 1.1, rng))


def test_outcomes_match_reference_simulate(trace):
    runner = BatchRunner()
    for name in ("FIFO", "LRU", "SIEVE", "S3-FIFO", "QD-LP-FIFO"):
        for capacity in (16, 100):
            outcome = runner.run(name, trace, capacity)
            assert outcome is not None
            reference = simulate(make(name, capacity), trace)
            assert (outcome.hits, outcome.misses) == (
                reference.hits, reference.misses)
            assert outcome.requests == trace.num_requests
            assert outcome.miss_ratio == reference.miss_ratio


def test_unsupported_policy_returns_none(trace):
    runner = BatchRunner()
    assert runner.run("LIRS", trace, 50) is None
    # Belady-style offline policies never get a fast engine either.
    assert runner.run_policy(make("LRU", 50), trace) is not None


def test_stale_policy_instance_returns_none(trace):
    runner = BatchRunner()
    policy = make("FIFO", 50)
    policy.request(1)
    assert runner.run_policy(policy, trace) is None


def test_trace_interned_exactly_once(trace):
    runner = BatchRunner()
    assert trace._interned is None
    runner.run("FIFO", trace, 20)
    first = trace._interned
    assert first is not None
    runner.run("LRU", trace, 60)
    BatchRunner().run("SIEVE", trace, 20)   # fresh runner, same cache
    assert trace._interned is first


def test_plain_list_interned_once_per_runner():
    keys = [1, 2, 3, 1, 2, 4] * 200
    runner = BatchRunner()
    runner.run("FIFO", keys, 3)
    first = runner._interned
    assert first is not None
    runner.run("LRU", keys, 3)
    assert runner._interned is first


@pytest.mark.filterwarnings("ignore::DeprecationWarning")
def test_warmup_passthrough(trace):
    runner = BatchRunner()
    outcome = runner.run("LRU", trace, 64, warmup=500)
    reference = simulate(make("LRU", 64), trace, warmup=500)
    assert (outcome.hits, outcome.misses) == (
        reference.hits, reference.misses)
    assert outcome.requests == trace.num_requests - 500


# ----------------------------------------------------------------------
# Integration: the callers routed through the fast path
# ----------------------------------------------------------------------

@pytest.mark.filterwarnings("ignore::DeprecationWarning")
def test_run_sweep_fast_matches_reference(trace):
    policies = ["FIFO", "LRU", "LIRS"]
    fractions = (0.01, 0.1)
    fast = run_sweep(policies, [trace], size_fractions=fractions)
    slow = run_sweep(policies, [trace], size_fractions=fractions,
                     fast=False)
    assert fast.records == slow.records
    assert fast.ok and slow.ok
    # FIFO and LRU at both sizes ride the fast path; LIRS cannot.
    assert fast.accelerated == 4
    assert slow.accelerated == 0
    assert fast.resumed == 0


@pytest.mark.filterwarnings("ignore::DeprecationWarning")
def test_simulate_fast_flag_matches_reference(trace):
    for name in ("FIFO", "2-bit-CLOCK", "QD-LP-FIFO"):
        fast = simulate(make(name, 64), trace, fast=True)
        slow = simulate(make(name, 64), trace)
        assert (fast.hits, fast.misses) == (slow.hits, slow.misses)


@pytest.mark.filterwarnings("ignore::DeprecationWarning")
def test_simulate_fast_falls_back_for_unsupported(trace):
    fast = simulate(make("LIRS", 64), trace, fast=True)
    slow = simulate(make("LIRS", 64), trace)
    assert (fast.hits, fast.misses) == (slow.hits, slow.misses)


@pytest.mark.filterwarnings("ignore::DeprecationWarning")
def test_simulate_fast_leaves_iterators_to_reference_path():
    keys = [1, 2, 1, 3, 1, 2] * 50
    result = simulate(make("FIFO", 2), iter(keys), fast=True)
    assert result.requests == len(keys)
    reference = simulate(make("FIFO", 2), keys)
    assert (result.hits, result.misses) == (
        reference.hits, reference.misses)


def test_simulated_mrc_matches_reference():
    trace = from_keys([k % 37 for k in range(1500)], name="mrc")
    sizes = [2, 5, 11, 23]
    curve = simulated_mrc(lambda c: make("LRU", c), trace, sizes)
    for size, ratio in zip(curve.sizes, curve.miss_ratios):
        reference = simulate(make("LRU", size), trace)
        assert ratio == reference.miss_ratio
