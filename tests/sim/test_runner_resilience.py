"""Fault-tolerance tests for the sweep runner.

These prove the acceptance criteria of the resilient execution layer:
a worker crash or timeout fails one cell instead of the matrix, and an
interrupted checkpointed sweep resumes to byte-identical results.  All
faults come from the deterministic FaultPlan -- no sleeps, no races.
"""

from dataclasses import asdict

import pytest

from repro.exec import (
    CRASH,
    NO_RETRY,
    FaultPlan,
    Journal,
    RetryPolicy,
    SweepInterrupted,
)
from repro.sim.runner import (
    SMALL_FRACTION,
    cell_key,
    run_matrix,
    run_sweep,
)
from repro.traces.corpus import build_corpus

POLICIES = ["FIFO", "LRU"]


@pytest.fixture(scope="module")
def tiny_corpus():
    return build_corpus(scale=0.05, traces_per_family=1,
                        families=["msr", "cdn"])


@pytest.fixture(scope="module")
def baseline(tiny_corpus):
    """The uninterrupted sweep every degraded/resumed run must match."""
    return run_matrix(POLICIES, tiny_corpus)


class TestGracefulDegradation:
    def test_injected_error_fails_one_cell_only(self, tiny_corpus, baseline):
        bad = cell_key(tiny_corpus[0].name, "LRU", SMALL_FRACTION)
        result = run_sweep(POLICIES, tiny_corpus,
                           fault_plan=FaultPlan().fail(bad),
                           retry=NO_RETRY)
        assert len(result.records) == len(baseline) - 1
        assert result.failures.keys() == [bad]
        assert result.records == [r for r in baseline
                                  if cell_key(r.trace, r.policy,
                                              r.size_fraction) != bad]

    def test_worker_crash_does_not_abort_matrix(self, tiny_corpus, baseline):
        """A real worker-process death (os._exit) marks that cell
        failed and every other cell's record is still returned."""
        bad = cell_key(tiny_corpus[1].name, "FIFO", SMALL_FRACTION)
        result = run_sweep(POLICIES, tiny_corpus, workers=2,
                           fault_plan=FaultPlan().fail(bad, kind=CRASH),
                           retry=NO_RETRY)
        assert len(result.records) == len(baseline) - 1
        failure = result.failures.failures[0]
        assert failure.key == bad
        assert failure.kind == "crash"

    def test_per_task_timeout_fails_one_cell_only(self, tiny_corpus,
                                                  baseline):
        bad = cell_key(tiny_corpus[0].name, "FIFO", SMALL_FRACTION)
        result = run_sweep(
            POLICIES, tiny_corpus,
            fault_plan=FaultPlan().delay(bad, 60.0),
            retry=RetryPolicy(max_attempts=2, base_delay=0.0, timeout=1.0))
        assert len(result.records) == len(baseline) - 1
        assert result.failures.failures[0].kind == "timeout"

    def test_transient_crash_recovers_via_retry(self, tiny_corpus, baseline):
        bad = cell_key(tiny_corpus[0].name, "LRU", SMALL_FRACTION)
        result = run_sweep(
            POLICIES, tiny_corpus, workers=2,
            fault_plan=FaultPlan().fail(bad, attempt=1, kind=CRASH),
            retry=RetryPolicy(max_attempts=2, base_delay=0.0))
        assert result.ok
        assert result.records == baseline


class TestCheckpointResume:
    def test_kill_then_resume_equivalence(self, tiny_corpus, baseline,
                                          tmp_path):
        """The headline guarantee: interrupt a checkpointed sweep
        mid-run, resume from its journal, and the records are identical
        to an uninterrupted run's."""
        plan = FaultPlan().abort_after_completions(3)
        with pytest.raises(SweepInterrupted):
            run_sweep(POLICIES, tiny_corpus, run_id="killed",
                      runs_dir=tmp_path, fault_plan=plan, retry=NO_RETRY)

        resumed = run_sweep(POLICIES, tiny_corpus, resume="killed",
                            runs_dir=tmp_path, retry=NO_RETRY)
        assert resumed.resumed == 3
        assert resumed.records == baseline
        assert ([asdict(r) for r in resumed.records]
                == [asdict(r) for r in baseline])

    def test_resume_skips_finished_cells(self, tiny_corpus, tmp_path):
        plan = FaultPlan().abort_after_completions(3)
        with pytest.raises(SweepInterrupted):
            run_sweep(POLICIES, tiny_corpus, run_id="killed",
                      runs_dir=tmp_path, fault_plan=plan, retry=NO_RETRY)
        run_sweep(POLICIES, tiny_corpus, resume="killed",
                  runs_dir=tmp_path, retry=NO_RETRY)
        # journal holds meta + 3 pre-kill results + the remaining cells,
        # with no cell journalled twice
        state = Journal.open("killed", root=tmp_path).load()
        lines = (tmp_path / "killed" / "journal.jsonl").read_text()
        total_cells = 2 * len(tiny_corpus) * len(POLICIES)
        assert len(state.results) == total_cells
        assert lines.count('"kind": "result"') == total_cells

    def test_completed_run_resumes_to_noop(self, tiny_corpus, baseline,
                                           tmp_path):
        run_sweep(POLICIES, tiny_corpus, run_id="done", runs_dir=tmp_path,
                  retry=NO_RETRY)
        again = run_sweep(POLICIES, tiny_corpus, resume="done",
                          runs_dir=tmp_path, retry=NO_RETRY)
        assert again.resumed == len(baseline)
        assert again.records == baseline

    def test_resume_different_sweep_rejected(self, tiny_corpus, tmp_path):
        run_sweep(POLICIES, tiny_corpus, run_id="r", runs_dir=tmp_path,
                  retry=NO_RETRY)
        with pytest.raises(ValueError, match="different sweep"):
            run_sweep(["FIFO"], tiny_corpus, resume="r", runs_dir=tmp_path,
                      retry=NO_RETRY)

    def test_resume_unknown_run_rejected(self, tiny_corpus, tmp_path):
        with pytest.raises(FileNotFoundError):
            run_sweep(POLICIES, tiny_corpus, resume="ghost",
                      runs_dir=tmp_path)

    def test_run_id_reported(self, tiny_corpus, tmp_path):
        result = run_sweep(POLICIES, tiny_corpus, checkpoint=True,
                           runs_dir=tmp_path, retry=NO_RETRY)
        assert result.run_id
        assert (tmp_path / result.run_id / "journal.jsonl").exists()

    def test_unjournalled_sweep_writes_nothing(self, tiny_corpus, tmp_path,
                                               monkeypatch):
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path))
        result = run_sweep(POLICIES, tiny_corpus, retry=NO_RETRY)
        assert result.run_id is None
        assert list(tmp_path.iterdir()) == []
