"""Unit tests for the resource-consumption profiler."""

from repro.policies.fifo import FIFO
from repro.policies.lru import LRU
from repro.core.clock import FIFOReinsertion
from repro.sim.profiler import profile


class TestProfile:
    def test_records_complete_lifetimes(self):
        # FIFO(2): a admitted at t0, evicted at t2 when c arrives.
        result = profile(FIFO(2), ["a", "b", "c"])
        events = {e.key: e for e in result.events}
        assert events["a"].admit_time == 0
        assert events["a"].evict_time == 2
        assert events["a"].residency == 2

    def test_still_resident_objects_closed_at_end(self):
        result = profile(FIFO(10), ["a", "b"])
        events = {e.key: e for e in result.events}
        assert events["a"].evict_time == 2   # trace length
        assert events["b"].evict_time == 2

    def test_hits_counted_per_tenure(self):
        result = profile(FIFO(10), ["a", "a", "a", "b"])
        events = {e.key: e for e in result.events}
        assert events["a"].hits == 2
        assert events["b"].hits == 0

    def test_multiple_tenures_accumulate(self):
        # a evicted then readmitted: two events, summed residency.
        result = profile(FIFO(1), ["a", "b", "a"])
        a_events = [e for e in result.events if e.key == "a"]
        assert len(a_events) == 2
        totals = result.residency_by_key()
        assert totals["a"] == sum(e.residency for e in a_events)

    def test_miss_ratio_matches_policy(self, small_trace):
        result = profile(LRU(30), small_trace)
        assert result.requests == small_trace.num_requests
        assert 0.0 < result.miss_ratio < 1.0

    def test_zero_hit_ages(self):
        result = profile(FIFO(2), ["a", "a", "b", "c"])
        # b and c never hit; a hit once.
        ages = result.zero_hit_eviction_ages()
        assert len(ages) == 2

    def test_mean_zero_hit_age_zero_when_none(self):
        # 0.0 rather than NaN: the value flows into strict-JSON
        # snapshot rows where NaN would poison export and diff.
        result = profile(FIFO(2), ["a", "a"])
        assert result.mean_zero_hit_age() == 0.0

    def test_fig2e_demotion_speed(self, rng):
        """The Fig. 2(e) claim: FIFO-Reinsertion demotes never-hit
        objects faster than LRU."""
        from repro.traces.synthetic import one_hit_wonder_trace
        keys = one_hit_wonder_trace(1000, 20000, 0.9, 0.3, rng)
        lru_age = profile(LRU(300), keys).mean_zero_hit_age()
        clock_age = profile(FIFOReinsertion(300), keys).mean_zero_hit_age()
        assert clock_age < lru_age

    def test_total_residency_bounded_by_capacity_times_time(self,
                                                            small_trace):
        """Space-time conservation: total residency cannot exceed
        capacity x trace length."""
        capacity = 25
        result = profile(LRU(capacity), small_trace)
        total = sum(result.residency_by_key().values())
        assert total <= capacity * small_trace.num_requests


class TestSnapshotRows:
    """Lifetime results exported through the repro.obs wire format."""

    def build_rows(self, labels=None):
        result = profile(FIFO(2), ["a", "a", "b", "c", "d"])
        return result, result.snapshot_rows(labels)

    def test_counters_match_profile(self):
        result, rows = self.build_rows()
        values = {(row["name"],
                   row["labels"].get("tenure")): row.get("value")
                  for row in rows if row["type"] == "counter"}
        assert values[("profile_requests_total", None)] == result.requests
        assert values[("profile_misses_total", None)] == result.misses
        tenures = {"hit": 0, "zero-hit": 0}
        for event in result.events:
            tenures["zero-hit" if event.hits == 0 else "hit"] += 1
        assert values[("profile_tenures_total", "hit")] == tenures["hit"]
        assert values[("profile_tenures_total", "zero-hit")] == \
            tenures["zero-hit"]

    def test_space_time_aggregates_residency(self):
        result, rows = self.build_rows()
        total = sum(row["value"] for row in rows
                    if row["name"] == "profile_space_time_requests_total")
        assert total == sum(event.residency for event in result.events)

    def test_rows_carry_policy_and_extra_labels(self):
        _result, rows = self.build_rows(labels={"figure": "2e"})
        assert rows
        for row in rows:
            assert row["labels"]["policy"] == "FIFO"
            assert row["labels"]["figure"] == "2e"

    def test_rows_flow_through_shared_exporters(self):
        import json

        from repro.obs import (parse_prometheus_values,
                               render_metrics_table, to_jsonl,
                               to_prometheus)

        result, rows = self.build_rows()
        for line in to_jsonl(rows).strip().splitlines():
            json.loads(line)
        prom = parse_prometheus_values(to_prometheus(rows))
        assert prom['profile_requests_total{policy="FIFO"}'] == \
            result.requests
        table = render_metrics_table(rows)
        assert "profile_eviction_age_requests" in table

    def test_age_histogram_counts_every_tenure(self):
        result, rows = self.build_rows()
        observed = sum(row["count"] for row in rows
                       if row["name"] == "profile_eviction_age_requests")
        assert observed == len(result.events)
