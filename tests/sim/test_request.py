"""Unit tests for the request model."""

import pytest

from repro.sim.request import Request


class TestRequest:
    def test_defaults(self):
        req = Request(key=5)
        assert req.key == 5
        assert req.time == 0
        assert req.size == 1

    def test_frozen(self):
        req = Request(key=1)
        with pytest.raises(AttributeError):
            req.key = 2

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            Request(key=1, size=0)

    def test_hashable_key_types(self):
        assert Request(key="object/name").key == "object/name"
        assert Request(key=(1, 2)).key == (1, 2)
