"""Unit tests for the sweep runner."""

import pytest

from repro.sim.runner import (
    LARGE_FRACTION,
    SMALL_FRACTION,
    index_by,
    miss_ratio_table,
    run_matrix,
    run_one,
)
from repro.traces.corpus import build_corpus


@pytest.fixture(scope="module")
def tiny_corpus():
    return build_corpus(scale=0.05, traces_per_family=1,
                        families=["msr", "cdn"])


class TestRunOne:
    def test_record_fields(self, tiny_corpus):
        record = run_one("LRU", tiny_corpus[0], LARGE_FRACTION)
        assert record.policy == "LRU"
        assert record.trace == tiny_corpus[0].name
        assert record.family == "msr"
        assert record.group == "block"
        assert record.requests == tiny_corpus[0].num_requests
        assert 0.0 < record.miss_ratio <= 1.0

    def test_capacity_resolution(self, tiny_corpus):
        trace = tiny_corpus[0]
        record = run_one("LRU", trace, LARGE_FRACTION)
        assert record.capacity == max(10, round(trace.num_unique * 0.1))

    def test_min_capacity_respected(self, tiny_corpus):
        record = run_one("LRU", tiny_corpus[0], SMALL_FRACTION,
                         min_capacity=64)
        assert record.capacity >= 64

    def test_size_label(self, tiny_corpus):
        small = run_one("FIFO", tiny_corpus[0], SMALL_FRACTION)
        large = run_one("FIFO", tiny_corpus[0], LARGE_FRACTION)
        assert small.size_label == "small"
        assert large.size_label == "large"


class TestRunMatrix:
    def test_full_matrix_shape(self, tiny_corpus):
        records = run_matrix(["FIFO", "LRU"], tiny_corpus,
                             size_fractions=(SMALL_FRACTION, LARGE_FRACTION))
        assert len(records) == 2 * len(tiny_corpus) * 2

    def test_unknown_policy_rejected(self, tiny_corpus):
        with pytest.raises(KeyError):
            run_matrix(["FIFO", "NoSuchPolicy"], tiny_corpus)

    def test_parallel_equals_serial(self, tiny_corpus):
        serial = run_matrix(["FIFO", "LRU"], tiny_corpus, workers=1)
        parallel = run_matrix(["FIFO", "LRU"], tiny_corpus, workers=2)
        assert serial == parallel

    def test_offline_policy_in_matrix(self, tiny_corpus):
        records = run_matrix(["Belady", "LRU"], tiny_corpus,
                             size_fractions=(LARGE_FRACTION,))
        by_policy = {r.policy: r for r in records if r.trace == tiny_corpus[0].name}
        assert by_policy["Belady"].misses <= by_policy["LRU"].misses


class TestHelpers:
    def test_index_by(self, tiny_corpus):
        records = run_matrix(["FIFO"], tiny_corpus,
                             size_fractions=(LARGE_FRACTION,))
        idx = index_by(records)
        key = ("FIFO", tiny_corpus[0].name, LARGE_FRACTION)
        assert key in idx

    def test_miss_ratio_table(self, tiny_corpus):
        records = run_matrix(["FIFO", "LRU"], tiny_corpus,
                             size_fractions=(LARGE_FRACTION,))
        table = miss_ratio_table(records)
        assert set(table) == {"FIFO", "LRU"}
        assert len(table["FIFO"]) == len(tiny_corpus)
