"""SimOptions consolidation: equivalence, deprecation shims, rejection."""

import warnings

import pytest

from repro.obs import MetricsRegistry
from repro.policies.registry import make
from repro.sim.options import SimOptions, _reset_deprecation_warnings
from repro.sim.runner import run_sweep
from repro.sim.simulator import simulate

# The whole module exercises the legacy-kwarg shims on purpose; the
# suite-wide error::DeprecationWarning gate must not trip here.
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


@pytest.fixture(autouse=True)
def fresh_warning_state():
    """Each test observes the warn-once state from a clean slate."""
    _reset_deprecation_warnings()
    yield
    _reset_deprecation_warnings()


class TestSimOptionsValidation:
    def test_defaults(self):
        opts = SimOptions()
        assert opts.warmup == 0
        assert opts.fast is None
        assert opts.listeners == ()
        assert opts.min_capacity == 10
        assert opts.metrics is None

    def test_negative_warmup_rejected(self):
        with pytest.raises(ValueError):
            SimOptions(warmup=-1)

    def test_min_capacity_floor(self):
        with pytest.raises(ValueError):
            SimOptions(min_capacity=0)

    def test_listeners_coerced_to_tuple(self):
        opts = SimOptions(listeners=[])
        assert opts.listeners == ()

    def test_resolved_fast(self):
        assert SimOptions().resolved_fast(True) is True
        assert SimOptions().resolved_fast(False) is False
        assert SimOptions(fast=False).resolved_fast(True) is False
        assert SimOptions(fast=True).resolved_fast(False) is True

    def test_metrics_excluded_from_equality(self):
        assert SimOptions(metrics=MetricsRegistry()) == SimOptions()


class TestSimulateShims:
    def test_options_and_legacy_kwargs_equivalent(self, small_trace):
        via_options = simulate(make("LRU", 50), small_trace,
                               SimOptions(warmup=500))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            via_legacy = simulate(make("LRU", 50), small_trace, warmup=500)
        assert via_legacy.hits == via_options.hits
        assert via_legacy.misses == via_options.misses

    def test_legacy_kwarg_warns_once_per_process(self, small_trace):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            simulate(make("FIFO", 50), small_trace, warmup=10)
            simulate(make("FIFO", 50), small_trace, warmup=10)
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert "warmup" in str(deprecations[0].message)
        assert "SimOptions" in str(deprecations[0].message)

    def test_legacy_positional_warmup_int(self, small_trace):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            legacy = simulate(make("LRU", 50), small_trace, 500)
        assert any(issubclass(w.category, DeprecationWarning)
                   for w in caught)
        modern = simulate(make("LRU", 50), small_trace,
                          SimOptions(warmup=500))
        assert legacy.hits == modern.hits

    def test_mixing_options_and_legacy_rejected(self, small_trace):
        with pytest.raises(ValueError, match="legacy keyword"):
            simulate(make("LRU", 50), small_trace, SimOptions(), warmup=5)

    def test_positional_int_plus_keyword_warmup_rejected(self, small_trace):
        with pytest.raises(TypeError):
            simulate(make("LRU", 50), small_trace, 500, warmup=5)


class TestRunSweepShims:
    def test_options_and_legacy_min_capacity_equivalent(self, small_trace):
        via_options = run_sweep(["FIFO"], [small_trace], [0.1],
                                SimOptions(min_capacity=20))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            via_legacy = run_sweep(["FIFO"], [small_trace], [0.1],
                                   min_capacity=20)
        modern = {(r.policy, r.trace): r.miss_ratio
                  for r in via_options.records}
        legacy = {(r.policy, r.trace): r.miss_ratio
                  for r in via_legacy.records}
        assert modern == legacy

    def test_legacy_positional_min_capacity_int(self, small_trace):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = run_sweep(["FIFO"], [small_trace], [0.1], 20)
        assert any(issubclass(w.category, DeprecationWarning)
                   for w in caught)
        assert len(result.records) == 1

    def test_run_sweep_rejects_warmup_and_listeners(self, small_trace):
        with pytest.raises(ValueError, match="warmup"):
            run_sweep(["FIFO"], [small_trace], [0.1],
                      SimOptions(warmup=100))

    def test_alias_names_canonicalized_in_records(self, small_trace):
        result = run_sweep(["clock2"], [small_trace], [0.1])
        assert {r.policy for r in result.records} == {"2-bit-CLOCK"}

    def test_mixing_options_and_legacy_rejected(self, small_trace):
        with pytest.raises(ValueError, match="legacy keyword"):
            run_sweep(["FIFO"], [small_trace], [0.1], SimOptions(),
                      min_capacity=20)
