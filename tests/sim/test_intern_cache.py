"""On-disk intern cache: round trips, corruption, and wiring.

The cache promises that a hit is a correctness proof (entries are
content-addressed over the raw key bytes), that corrupt entries behave
as misses and are overwritten, and that ``intern_trace`` uses it
transparently -- these tests pin each of those down with a tmp_path
root so nothing touches the real ``runs/`` tree.
"""

import numpy as np
import pytest

from repro.sim.fast.intern import intern_trace
from repro.sim.fast.interncache import InternCache, trace_fingerprint
from repro.traces.trace import Trace


def _trace(keys, name="t"):
    return Trace(name=name, keys=np.asarray(keys, dtype=np.int64),
                 family="synthetic")


def test_round_trip(tmp_path):
    cache = InternCache(root=tmp_path)
    keys = np.array([5, 9, 5, 2, 9, 9], dtype=np.int64)
    assert cache.load(keys) is None
    interned = intern_trace(keys)
    path = cache.store(keys, interned)
    assert path.exists() and path.parent == tmp_path

    loaded = cache.load(keys)
    assert loaded is not None
    assert np.array_equal(loaded.ids, interned.ids)
    assert np.array_equal(loaded.uniques, interned.uniques)
    assert loaded.num_unique == interned.num_unique
    assert cache.stats == {"hits": 1, "misses": 1, "writes": 1,
                           "invalid": 0}


def test_fingerprint_distinguishes_traces():
    a = np.array([1, 2, 3], dtype=np.int64)
    b = np.array([1, 2, 4], dtype=np.int64)
    c = np.array([1, 2, 3, 3], dtype=np.int64)
    prints = {trace_fingerprint(x) for x in (a, b, c)}
    assert len(prints) == 3
    assert trace_fingerprint(a) == trace_fingerprint(a.copy())
    # The empty trace is well-defined and distinct.
    empty = np.array([], dtype=np.int64)
    assert trace_fingerprint(empty) not in prints


def test_corrupt_entry_is_invalid_miss_then_overwritten(tmp_path):
    cache = InternCache(root=tmp_path)
    keys = np.array([7, 7, 8], dtype=np.int64)
    interned = intern_trace(keys)
    path = cache.store(keys, interned)
    path.write_bytes(b"not an npz archive")

    assert cache.load(keys) is None
    assert cache.stats["invalid"] == 1

    cache.store(keys, interned)
    restored = cache.load(keys)
    assert restored is not None
    assert np.array_equal(restored.ids, interned.ids)


def test_shape_mismatch_rejected(tmp_path):
    """An entry whose ids length disagrees with the trace is a miss
    (e.g. a fingerprint collision would be caught, not trusted)."""
    cache = InternCache(root=tmp_path)
    keys = np.array([1, 2, 1], dtype=np.int64)
    interned = intern_trace(keys)
    path = cache.store(keys, interned)
    np.savez(path, ids=interned.ids[:-1], uniques=interned.uniques)
    assert cache.load(keys) is None
    assert cache.stats["invalid"] == 1


def test_store_leaves_no_temp_files(tmp_path):
    cache = InternCache(root=tmp_path)
    keys = np.array([3, 1, 4, 1, 5], dtype=np.int64)
    cache.store(keys, intern_trace(keys))
    cache.store(keys, intern_trace(keys))   # idempotent overwrite
    leftovers = [p for p in tmp_path.iterdir() if p.suffix != ".npz"]
    assert leftovers == []
    assert len(list(tmp_path.glob("*.npz"))) == 1


def test_intern_trace_uses_cache(tmp_path):
    cache = InternCache(root=tmp_path)
    trace = _trace([4, 4, 2, 9, 2])
    first = intern_trace(trace.keys, cache=cache)
    assert cache.stats["writes"] == 1
    # A different array object with the same content hits the disk
    # entry instead of re-interning.
    again = intern_trace(trace.keys.copy(), cache=cache)
    assert cache.stats["hits"] == 1
    assert np.array_equal(first.ids, again.ids)
    assert np.array_equal(first.uniques, again.uniques)


def test_trace_memo_wins_over_disk(tmp_path):
    """The in-memory per-Trace memo is checked before the disk cache."""
    cache = InternCache(root=tmp_path)
    trace = _trace([1, 2, 1])
    first = intern_trace(trace, cache=cache)
    second = intern_trace(trace, cache=cache)
    assert second is first
    assert cache.stats["hits"] == 0   # memo short-circuited the load


def test_default_root_honours_runs_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "runs"))
    cache = InternCache()
    assert cache.root == tmp_path / "runs" / "intern-cache"


@pytest.mark.parametrize("n", [0, 1, 100])
def test_round_trip_sizes(tmp_path, n):
    cache = InternCache(root=tmp_path)
    rng = np.random.default_rng(n)
    keys = rng.integers(0, 17, n).astype(np.int64)
    interned = intern_trace(keys)
    cache.store(keys, interned)
    loaded = cache.load(keys)
    assert loaded is not None
    assert np.array_equal(loaded.ids, interned.ids)
    assert loaded.num_unique == interned.num_unique
