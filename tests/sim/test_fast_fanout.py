"""Parallel fast-engine fan-out: worker processes, journal, cache.

``run_sweep`` routes fast-eligible cells through the process-isolating
executor when ``workers > 1``; these tests pin the contract down:
records (and their order) are identical to the serial path, the
``accelerated`` count still reflects every fast cell, checkpointed
fan-out runs resume from the journal, non-fast policies fall through
to the reference phase, and the workers share interning work through
the on-disk cache.
"""

import numpy as np
import pytest

from repro.sim.fast.interncache import InternCache
from repro.sim.options import SimOptions
from repro.sim.runner import run_sweep
from repro.traces.trace import Trace

POLICIES = ["FIFO", "LRU", "SIEVE", "ARC", "LHD"]


@pytest.fixture(scope="module")
def traces():
    rng = np.random.default_rng(31)
    out = []
    for i in range(3):
        keys = (rng.zipf(1.3, 4000) % 500).astype(np.int64)
        out.append(Trace(name=f"fan{i}", keys=keys, family="synthetic"))
    return out


def _tuples(records):
    return [(r.policy, r.trace, r.size_label, r.capacity, r.requests,
             r.misses) for r in records]


def test_parallel_matches_serial(traces, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path))
    opts = SimOptions(fast=True, intern_cache=InternCache(root=tmp_path))
    serial = run_sweep(POLICIES, traces, options=opts, workers=1)
    parallel = run_sweep(POLICIES, traces, options=opts, workers=2)
    assert _tuples(serial.records) == _tuples(parallel.records)
    assert parallel.accelerated == len(POLICIES) * len(traces) * 2
    assert parallel.ok


def test_fanout_shares_intern_cache(tmp_path):
    # Fresh traces: an already-interned Trace carries its in-memory
    # memo into the workers (it pickles with the payload), which would
    # legitimately short-circuit the disk cache.
    rng = np.random.default_rng(77)
    fresh = [Trace(name=f"cache{i}",
                   keys=(rng.zipf(1.3, 3000) % 400).astype(np.int64),
                   family="synthetic")
             for i in range(3)]
    cache = InternCache(root=tmp_path / "cache")
    opts = SimOptions(fast=True, intern_cache=cache)
    run_sweep(POLICIES[:2], fresh, options=opts, workers=2)
    # One entry per trace, written by whichever worker got there first.
    assert len(list((tmp_path / "cache").glob("*.npz"))) == len(fresh)


def test_non_fast_policy_falls_through(traces, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path))
    result = run_sweep(["FIFO", "LIRS"], traces[:1],
                       options=SimOptions(fast=True), workers=2)
    assert result.ok
    by_policy = {r.policy for r in result.records}
    assert by_policy == {"FIFO", "LIRS"}
    # Only the FIFO cells (two sizes) ran on the fast path.
    assert result.accelerated == 2


def test_checkpointed_fanout_resumes(traces, tmp_path):
    opts = SimOptions(fast=True)
    first = run_sweep(POLICIES[:3], traces, options=opts, workers=2,
                      checkpoint=True, runs_dir=tmp_path)
    assert first.run_id is not None
    assert first.accelerated == 3 * len(traces) * 2

    resumed = run_sweep(POLICIES[:3], traces, options=opts, workers=2,
                        resume=first.run_id, runs_dir=tmp_path)
    assert _tuples(resumed.records) == _tuples(first.records)
    # Everything came back from the journal: nothing re-ran.
    assert resumed.resumed == len(first.records)
    assert resumed.accelerated == 0
