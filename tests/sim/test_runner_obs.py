"""run_sweep temporal observability: spans, trace export, timeseries."""

import json

import pytest

from repro.obs import (
    MetricsRegistry,
    SpanTracer,
    TimeSeriesRecorder,
    series_from_rows,
    validate_chrome_trace,
)
from repro.exec.journal import Journal
from repro.sim.options import SimOptions
from repro.sim.runner import run_sweep
from repro.traces.synthetic import zipf_trace
from repro.traces.trace import Trace


@pytest.fixture
def trace(rng):
    keys = zipf_trace(400, 4000, 1.0, rng)
    return Trace(name="obs-zipf", keys=keys, family="test", group="block")


def instrumented_sweep(trace, tmp_path, policies=("LRU", "FIFO", "Belady"),
                       run_id="obs-run"):
    registry = MetricsRegistry()
    opts = SimOptions(
        metrics=registry,
        timeseries=TimeSeriesRecorder(registry, cadence=500),
        tracer=SpanTracer(registry),
    )
    result = run_sweep(list(policies), [trace], size_fractions=(0.1,),
                       options=opts, checkpoint=True, run_id=run_id,
                       runs_dir=tmp_path)
    return result, opts


class TestSpans:
    def test_sweep_cell_attempt_nesting(self, trace, tmp_path):
        result, opts = instrumented_sweep(trace, tmp_path)
        assert result.ok
        tracer = opts.tracer

        [sweep] = tracer.spans(cat="sweep")
        assert sweep.parent_id is None
        cells = tracer.spans(cat="cell")
        assert len(cells) == 3              # one per policy at one size
        assert all(c.parent_id == sweep.span_id for c in cells)

        # LRU and FIFO ride the fast path (their spans carry label
        # args); Belady goes through the executor (its span carries the
        # task key) and therefore owns attempt spans.
        paths = {c.args.get("policy", c.args.get("key", [None, None])[1]):
                 c.args["path"] for c in cells}
        assert paths["LRU"] == paths["FIFO"] == "fast"
        assert paths["Belady"] == "exec"
        attempts = tracer.spans(cat="attempt")
        assert attempts
        belady_cell = next(c for c in cells
                           if c.args.get("key", [None, None])[1] == "Belady")
        assert all(a.parent_id == belady_cell.span_id for a in attempts)

    def test_chrome_trace_written_and_schema_valid(self, trace, tmp_path):
        instrumented_sweep(trace, tmp_path)
        trace_path = tmp_path / "obs-run" / "trace.json"
        assert trace_path.is_file()
        exported = json.loads(trace_path.read_text())
        validate_chrome_trace(exported)
        names = {e["name"] for e in exported["traceEvents"]}
        assert {"sweep", "cell", "attempt"} <= names

    def test_retries_surface_as_extra_attempt_spans(self, trace, tmp_path):
        from repro.exec import FaultPlan, RetryPolicy
        from repro.sim.runner import cell_key

        opts = SimOptions(tracer=SpanTracer())
        bad = cell_key("obs-zipf", "LRU", 0.1)
        plan = FaultPlan().fail(bad, attempt=1)
        result = run_sweep(["LRU"], [trace], size_fractions=(0.1,),
                          options=opts, fault_plan=plan,
                          retry=RetryPolicy(max_attempts=3,
                                            base_delay=0.0))
        assert result.ok
        attempts = opts.tracer.spans(cat="attempt")
        assert len(attempts) == 2           # one faulted, one clean
        assert attempts[0].args.get("error")
        assert "error" not in attempts[1].args


class TestTimeseries:
    def test_fast_and_exec_cells_feed_windowed_series(self, trace, tmp_path):
        result, opts = instrumented_sweep(trace, tmp_path)
        recorder = opts.timeseries
        key = "sim_misses_total{policy=LRU,size=0.1,trace=obs-zipf}"
        assert key in recorder.series_names()
        requests = recorder.series(
            "sim_requests_total{policy=LRU,size=0.1,trace=obs-zipf}")
        assert sum(v for _, _, v in requests) == trace.num_requests

    def test_journal_carries_timeseries_line(self, trace, tmp_path):
        instrumented_sweep(trace, tmp_path)
        state = Journal(tmp_path / "obs-run").load()
        assert state.timeseries
        grouped = series_from_rows(state.timeseries)
        assert any(name.startswith("sim_misses_total") for name in grouped)

    def test_windowed_miss_ratio_sums_to_run_totals(self, trace, tmp_path):
        result, opts = instrumented_sweep(trace, tmp_path,
                                          policies=("LRU",))
        [record] = result.records
        recorder = opts.timeseries
        labels = "{policy=LRU,size=0.1,trace=obs-zipf}"
        misses = sum(v for _, _, v in
                     recorder.series(f"sim_misses_total{labels}"))
        assert misses == record.misses


class TestUninstrumented:
    def test_defaults_record_nothing(self, trace):
        opts = SimOptions()
        result = run_sweep(["LRU"], [trace], size_fractions=(0.1,),
                          options=opts)
        assert result.ok
        assert opts.timeseries is None and opts.tracer is None
