"""Unit tests for the trace-driven simulator."""

import numpy as np
import pytest

from repro.policies.belady import Belady
from repro.policies.fifo import FIFO
from repro.policies.lru import LRU
from repro.sim.simulator import SimResult, miss_ratio, simulate
from repro.traces.trace import from_keys


class TestSimResult:
    def test_ratios(self):
        result = SimResult(policy="x", requests=10, hits=4, misses=6)
        assert result.miss_ratio == pytest.approx(0.6)
        assert result.hit_ratio == pytest.approx(0.4)

    def test_zero_requests(self):
        result = SimResult(policy="x", requests=0, hits=0, misses=0)
        assert result.miss_ratio == 0.0
        assert result.hit_ratio == 0.0


class TestSimulate:
    def test_accepts_lists_arrays_and_traces(self):
        keys = [1, 2, 1, 3, 1]
        expected = simulate(LRU(2), keys)
        as_array = simulate(LRU(2), np.asarray(keys))
        as_trace = simulate(LRU(2), from_keys(keys))
        as_iter = simulate(LRU(2), iter(keys))
        assert expected == as_array == as_trace == as_iter

    def test_counts(self):
        result = simulate(LRU(2), [1, 2, 1, 3, 1])
        assert result.requests == 5
        assert result.hits == 2
        assert result.misses == 3
        assert result.policy == "LRU"

    def test_offline_policy_prepared_automatically(self):
        result = simulate(Belady(2), [1, 2, 3, 1, 2, 1])
        assert result.requests == 6
        assert result.misses >= 3  # at least compulsory misses

    @pytest.mark.filterwarnings("ignore::DeprecationWarning")
    def test_warmup_excluded_from_stats(self):
        keys = [1, 2, 3] + [1, 2, 3] * 10
        warm = simulate(LRU(3), keys, warmup=3)
        assert warm.misses == 0
        assert warm.requests == len(keys) - 3

    @pytest.mark.filterwarnings("ignore::DeprecationWarning")
    def test_warmup_validation(self):
        with pytest.raises(ValueError):
            simulate(LRU(2), [1, 2], warmup=-1)
        with pytest.raises(ValueError):
            simulate(LRU(2), [1, 2], warmup=5)

    @pytest.mark.filterwarnings("ignore::DeprecationWarning")
    def test_listeners_attached_and_detached(self):
        from tests.core.test_base import RecordingListener
        listener = RecordingListener()
        policy = FIFO(2)
        simulate(policy, [1, 2, 3], listeners=[listener])
        assert listener.admits == [1, 2, 3]
        assert policy._listeners == []

    def test_miss_ratio_helper(self):
        assert miss_ratio(LRU(2), [1, 1, 1, 1]) == pytest.approx(0.25)

    def test_fifo_better_throughput_story_consistent(self, small_trace):
        """Simulating the same trace twice gives identical results."""
        first = simulate(FIFO(30), small_trace)
        second = simulate(FIFO(30), small_trace)
        assert first == second
