"""Span integrity when fast cells fan out across worker processes.

With ``workers > 1`` the fast phase runs in subprocesses while the
parent's :class:`SpanTracer` records the enclosing ``fast-fanout``
span.  These tests pin down that the exported ``trace.json`` stays a
valid Chrome trace with globally unique span ids -- i.e. the fan-out
never hands two spans the same id or corrupts the document.
"""

import json

import numpy as np
import pytest

from repro.obs import SpanTracer, validate_chrome_trace
from repro.sim.options import SimOptions
from repro.sim.runner import run_sweep
from repro.traces.trace import Trace


@pytest.fixture(scope="module")
def traces():
    rng = np.random.default_rng(29)
    out = []
    for index in range(3):
        keys = (rng.zipf(1.3, 4000) % 500).astype(np.int64)
        out.append(Trace(name=f"span{index}", keys=keys,
                         family="synthetic"))
    return out


def fanout_sweep(traces, tmp_path, workers):
    opts = SimOptions(fast=True, tracer=SpanTracer())
    result = run_sweep(["LRU", "FIFO", "SIEVE"], traces,
                       size_fractions=(0.1,), options=opts,
                       workers=workers, checkpoint=True,
                       run_id=f"fanout-w{workers}", runs_dir=tmp_path)
    assert result.ok
    return opts.tracer, tmp_path / f"fanout-w{workers}" / "trace.json"


class TestFanoutSpanIntegrity:
    def test_span_ids_unique_across_fanout(self, traces, tmp_path):
        tracer, _path = fanout_sweep(traces, tmp_path, workers=2)
        ids = [span.span_id for span in tracer.spans()]
        assert len(ids) == len(set(ids))
        # The fast phase collapses into one enclosing span that still
        # accounts for every fanned-out cell.
        (fanout,) = tracer.spans(cat="sweep")[-1:]
        assert fanout.name == "fast-fanout"
        assert fanout.args["cells"] == 9
        assert fanout.args["workers"] == 2

    def test_chrome_trace_schema_valid_after_fanout(self, traces,
                                                    tmp_path):
        _tracer, path = fanout_sweep(traces, tmp_path, workers=3)
        doc = json.loads(path.read_text())
        validate_chrome_trace(doc)    # raises on a malformed document
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        ids = [e["args"]["span_id"] for e in events]
        assert len(ids) == len(set(ids))
        assert all(e["dur"] >= 0 for e in events)
        assert any(e["name"] == "fast-fanout" for e in events)
