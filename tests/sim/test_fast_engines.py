"""Differential tests: every fast engine vs its reference policy.

The fast engines promise *bit-identical* behaviour, so these tests
compare the full per-request hit/miss mask, the final cache contents,
and the promotion count against the reference implementations -- not
just aggregate miss ratios -- across workload shapes chosen to stress
the chunked-optimism machinery: skewed Zipf (hot keys under the hand),
scans (bursty cold misses), and loops (adversarial for FIFO-family
hands, every key evicted before its next access at small capacities).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.policies.registry import REGISTRY
from repro.sim.fast.dispatch import (
    FAST_POLICY_NAMES,
    engine_for,
    has_fast_engine,
)
from repro.sim.fast.intern import intern_trace
from repro.sim.simulator import simulate

POLICIES = sorted(FAST_POLICY_NAMES)
CAPS = (1, 2, 10, 137, 1000)

_rng = np.random.default_rng(42)
_N = 12_000
TRACES = {
    "zipf": (_rng.zipf(1.2, _N) % 2000).astype(np.int64),
    "scan": np.concatenate([np.arange(500), np.arange(500),
                            np.arange(1500), np.arange(1500),
                            np.arange(900)]).astype(np.int64),
    "loop": np.tile(np.arange(300, dtype=np.int64), 24),
}


def _reference_mask(policy, raw) -> np.ndarray:
    return np.fromiter((policy.request(int(k)) for k in raw),
                       dtype=bool, count=len(raw))


def _reference_promotions(policy) -> int:
    promotions = getattr(policy, "promotion_count", None)
    if promotions is None:
        promotions = policy.stats.promotions
    return int(promotions)


def assert_bit_identical(pname: str, raw: np.ndarray, cap: int) -> None:
    """Full differential check of one (policy, trace, capacity) cell."""
    spec = REGISTRY[pname]
    if cap < spec.min_capacity:
        return
    interned = intern_trace(raw)
    ref = spec.factory(cap)
    engine = engine_for(spec.factory(cap), interned.num_unique)
    assert engine is not None, f"no fast engine for {pname}"

    ref_mask = _reference_mask(ref, raw)
    fast_mask = engine.replay(interned.ids)
    if not np.array_equal(ref_mask, fast_mask):
        index = int(np.nonzero(ref_mask != fast_mask)[0][0])
        pytest.fail(f"{pname} cap={cap}: first divergence at request "
                    f"{index}: fast={bool(fast_mask[index])} "
                    f"ref={bool(ref_mask[index])}")

    ref_contents = {k for k in range(interned.num_unique)
                    if int(interned.uniques[k]) in ref}
    assert engine.contents() == ref_contents, \
        f"{pname} cap={cap}: final cache contents differ"
    assert engine.promotions == _reference_promotions(ref), \
        f"{pname} cap={cap}: promotion counts differ"
    assert engine.hits + engine.misses == engine.requests == len(raw)


@pytest.mark.parametrize("tname", sorted(TRACES))
@pytest.mark.parametrize("pname", POLICIES)
def test_bit_identical_across_capacities(pname, tname):
    for cap in CAPS:
        assert_bit_identical(pname, TRACES[tname], cap)


def test_lru_chunk_boundary_eager_restamp():
    """Regression: two residents straddle a chunk boundary with the
    *older-stamped* one re-accessed inside the next chunk.  A lazy
    skip of the boundary victim (instead of an eager re-stamp at its
    true recency) makes the walk evict the wrong key a few requests
    later; the divergence only shows at small capacities with this
    exact interleaving."""
    a, x, b, c = 10, 11, 12, 13
    pad = np.arange(100, 100 + 4094, dtype=np.int64)
    chunk1 = np.concatenate([pad, [a, x]]).astype(np.int64)
    trace = np.concatenate(
        [chunk1, [a, b, c, a, b, x, a, c]]).astype(np.int64)
    for pname in POLICIES:
        for cap in (2, 3, 4):
            assert_bit_identical(pname, trace, cap)


@pytest.mark.parametrize("trial", range(6))
def test_randomized_small_cap_stress(trial):
    """Small caches + many chunk crossings: every request is near the
    eviction frontier, so the conflict-repair paths fire constantly."""
    rng = np.random.default_rng(100 + trial)
    n = int(rng.integers(4000, 8001))
    u = int(rng.integers(4, 300))
    style = trial % 3
    if style == 0:
        raw = rng.integers(0, u, n).astype(np.int64)
    elif style == 1:
        raw = (rng.zipf(1.3, n) % u).astype(np.int64)
    else:
        base = np.tile(np.arange(u, dtype=np.int64), n // u + 1)[:n]
        noise = rng.integers(0, u, n)
        raw = np.where(rng.random(n) < 0.3, noise, base).astype(np.int64)
    for pname in POLICIES:
        for cap in (1, 2, 5, 17, u // 2 + 1, u + 3):
            assert_bit_identical(pname, raw, cap)


@pytest.mark.parametrize("pname",
                         ["FIFO", "LRU", "2-bit-CLOCK", "S3-FIFO",
                          "ARC", "LHD", "QD-ARC", "QD-LHD"])
@pytest.mark.parametrize("warmup", [0, 1, 1000, _N])
def test_warmup_statistics_match_reference(pname, warmup):
    raw = TRACES["zipf"]
    reference = simulate(REGISTRY[pname].factory(137), raw.tolist(),
                         warmup=warmup)
    fast = simulate(REGISTRY[pname].factory(137), raw, warmup=warmup,
                    fast=True)
    assert (fast.hits, fast.misses) == (reference.hits, reference.misses)
    assert fast.requests == len(raw) - warmup


def test_fast_engines_are_single_use():
    interned = intern_trace(TRACES["loop"])
    engine = engine_for(REGISTRY["FIFO"].factory(10), interned.num_unique)
    engine.replay(interned.ids)
    with pytest.raises(RuntimeError, match="single-use"):
        engine.replay(interned.ids)


def test_dispatch_refuses_stale_policies():
    policy = REGISTRY["LRU"].factory(10)
    policy.request(1)
    assert engine_for(policy, 5) is None
    assert has_fast_engine("LRU")
    assert not has_fast_engine("LIRS")


@given(keys=st.lists(st.integers(min_value=0, max_value=30),
                     min_size=1, max_size=300),
       cap=st.integers(min_value=2, max_value=40))
@settings(max_examples=25, deadline=None)
def test_property_mask_and_counts(keys, cap):
    """hits + misses == requests, and the mask agrees with the
    reference, for arbitrary small traces."""
    raw = np.asarray(keys, dtype=np.int64)
    interned = intern_trace(raw)
    for pname in ("FIFO", "LRU", "SIEVE", "ARC", "LHD"):
        spec = REGISTRY[pname]
        if cap < spec.min_capacity:
            continue
        ref = spec.factory(cap)
        engine = engine_for(spec.factory(cap), interned.num_unique)
        mask = engine.replay(interned.ids)
        assert np.array_equal(mask, _reference_mask(ref, raw))
        assert engine.hits + engine.misses == engine.requests == len(keys)
        assert int(mask.sum()) == engine.hits
