"""The `repro trace` subcommand and loadgen's --trace-sample plumbing."""

import json

import pytest

from repro.cli import main
from repro.exec.clock import VirtualClock
from repro.obs import validate_chrome_trace
from repro.obs.reqtrace import RequestTracer, TailRules


@pytest.fixture
def trace_file(tmp_path):
    clock = VirtualClock()
    tracer = RequestTracer(sample=1.0, seed=5, clock=clock,
                           tail=TailRules(keep_fraction=1.0))
    outcomes = ("hit", "error", "dropped")
    for index, outcome in enumerate(outcomes):
        root = tracer.start("request", key=f"'k{index}'")
        child = root.child("service.get")
        clock.advance(0.01 * (index + 1))
        child.end(outcome=outcome)
        root.end(outcome=outcome)
    return tracer.write_jsonl(tmp_path / "reqtrace.jsonl"), tracer


class TestTraceList:
    def test_lists_kept_traces(self, trace_file, capsys):
        path, tracer = trace_file
        assert main(["trace", "list", str(path)]) == 0
        out = capsys.readouterr().out
        for trace in tracer.kept:
            assert trace.trace_id in out

    def test_outcome_filter(self, trace_file, capsys):
        path, _tracer = trace_file
        assert main(["trace", "list", str(path),
                     "--outcome", "dropped"]) == 0
        out = capsys.readouterr().out
        assert "dropped" in out
        assert "error" not in out

    def test_slowest_sorts_and_limits(self, trace_file, capsys):
        path, _tracer = trace_file
        assert main(["trace", "list", str(path), "--slowest", "1"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2                     # header + 1 trace
        assert "dropped" in lines[1]               # slowest: 0.03s

    def test_missing_file_is_usage_error(self, tmp_path, capsys):
        assert main(["trace", "list", str(tmp_path / "nope.jsonl")]) == 2


class TestTraceShow:
    def test_full_id_renders_span_tree(self, trace_file, capsys):
        path, tracer = trace_file
        target = list(tracer.kept)[0]
        assert main(["trace", "show", str(path), target.trace_id]) == 0
        out = capsys.readouterr().out
        assert f"trace {target.trace_id}" in out
        assert "service.get" in out

    def test_unique_prefix_resolves(self, trace_file, capsys):
        path, tracer = trace_file
        ids = [t.trace_id for t in tracer.kept]
        target = ids[0]
        prefix_len = next(
            n for n in range(1, 13)
            if sum(1 for i in ids if i.startswith(target[:n])) == 1)
        assert main(["trace", "show", str(path),
                     target[:prefix_len]]) == 0
        assert f"trace {target}" in capsys.readouterr().out

    def test_unknown_id_is_runtime_error(self, trace_file, capsys):
        path, _tracer = trace_file
        assert main(["trace", "show", str(path), "zzzzzz"]) == 1

    def test_empty_id_is_usage_error(self, trace_file, capsys):
        path, _tracer = trace_file
        assert main(["trace", "show", str(path), ""]) == 2


class TestTraceExport:
    def test_exports_valid_chrome_trace(self, trace_file, tmp_path,
                                        capsys):
        path, _tracer = trace_file
        out = tmp_path / "chrome.json"
        assert main(["trace", "export", str(path),
                     "--out", str(out)]) == 0
        doc = json.loads(out.read_text())
        validate_chrome_trace(doc)
        assert any(e["ph"] == "X" for e in doc["traceEvents"])


class TestLoadgenTraceSample:
    def test_open_loop_writes_trace_artifacts(self, tmp_path,
                                              monkeypatch, capsys):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        assert main(["loadgen", "--open-loop", "--policy", "LRU",
                     "--requests", "2000", "--rate", "150",
                     "--peak-rate", "600", "--duration", "6",
                     "--trace-sample", "0.5", "--seed", "7"]) == 0
        trace_path = tmp_path / "loadgen_open_reqtrace.jsonl"
        chrome_path = tmp_path / "loadgen_open_reqtrace.chrome.json"
        assert trace_path.exists() and chrome_path.exists()
        validate_chrome_trace(json.loads(chrome_path.read_text()))
        rows = [json.loads(line)
                for line in trace_path.read_text().splitlines()]
        assert rows
        assert all(row["type"] == "reqtrace" for row in rows)
        # Engine-owned roots only; kept traces show the overload shape.
        assert {row["name"] for row in rows} == {"request"}
        err = capsys.readouterr().err
        assert "request traces" in err

    def test_trace_out_overrides_path(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        custom = tmp_path / "custom" / "mytraces.jsonl"
        assert main(["loadgen", "--open-loop", "--policy", "FIFO",
                     "--requests", "500", "--rate", "100",
                     "--duration", "4", "--trace-sample", "1.0",
                     "--trace-out", str(custom), "--seed", "3"]) == 0
        assert custom.exists()
        assert custom.with_suffix(".chrome.json").exists()

    def test_without_flag_no_trace_files(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        assert main(["loadgen", "--open-loop", "--policy", "FIFO",
                     "--requests", "500", "--rate", "100",
                     "--duration", "4", "--seed", "3"]) == 0
        assert not (tmp_path / "loadgen_open_reqtrace.jsonl").exists()
