"""Circuit breaker state machine on a virtual clock (no sleeps)."""

from __future__ import annotations

import pytest

from repro.exec.clock import VirtualClock
from repro.service.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerConfig,
    CircuitBreaker,
)


def make_breaker(threshold=3, reset=10.0, probes=1, clock=None):
    clock = clock or VirtualClock()
    config = BreakerConfig(failure_threshold=threshold,
                           reset_timeout=reset,
                           half_open_probes=probes)
    return CircuitBreaker(config, clock), clock


class TestConfigValidation:
    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            BreakerConfig(failure_threshold=0)

    def test_rejects_bad_reset_timeout(self):
        with pytest.raises(ValueError, match="reset_timeout"):
            BreakerConfig(reset_timeout=0.0)

    def test_rejects_bad_probe_count(self):
        with pytest.raises(ValueError, match="half_open_probes"):
            BreakerConfig(half_open_probes=0)


class TestStateMachine:
    def test_starts_closed_and_allows(self):
        breaker, _ = make_breaker()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_opens_after_threshold_consecutive_failures(self):
        breaker, _ = make_breaker(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()

    def test_success_resets_the_failure_streak(self):
        breaker, _ = make_breaker(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED  # streak broken, never reached 3

    def test_half_open_after_cooldown(self):
        breaker, clock = make_breaker(threshold=1, reset=10.0)
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(9.999)
        assert breaker.state == OPEN
        clock.advance(0.001)
        assert breaker.state == HALF_OPEN

    def test_half_open_grants_limited_probes(self):
        breaker, clock = make_breaker(threshold=1, reset=5.0, probes=2)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        assert breaker.allow()
        assert not breaker.allow()  # both probe slots consumed

    def test_probe_success_closes(self):
        breaker, clock = make_breaker(threshold=1, reset=5.0)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_with_fresh_cooldown(self):
        breaker, clock = make_breaker(threshold=1, reset=5.0)
        breaker.record_failure()     # open at t=0
        clock.advance(5.0)           # half-open at t=5
        assert breaker.allow()
        breaker.record_failure()     # re-open at t=5
        assert breaker.state == OPEN
        clock.advance(4.5)
        assert breaker.state == OPEN     # new cooldown, not the old one
        clock.advance(0.6)
        assert breaker.state == HALF_OPEN

    def test_full_cycle_transitions_recorded_with_timestamps(self):
        breaker, clock = make_breaker(threshold=2, reset=10.0)
        breaker.record_failure()
        breaker.record_failure()         # -> open at t=0
        clock.advance(10.0)
        assert breaker.allow()           # -> half-open at t=10
        breaker.record_success()         # -> closed at t=10
        assert breaker.transitions == [
            (0.0, CLOSED, OPEN),
            (10.0, OPEN, HALF_OPEN),
            (10.0, HALF_OPEN, CLOSED),
        ]
