"""Circuit breaker state machine on a virtual clock (no sleeps)."""

from __future__ import annotations

import threading

import pytest

from repro.exec.clock import VirtualClock
from repro.service.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerConfig,
    CircuitBreaker,
)


def make_breaker(threshold=3, reset=10.0, probes=1, clock=None):
    clock = clock or VirtualClock()
    config = BreakerConfig(failure_threshold=threshold,
                           reset_timeout=reset,
                           half_open_probes=probes)
    return CircuitBreaker(config, clock), clock


class TestConfigValidation:
    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            BreakerConfig(failure_threshold=0)

    def test_rejects_bad_reset_timeout(self):
        with pytest.raises(ValueError, match="reset_timeout"):
            BreakerConfig(reset_timeout=0.0)

    def test_rejects_bad_probe_count(self):
        with pytest.raises(ValueError, match="half_open_probes"):
            BreakerConfig(half_open_probes=0)


class TestStateMachine:
    def test_starts_closed_and_allows(self):
        breaker, _ = make_breaker()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_opens_after_threshold_consecutive_failures(self):
        breaker, _ = make_breaker(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()

    def test_success_resets_the_failure_streak(self):
        breaker, _ = make_breaker(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED  # streak broken, never reached 3

    def test_half_open_after_cooldown(self):
        breaker, clock = make_breaker(threshold=1, reset=10.0)
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(9.999)
        assert breaker.state == OPEN
        clock.advance(0.001)
        assert breaker.state == HALF_OPEN

    def test_half_open_grants_limited_probes(self):
        breaker, clock = make_breaker(threshold=1, reset=5.0, probes=2)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        assert breaker.allow()
        assert not breaker.allow()  # both probe slots consumed

    def test_probe_success_closes(self):
        breaker, clock = make_breaker(threshold=1, reset=5.0)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_with_fresh_cooldown(self):
        breaker, clock = make_breaker(threshold=1, reset=5.0)
        breaker.record_failure()     # open at t=0
        clock.advance(5.0)           # half-open at t=5
        assert breaker.allow()
        breaker.record_failure()     # re-open at t=5
        assert breaker.state == OPEN
        clock.advance(4.5)
        assert breaker.state == OPEN     # new cooldown, not the old one
        clock.advance(0.6)
        assert breaker.state == HALF_OPEN

    def test_full_cycle_transitions_recorded_with_timestamps(self):
        breaker, clock = make_breaker(threshold=2, reset=10.0)
        breaker.record_failure()
        breaker.record_failure()         # -> open at t=0
        clock.advance(10.0)
        assert breaker.allow()           # -> half-open at t=10
        breaker.record_success()         # -> closed at t=10
        assert breaker.transitions == [
            (0.0, CLOSED, OPEN),
            (10.0, OPEN, HALF_OPEN),
            (10.0, HALF_OPEN, CLOSED),
        ]


class TestHalfOpenProbeConcurrency:
    """Races on the half-open probe slots: exactly N winners, ever.

    The half-open state's whole point is to cap the load a possibly
    still-dead backend sees; a race that grants two probes when one is
    configured defeats it.  These tests gate ``half_open_probes`` under
    real thread contention (the lock inside :meth:`allow` makes the
    slot grant atomic with the state refresh).
    """

    def race_allow(self, breaker, threads):
        """Call ``allow()`` once per thread, all released together."""
        barrier = threading.Barrier(threads)
        results = []
        results_lock = threading.Lock()

        def contender():
            barrier.wait()
            granted = breaker.allow()
            with results_lock:
                results.append(granted)

        pool = [threading.Thread(target=contender) for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join(timeout=10.0)
        assert not any(thread.is_alive() for thread in pool)
        return results

    def test_single_probe_slot_admits_exactly_one_of_many(self):
        breaker, clock = make_breaker(threshold=1, reset=5.0, probes=1)
        breaker.record_failure()
        clock.advance(5.0)
        results = self.race_allow(breaker, threads=16)
        assert len(results) == 16
        assert results.count(True) == 1
        # The race must not have corrupted the state machine: still
        # half-open, exactly one open->half-open transition recorded.
        assert breaker.state == HALF_OPEN
        moves = [(src, dst) for _, src, dst in breaker.transitions]
        assert moves.count((OPEN, HALF_OPEN)) == 1

    def test_n_probe_slots_admit_exactly_n(self):
        breaker, clock = make_breaker(threshold=1, reset=5.0, probes=3)
        breaker.record_failure()
        clock.advance(5.0)
        results = self.race_allow(breaker, threads=12)
        assert results.count(True) == 3

    def test_losing_threads_see_clean_reopen_after_probe_failure(self):
        breaker, clock = make_breaker(threshold=1, reset=5.0, probes=1)
        breaker.record_failure()
        clock.advance(5.0)
        assert self.race_allow(breaker, threads=8).count(True) == 1
        # The winning probe fails: straight back to open with a fresh
        # cooldown, and the next half-open window grants exactly one
        # slot again (the probe counter was reset, not leaked).
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        clock.advance(5.0)
        results = self.race_allow(breaker, threads=8)
        assert results.count(True) == 1

    def test_probe_success_closes_and_unblocks_everyone(self):
        breaker, clock = make_breaker(threshold=1, reset=5.0, probes=1)
        breaker.record_failure()
        clock.advance(5.0)
        assert self.race_allow(breaker, threads=8).count(True) == 1
        breaker.record_success()
        assert breaker.state == CLOSED
        # Closed state has no slot accounting: everyone gets through.
        results = self.race_allow(breaker, threads=8)
        assert results.count(True) == 8

    def test_repeated_half_open_cycles_never_leak_slots(self):
        breaker, clock = make_breaker(threshold=1, reset=5.0, probes=2)
        breaker.record_failure()       # trip it once; stays tripped
        for _ in range(5):
            clock.advance(5.0)
            assert breaker.state == HALF_OPEN
            results = self.race_allow(breaker, threads=10)
            assert results.count(True) == 2
            breaker.record_failure()   # re-open, next cycle
            assert breaker.state == OPEN
