"""BackendFaultPlan and the fault-injected backend (deterministic)."""

from __future__ import annotations

import pytest

from repro.exec.clock import VirtualClock
from repro.service.backend import FaultInjectedBackend, InMemoryBackend
from repro.service.faults import (
    TIMEOUT,
    BackendFaultPlan,
    BackendOutage,
    BackendTimeout,
    InjectedBackendError,
)


class TestPlanBuilders:
    def test_rejects_unknown_fault_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            BackendFaultPlan().fail("k", kind="segfault")

    def test_rejects_bad_call_index(self):
        with pytest.raises(ValueError, match="call must be >= 1"):
            BackendFaultPlan().fail("k", call=0)
        with pytest.raises(ValueError, match="call must be >= 1"):
            BackendFaultPlan().latency("k", 1.0, call=-1)

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError, match=">= 0"):
            BackendFaultPlan().latency("k", -0.5)
        with pytest.raises(ValueError, match=">= 0"):
            BackendFaultPlan().base_latency(-1.0)

    def test_rejects_empty_outage_window(self):
        with pytest.raises(ValueError, match="end > start"):
            BackendFaultPlan().outage(5.0, 5.0)

    def test_queries_fall_back_to_every_call(self):
        plan = (BackendFaultPlan()
                .fail("k", call=2)
                .fail("always", kind=TIMEOUT)
                .latency("k", 0.25)
                .base_latency(0.01))
        assert plan.fault_for("k", 1) is None
        assert plan.fault_for("k", 2) == "error"
        assert plan.fault_for("always", 9) == "timeout"
        assert plan.latency_for("k", 3) == 0.25
        assert plan.latency_for("other", 1) == 0.01
        assert plan.in_outage(1.0) is False


class TestFaultInjectedBackend:
    def test_error_on_scheduled_call_only(self):
        clock = VirtualClock()
        backend = FaultInjectedBackend(
            InMemoryBackend(), BackendFaultPlan().fail("k", call=1), clock)
        with pytest.raises(InjectedBackendError):
            backend.fetch("k")
        assert backend.fetch("k") == "value:k"
        assert backend.calls("k") == 2

    def test_timeout_fault_raises_backend_timeout(self):
        clock = VirtualClock()
        backend = FaultInjectedBackend(
            InMemoryBackend(),
            BackendFaultPlan().fail("k", kind=TIMEOUT), clock)
        with pytest.raises(BackendTimeout):
            backend.fetch("k")

    def test_latency_advances_the_virtual_clock(self):
        clock = VirtualClock()
        backend = FaultInjectedBackend(
            InMemoryBackend(), BackendFaultPlan().latency("k", 1.5), clock)
        assert backend.fetch("k") == "value:k"
        assert clock.now() == 1.5

    def test_outage_window_is_half_open_on_start_time(self):
        clock = VirtualClock()
        plan = BackendFaultPlan().outage(10.0, 20.0)
        backend = FaultInjectedBackend(InMemoryBackend(), plan, clock)
        backend.fetch("before")          # t=0: fine
        clock.advance(10.0)
        with pytest.raises(BackendOutage):
            backend.fetch("during")      # t=10: window is inclusive
        clock.advance(10.0)
        backend.fetch("after")           # t=20: window is exclusive

    def test_outage_checked_against_fetch_start(self):
        # A fetch that *starts* before the outage but whose latency
        # crosses into it still succeeds: the request was accepted.
        clock = VirtualClock()
        plan = (BackendFaultPlan()
                .outage(1.0, 2.0)
                .latency("k", 1.5))
        backend = FaultInjectedBackend(InMemoryBackend(), plan, clock)
        assert backend.fetch("k") == "value:k"
        assert clock.now() == 1.5

    def test_inner_backend_untouched_on_injected_fault(self):
        clock = VirtualClock()
        origin = InMemoryBackend()
        backend = FaultInjectedBackend(
            origin, BackendFaultPlan().fail("k"), clock)
        with pytest.raises(InjectedBackendError):
            backend.fetch("k")
        assert origin.fetch_count("k") == 0
