"""Multi-threaded stress: the accounting invariant under contention.

The issue's hard requirement: hammer the service from N threads with
overlapping keys and prove ``hits + misses + stale + shed == requests``
with no deadlock.  Guarded twice -- a `pytest-timeout` marker (enforced
in CI, where the plugin is installed) plus an in-test join deadline, so
a future deadlock fails fast even where the plugin is absent.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.policies.lru import LRU
from repro.policies.registry import make
from repro.service.backend import FaultInjectedBackend, InMemoryBackend
from repro.service.faults import BackendFaultPlan
from repro.service.service import CacheService, ServiceConfig

THREADS = 8
REQUESTS_PER_THREAD = 2500
JOIN_DEADLINE = 60.0


def hammer(service, key_slices):
    """Drive every slice through the service from its own thread."""
    errors = []

    def worker(keys):
        try:
            for key in keys:
                service.get(key)
        except BaseException as exc:
            errors.append(exc)

    pool = [threading.Thread(target=worker, args=(s,), daemon=True)
            for s in key_slices]
    for thread in pool:
        thread.start()
    deadline = time.monotonic() + JOIN_DEADLINE
    for thread in pool:
        thread.join(timeout=max(0.0, deadline - time.monotonic()))
        if thread.is_alive():
            pytest.fail("stress worker still running at the deadline -- "
                        "deadlock or livelock in CacheService")
    assert not errors, f"worker raised: {errors[0]!r}"


def zipf_slices(rng, num_objects=400, alpha=0.9):
    from repro.traces.synthetic import zipf_trace

    keys = zipf_trace(num_objects, THREADS * REQUESTS_PER_THREAD,
                      alpha, rng).tolist()
    return [keys[t::THREADS] for t in range(THREADS)]


@pytest.mark.timeout(120)
class TestStressInvariant:
    def test_healthy_backend_accounting(self, rng):
        """The issue's exact invariant: hits+misses+stale+shed==requests."""
        service = CacheService(LRU(100), InMemoryBackend(),
                               ServiceConfig())
        hammer(service, zipf_slices(rng))
        snap = service.metrics.snapshot()
        total = THREADS * REQUESTS_PER_THREAD
        assert snap["requests"] == total
        assert (snap["hit"] + snap["miss"] + snap["stale"]
                + snap["shed"]) == total
        assert snap["error"] == 0
        # The policy never exceeded its capacity under contention.
        assert len(service.policy) <= service.policy.capacity
        assert len(service._store) <= service.policy.capacity

    def test_faulty_backend_accounting(self, rng):
        """Same invariant (with errors) while failure paths fire."""
        plan = BackendFaultPlan()
        for key in range(0, 400, 7):        # ~14% of keys always error
            plan.fail(key)
        service = CacheService(
            make("FIFO-Reinsertion", 100),
            FaultInjectedBackend(InMemoryBackend(), plan),
            ServiceConfig(negative_ttl=0.05, max_inflight=32))
        hammer(service, zipf_slices(rng))
        snap = service.metrics.snapshot()
        total = THREADS * REQUESTS_PER_THREAD
        assert snap["requests"] == total
        assert (snap["hit"] + snap["miss"] + snap["stale"]
                + snap["shed"] + snap["error"]) == total
        assert snap["error"] > 0

    def test_lazy_promotion_policy_under_contention(self, rng):
        """QD-LP-FIFO (composite policy) is safe behind the service lock."""
        service = CacheService(make("QD-LP-FIFO", 100), InMemoryBackend(),
                               ServiceConfig())
        hammer(service, zipf_slices(rng))
        snap = service.metrics.snapshot()
        total = THREADS * REQUESTS_PER_THREAD
        assert (snap["hit"] + snap["miss"] + snap["stale"]
                + snap["shed"]) == total
        assert len(service.policy) <= service.policy.capacity


def test_numpy_rng_fixture_is_seeded(rng):
    # Guard: the stress workload must be reproducible across runs.
    assert isinstance(rng, np.random.Generator)
    assert rng.integers(0, 1000) == np.random.default_rng(12345).integers(
        0, 1000)
