"""The closed-loop load harness (deterministic paths + real threads)."""

from __future__ import annotations

import pytest

from repro.exec.clock import VirtualClock
from repro.obs import MetricsRegistry, TimeSeriesRecorder
from repro.policies.lru import LRU
from repro.service.backend import FaultInjectedBackend, InMemoryBackend
from repro.service.faults import BackendFaultPlan
from repro.service.loadgen import (
    LoadInterrupted,
    percentile,
    run_load,
)
from repro.service.service import CacheService, ServiceConfig


def virtual_service(plan=None, config=None, capacity=50):
    clock = VirtualClock()
    origin = InMemoryBackend()
    backend = (FaultInjectedBackend(origin, plan, clock)
               if plan is not None else origin)
    return CacheService(LRU(capacity), backend,
                        config or ServiceConfig(), clock=clock)


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.5) == 0.0

    def test_single_value(self):
        assert percentile([7.0], 0.99) == 7.0

    def test_nearest_rank(self):
        values = list(range(1, 101))       # 1..100
        assert percentile(values, 0.0) == 1
        assert percentile(values, 1.0) == 100
        # ceil-based nearest rank: ceil(0.5 * 100) = rank 50 -> value 50
        assert percentile(values, 0.5) == 50
        assert percentile(values, 0.99) == 99
        assert percentile(values, 0.991) == 100

    def test_even_length_p50_is_lower_middle(self):
        # The old round()-based rank used banker's rounding, so p50 of
        # an even-length list picked whichever middle the tie rounded
        # to.  Ceil-based nearest rank always takes the lower middle.
        assert percentile([1.0, 2.0], 0.5) == 1.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == 2.0
        assert percentile([1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 0.5) == 3.0

    def test_odd_length_p50_is_middle(self):
        assert percentile([1.0, 2.0, 3.0], 0.5) == 2.0
        assert percentile([1.0, 2.0, 3.0, 4.0, 5.0], 0.5) == 3.0

    def test_single_value_every_fraction(self):
        for fraction in (0.0, 0.25, 0.5, 0.99, 1.0):
            assert percentile([7.0], fraction) == 7.0

    def test_unsorted_input(self):
        assert percentile([5.0, 1.0, 3.0], 1.0) == 5.0

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)
        with pytest.raises(ValueError):
            percentile([1.0], -0.1)


class TestRunLoadValidation:
    def test_rejects_bad_thread_count(self):
        with pytest.raises(ValueError, match="threads"):
            run_load(virtual_service(), [1], threads=0)

    def test_rejects_negative_tick(self):
        with pytest.raises(ValueError, match="tick"):
            run_load(virtual_service(), [1], tick=-0.1)

    def test_tick_requires_single_thread(self):
        with pytest.raises(ValueError, match="threads=1"):
            run_load(virtual_service(), [1], threads=2, tick=0.1)

    def test_tick_requires_virtual_clock(self):
        service = CacheService(LRU(4), InMemoryBackend())
        with pytest.raises(ValueError, match="VirtualClock"):
            run_load(service, [1], tick=0.1)


class TestDeterministicRun:
    def test_counts_and_invariant(self):
        service = virtual_service()
        keys = [0, 1, 0, 1, 2, 0]
        report = run_load(service, keys, threads=1, tick=0.01)
        report.check_accounting()
        assert report.requests == 6
        assert report.outcomes["miss"] == 3
        assert report.outcomes["hit"] == 3
        assert report.availability == 1.0
        assert report.threads == 1
        assert not report.interrupted

    def test_latency_percentiles_reflect_injected_latency(self):
        plan = BackendFaultPlan().base_latency(0.004)
        service = virtual_service(plan)
        report = run_load(service, [1, 2, 3, 4, 1, 2, 3, 4], threads=1)
        # 4 misses at 4ms (virtual), 4 hits at 0ms.
        assert report.latency_p99 == pytest.approx(0.004)
        assert report.latency_p50 in (0.0, pytest.approx(0.004))

    def test_render_mentions_every_outcome(self):
        report = run_load(virtual_service(), [1, 1, 2], threads=1)
        text = report.render()
        for token in ("hit=", "miss=", "stale=", "shed=", "error=",
                      "availability", "p99"):
            assert token in text

    def test_accounting_error_raises(self):
        report = run_load(virtual_service(), [1, 2], threads=1)
        report.requests += 1  # corrupt it
        with pytest.raises(AssertionError, match="accounting"):
            report.check_accounting()

    def test_breaker_transitions_surface_in_report(self):
        plan = BackendFaultPlan()
        for key in range(10):
            plan.fail(key)
        service = virtual_service(plan)
        report = run_load(service, list(range(10)), threads=1)
        assert any(dst == "open" for _, _, dst in report.breaker_transitions)
        assert "breaker" in report.render()


class TestThreadedRun:
    def test_multi_threaded_counts_add_up(self):
        service = CacheService(LRU(20), InMemoryBackend(), ServiceConfig())
        keys = [k % 30 for k in range(2000)]
        report = run_load(service, keys, threads=4)
        report.check_accounting()
        assert report.requests == 2000
        assert report.outcomes["error"] == 0
        assert report.throughput > 0


class TestInterrupt:
    def test_partial_report_attached_on_interrupt(self):
        service = virtual_service()
        calls = {"n": 0}
        real_get = service.get

        def get_then_interrupt(key):
            calls["n"] += 1
            if calls["n"] > 5:
                raise KeyboardInterrupt
            return real_get(key)

        service.get = get_then_interrupt
        with pytest.raises(LoadInterrupted) as excinfo:
            run_load(service, list(range(100)), threads=1)
        report = excinfo.value.report
        assert report.interrupted
        assert report.requests == 5           # what completed before ^C
        report.check_accounting()


class TestTimeseriesSampling:
    def test_clock_cadence_windows_cover_all_requests(self):
        registry = MetricsRegistry()
        clock = VirtualClock()
        service = CacheService(LRU(50), InMemoryBackend(),
                               ServiceConfig(), clock=clock,
                               registry=registry)
        recorder = TimeSeriesRecorder(registry, cadence=2.0)
        keys = [0, 1, 2] * 4                  # 3 misses, then hits
        run_load(service, keys, threads=1, tick=0.5,
                 timeseries=recorder)
        assert recorder.samples >= 2          # 6.0s of clock, 2s cadence
        recorder.sample(clock.now())          # tail window
        totals = {}
        for name in recorder.series_names():
            if name.startswith("service_requests_total"):
                totals[name] = sum(v for _, _, v in recorder.series(name))
        assert sum(totals.values()) == len(keys)
        assert totals["service_requests_total{outcome=miss}"] == 3.0
        assert totals["service_requests_total{outcome=hit}"] == 9.0
