"""Service-layer observability: registry mirrors, breaker gauge, parity."""

from __future__ import annotations

from repro.exec.clock import VirtualClock
from repro.exec.retry import NO_RETRY
from repro.obs import MetricsRegistry, parse_prometheus_values, to_prometheus
from repro.policies.lru import LRU
from repro.service.backend import FaultInjectedBackend, InMemoryBackend
from repro.service.breaker import OPEN, STATE_VALUES, BreakerConfig
from repro.service.faults import BackendFaultPlan
from repro.service.service import ERROR, CacheService, ServiceConfig


def build_observed_service(plan=None, config=None, capacity=10):
    clock = VirtualClock()
    registry = MetricsRegistry()
    origin = InMemoryBackend()
    backend = (FaultInjectedBackend(origin, plan, clock)
               if plan is not None else origin)
    service = CacheService(LRU(capacity), backend,
                           config or ServiceConfig(), clock=clock,
                           registry=registry)
    return service, registry


class TestOutcomeCounters:
    def test_counters_mirror_raw_snapshot(self):
        service, registry = build_observed_service()
        for key in ("a", "b", "c", "d"):   # 4 misses
            service.get(key)
        for key in ("a", "b", "a"):        # 3 hits
            service.get(key)

        raw = service.metrics.snapshot()
        values = registry.counter_values()
        assert values["service_requests_total{outcome=hit}"] == raw["hit"] == 3
        assert values["service_requests_total{outcome=miss}"] \
            == raw["miss"] == 4
        assert values["service_fetch_attempts_total"] == raw["fetch_attempts"]

    def test_latency_histograms_count_every_request(self):
        service, registry = build_observed_service()
        for key in ("a", "b", "a"):
            service.get(key)
        observed = sum(
            row["count"] for row in registry.snapshot()
            if row["name"] == "service_request_latency_seconds")
        assert observed == 3

    def test_uninstrumented_service_has_no_registry_cost(self):
        clock = VirtualClock()
        service = CacheService(LRU(10), InMemoryBackend(),
                               ServiceConfig(), clock=clock)
        service.get("a")
        assert service.metrics.snapshot()["requests"] == 1


class TestBreakerGauge:
    def test_gauge_tracks_state_transitions(self):
        plan = BackendFaultPlan()
        for key in ("a", "b"):
            plan.fail(key)
        config = ServiceConfig(
            breaker=BreakerConfig(failure_threshold=2, reset_timeout=10.0),
            retry=NO_RETRY)
        service, registry = build_observed_service(plan, config)

        gauge = registry.gauge("service_breaker_state")
        assert gauge.value == STATE_VALUES["closed"]
        assert service.get("a").outcome == ERROR
        assert service.get("b").outcome == ERROR
        assert service.breaker.state == OPEN
        assert gauge.value == STATE_VALUES["open"]


class TestExportParity:
    def test_prometheus_matches_registry_counters(self):
        service, registry = build_observed_service()
        for key in ("a", "b", "a", "a"):
            service.get(key)
        prom = parse_prometheus_values(to_prometheus(registry))
        assert prom['service_requests_total{outcome="hit"}'] == 2
        assert prom['service_requests_total{outcome="miss"}'] == 2
        assert prom["service_fetch_attempts_total"] == \
            registry.counter_values()["service_fetch_attempts_total"]
