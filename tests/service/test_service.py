"""CacheService failure paths, all deterministic on a virtual clock.

Every scenario here -- retry/backoff, deadline timeout, serve-stale,
negative caching, breaker open/half-open/closed -- runs without a
single real sleep: time only moves when the test advances the
VirtualClock or the service "sleeps" a backoff on it.
"""

from __future__ import annotations

import pytest

from repro.exec.clock import VirtualClock
from repro.exec.retry import NO_RETRY, RetryPolicy
from repro.policies.lru import LRU
from repro.service.backend import (
    CallableBackend,
    FaultInjectedBackend,
    InMemoryBackend,
)
from repro.service.breaker import OPEN, BreakerConfig
from repro.service.faults import TIMEOUT, BackendFaultPlan
from repro.service.service import (
    ERROR,
    HIT,
    MISS,
    STALE,
    CacheService,
    ServiceConfig,
)


def build_service(plan=None, config=None, capacity=10, clock=None):
    clock = clock or VirtualClock()
    origin = InMemoryBackend()
    backend = (FaultInjectedBackend(origin, plan, clock)
               if plan is not None else origin)
    service = CacheService(LRU(capacity), backend,
                           config or ServiceConfig(), clock=clock)
    return service, origin, clock


def assert_accounting(service):
    snap = service.metrics.snapshot()
    total = (snap["hit"] + snap["miss"] + snap["stale"]
             + snap["shed"] + snap["error"])
    assert total == snap["requests"]


class TestConfigValidation:
    def test_rejects_non_positive_ttl(self):
        with pytest.raises(ValueError, match="ttl must be > 0"):
            ServiceConfig(ttl=0.0)
        with pytest.raises(ValueError, match="ttl must be > 0"):
            ServiceConfig(ttl=-5.0)

    def test_rejects_negative_stale_and_negative_ttl(self):
        with pytest.raises(ValueError, match="stale_ttl"):
            ServiceConfig(stale_ttl=-1.0)
        with pytest.raises(ValueError, match="negative_ttl"):
            ServiceConfig(negative_ttl=-0.1)

    def test_rejects_non_positive_max_inflight(self):
        with pytest.raises(ValueError, match="max_inflight"):
            ServiceConfig(max_inflight=0)
        with pytest.raises(ValueError, match="max_inflight"):
            ServiceConfig(max_inflight=-4)

    def test_rejects_non_positive_deadline(self):
        with pytest.raises(ValueError, match="deadline"):
            ServiceConfig(deadline=0.0)

    def test_rejects_wrong_types(self):
        with pytest.raises(TypeError, match="retry"):
            ServiceConfig(retry="3 times please")
        with pytest.raises(TypeError, match="breaker"):
            ServiceConfig(breaker=42)

    def test_service_rejects_non_policy(self):
        with pytest.raises(TypeError, match="EvictionPolicy"):
            CacheService(object(), InMemoryBackend())

    def test_service_rejects_backend_without_fetch(self):
        with pytest.raises(TypeError, match="fetch"):
            CacheService(LRU(4), object())


class TestPolicyConstructorValidation:
    """Bad capacities fail fast with a clear message (not deep in a loop)."""

    def test_zero_and_negative_capacity(self):
        with pytest.raises(ValueError, match="capacity must be >= 1"):
            LRU(0)
        with pytest.raises(ValueError, match="capacity must be >= 1"):
            LRU(-3)

    def test_fractional_capacity_no_longer_truncates_silently(self):
        with pytest.raises(ValueError, match="whole number"):
            LRU(2.7)

    def test_non_numeric_capacity(self):
        with pytest.raises(TypeError, match="capacity must be an integer"):
            LRU("large")
        with pytest.raises(TypeError, match="capacity must be an integer"):
            LRU(True)

    def test_integral_float_still_accepted(self):
        assert LRU(4.0).capacity == 4


class TestBasicServing:
    def test_miss_then_hit(self):
        service, origin, _ = build_service()
        first = service.get("a")
        second = service.get("a")
        assert (first.outcome, second.outcome) == (MISS, HIT)
        assert first.value == second.value == "value:a"
        assert first.ok and second.ok
        assert origin.fetch_count("a") == 1
        assert_accounting(service)

    def test_eviction_reaps_the_value_store(self):
        service, origin, _ = build_service(capacity=2)
        for key in ("a", "b", "c"):   # evicts "a" from the LRU
            service.get(key)
        assert not service.contains_fresh("a")
        assert service.get("a").outcome == MISS   # refetched
        assert origin.fetch_count("a") == 2
        assert_accounting(service)

    def test_ttl_expiry_triggers_refetch(self):
        service, origin, clock = build_service(
            config=ServiceConfig(ttl=10.0))
        assert service.get("a").outcome == MISS
        clock.advance(9.0)
        assert service.get("a").outcome == HIT       # still fresh
        clock.advance(1.5)                            # age 10.5 > ttl
        assert service.get("a").outcome == MISS      # refreshed
        assert origin.fetch_count("a") == 2
        assert_accounting(service)


class TestRetryAndDeadline:
    def test_retry_succeeds_after_backoff_on_virtual_clock(self):
        plan = BackendFaultPlan().fail("a", call=1)
        service, origin, clock = build_service(
            plan,
            ServiceConfig(retry=RetryPolicy(max_attempts=3,
                                            base_delay=0.2)))
        result = service.get("a")
        assert result.outcome == MISS
        assert result.value == "value:a"
        assert clock.now() == pytest.approx(0.2)   # one backoff, virtual
        snap = service.metrics.snapshot()
        assert snap["fetch_attempts"] == 2
        assert snap["fetch_failures"] == 1

    def test_exhausted_retries_surface_the_last_error(self):
        plan = BackendFaultPlan().fail("a")
        service, _, _ = build_service(
            plan,
            ServiceConfig(retry=RetryPolicy(max_attempts=2,
                                            base_delay=0.1),
                          breaker=None))
        result = service.get("a")
        assert result.outcome == ERROR
        assert not result.ok
        assert "InjectedBackendError" in result.error
        assert_accounting(service)

    def test_slow_fetch_breaches_deadline(self):
        plan = BackendFaultPlan().latency("a", 2.0)
        service, _, _ = build_service(
            plan, ServiceConfig(deadline=1.0, breaker=None))
        result = service.get("a")
        assert result.outcome == ERROR
        assert "BackendTimeout" in result.error

    def test_injected_timeout_fault(self):
        plan = BackendFaultPlan().fail("a", kind=TIMEOUT)
        service, _, _ = build_service(plan, ServiceConfig(breaker=None))
        result = service.get("a")
        assert result.outcome == ERROR
        assert "BackendTimeout" in result.error


class TestServeStale:
    def stale_service(self, **config_kwargs):
        plan = BackendFaultPlan()
        defaults = dict(ttl=10.0, stale_ttl=30.0, breaker=None)
        defaults.update(config_kwargs)
        return build_service(plan, ServiceConfig(**defaults)) + (plan,)

    def test_stale_served_when_backend_fails(self):
        service, _, clock, plan = self.stale_service()
        service.get("a")                      # cached at t=0
        clock.advance(15.0)                   # expired (ttl 10)
        plan.fail("a")                        # backend now failing
        result = service.get("a")
        assert result.outcome == STALE
        assert result.value == "value:a"
        assert result.ok
        assert "InjectedBackendError" in result.error

    def test_staleness_is_bounded(self):
        service, _, clock, plan = self.stale_service()
        service.get("a")
        clock.advance(45.0)                   # beyond ttl + stale_ttl = 40
        plan.fail("a")
        result = service.get("a")
        assert result.outcome == ERROR        # too stale to serve
        assert result.value is None

    def test_no_stale_when_disabled(self):
        service, _, clock, plan = self.stale_service(stale_ttl=0.0)
        service.get("a")
        clock.advance(15.0)
        plan.fail("a")
        assert service.get("a").outcome == ERROR

    def test_successful_refresh_resets_staleness(self):
        service, origin, clock, plan = self.stale_service()
        service.get("a")
        clock.advance(15.0)
        assert service.get("a").outcome == MISS   # healthy refresh
        plan.fail("a")
        clock.advance(15.0)
        assert service.get("a").outcome == STALE  # age counts from refresh
        assert origin.fetch_count("a") == 2


class TestNegativeCaching:
    def test_errors_are_negative_cached(self):
        plan = BackendFaultPlan().fail("a")
        service, origin, clock = build_service(
            plan, ServiceConfig(negative_ttl=5.0, breaker=None))
        backend = service.backend
        first = service.get("a")
        assert first.outcome == ERROR
        attempts_after_first = backend.calls("a")
        second = service.get("a")             # within negative_ttl
        assert second.outcome == ERROR
        assert "negative-cached" in second.error
        assert backend.calls("a") == attempts_after_first  # no new fetch
        assert service.metrics.snapshot()["negative_hits"] == 1

    def test_negative_entry_expires(self):
        plan = BackendFaultPlan().fail("a", call=1)
        service, origin, clock = build_service(
            plan, ServiceConfig(negative_ttl=5.0, breaker=None))
        assert service.get("a").outcome == ERROR
        clock.advance(5.0)                    # negative entry expired
        assert service.get("a").outcome == MISS
        assert origin.fetch_count("a") == 1   # second call succeeded

    def test_success_clears_negative_state(self):
        plan = BackendFaultPlan().fail("a", call=1)
        service, _, clock = build_service(
            plan, ServiceConfig(negative_ttl=2.0, breaker=None))
        service.get("a")                      # error, negative-cached
        clock.advance(2.0)
        assert service.get("a").outcome == MISS
        assert service.get("a").outcome == HIT


class TestBreakerIntegration:
    def breaker_service(self, plan, threshold=3, reset=10.0, **config):
        defaults = dict(
            breaker=BreakerConfig(failure_threshold=threshold,
                                  reset_timeout=reset),
            retry=NO_RETRY)
        defaults.update(config)
        return build_service(plan, ServiceConfig(**defaults))

    def test_breaker_opens_and_fails_fast(self):
        plan = BackendFaultPlan()
        for key in ("a", "b", "c"):
            plan.fail(key)
        service, _, _ = self.breaker_service(plan)
        for key in ("a", "b", "c"):
            assert service.get(key).outcome == ERROR
        assert service.breaker.state == OPEN
        backend = service.backend
        calls_before = sum(backend.calls(k) for k in ("a", "b", "c", "d"))
        result = service.get("d")             # breaker open: no fetch
        assert result.outcome == ERROR
        assert result.error == "circuit breaker open"
        assert sum(backend.calls(k)
                   for k in ("a", "b", "c", "d")) == calls_before

    def test_half_open_probe_recovers(self):
        plan = BackendFaultPlan()
        for key in ("a", "b", "c"):
            plan.fail(key, call=1)
        service, _, clock = self.breaker_service(plan)
        for key in ("a", "b", "c"):
            service.get(key)                  # trip the breaker
        assert service.breaker.state == OPEN
        clock.advance(10.0)                   # cooldown over: half-open
        result = service.get("a")             # probe; call 2 succeeds
        assert result.outcome == MISS
        assert service.breaker.state == "closed"
        transitions = [(src, dst) for _, src, dst
                       in service.breaker_transitions()]
        assert transitions == [("closed", "open"),
                               ("open", "half-open"),
                               ("half-open", "closed")]

    def test_open_breaker_serves_stale(self):
        plan = BackendFaultPlan()
        service, _, clock = self.breaker_service(
            plan, threshold=1, ttl=5.0, stale_ttl=60.0)
        service.get("a")                      # cache at t=0
        clock.advance(6.0)                    # "a" is now expired
        plan.fail("b")
        assert service.get("b").outcome == ERROR   # trips the breaker
        assert service.breaker.state == OPEN
        result = service.get("a")             # degraded: stale, no fetch
        assert result.outcome == STALE
        assert result.error == "circuit open; served stale"
        assert service.backend.calls("a") == 1

    def test_breaker_cuts_retries_short(self):
        # max_attempts=5 but the breaker opens after 2 failures: the
        # leader must stop retrying as soon as allow() says no.
        plan = BackendFaultPlan().fail("a")
        service, _, clock = self.breaker_service(
            plan, threshold=2,
            retry=RetryPolicy(max_attempts=5, base_delay=0.1))
        result = service.get("a")
        assert result.outcome == ERROR
        assert service.backend.calls("a") == 2   # not 5
        assert service.breaker.state == OPEN


class TestMixedAccounting:
    def test_invariant_over_a_mixed_run(self):
        plan = (BackendFaultPlan()
                .fail(3)             # key 3 always errors
                .latency(5, 2.0))    # key 5 breaches the deadline
        service, _, clock = build_service(
            plan,
            ServiceConfig(ttl=50.0, stale_ttl=100.0, negative_ttl=1.0,
                          deadline=1.0,
                          retry=RetryPolicy(max_attempts=2,
                                            base_delay=0.05),
                          breaker=BreakerConfig(failure_threshold=20,
                                                reset_timeout=5.0)))
        for step in range(300):
            service.get(step % 10)
            clock.advance(0.5)
        snap = service.metrics.snapshot()
        assert snap["requests"] == 300
        assert (snap["hit"] + snap["miss"] + snap["stale"]
                + snap["shed"] + snap["error"]) == 300
        assert snap["error"] > 0              # key 3 / key 5 failures
        assert snap["hit"] > 0

    def test_callable_backend_adapter(self):
        service = CacheService(LRU(4), CallableBackend(lambda k: k * 2))
        assert service.get(21).value == 42
