"""Coalescing and load-shedding under real threads.

Synchronisation is event-based (gate backends), never time-based: the
tests block on explicit rendezvous points with hard deadlines, so they
are deterministic and sleep-free.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.exec.clock import VirtualClock
from repro.policies.lru import LRU
from repro.service.backend import Backend, InMemoryBackend
from repro.service.service import (
    HIT,
    MISS,
    SHED,
    STALE,
    CacheService,
    ServiceConfig,
)

#: hard real-time cap on any rendezvous in this module
DEADLINE = 30.0


class GateBackend(Backend):
    """A backend whose fetches block until the test opens the gate."""

    def __init__(self) -> None:
        self.origin = InMemoryBackend()
        self.entered = threading.Event()   # a fetch has started
        self.gate = threading.Event()      # fetches may proceed

    def fetch(self, key):
        self.entered.set()
        assert self.gate.wait(DEADLINE), "test gate never opened"
        return self.origin.fetch(key)


def run_threads(fn, count):
    """Run *fn(index)* in *count* threads; returns the results in order."""
    results = [None] * count
    errors = []

    def runner(index):
        try:
            results[index] = fn(index)
        except BaseException as exc:  # surface worker failures in the test
            errors.append(exc)

    pool = [threading.Thread(target=runner, args=(i,), daemon=True)
            for i in range(count)]
    for thread in pool:
        thread.start()
    deadline = time.monotonic() + DEADLINE
    for thread in pool:
        thread.join(timeout=max(0.0, deadline - time.monotonic()))
        assert not thread.is_alive(), "worker thread hung (deadlock?)"
    assert not errors, f"worker raised: {errors[0]!r}"
    return results


class TestCoalescing:
    def test_miss_storm_issues_one_backend_fetch(self):
        backend = GateBackend()
        service = CacheService(LRU(10), backend, ServiceConfig())
        followers = 4

        def hammer(_index):
            return service.get("hot")

        # Leader enters the (blocked) fetch first, so every follower
        # finds the flight in place.
        leader = threading.Thread(target=hammer, args=(0,), daemon=True)
        leader.start()
        assert backend.entered.wait(DEADLINE)
        # Wait (yielding, not sleeping) until all followers joined the
        # flight, then open the gate.
        flight = service._flights.get("hot")
        assert flight is not None
        pool = [threading.Thread(target=hammer, args=(i,), daemon=True)
                for i in range(followers)]
        for thread in pool:
            thread.start()
        deadline = time.monotonic() + DEADLINE
        while flight.waiters < followers:
            assert time.monotonic() < deadline, "followers never latched on"
            time.sleep(0)  # yield the GIL; no timed waiting
        backend.gate.set()
        leader.join(timeout=DEADLINE)
        for thread in pool:
            thread.join(timeout=DEADLINE)
            assert not thread.is_alive()

        assert backend.origin.fetch_count("hot") == 1   # single-flight
        snap = service.metrics.snapshot()
        assert snap["requests"] == followers + 1
        assert snap["miss"] == followers + 1            # all share the fetch
        assert snap["coalesced"] == followers
        assert snap["hit"] + snap["miss"] == followers + 1

    def test_coalesced_followers_share_the_leaders_failure(self):
        class FailingGate(GateBackend):
            def fetch(self, key):
                self.entered.set()
                assert self.gate.wait(DEADLINE)
                raise RuntimeError("origin exploded")

        backend = FailingGate()
        service = CacheService(LRU(10), backend,
                               ServiceConfig(breaker=None))
        results = {}
        leader = threading.Thread(
            target=lambda: results.setdefault("leader", service.get("k")),
            daemon=True)
        leader.start()
        assert backend.entered.wait(DEADLINE)
        flight = service._flights.get("k")
        follower = threading.Thread(
            target=lambda: results.setdefault("follower", service.get("k")),
            daemon=True)
        follower.start()
        deadline = time.monotonic() + DEADLINE
        while flight.waiters < 1:
            assert time.monotonic() < deadline
            time.sleep(0)
        backend.gate.set()
        leader.join(DEADLINE)
        follower.join(DEADLINE)
        assert results["leader"].outcome == "error"
        assert results["follower"].outcome == "error"
        assert results["follower"].coalesced
        assert "origin exploded" in results["follower"].error

    def test_next_request_after_settle_is_a_hit(self):
        backend = GateBackend()
        backend.gate.set()  # no blocking needed here
        service = CacheService(LRU(10), backend, ServiceConfig())
        assert service.get("k").outcome == MISS
        assert service.get("k").outcome == HIT
        assert backend.origin.fetch_count("k") == 1


class TestLoadShedding:
    def test_requests_beyond_max_inflight_are_shed(self):
        backend = GateBackend()
        service = CacheService(LRU(10), backend,
                               ServiceConfig(max_inflight=1))
        leader_result = {}
        leader = threading.Thread(
            target=lambda: leader_result.setdefault(
                "r", service.get("slow")),
            daemon=True)
        leader.start()
        assert backend.entered.wait(DEADLINE)   # one fetch in flight
        shed = service.get("other")             # over the in-flight cap
        assert shed.outcome == SHED
        assert shed.value is None
        assert not shed.ok
        assert "load shed" in shed.error
        backend.gate.set()
        leader.join(DEADLINE)
        assert leader_result["r"].outcome == MISS
        snap = service.metrics.snapshot()
        assert snap["shed"] == 1 and snap["miss"] == 1

    def test_shed_request_serves_stale_if_available(self):
        clock = VirtualClock()
        backend = GateBackend()
        backend.gate.set()
        service = CacheService(
            LRU(10), backend,
            ServiceConfig(ttl=5.0, stale_ttl=50.0, max_inflight=1),
            clock=clock)
        service.get("a")                        # cache at t=0
        clock.advance(10.0)                     # "a" expired
        backend.gate.clear()                    # block the next fetch
        leader = threading.Thread(target=lambda: service.get("slow"),
                                  daemon=True)
        leader.start()
        assert backend.entered.wait(DEADLINE)
        result = service.get("a")               # shed path, stale copy
        assert result.outcome == STALE
        assert result.value == "value:a"
        backend.gate.set()
        leader.join(DEADLINE)

    def test_same_key_is_coalesced_not_shed(self):
        # max_inflight caps *distinct* fetches; a second request for
        # the key already being fetched must join it, not be shed.
        backend = GateBackend()
        service = CacheService(LRU(10), backend,
                               ServiceConfig(max_inflight=1))
        outcomes = {}
        leader = threading.Thread(
            target=lambda: outcomes.setdefault("lead", service.get("k")),
            daemon=True)
        leader.start()
        assert backend.entered.wait(DEADLINE)
        follower = threading.Thread(
            target=lambda: outcomes.setdefault("follow", service.get("k")),
            daemon=True)
        follower.start()
        flight = service._flights.get("k")
        deadline = time.monotonic() + DEADLINE
        while flight.waiters < 1:
            assert time.monotonic() < deadline
            time.sleep(0)
        backend.gate.set()
        leader.join(DEADLINE)
        follower.join(DEADLINE)
        assert outcomes["lead"].outcome == MISS
        assert outcomes["follow"].outcome == MISS
        assert outcomes["follow"].coalesced
        assert service.metrics.snapshot()["shed"] == 0


@pytest.mark.timeout(60)
class TestNoDeadlockSmoke:
    def test_interleaved_keys_do_not_deadlock(self):
        service = CacheService(LRU(16), InMemoryBackend(), ServiceConfig())

        def hammer(index):
            for step in range(500):
                service.get((index + step) % 40)
            return True

        assert all(run_threads(hammer, 8))
        assert_total = service.metrics.snapshot()
        assert assert_total["requests"] == 8 * 500
