"""Request tracing through the service layer and the open-loop engine.

The service annotates its root/child spans with the interesting control
flow -- retries, breaker transitions, coalescing, serve-stale -- and the
open-loop engine owns the per-request roots (queue wait, promotion-lock
time, admission drops).  These tests pin both down on a VirtualClock.
"""

from __future__ import annotations

import threading

from repro.exec.clock import VirtualClock
from repro.exec.retry import NO_RETRY, RetryPolicy
from repro.obs import MetricsRegistry
from repro.obs.reqtrace import (
    KEEP_OUTCOME,
    RequestTracer,
    TailRules,
)
from repro.policies.lru import LRU
from repro.service.backend import (
    Backend,
    FaultInjectedBackend,
    InMemoryBackend,
)
from repro.service.breaker import BreakerConfig
from repro.service.faults import BackendFaultPlan
from repro.service.loadgen import run_open_load
from repro.service.overload import (
    DROPPED,
    AdmissionQueue,
    StaticLimiter,
    StepArrivals,
)
from repro.service.service import ERROR, CacheService, ServiceConfig

KEEP_ALL = TailRules(keep_fraction=1.0)


def build_traced_service(config=None, plan=None, capacity=50,
                         tail=KEEP_ALL):
    clock = VirtualClock()
    tracer = RequestTracer(sample=1.0, seed=0, clock=clock, tail=tail)
    origin = InMemoryBackend()
    backend = (FaultInjectedBackend(origin, plan, clock)
               if plan is not None else origin)
    service = CacheService(LRU(capacity), backend,
                           config or ServiceConfig(), clock=clock,
                           tracer=tracer)
    return service, tracer


def spans_by_name(trace):
    by_name = {}
    for span in trace.spans:
        by_name.setdefault(span["name"], []).append(span)
    return by_name


class TestServiceSpans:
    def test_every_get_roots_a_service_span(self):
        service, tracer = build_traced_service()
        service.get("a")              # miss
        service.get("a")              # hit
        traces = list(tracer.kept)
        assert [t.outcome for t in traces] == ["miss", "hit"]
        for trace in traces:
            (root,) = spans_by_name(trace)["service.get"]
            assert root["args"]["key"] == "'a'"
            assert root["args"]["outcome"] == trace.outcome

    def test_miss_records_fetch_child_span(self):
        service, tracer = build_traced_service()
        service.get("a")
        (trace,) = tracer.kept
        (fetch,) = spans_by_name(trace)["service.fetch"]
        assert fetch["args"]["attempt"] == 1
        root = spans_by_name(trace)["service.get"][0]
        assert fetch["parent_id"] == root["span_id"]

    def test_retry_attempts_become_spans_and_notes(self):
        plan = BackendFaultPlan().fail("a", call=1)
        service, tracer = build_traced_service(
            config=ServiceConfig(
                retry=RetryPolicy(max_attempts=3, base_delay=0.01)),
            plan=plan)
        assert service.get("a").outcome == "miss"
        (trace,) = tracer.kept
        fetches = spans_by_name(trace)["service.fetch"]
        assert [f["args"]["attempt"] for f in fetches] == [1, 2]
        assert "error" in fetches[0]["args"]
        root = spans_by_name(trace)["service.get"][0]
        assert root["args"]["retries"] == 1

    def test_breaker_open_marks_the_trace(self):
        plan = BackendFaultPlan()
        for key in ("a", "b", "c"):
            plan.fail(key)
        service, tracer = build_traced_service(
            config=ServiceConfig(
                breaker=BreakerConfig(failure_threshold=2,
                                      reset_timeout=10.0),
                retry=NO_RETRY),
            plan=plan, tail=TailRules())
        assert service.get("a").outcome == ERROR
        assert service.get("b").outcome == ERROR   # trips the breaker
        assert service.get("c").outcome == ERROR   # fast-failed, open
        traces = list(tracer.kept)
        assert all(t.keep == KEEP_OUTCOME for t in traces)
        # The trip is annotated on the request that caused it...
        tripping = spans_by_name(traces[1])["service.get"][0]
        assert "closed->open" in tripping["args"]["breaker_transitions"]
        # ...and the fast-failed request notes the open breaker.
        rejected = spans_by_name(traces[2])["service.get"][0]
        assert rejected["args"]["breaker"] == "open"
        assert "breaker-open" in traces[2].marks

    def test_negative_cache_annotated(self):
        plan = BackendFaultPlan().fail("ghost")
        service, tracer = build_traced_service(
            config=ServiceConfig(negative_ttl=5.0, retry=NO_RETRY),
            plan=plan)
        assert service.get("ghost").outcome == ERROR
        assert service.get("ghost").outcome == ERROR  # negative cache
        first, second = list(tracer.kept)
        assert spans_by_name(first)["service.get"][0]["args"][
            "negative_cached"] is True
        assert spans_by_name(second)["service.get"][0]["args"][
            "negative_cache"] is True

    def test_followers_link_to_the_leaders_trace(self):
        gate = threading.Event()
        entered = threading.Event()

        class GateBackend(Backend):
            def __init__(self):
                self.origin = InMemoryBackend()

            def fetch(self, key):
                entered.set()
                assert gate.wait(30.0), "test gate never opened"
                return self.origin.fetch(key)

        tracer = RequestTracer(sample=1.0, seed=0, tail=KEEP_ALL)
        service = CacheService(LRU(10), GateBackend(), ServiceConfig(),
                               tracer=tracer)
        leader = threading.Thread(target=service.get, args=("hot",),
                                  daemon=True)
        leader.start()
        assert entered.wait(30.0)
        follower = threading.Thread(target=service.get, args=("hot",),
                                    daemon=True)
        follower.start()
        # Deterministic rendezvous: wait until the follower has joined
        # the flight before releasing the leader.
        deadline = [30.0]
        while service.metrics.snapshot()["coalesced"] < 1:
            deadline[0] -= 0.01
            assert deadline[0] > 0, "follower never coalesced"
            threading.Event().wait(0.01)
        gate.set()
        leader.join(30.0)
        follower.join(30.0)
        traces = {t.trace_id: t for t in tracer.kept}
        assert len(traces) == 2
        followed = next(t for t in traces.values()
                        if spans_by_name(t)["service.get"][0]["args"]
                        .get("coalesced"))
        led = next(t for t in traces.values() if t is not followed)
        root = spans_by_name(followed)["service.get"][0]
        assert root["args"]["leader_trace"] == led.trace_id

    def test_untraced_service_unchanged(self):
        clock = VirtualClock()
        service = CacheService(LRU(10), InMemoryBackend(),
                               ServiceConfig(), clock=clock)
        assert service.get("a").outcome == "miss"
        assert service.get("a").outcome == "hit"


class TestExemplars:
    def test_latency_exemplar_resolves_to_a_kept_trace(self):
        clock = VirtualClock()
        registry = MetricsRegistry()
        tracer = RequestTracer(sample=1.0, seed=0, clock=clock,
                               tail=TailRules(), registry=registry)
        service = CacheService(LRU(10), InMemoryBackend(),
                               ServiceConfig(), clock=clock,
                               registry=registry, tracer=tracer)
        for key in ("a", "b", "a"):
            service.get(key)
        exemplar_ids = {
            trace_id
            for row in registry.snapshot()
            for _bound, trace_id, _value in row.get("exemplars", ())}
        assert exemplar_ids                      # first-wins per bucket
        kept_ids = {row["trace_id"] for row in tracer._rows()}
        assert exemplar_ids <= kept_ids          # no dangling exemplars


class TestEngineRoots:
    #: 25 hot keys inside a 50-entry LRU: hits (and their promotions)
    #: dominate, so the serialised lock timeline saturates under the
    #: step peak and queue-wait becomes visible.
    KEYS = [index % 25 for index in range(5000)]

    def run_overloaded(self, deadline=None, rate=100.0, peak=900.0):
        service, tracer = build_traced_service(
            tail=TailRules(latency_quantile=0.9,
                           min_latency_samples=16))
        schedule = StepArrivals(rate=rate, duration=8.0,
                                peak_rate=peak, seed=3)
        queue = AdmissionQueue(capacity=64, deadline=deadline)
        report = run_open_load(service, self.KEYS, schedule,
                               queue=queue, limiter=StaticLimiter(4),
                               tracer=tracer)
        return report, tracer

    def test_engine_owns_request_roots_with_queue_wait(self):
        report, tracer = self.run_overloaded()
        roots = [t for t in tracer.kept if t.name == "request"]
        assert roots, "overload run kept no engine roots"
        slow = max(roots, key=lambda t: t.latency)
        names = spans_by_name(slow)
        assert "queue.wait" in names
        assert "service.get" in names
        assert any("promotion.lock" in spans_by_name(t)
                   for t in roots)               # LRU promotes on hit
        # Mid-stack service roots never appear: the engine propagates
        # NOT_SAMPLED for requests that lost the head coin flip.
        assert all(t.name == "request" for t in tracer.kept)
        # Every root the tracer saw came from the engine, and the
        # engine never traces queue-full sheds -- so the request count
        # is bounded by what the schedule offered.
        assert 0 < tracer.summary()["requests"] <= report.offered

    def test_deadline_drops_keep_dropped_roots(self):
        report, tracer = self.run_overloaded(deadline=0.05)
        assert report.outcomes.get(DROPPED, 0) > 0
        drops = [t for t in tracer.kept if t.outcome == DROPPED]
        assert drops
        for trace in drops:
            (wait,) = spans_by_name(trace)["queue.wait"]
            assert wait["args"]["reason"] == "deadline"
            assert trace.keep == KEEP_OUTCOME

    def test_traced_run_matches_untraced_results(self):
        def run(traced):
            clock = VirtualClock()
            tracer = (RequestTracer(sample=1.0, seed=0, clock=clock)
                      if traced else None)
            service = CacheService(LRU(50), InMemoryBackend(),
                                   ServiceConfig(), clock=clock,
                                   tracer=tracer)
            schedule = StepArrivals(rate=100.0, duration=8.0,
                                    peak_rate=900.0, seed=3)
            return run_open_load(service, self.KEYS, schedule,
                                 queue=AdmissionQueue(capacity=64),
                                 limiter=StaticLimiter(4),
                                 tracer=tracer)

        baseline, traced = run(False), run(True)
        assert baseline.outcomes == traced.outcomes
        assert baseline.served == traced.served
        assert baseline.lock_busy == traced.lock_busy
        assert baseline.served_latency_p99 == traced.served_latency_p99
