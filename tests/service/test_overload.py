"""Open-loop overload subsystem: schedules, queue, limiters, budget.

Everything deterministic: seeded arrival schedules, a VirtualClock for
every engine run, and the seven-outcome conservation invariant
(hit + miss + replica_hit + stale + shed + dropped + error == offered)
checked on every report.
"""

from __future__ import annotations

import pytest

from repro.exec.clock import VirtualClock
from repro.exec.retry import RetryPolicy
from repro.policies.lru import LRU
from repro.service.backend import FaultInjectedBackend, InMemoryBackend
from repro.service.faults import BackendFaultPlan
from repro.service.loadgen import run_open_load
from repro.service.overload import (
    DROPPED,
    AdmissionQueue,
    AIMDLimiter,
    AimdConfig,
    DiurnalArrivals,
    OnOffArrivals,
    PoissonArrivals,
    RetryBudget,
    RetryBudgetConfig,
    ServiceCostModel,
    StaticLimiter,
    StepArrivals,
    make_limiter,
    make_schedule,
)
from repro.service.service import CacheService, ServiceConfig


def build_service(config=None, capacity=50, plan=None):
    clock = VirtualClock()
    origin = InMemoryBackend()
    backend = (FaultInjectedBackend(origin, plan, clock)
               if plan is not None else origin)
    return CacheService(LRU(capacity), backend,
                        config or ServiceConfig(), clock=clock)


class TestArrivalSchedules:
    def test_poisson_rate_and_determinism(self):
        sched = PoissonArrivals(rate=100.0, duration=50.0, seed=3)
        times = sched.times()
        assert times == sorted(times)
        assert all(0.0 <= t < 50.0 for t in times)
        # mean count = 5000; 4 sigma ~ 283
        assert 4700 <= len(times) <= 5300
        assert times == PoissonArrivals(rate=100.0, duration=50.0,
                                        seed=3).times()
        assert times != PoissonArrivals(rate=100.0, duration=50.0,
                                        seed=4).times()

    def test_onoff_bursts_exceed_baseline(self):
        sched = OnOffArrivals(rate=50.0, duration=20.0, burst=8.0,
                              on_seconds=1.0, off_seconds=4.0, seed=1)
        times = sched.times()
        assert times == sorted(times)
        # First second of each 5s cycle runs at 400/s, the rest at 50/s.
        on = sum(1 for t in times if (t % 5.0) < 1.0)
        off = len(times) - on
        assert on > off  # 400/s for 1s beats 50/s for 4s per cycle

    def test_diurnal_peak_vs_trough(self):
        sched = DiurnalArrivals(rate=200.0, duration=60.0, amplitude=0.9,
                                period=60.0, seed=2)
        times = sched.times()
        assert times == sorted(times)
        # sin peaks in the first half-period, troughs in the second.
        first_half = sum(1 for t in times if t < 30.0)
        second_half = len(times) - first_half
        assert first_half > 1.5 * second_half

    def test_step_window_rate_ratio(self):
        sched = StepArrivals(rate=100.0, duration=30.0, peak_rate=1000.0,
                             step_start=0.3, step_end=0.7, seed=5)
        start, end = sched.window()
        assert (start, end) == (9.0, 21.0)
        times = sched.times()
        assert times == sorted(times)
        inside = sum(1 for t in times if start <= t < end)
        outside = len(times) - inside
        # 12s at 1000/s inside vs 18s at 100/s outside
        assert inside > 5 * outside

    def test_validation(self):
        with pytest.raises(ValueError, match="rate"):
            PoissonArrivals(rate=0.0, duration=1.0)
        with pytest.raises(ValueError, match="amplitude"):
            DiurnalArrivals(rate=1.0, duration=1.0, amplitude=1.5)
        with pytest.raises(ValueError, match="step window"):
            StepArrivals(rate=1.0, duration=1.0, peak_rate=2.0,
                         step_start=0.7, step_end=0.3)

    def test_make_schedule_factory(self):
        assert isinstance(make_schedule("poisson", 10, 1.0),
                          PoissonArrivals)
        assert isinstance(make_schedule("onoff", 10, 1.0), OnOffArrivals)
        assert isinstance(make_schedule("diurnal", 10, 1.0),
                          DiurnalArrivals)
        step = make_schedule("step", 10, 1.0, burst=3.0)
        assert isinstance(step, StepArrivals)
        assert step.peak_rate == 30.0
        with pytest.raises(ValueError, match="schedule"):
            make_schedule("sawtooth", 10, 1.0)


class TestAdmissionQueue:
    def test_fifo_rejects_when_full(self):
        queue = AdmissionQueue(capacity=2, policy="fifo")
        assert queue.offer("a", 0.0) == (True, None)
        assert queue.offer("b", 0.1) == (True, None)
        admitted, displaced = queue.offer("c", 0.2)
        assert not admitted and displaced is None
        entry, expired = queue.take(0.3)
        assert entry.key == "a" and not expired

    def test_drop_oldest_displaces_head(self):
        queue = AdmissionQueue(capacity=2, policy="drop-oldest")
        queue.offer("a", 0.0)
        queue.offer("b", 0.1)
        admitted, displaced = queue.offer("c", 0.2)
        assert admitted and displaced.key == "a"
        entry, _ = queue.take(0.3)
        assert entry.key == "b"

    def test_lifo_serves_newest_first(self):
        queue = AdmissionQueue(capacity=4, policy="lifo")
        for index, key in enumerate(["a", "b", "c"]):
            queue.offer(key, index * 0.1)
        entry, _ = queue.take(1.0)
        assert entry.key == "c"

    def test_deadline_expires_waiting_entries(self):
        queue = AdmissionQueue(capacity=4, deadline=0.5)
        queue.offer("old", 0.0)
        queue.offer("fresh", 0.9)
        entry, expired = queue.take(1.0)
        assert [e.key for e in expired] == ["old"]
        assert entry.key == "fresh"

    def test_deadline_can_empty_the_queue(self):
        queue = AdmissionQueue(capacity=4, deadline=0.1)
        queue.offer("a", 0.0)
        queue.offer("b", 0.0)
        entry, expired = queue.take(5.0)
        assert entry is None
        assert {e.key for e in expired} == {"a", "b"}
        assert len(queue) == 0

    def test_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            AdmissionQueue(capacity=0)
        with pytest.raises(ValueError, match="policy"):
            AdmissionQueue(capacity=1, policy="random")
        with pytest.raises(ValueError, match="deadline"):
            AdmissionQueue(capacity=1, deadline=0.0)


class TestLimiters:
    def test_static_fixed(self):
        limiter = StaticLimiter(5)
        limiter.on_complete(99.0, 0.0)
        assert limiter.limit == 5
        with pytest.raises(ValueError, match="limit"):
            StaticLimiter(0)

    def test_aimd_decreases_on_sustained_delay(self):
        limiter = AIMDLimiter(AimdConfig(target_delay=0.05, max_limit=16,
                                         interval=1.0))
        assert limiter.limit == 16
        # Whole windows with min delay above target: multiplicative cut.
        # The first adjustment fires once an interval has elapsed since
        # the first sample, i.e. at the sample after each window closes.
        for window in range(4):
            limiter.on_complete(0.2, window * 1.0 + 0.1)
            limiter.on_complete(0.3, (window + 1) * 1.0)
        assert limiter.limit == 2  # 16 -> 8 -> 4 -> 2
        assert len(limiter.adjustments) == 3

    def test_aimd_codel_min_ignores_one_slow_request(self):
        # One bad sample inside an otherwise-fast window must NOT cut
        # the limit: the CoDel signal is the window *minimum*.
        limiter = AIMDLimiter(AimdConfig(target_delay=0.05, max_limit=8,
                                         initial=4, interval=1.0))
        limiter.on_complete(0.9, 0.1)    # slow outlier
        limiter.on_complete(0.001, 0.5)  # fast request in same window
        limiter.on_complete(0.001, 1.1)  # closes the window
        assert limiter.limit == 5        # additive increase, no cut

    def test_aimd_recovers_additively(self):
        limiter = AIMDLimiter(AimdConfig(target_delay=0.05, min_limit=1,
                                         max_limit=8, initial=2,
                                         interval=1.0, increase=1))
        for window in range(10):
            limiter.on_complete(0.0, window * 1.0 + 0.5)
            limiter.on_complete(0.0, (window + 1) * 1.0)
        assert limiter.limit == 8  # climbed to and capped at max

    def test_aimd_respects_min_limit(self):
        limiter = AIMDLimiter(AimdConfig(target_delay=0.01, min_limit=2,
                                         max_limit=16, interval=0.5))
        for window in range(20):
            limiter.on_complete(1.0, window * 0.5 + 0.1)
            limiter.on_complete(1.0, (window + 1) * 0.5)
        assert limiter.limit == 2

    def test_config_validation(self):
        with pytest.raises(ValueError, match="decrease"):
            AimdConfig(decrease=1.0)
        with pytest.raises(ValueError, match="max_limit"):
            AimdConfig(min_limit=8, max_limit=4)
        with pytest.raises(ValueError, match="initial"):
            AimdConfig(min_limit=2, max_limit=8, initial=1)

    def test_make_limiter_factory(self):
        assert isinstance(make_limiter("static", static_limit=3),
                          StaticLimiter)
        assert isinstance(make_limiter("aimd"), AIMDLimiter)
        with pytest.raises(ValueError, match="limiter"):
            make_limiter("gradient")


class TestRetryBudget:
    def test_deposits_fund_withdrawals(self):
        budget = RetryBudget(RetryBudgetConfig(deposit=0.5, burst=10.0,
                                               initial=0.0))
        assert not budget.try_spend()
        for _ in range(2):
            budget.record_request()
        assert budget.try_spend()
        assert not budget.try_spend()
        assert budget.granted == 1 and budget.denied == 2

    def test_burst_caps_accumulation(self):
        budget = RetryBudget(RetryBudgetConfig(deposit=1.0, burst=3.0,
                                               initial=0.0))
        for _ in range(100):
            budget.record_request()
        assert budget.tokens == 3.0
        assert all(budget.try_spend() for _ in range(3))
        assert not budget.try_spend()

    def test_outage_amplification_bounded(self):
        # With deposit=0.1, a dead backend sees at most
        # initial_burst + 0.1-per-request extra retries.
        budget = RetryBudget(RetryBudgetConfig(deposit=0.1, burst=5.0))
        retries = 0
        for _ in range(1000):
            budget.record_request()
            if budget.try_spend():
                retries += 1
        assert retries <= 5 + 0.1 * 1000 + 1

    def test_validation(self):
        with pytest.raises(ValueError, match="deposit"):
            RetryBudgetConfig(deposit=1.5)
        with pytest.raises(ValueError, match="burst"):
            RetryBudgetConfig(burst=0.0)


class TestServiceCostModel:
    def test_parallel_and_lock_time(self):
        cost = ServiceCostModel(base_cost=0.001, miss_penalty=0.004,
                                promotion_cost=0.002)
        assert cost.parallel_time("hit") == 0.001
        assert cost.parallel_time("miss") == 0.005
        assert cost.lock_time(0) == 0.0
        assert cost.lock_time(3) == pytest.approx(0.006)

    def test_validation(self):
        with pytest.raises(ValueError, match="base_cost"):
            ServiceCostModel(base_cost=0.0)
        with pytest.raises(ValueError, match="promotion_cost"):
            ServiceCostModel(promotion_cost=-1.0)


class TestOpenLoopEngine:
    def run_simple(self, schedule, queue=None, limiter=None, cost=None,
                   service=None, keys=None):
        service = service or build_service()
        report = run_open_load(
            service, keys or [f"k{i}" for i in range(100)], schedule,
            queue=queue, limiter=limiter, cost=cost)
        report.check_conservation()
        return report, service

    def test_under_capacity_everything_served(self):
        report, service = self.run_simple(
            PoissonArrivals(rate=50.0, duration=5.0, seed=1))
        assert report.offered > 0
        assert report.outcomes.get(DROPPED, 0) == 0
        assert report.outcomes.get("shed", 0) == 0
        assert report.served == report.offered
        assert report.goodput > 0

    def test_deterministic_across_runs(self):
        schedule = StepArrivals(rate=100.0, duration=6.0,
                                peak_rate=900.0, seed=9)
        reports = []
        for _ in range(2):
            report, _ = self.run_simple(
                schedule,
                queue=AdmissionQueue(32, "drop-oldest", deadline=0.3),
                limiter=AIMDLimiter(AimdConfig(target_delay=0.05,
                                               max_limit=8)),
                cost=ServiceCostModel(base_cost=0.002))
            reports.append(report)
        assert reports[0].outcomes == reports[1].outcomes
        assert reports[0].queue_delay_p99 == reports[1].queue_delay_p99
        assert reports[0].final_limit == reports[1].final_limit

    def test_overload_drops_and_conserves(self):
        report, _ = self.run_simple(
            PoissonArrivals(rate=2000.0, duration=3.0, seed=2),
            queue=AdmissionQueue(16, "drop-oldest", deadline=0.2),
            limiter=StaticLimiter(2),
            cost=ServiceCostModel(base_cost=0.01))
        lost = report.outcomes.get(DROPPED, 0) + report.outcomes["shed"]
        assert lost > 0
        assert report.drop_ratio > 0.5
        # conservation (checked in run_simple) plus: served + lost
        # accounts for everything
        assert report.served + lost + report.outcomes.get("error", 0) \
            == report.offered

    def test_fifo_full_queue_sheds_instead_of_dropping(self):
        report, _ = self.run_simple(
            PoissonArrivals(rate=2000.0, duration=2.0, seed=3),
            queue=AdmissionQueue(8, "fifo"),
            limiter=StaticLimiter(1),
            cost=ServiceCostModel(base_cost=0.05))
        assert report.outcomes["shed"] > 0
        assert report.outcomes.get(DROPPED, 0) == 0  # no deadline set

    def test_promotion_lock_throttles_lru(self):
        # All-hit workload: key "h" fetched once then hit forever.
        # promotion_cost=10ms means the lock serves <=100 hits/s even
        # though base_cost would allow 1000/s per worker.
        schedule = PoissonArrivals(rate=400.0, duration=4.0, seed=4)
        report, _ = self.run_simple(
            schedule,
            queue=AdmissionQueue(64, "drop-oldest", deadline=0.25),
            limiter=StaticLimiter(8),
            cost=ServiceCostModel(base_cost=0.001,
                                  promotion_cost=0.010),
            keys=["h"])
        assert report.promotions > 0
        assert report.lock_busy > 0
        # ~400/s offered vs ~100/s lock capacity: most must be dropped.
        assert report.drop_ratio > 0.5
        no_promo, _ = self.run_simple(
            schedule,
            queue=AdmissionQueue(64, "drop-oldest", deadline=0.25),
            limiter=StaticLimiter(8),
            cost=ServiceCostModel(base_cost=0.001, promotion_cost=0.0),
            keys=["h"])
        assert no_promo.drop_ratio == 0.0
        assert no_promo.goodput > 2 * report.goodput

    def test_retry_budget_reported_through_service(self):
        # Backend fails every fetch; 4-attempt retry policy wants 3
        # retries per request, the budget allows far fewer.
        plan = BackendFaultPlan().outage(0.0, 1e9)
        service = build_service(
            config=ServiceConfig(
                retry=RetryPolicy(max_attempts=4, base_delay=0.001),
                retry_budget=RetryBudgetConfig(deposit=0.1, burst=2.0),
                breaker=None),
            plan=plan)
        report, _ = self.run_simple(
            PoissonArrivals(rate=50.0, duration=2.0, seed=5),
            service=service)
        assert report.outcomes["error"] == report.offered
        assert report.retries_denied > 0
        # Amplification stays near (1 + deposit), nowhere near 4x.
        attempts = service.metrics.fetch_attempts
        assert attempts <= report.offered * 1.1 + 2.0 + 1

    def test_timeseries_and_registry_mirroring(self):
        from repro.obs import MetricsRegistry, TimeSeriesRecorder

        registry = MetricsRegistry()
        recorder = TimeSeriesRecorder(registry, cadence=1.0)
        service = build_service()
        report = run_open_load(
            service, ["a", "b", "c"],
            PoissonArrivals(rate=100.0, duration=5.0, seed=6),
            queue=AdmissionQueue(8, "drop-oldest", deadline=0.1),
            limiter=StaticLimiter(1),
            cost=ServiceCostModel(base_cost=0.02),
            timeseries=recorder, registry=registry)
        report.check_conservation()
        counters = registry.counter_values()
        assert counters["overload_offered_total"] == report.offered
        assert (counters["overload_dropped_total"]
                == report.outcomes.get(DROPPED, 0))
        assert recorder.samples >= 1


class TestServiceIntegration:
    def test_limiter_and_max_inflight_mutually_exclusive(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            ServiceConfig(max_inflight=4, limiter=AimdConfig())

    def test_adaptive_limiter_governs_shedding(self):
        # limit forced to min_limit=1 via initial=1: a second
        # concurrent miss on a different key must shed.
        service = build_service(config=ServiceConfig(
            limiter=AimdConfig(min_limit=1, max_limit=4, initial=1)))
        assert service.limiter is not None
        assert service.limiter.limit == 1
        # Single-threaded: flights resolve synchronously, so exercise
        # the cap by inspecting the config path (covered properly by
        # the concurrency test below).
        result = service.get("a")
        assert result.outcome == "miss"

    def test_reservoir_bounds_latency_memory(self):
        from repro.service.service import LATENCY_RESERVOIR_SIZE

        service = build_service(capacity=10)
        for index in range(LATENCY_RESERVOIR_SIZE + 500):
            service.get(index % 5)
        lat = service.metrics.latencies()
        assert len(lat) <= 5 * LATENCY_RESERVOIR_SIZE
        hits = service.metrics.latencies("hit")
        assert len(hits) <= LATENCY_RESERVOIR_SIZE
        assert service.metrics.counts["hit"] > LATENCY_RESERVOIR_SIZE
