"""Unit tests for the synthetic workload generators."""

import numpy as np
import pytest

from repro.traces import synthetic as syn


class TestZipfTrace:
    def test_length_and_range(self, rng):
        keys = syn.zipf_trace(100, 5000, 1.0, rng, base=10)
        assert len(keys) == 5000
        assert keys.min() >= 10
        assert keys.max() < 110

    def test_popularity_not_id_ordered(self, rng):
        """Ranks are shuffled onto ids, so id 0 is rarely the hottest."""
        hot_ids = set()
        for seed in range(10):
            local = np.random.default_rng(seed)
            keys = syn.zipf_trace(100, 2000, 1.2, local)
            values, counts = np.unique(keys, return_counts=True)
            hot_ids.add(int(values[counts.argmax()]))
        assert len(hot_ids) > 3


class TestClusteredZipf:
    def test_validation(self, rng):
        with pytest.raises(ValueError):
            syn.clustered_zipf_trace(10, 100, 1.0, rng, repeat_prob=1.0)
        with pytest.raises(ValueError):
            syn.clustered_zipf_trace(10, 100, 1.0, rng, window=1)

    def test_clustering_shortens_reuse_distance(self, rng):
        """Median reuse distance must drop versus the IID trace."""
        def median_reuse(keys):
            last = {}
            distances = []
            for i, key in enumerate(keys):
                if key in last:
                    distances.append(i - last[key])
                last[key] = i
            return np.median(distances)

        iid = syn.zipf_trace(2000, 30000, 0.8, rng)
        clustered = syn.clustered_zipf_trace(2000, 30000, 0.8, rng,
                                             repeat_prob=0.5, window=100)
        assert median_reuse(clustered) < median_reuse(iid) / 2


class TestShortLived:
    def test_validation(self, rng):
        with pytest.raises(ValueError):
            syn.short_lived_trace(100, rng, mean_accesses=0.5)
        with pytest.raises(ValueError):
            syn.short_lived_trace(100, rng, window=0)

    def test_length(self, rng):
        keys = syn.short_lived_trace(5000, rng)
        assert len(keys) == 5000

    def test_all_reuse_within_window(self, rng):
        keys = syn.short_lived_trace(10000, rng, mean_accesses=2.0,
                                     window=50)
        first, last = {}, {}
        for i, key in enumerate(keys.tolist()):
            first.setdefault(key, i)
            last[key] = i
        spans = [last[k] - first[k] for k in first]
        # Objects live at most ~window slots (sorting keeps it tight).
        assert max(spans) <= 2 * 50

    def test_mean_accesses_controls_reuse(self, rng):
        lo = syn.short_lived_trace(20000, rng, mean_accesses=1.05)
        hi = syn.short_lived_trace(20000, rng, mean_accesses=3.0)
        assert len(np.unique(lo)) > len(np.unique(hi))


class TestScanAndLoop:
    def test_scan_is_one_pass(self):
        keys = syn.scan_trace(100, base=5)
        assert len(np.unique(keys)) == 100
        assert keys[0] == 5 and keys[-1] == 104

    def test_loop_repeats(self):
        keys = syn.loop_trace(10, 3)
        assert len(keys) == 30
        assert np.array_equal(keys[:10], keys[10:20])

    def test_loop_validation(self):
        with pytest.raises(ValueError):
            syn.loop_trace(10, 0)


class TestTemporalLocality:
    def test_stack_model_favours_recent(self, rng):
        keys = syn.temporal_locality_trace(500, 20000, 1.2, rng).tolist()
        # Immediate re-reference rate should be substantial under a
        # skewed depth distribution.
        repeats = sum(keys[i] == keys[i - 1] for i in range(1, len(keys)))
        assert repeats / len(keys) > 0.1

    def test_key_range(self, rng):
        keys = syn.temporal_locality_trace(50, 1000, 1.0, rng, base=7)
        assert keys.min() >= 7
        assert keys.max() < 57


class TestPopularityDecay:
    def test_validation(self, rng):
        with pytest.raises(ValueError):
            syn.popularity_decay_trace(100, 0.0, 1.0, rng)

    def test_new_objects_arrive_over_time(self, rng):
        keys = syn.popularity_decay_trace(20000, 0.1, 0.9, rng)
        first_half = set(keys[:10000].tolist())
        second_half = set(keys[10000:].tolist())
        assert len(second_half - first_half) > 100

    def test_recency_bias(self, rng):
        """Later requests reference higher (newer) ids on average."""
        keys = syn.popularity_decay_trace(20000, 0.1, 0.9, rng)
        assert keys[-2000:].mean() > keys[:2000].mean()


class TestOneHitWonder:
    def test_validation(self, rng):
        with pytest.raises(ValueError):
            syn.one_hit_wonder_trace(10, 100, 1.0, 1.0, rng)

    def test_fraction_controls_single_access_objects(self, rng):
        keys = syn.one_hit_wonder_trace(500, 20000, 1.0, 0.4, rng)
        _, counts = np.unique(keys, return_counts=True)
        singles = (counts == 1).sum()
        assert singles >= 0.3 * 20000 * 0.4


class TestWorkingSetShift:
    def test_validation(self, rng):
        with pytest.raises(ValueError):
            syn.working_set_shift_trace(10, 100, 0, 1.0, 0.5, rng)
        with pytest.raises(ValueError):
            syn.working_set_shift_trace(10, 100, 2, 1.0, 1.0, rng)

    def test_phases_shift_object_range(self, rng):
        keys = syn.working_set_shift_trace(100, 1000, 3, 1.0, 0.0, rng)
        phase1 = set(keys[:1000].tolist())
        phase3 = set(keys[2000:].tolist())
        assert not (phase1 & phase3)

    def test_overlap_shares_objects(self, rng):
        keys = syn.working_set_shift_trace(100, 1000, 2, 1.0, 0.9, rng)
        phase1 = set(keys[:1000].tolist())
        phase2 = set(keys[1000:].tolist())
        assert phase1 & phase2


class TestComposition:
    def test_concatenate(self, rng):
        a = syn.scan_trace(10)
        b = syn.scan_trace(10, base=100)
        joined = syn.concatenate([a, b])
        assert len(joined) == 20
        with pytest.raises(ValueError):
            syn.concatenate([])

    def test_blend_validation(self, rng):
        with pytest.raises(ValueError):
            syn.blend([syn.scan_trace(10)], [0.5, 0.5], rng)
        with pytest.raises(ValueError):
            syn.blend([], [], rng)
        with pytest.raises(ValueError):
            syn.blend([syn.scan_trace(10)], [-1.0], rng)

    def test_blend_preserves_source_order(self, rng):
        a = syn.scan_trace(500)
        b = syn.scan_trace(500, base=10000)
        mixed = syn.blend([a, b], [0.5, 0.5], rng).tolist()
        from_a = [k for k in mixed if k < 10000]
        assert from_a == sorted(from_a)

    def test_blend_uses_both_sources(self, rng):
        a = syn.scan_trace(1000)
        b = syn.scan_trace(1000, base=10000)
        mixed = syn.blend([a, b], [0.5, 0.5], rng)
        assert (mixed < 10000).any() and (mixed >= 10000).any()
