"""Unit tests for the Table 1 corpus builder."""

import numpy as np
import pytest

from repro.traces.corpus import (
    FAMILIES,
    FAMILY_BY_NAME,
    build_corpus,
    build_trace,
)
from repro.traces.stats import compute_stats
from repro.traces.trace import BLOCK, WEB


class TestFamilies:
    def test_ten_families_like_table1(self):
        assert len(FAMILIES) == 10

    def test_block_web_split(self):
        groups = {f.name: f.group for f in FAMILIES}
        assert groups["msr"] == BLOCK
        assert groups["tencent_cbs"] == BLOCK
        assert groups["cdn"] == WEB
        assert groups["twitter"] == WEB   # KV grouped with web, per paper
        assert groups["socialnet"] == WEB

    def test_cache_types(self):
        assert FAMILY_BY_NAME["twitter"].cache_type == "KV"
        assert FAMILY_BY_NAME["cdn"].cache_type == "object"
        assert FAMILY_BY_NAME["msr"].cache_type == "block"


class TestBuildTrace:
    def test_deterministic(self):
        a = build_trace(FAMILY_BY_NAME["msr"], 0, 0.1, seed=42)
        b = build_trace(FAMILY_BY_NAME["msr"], 0, 0.1, seed=42)
        assert np.array_equal(a.keys, b.keys)

    def test_different_indices_differ(self):
        a = build_trace(FAMILY_BY_NAME["msr"], 0, 0.1, seed=42)
        b = build_trace(FAMILY_BY_NAME["msr"], 1, 0.1, seed=42)
        assert not np.array_equal(a.keys, b.keys)

    def test_different_seeds_differ(self):
        a = build_trace(FAMILY_BY_NAME["msr"], 0, 0.1, seed=42)
        b = build_trace(FAMILY_BY_NAME["msr"], 0, 0.1, seed=43)
        assert not np.array_equal(a.keys, b.keys)

    def test_naming_and_metadata(self):
        trace = build_trace(FAMILY_BY_NAME["wiki"], 3, 0.1, seed=42)
        assert trace.name == "wiki-003"
        assert trace.family == "wiki"
        assert trace.group == WEB
        assert trace.params  # recipes record their parameters

    def test_scale_controls_length(self):
        small = build_trace(FAMILY_BY_NAME["cdn"], 0, 0.1, seed=42)
        large = build_trace(FAMILY_BY_NAME["cdn"], 0, 0.4, seed=42)
        assert large.num_requests > 2 * small.num_requests


class TestBuildCorpus:
    def test_default_counts(self):
        corpus = build_corpus(scale=0.05)
        assert len(corpus) == sum(f.default_traces for f in FAMILIES)

    def test_traces_per_family_override(self):
        corpus = build_corpus(scale=0.05, traces_per_family=2)
        assert len(corpus) == 20

    def test_family_filter(self):
        corpus = build_corpus(scale=0.05, traces_per_family=1,
                              families=["msr", "wiki"])
        assert {t.family for t in corpus} == {"msr", "wiki"}

    def test_unknown_family_rejected(self):
        with pytest.raises(KeyError):
            build_corpus(families=["nope"])

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            build_corpus(scale=0.0)

    def test_subsetting_preserves_trace_identity(self):
        """Trace i of a family is identical whether or not other
        families/traces are built (independent seed streams)."""
        full = build_corpus(scale=0.05, traces_per_family=2)
        subset = build_corpus(scale=0.05, traces_per_family=1,
                              families=["wiki"])
        full_wiki0 = next(t for t in full if t.name == "wiki-000")
        assert np.array_equal(full_wiki0.keys, subset[0].keys)


class TestCorpusCharacter:
    """The corpus must exhibit the workload structure the paper
    describes -- these are the calibration targets of DESIGN.md."""

    @pytest.fixture(scope="class")
    def corpus(self):
        return build_corpus(scale=0.3, traces_per_family=1)

    def test_socialnet_has_high_reuse(self, corpus):
        stats = {t.family: compute_stats(t) for t in corpus}
        # "most objects are accessed more than once" (paper §3 fn. 3)
        assert stats["socialnet"].one_hit_wonder_ratio < 0.35
        assert stats["socialnet"].mean_frequency > 8

    def test_block_and_web_have_one_hit_wonders(self, corpus):
        stats = {t.family: compute_stats(t) for t in corpus}
        for family in ("msr", "cdn", "tencent_cbs", "wiki"):
            assert stats[family].one_hit_wonder_ratio > 0.3

    def test_socialnet_most_reused_family(self, corpus):
        stats = {t.family: compute_stats(t) for t in corpus}
        social = stats.pop("socialnet")
        assert social.mean_frequency == pytest.approx(
            max([social.mean_frequency]
                + [s.mean_frequency for s in stats.values()]), rel=1e-9)
