"""Unit tests for Trace, trace I/O, and trace statistics."""

import numpy as np
import pytest

from repro.traces.io import read_binary, read_csv, write_binary, write_csv
from repro.traces.stats import (
    aggregate_by_family,
    compute_stats,
    frequency_histogram,
)
from repro.traces.trace import Trace, from_keys


class TestTrace:
    def test_basic_properties(self):
        trace = from_keys([1, 2, 1, 3])
        assert trace.num_requests == 4
        assert trace.num_unique == 3
        assert len(trace) == 4

    def test_as_list_returns_python_ints(self):
        trace = from_keys([1, 2, 3])
        keys = trace.as_list()
        assert all(type(k) is int for k in keys)

    def test_as_list_cached(self):
        trace = from_keys([1, 2, 3])
        assert trace.as_list() is trace.as_list()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            from_keys([])

    def test_bad_group_rejected(self):
        with pytest.raises(ValueError):
            Trace(name="x", keys=np.array([1]), group="bogus")

    def test_cache_size(self):
        trace = from_keys(list(range(1000)))
        assert trace.cache_size(0.1) == 100
        assert trace.cache_size(0.001) == 10   # floor at minimum
        assert trace.cache_size(0.001, minimum=50) == 50
        with pytest.raises(ValueError):
            trace.cache_size(0.0)


class TestIO:
    def test_csv_roundtrip(self, tmp_path, small_trace):
        path = tmp_path / "trace.csv"
        write_csv(small_trace, path)
        loaded = read_csv(path)
        assert loaded.name == small_trace.name
        assert loaded.family == small_trace.family
        assert loaded.group == small_trace.group
        assert np.array_equal(loaded.keys, small_trace.keys)

    def test_csv_without_meta(self, tmp_path):
        path = tmp_path / "plain.csv"
        path.write_text("key\n1\n2\n1\n")
        loaded = read_csv(path)
        assert loaded.keys.tolist() == [1, 2, 1]
        assert loaded.name == "plain"

    def test_csv_multi_column(self, tmp_path):
        path = tmp_path / "multi.csv"
        path.write_text("key,time,size\n5,0,100\n6,1,200\n")
        loaded = read_csv(path)
        assert loaded.keys.tolist() == [5, 6]

    def test_csv_empty_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("key\n")
        with pytest.raises(ValueError):
            read_csv(path)

    def test_binary_roundtrip(self, tmp_path, small_trace):
        path = tmp_path / "trace.bin"
        write_binary(small_trace, path)
        loaded = read_binary(path)
        assert loaded.name == small_trace.name
        assert np.array_equal(loaded.keys, small_trace.keys)

    def test_binary_bad_magic(self, tmp_path):
        path = tmp_path / "bogus.bin"
        path.write_bytes(b"NOPE" + b"\x00" * 20)
        with pytest.raises(ValueError, match="magic"):
            read_binary(path)

    def test_binary_truncated(self, tmp_path, small_trace):
        path = tmp_path / "trace.bin"
        write_binary(small_trace, path)
        data = path.read_bytes()
        path.write_bytes(data[:-8])
        with pytest.raises(ValueError, match="truncated"):
            read_binary(path)

    def test_binary_smaller_than_csv_for_wide_keys(self, tmp_path):
        # Real object ids are wide (hashes); binary wins there.
        trace = from_keys([10 ** 15 + i for i in range(2000)])
        csv_path = tmp_path / "t.csv"
        bin_path = tmp_path / "t.bin"
        write_csv(trace, csv_path)
        write_binary(trace, bin_path)
        assert bin_path.stat().st_size < csv_path.stat().st_size * 0.8


class TestCorruptInputs:
    """Malformed files must fail loudly with a clear message -- never
    hang, allocate gigabytes, or silently drop requests."""

    def test_csv_malformed_row_names_line(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("key\n1\n2\noops,0\n3\n")
        with pytest.raises(ValueError, match=r"bad\.csv:4.*oops"):
            read_csv(path)

    def test_csv_two_header_rows_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("key\nalso-a-header\n1\n")
        with pytest.raises(ValueError, match=":2"):
            read_csv(path)

    def test_csv_malformed_meta_names_line(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text('# meta: {"name": oops\nkey\n1\n')
        with pytest.raises(ValueError, match=r"bad\.csv:1.*meta"):
            read_csv(path)

    def test_csv_header_only_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("key\n")
        with pytest.raises(ValueError, match="no requests"):
            read_csv(path)

    def test_binary_empty_file(self, tmp_path):
        path = tmp_path / "empty.bin"
        path.write_bytes(b"")
        with pytest.raises(ValueError, match="truncated"):
            read_binary(path)

    def test_binary_header_shorter_than_magic(self, tmp_path):
        path = tmp_path / "tiny.bin"
        path.write_bytes(b"RPTR\x01")
        with pytest.raises(ValueError, match="truncated"):
            read_binary(path)

    def test_binary_oversized_meta_len(self, tmp_path, small_trace):
        """A multi-gigabyte meta_len in a tiny file must be rejected
        by header validation, not attempted as a read."""
        path = tmp_path / "evil.bin"
        write_binary(small_trace, path)
        data = bytearray(path.read_bytes())
        data[6:10] = (2 ** 31).to_bytes(4, "little")  # meta_len field
        path.write_bytes(bytes(data))
        with pytest.raises(ValueError, match="metadata length"):
            read_binary(path)

    def test_binary_oversized_count(self, tmp_path, small_trace):
        """A key count far beyond the file size must be caught before
        any allocation."""
        path = tmp_path / "evil.bin"
        write_binary(small_trace, path)
        data = bytearray(path.read_bytes())
        meta_len = int.from_bytes(data[6:10], "little")
        count_off = 10 + meta_len
        data[count_off:count_off + 8] = (2 ** 40).to_bytes(8, "little")
        path.write_bytes(bytes(data))
        with pytest.raises(ValueError, match="declares"):
            read_binary(path)

    def test_binary_garbage_metadata(self, tmp_path, small_trace):
        path = tmp_path / "evil.bin"
        write_binary(small_trace, path)
        data = bytearray(path.read_bytes())
        meta_len = int.from_bytes(data[6:10], "little")
        data[10:10 + meta_len] = b"\xff" * meta_len
        path.write_bytes(bytes(data))
        with pytest.raises(ValueError, match="corrupt metadata"):
            read_binary(path)

    def test_binary_non_object_metadata(self, tmp_path):
        import json
        import struct
        path = tmp_path / "evil.bin"
        meta = json.dumps([1, 2, 3]).encode()
        payload = struct.pack("<q", 7)
        path.write_bytes(b"RPTR" + struct.pack("<HI", 1, len(meta))
                         + meta + struct.pack("<Q", 1) + payload)
        with pytest.raises(ValueError, match="JSON object"):
            read_binary(path)

    def test_binary_unsupported_version(self, tmp_path, small_trace):
        path = tmp_path / "evil.bin"
        write_binary(small_trace, path)
        data = bytearray(path.read_bytes())
        data[4:6] = (99).to_bytes(2, "little")
        path.write_bytes(bytes(data))
        with pytest.raises(ValueError, match="version 99"):
            read_binary(path)


class TestStats:
    def test_compute_stats(self):
        trace = from_keys([1, 1, 1, 2, 3])
        stats = compute_stats(trace)
        assert stats.num_requests == 5
        assert stats.num_objects == 3
        assert stats.one_hit_wonder_ratio == pytest.approx(2 / 3)
        assert stats.reuse_ratio == pytest.approx(1 / 3)
        assert stats.mean_frequency == pytest.approx(5 / 3)
        assert stats.max_frequency == 3

    def test_aggregate_by_family(self):
        traces = [
            from_keys([1, 1, 2], name="a-0", family="a"),
            from_keys([3, 4], name="a-1", family="a"),
            from_keys([5, 5, 5], name="b-0", family="b", group="web"),
        ]
        rows = aggregate_by_family(traces)
        assert [r.family for r in rows] == ["a", "b"]
        a_row = rows[0]
        assert a_row.num_traces == 2
        assert a_row.total_requests == 5
        assert a_row.total_objects == 4

    def test_frequency_histogram(self):
        trace = from_keys([1] * 5 + [2, 3, 4])
        histogram = frequency_histogram(trace)
        assert histogram["1"] == 3
        assert histogram["4-7"] == 1
