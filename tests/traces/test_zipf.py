"""Unit tests for the Zipf sampler."""

import numpy as np
import pytest

from repro.traces.zipf import ZipfSampler, zipf_ranks


class TestZipfSampler:
    def test_validation(self, rng):
        with pytest.raises(ValueError):
            ZipfSampler(0, 1.0, rng)
        with pytest.raises(ValueError):
            ZipfSampler(10, -1.0, rng)
        sampler = ZipfSampler(10, 1.0, rng)
        with pytest.raises(ValueError):
            sampler.sample(-1)

    def test_sample_range(self, rng):
        sampler = ZipfSampler(100, 1.0, rng)
        ranks = sampler.sample(10000)
        assert ranks.min() >= 0
        assert ranks.max() < 100
        assert ranks.dtype == np.int64

    def test_zero_count(self, rng):
        assert len(ZipfSampler(10, 1.0, rng).sample(0)) == 0

    def test_alpha_zero_is_uniform(self, rng):
        sampler = ZipfSampler(10, 0.0, rng)
        ranks = sampler.sample(50000)
        counts = np.bincount(ranks, minlength=10)
        assert counts.min() > 0.8 * counts.max()

    def test_skew_orders_frequencies(self, rng):
        sampler = ZipfSampler(50, 1.2, rng)
        ranks = sampler.sample(100000)
        counts = np.bincount(ranks, minlength=50)
        # rank 0 clearly dominates, tail clearly rare
        assert counts[0] > 5 * counts[10]
        assert counts[0] > 20 * counts[40]

    def test_pmf_matches_theory(self, rng):
        sampler = ZipfSampler(5, 1.0, rng)
        pmf = sampler.pmf()
        weights = 1.0 / np.arange(1, 6)
        expected = weights / weights.sum()
        assert np.allclose(pmf, expected)

    def test_pmf_sums_to_one(self, rng):
        pmf = ZipfSampler(1000, 0.8, rng).pmf()
        assert pmf.sum() == pytest.approx(1.0)

    def test_empirical_matches_pmf(self, rng):
        sampler = ZipfSampler(20, 1.0, rng)
        ranks = sampler.sample(200000)
        empirical = np.bincount(ranks, minlength=20) / 200000
        assert np.allclose(empirical, sampler.pmf(), atol=0.01)

    def test_convenience_wrapper_deterministic(self):
        a = zipf_ranks(100, 1.0, 1000, seed=5)
        b = zipf_ranks(100, 1.0, 1000, seed=5)
        assert np.array_equal(a, b)
        c = zipf_ranks(100, 1.0, 1000, seed=6)
        assert not np.array_equal(a, c)
