"""Unit tests for trace utilities and oracleGeneral interop."""

import numpy as np
import pytest

from repro.traces.io import read_oracle_general, write_oracle_general
from repro.traces.trace import from_keys, head, remap_keys, sample_requests


class TestHead:
    def test_prefix(self, small_trace):
        prefix = head(small_trace, 100)
        assert prefix.num_requests == 100
        assert np.array_equal(prefix.keys, small_trace.keys[:100])
        assert prefix.family == small_trace.family

    def test_validation(self, small_trace):
        with pytest.raises(ValueError):
            head(small_trace, 0)

    def test_name_records_operation(self, small_trace):
        assert "head100" in head(small_trace, 100).name


class TestSampleRequests:
    def test_rate_one_keeps_everything(self, small_trace):
        sampled = sample_requests(small_trace, 1.0)
        assert np.array_equal(sampled.keys, small_trace.keys)

    def test_spatial_sampling_is_per_key(self, small_trace):
        """A key is either fully kept or fully dropped."""
        sampled = sample_requests(small_trace, 0.3)
        kept = set(sampled.keys.tolist())
        original_counts = {}
        for key in small_trace.as_list():
            original_counts[key] = original_counts.get(key, 0) + 1
        sampled_counts = {}
        for key in sampled.as_list():
            sampled_counts[key] = sampled_counts.get(key, 0) + 1
        for key in kept:
            assert sampled_counts[key] == original_counts[key]

    def test_rate_controls_volume(self, small_trace):
        low = sample_requests(small_trace, 0.1)
        high = sample_requests(small_trace, 0.8)
        assert low.num_requests < high.num_requests

    def test_deterministic(self, small_trace):
        a = sample_requests(small_trace, 0.3, seed=4)
        b = sample_requests(small_trace, 0.3, seed=4)
        assert np.array_equal(a.keys, b.keys)

    def test_validation(self, small_trace):
        with pytest.raises(ValueError):
            sample_requests(small_trace, 0.0)
        with pytest.raises(ValueError):
            sample_requests(small_trace, 1e-12)


class TestRemapKeys:
    def test_dense_first_appearance_order(self):
        trace = from_keys([50, 9, 50, 100, 9])
        remapped = remap_keys(trace)
        assert remapped.keys.tolist() == [0, 1, 0, 2, 1]

    def test_structure_preserved(self, small_trace):
        remapped = remap_keys(small_trace)
        assert remapped.num_requests == small_trace.num_requests
        assert remapped.num_unique == small_trace.num_unique
        assert remapped.keys.max() == small_trace.num_unique - 1

    def test_miss_ratio_invariant_under_remap(self, small_trace):
        """Renaming keys cannot change any policy's behaviour."""
        from repro.policies.lru import LRU
        from repro.sim.simulator import simulate
        original = simulate(LRU(50), small_trace).miss_ratio
        remapped = simulate(LRU(50), remap_keys(small_trace)).miss_ratio
        assert original == remapped


class TestOracleGeneral:
    def test_roundtrip(self, tmp_path, small_trace):
        path = tmp_path / "trace.oracleGeneral.bin"
        write_oracle_general(small_trace, path)
        loaded = read_oracle_general(path)
        assert np.array_equal(loaded.keys, small_trace.keys)

    def test_record_size(self, tmp_path):
        trace = from_keys([1, 2, 3])
        path = tmp_path / "t.bin"
        write_oracle_general(trace, path)
        assert path.stat().st_size == 3 * 24  # 4 + 8 + 4 + 8 bytes

    def test_next_access_field_correct(self, tmp_path):
        import struct
        trace = from_keys([7, 8, 7])
        path = tmp_path / "t.bin"
        write_oracle_general(trace, path)
        records = list(struct.Struct("<IQIq").iter_unpack(
            path.read_bytes()))
        assert records[0][3] == 2    # key 7 next used at position 2
        assert records[1][3] == -1   # key 8 never again
        assert records[2][3] == -1

    def test_truncated_rejected(self, tmp_path):
        path = tmp_path / "bad.bin"
        path.write_bytes(b"\x00" * 25)  # not a multiple of 24
        with pytest.raises(ValueError, match="record"):
            read_oracle_general(path)

    def test_empty_rejected(self, tmp_path):
        path = tmp_path / "empty.bin"
        path.write_bytes(b"")
        with pytest.raises(ValueError, match="no requests"):
            read_oracle_general(path)
