"""Unit tests for TTL modelling."""

import numpy as np
import pytest

from repro.traces.ttl import apply_ttl, effective_objects


class TestApplyTTL:
    def test_zero_ttl_is_identity(self):
        keys = np.array([5, 6, 5, 7], dtype=np.int64)
        out = apply_ttl(keys, ttl=0)
        assert np.array_equal(out, keys)
        assert out is not keys  # a copy, never an alias

    def test_within_ttl_same_version(self):
        out = apply_ttl([9, 9, 9], ttl=10)
        assert out[0] == out[1] == out[2]

    def test_expiry_creates_new_version(self):
        # key 9 accessed at t=0 (version born), then at t=3 (> ttl=2
        # after birth): must be a different versioned id.
        out = apply_ttl([9, 8, 7, 9], ttl=2)
        assert out[0] != out[3]

    def test_refresh_on_expiry_restarts_clock(self):
        # ttl=3: version born at t0; t2 within ttl (same); t4 expired
        # (new version born at t4); t5 within the *new* version's ttl.
        out = apply_ttl([1, 0, 1, 0, 1, 1], ttl=3)
        assert out[0] == out[2]
        assert out[4] != out[0]
        assert out[4] == out[5]

    def test_distinct_keys_never_collide(self):
        keys = np.array([1, 2, 1, 2, 1, 2], dtype=np.int64)
        out = apply_ttl(keys, ttl=2)
        versions_1 = set(out[keys == 1].tolist())
        versions_2 = set(out[keys == 2].tolist())
        assert not versions_1 & versions_2

    def test_accepts_trace(self, small_trace):
        out = apply_ttl(small_trace, ttl=100)
        assert len(out) == small_trace.num_requests

    def test_jitter_validation(self):
        with pytest.raises(ValueError):
            apply_ttl([1], ttl=5, jitter=1.0)

    def test_jitter_deterministic(self, small_trace):
        a = apply_ttl(small_trace, ttl=50, jitter=0.3, seed=2)
        b = apply_ttl(small_trace, ttl=50, jitter=0.3, seed=2)
        assert np.array_equal(a, b)


class TestEffectiveObjects:
    def test_no_ttl_matches_uniques(self, small_trace):
        assert effective_objects(small_trace, 0) == small_trace.num_unique

    def test_short_ttl_inflates_objects(self, small_trace):
        inflated = effective_objects(small_trace, 50)
        assert inflated > small_trace.num_unique

    def test_monotone_in_ttl(self, small_trace):
        shorter = effective_objects(small_trace, 20)
        longer = effective_objects(small_trace, 500)
        assert shorter >= longer


class TestTTLMissRatioEffect:
    def test_short_ttl_raises_miss_ratio(self, small_trace):
        """Expired objects are compulsory misses: any policy's miss
        ratio rises monotonically as the TTL shrinks."""
        from repro.policies.lru import LRU
        from repro.sim.simulator import simulate
        capacity = small_trace.cache_size(0.1)
        ratios = []
        for ttl in (0, 1000, 100):
            keys = apply_ttl(small_trace, ttl)
            ratios.append(simulate(LRU(capacity), keys.tolist()).miss_ratio)
        assert ratios[0] <= ratios[1] <= ratios[2]
