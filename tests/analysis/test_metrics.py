"""Unit tests for the efficiency metrics."""

import pytest

from repro.analysis.metrics import (
    mean_reduction,
    miss_ratio_reduction,
    pairwise_reduction,
    reductions_from_baseline,
    summarize,
)
from repro.sim.runner import RunRecord


def record(policy, trace, size, misses, requests=100, group="block",
           family="msr"):
    return RunRecord(policy=policy, trace=trace, family=family, group=group,
                     size_fraction=size, capacity=10, requests=requests,
                     misses=misses)


class TestMissRatioReduction:
    def test_positive_when_better(self):
        assert miss_ratio_reduction(0.3, 0.5) == pytest.approx(0.4)

    def test_negative_when_worse(self):
        assert miss_ratio_reduction(0.6, 0.5) == pytest.approx(-0.2)

    def test_zero_baseline(self):
        assert miss_ratio_reduction(0.0, 0.0) == 0.0

    def test_identity(self):
        assert miss_ratio_reduction(0.5, 0.5) == 0.0


class TestSummarize:
    def test_percentiles_and_mean(self):
        values = list(range(101))  # 0..100
        summary = summarize(values, label="x")
        assert summary.count == 101
        assert summary.mean == pytest.approx(50.0)
        assert summary.percentile(50) == pytest.approx(50.0)
        assert summary.percentile(10) == pytest.approx(10.0)
        assert summary.median == summary.percentile(50)

    def test_unknown_percentile_raises(self):
        summary = summarize([1.0, 2.0])
        with pytest.raises(KeyError):
            summary.percentile(33)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


class TestReductions:
    def test_reductions_from_baseline(self):
        records = [
            record("FIFO", "t1", 0.1, misses=50),
            record("LRU", "t1", 0.1, misses=40),
            record("ARC", "t1", 0.1, misses=25),
        ]
        table = reductions_from_baseline(records)
        assert table["LRU"][("t1", 0.1)] == pytest.approx(0.2)
        assert table["ARC"][("t1", 0.1)] == pytest.approx(0.5)
        assert "FIFO" not in table

    def test_missing_baseline_raises(self):
        records = [record("LRU", "t1", 0.1, misses=40)]
        with pytest.raises(KeyError):
            reductions_from_baseline(records)

    def test_mean_reduction(self):
        records = [
            record("FIFO", "t1", 0.1, misses=50),
            record("FIFO", "t2", 0.1, misses=100),
            record("LRU", "t1", 0.1, misses=25),
            record("LRU", "t2", 0.1, misses=100),
        ]
        assert mean_reduction(records, "LRU") == pytest.approx(0.25)

    def test_mean_reduction_unknown_policy(self):
        records = [record("FIFO", "t1", 0.1, misses=50)]
        with pytest.raises(KeyError):
            mean_reduction(records, "LRU")

    def test_pairwise_reduction(self):
        records = [
            record("ARC", "t1", 0.1, misses=40),
            record("QD-ARC", "t1", 0.1, misses=30),
            record("ARC", "t2", 0.1, misses=10),
            record("QD-ARC", "t2", 0.1, misses=10),
        ]
        gains = pairwise_reduction(records, "QD-ARC", "ARC")
        assert sorted(gains) == [pytest.approx(0.0), pytest.approx(0.25)]
