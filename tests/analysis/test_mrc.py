"""Unit tests for the miss-ratio curve tooling."""

import pytest

from repro.analysis.mrc import (
    MissRatioCurve,
    lru_mrc,
    reuse_distances,
    simulated_mrc,
)
from repro.policies.lru import LRU
from repro.sim.simulator import simulate


class TestReuseDistances:
    def test_first_accesses_are_cold(self):
        assert reuse_distances([1, 2, 3]) == [-1, -1, -1]

    def test_immediate_repeat_distance_zero(self):
        assert reuse_distances([1, 1]) == [-1, 0]

    def test_hand_traced(self):
        # 1 2 3 2 1: "2" re-accessed over {3} -> distance 1;
        #            "1" re-accessed over {2, 3} -> distance 2.
        assert reuse_distances([1, 2, 3, 2, 1]) == [-1, -1, -1, 1, 2]

    def test_repeated_key_resets_distance(self):
        # 1 2 1 2: each reuse spans exactly one distinct key.
        assert reuse_distances([1, 2, 1, 2]) == [-1, -1, 1, 1]

    def test_matches_lru_hit_rule(self, zipf_keys):
        """A request hits in an LRU of size c iff its reuse distance
        is < c -- checked against the real simulator."""
        keys = zipf_keys[:3000]
        distances = reuse_distances(keys)
        for capacity in (10, 50, 200):
            cache = LRU(capacity)
            for key, distance in zip(keys, distances):
                hit = cache.request(key)
                assert hit == (0 <= distance < capacity)


class TestMissRatioCurve:
    def test_validation(self):
        with pytest.raises(ValueError):
            MissRatioCurve("x", (1, 2), (0.5,))
        with pytest.raises(ValueError):
            MissRatioCurve("x", (2, 1), (0.5, 0.4))

    def test_lookup(self):
        curve = MissRatioCurve("x", (10, 100), (0.5, 0.2))
        assert curve.miss_ratio_at(10) == 0.5
        assert curve.miss_ratio_at(50) == 0.5
        assert curve.miss_ratio_at(100) == 0.2
        assert curve.miss_ratio_at(10 ** 9) == 0.2
        with pytest.raises(ValueError):
            curve.miss_ratio_at(5)

    def test_as_rows(self):
        curve = MissRatioCurve("x", (1,), (0.9,))
        assert curve.as_rows() == [[1, 0.9]]


class TestLruMRC:
    def test_matches_simulation_exactly(self, zipf_keys):
        keys = zipf_keys[:4000]
        sizes = (5, 20, 80, 300)
        curve = lru_mrc(keys, sizes=sizes)
        for size in sizes:
            simulated = simulate(LRU(size), keys).miss_ratio
            assert curve.miss_ratio_at(size) == pytest.approx(simulated)

    def test_monotone_nonincreasing(self, zipf_keys):
        curve = lru_mrc(zipf_keys)
        ratios = list(curve.miss_ratios)
        assert all(a >= b - 1e-12 for a, b in zip(ratios, ratios[1:]))

    def test_default_sizes_generated(self, zipf_keys):
        curve = lru_mrc(zipf_keys)
        assert len(curve.sizes) > 5


class TestSimulatedMRC:
    def test_runs_any_policy(self, zipf_keys):
        from repro.core.qdlpfifo import QDLPFIFO
        curve = simulated_mrc(QDLPFIFO, zipf_keys[:2000], sizes=(10, 50))
        assert curve.policy == "QD-LP-FIFO"
        assert len(curve.sizes) == 2
        assert all(0 <= r <= 1 for r in curve.miss_ratios)

    def test_agrees_with_lru_mrc_for_lru(self, zipf_keys):
        keys = zipf_keys[:2000]
        sizes = (10, 60)
        exact = lru_mrc(keys, sizes=sizes)
        direct = simulated_mrc(LRU, keys, sizes=sizes)
        for size in sizes:
            assert exact.miss_ratio_at(size) == pytest.approx(
                direct.miss_ratio_at(size))


class TestShardsMRC:
    def test_validation(self, zipf_keys):
        from repro.analysis.mrc import shards_mrc
        with pytest.raises(ValueError):
            shards_mrc(zipf_keys, sample_rate=0.0)
        with pytest.raises(ValueError):
            shards_mrc(zipf_keys, sample_rate=1.5)

    def test_empty_sample_raises(self):
        from repro.analysis.mrc import shards_mrc
        with pytest.raises(ValueError, match="no requests"):
            shards_mrc([1, 2, 3], sample_rate=1e-9)

    def test_full_rate_matches_exact(self, zipf_keys):
        from repro.analysis.mrc import shards_mrc
        sizes = (10, 50, 200)
        exact = lru_mrc(zipf_keys, sizes=sizes)
        full = shards_mrc(zipf_keys, sizes=sizes, sample_rate=1.0)
        for size in sizes:
            assert full.miss_ratio_at(size) == pytest.approx(
                exact.miss_ratio_at(size))

    def test_sampled_approximates_exact(self, rng):
        from repro.analysis.mrc import shards_mrc
        from repro.traces.synthetic import zipf_trace
        keys = zipf_trace(3000, 80000, 0.9, rng).tolist()
        sizes = (30, 300, 1500)
        exact = lru_mrc(keys, sizes=sizes)
        approx = shards_mrc(keys, sizes=sizes, sample_rate=0.2)
        for size in sizes:
            assert approx.miss_ratio_at(size) == pytest.approx(
                exact.miss_ratio_at(size), abs=0.08)

    def test_monotone(self, zipf_keys):
        from repro.analysis.mrc import shards_mrc
        curve = shards_mrc(zipf_keys, sample_rate=0.3)
        ratios = list(curve.miss_ratios)
        assert all(a >= b - 1e-12 for a, b in zip(ratios, ratios[1:]))


class TestSizeSweepExperiment:
    def test_runs_and_renders(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        from repro.experiments import size_sweep
        from repro.experiments.common import CorpusConfig
        result = size_sweep.run(
            CorpusConfig(scale=0.1, traces_per_family=1),
            fractions=(0.01, 0.5))
        assert result.num_traces == 10
        assert "A5" in result.render()
        # Miss ratios fall as caches grow, for every policy.
        for policy, ratios in result.mean_miss_ratio.items():
            assert ratios[0] > ratios[-1]
