"""Unit tests for win-fraction comparison and table rendering."""

import pytest

from repro.analysis.comparison import WinFraction, datasets_won, win_fractions
from repro.analysis.tables import render_kv_block, render_percent, render_table
from tests.analysis.test_metrics import record


class TestWinFractions:
    def test_basic_wins(self):
        records = [
            record("LRU", "t1", 0.1, misses=50),
            record("CLOCK", "t1", 0.1, misses=40),
            record("LRU", "t2", 0.1, misses=50),
            record("CLOCK", "t2", 0.1, misses=60),
            record("LRU", "t3", 0.1, misses=50),
            record("CLOCK", "t3", 0.1, misses=30),
        ]
        rows = win_fractions(records, "CLOCK", "LRU", by="family")
        assert len(rows) == 1
        row = rows[0]
        assert row.wins == 2
        assert row.losses == 1
        assert row.ties == 0
        assert row.win_fraction == pytest.approx(2 / 3)

    def test_ties_split(self):
        records = [
            record("LRU", "t1", 0.1, misses=50),
            record("CLOCK", "t1", 0.1, misses=50),
        ]
        row = win_fractions(records, "CLOCK", "LRU")[0]
        assert row.ties == 1
        assert row.win_fraction == pytest.approx(0.5)

    def test_slicing_by_group(self):
        records = [
            record("LRU", "t1", 0.1, misses=50, group="block"),
            record("CLOCK", "t1", 0.1, misses=40, group="block"),
            record("LRU", "t2", 0.1, misses=50, group="web", family="cdn"),
            record("CLOCK", "t2", 0.1, misses=60, group="web", family="cdn"),
        ]
        rows = win_fractions(records, "CLOCK", "LRU", by="group")
        by_slice = {r.slice_name: r for r in rows}
        assert by_slice["block"].wins == 1
        assert by_slice["web"].losses == 1

    def test_slice_all(self):
        records = [
            record("LRU", "t1", 0.1, misses=50),
            record("CLOCK", "t1", 0.1, misses=40),
        ]
        rows = win_fractions(records, "CLOCK", "LRU", by="all")
        assert rows[0].slice_name == "all"

    def test_invalid_by(self):
        with pytest.raises(ValueError):
            win_fractions([], "a", "b", by="bogus")

    def test_missing_reference_pairs_skipped(self):
        records = [record("CLOCK", "t1", 0.1, misses=40)]
        assert win_fractions(records, "CLOCK", "LRU") == []

    def test_datasets_won(self):
        fractions = [
            WinFraction("a", 0.1, "c", "r", wins=3, losses=1, ties=0),
            WinFraction("b", 0.1, "c", "r", wins=1, losses=3, ties=0),
            WinFraction("c", 0.1, "c", "r", wins=2, losses=2, ties=0),
        ]
        assert datasets_won(fractions) == 1


class TestTables:
    def test_render_table_alignment(self):
        text = render_table(["name", "value"],
                            [["a", 1.23456], ["bbb", 2]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[2]
        assert "1.2346" in text
        assert "2.0000" not in text  # ints stay ints

    def test_render_table_none_cell(self):
        text = render_table(["a"], [[None]])
        assert "-" in text

    def test_render_table_row_length_checked(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])

    def test_render_percent(self):
        assert render_percent(0.123) == "12.3%"
        assert render_percent(0.5, precision=0) == "50%"

    def test_render_kv_block(self):
        text = render_kv_block("Title", [("k", 1.5), ("j", "v")])
        assert text.splitlines()[0] == "Title"
        assert "k: 1.5000" in text
        assert "j: v" in text
