"""Unit tests for the Count-Min sketch and doorkeeper."""

import pytest

from repro.utils.sketch import CountMinSketch, Doorkeeper


class TestCountMinSketch:
    def test_validation(self):
        with pytest.raises(ValueError):
            CountMinSketch(0)
        with pytest.raises(ValueError):
            CountMinSketch(16, depth=0)
        with pytest.raises(ValueError):
            CountMinSketch(16, depth=99)

    def test_width_rounded_to_power_of_two(self):
        assert CountMinSketch(100).width == 128
        assert CountMinSketch(128).width == 128

    def test_never_underestimates(self):
        sketch = CountMinSketch(256, sample_size=10 ** 9)
        for key in range(50):
            for _ in range(key % 7 + 1):
                sketch.increment(key)
        for key in range(50):
            assert sketch.estimate(key) >= key % 7 + 1

    def test_counters_saturate(self):
        sketch = CountMinSketch(64, sample_size=10 ** 9)
        for _ in range(100):
            sketch.increment("hot")
        assert sketch.estimate("hot") == 15

    def test_unseen_key_is_zero_when_sparse(self):
        sketch = CountMinSketch(1024, sample_size=10 ** 9)
        sketch.increment("a")
        assert sketch.estimate("never-seen-key-xyz") <= 1

    def test_aging_halves_counts(self):
        sketch = CountMinSketch(64, sample_size=20)
        for _ in range(10):
            sketch.increment("hot")
        before = sketch.estimate("hot")
        for i in range(10):
            sketch.increment(f"filler-{i}")  # crosses the sample window
        assert sketch.ages >= 1
        assert sketch.estimate("hot") <= before // 2 + 1

    def test_clear(self):
        sketch = CountMinSketch(64)
        sketch.increment("a")
        sketch.clear()
        assert sketch.estimate("a") == 0

    def test_hot_beats_cold(self):
        """The property admission relies on: a frequently-seen key
        estimates higher than a once-seen key."""
        sketch = CountMinSketch(1024, sample_size=10 ** 9)
        for _ in range(10):
            sketch.increment("hot")
        sketch.increment("cold")
        assert sketch.estimate("hot") > sketch.estimate("cold")


class TestDoorkeeper:
    def test_validation(self):
        with pytest.raises(ValueError):
            Doorkeeper(0)

    def test_first_put_reports_unseen(self):
        keeper = Doorkeeper(128)
        assert keeper.put("a") is False
        assert keeper.put("a") is True
        assert "a" in keeper

    def test_unseen_not_contained(self):
        keeper = Doorkeeper(128)
        keeper.put("a")
        assert "definitely-not-there" not in keeper

    def test_clear(self):
        keeper = Doorkeeper(128)
        keeper.put("a")
        keeper.clear()
        assert "a" not in keeper
