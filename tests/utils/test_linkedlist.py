"""Unit tests for the intrusive doubly-linked list."""

import pytest
from hypothesis import given, strategies as st

from repro.utils.linkedlist import KeyedList, LinkedList, Node


class TestLinkedList:
    def test_empty(self):
        lst = LinkedList()
        assert len(lst) == 0
        assert not lst
        assert lst.head is None
        assert lst.tail is None

    def test_push_head_order(self):
        lst = LinkedList()
        for key in "abc":
            lst.push_head(Node(key))
        assert [n.key for n in lst] == ["c", "b", "a"]
        assert lst.head.key == "c"
        assert lst.tail.key == "a"

    def test_push_tail_order(self):
        lst = LinkedList()
        for key in "abc":
            lst.push_tail(Node(key))
        assert [n.key for n in lst] == ["a", "b", "c"]

    def test_pop_tail(self):
        lst = LinkedList()
        nodes = [lst.push_head(Node(i)) for i in range(3)]
        assert lst.pop_tail() is nodes[0]
        assert lst.pop_tail() is nodes[1]
        assert lst.pop_tail() is nodes[2]
        with pytest.raises(IndexError):
            lst.pop_tail()

    def test_pop_head_empty_raises(self):
        with pytest.raises(IndexError):
            LinkedList().pop_head()

    def test_remove_middle(self):
        lst = LinkedList()
        a, b, c = (lst.push_tail(Node(k)) for k in "abc")
        lst.remove(b)
        assert [n.key for n in lst] == ["a", "c"]
        assert a.next is c
        assert c.prev is a
        assert b.prev is None and b.next is None

    def test_remove_only_element(self):
        lst = LinkedList()
        node = lst.push_head(Node("x"))
        lst.remove(node)
        assert len(lst) == 0
        assert lst.head is None and lst.tail is None

    def test_move_to_head(self):
        lst = LinkedList()
        a, b, c = (lst.push_tail(Node(k)) for k in "abc")
        lst.move_to_head(c)
        assert [n.key for n in lst] == ["c", "a", "b"]
        lst.move_to_head(c)  # already head: no-op
        assert [n.key for n in lst] == ["c", "a", "b"]

    def test_iteration_survives_removal(self):
        lst = LinkedList()
        for i in range(5):
            lst.push_tail(Node(i))
        for node in lst:
            if node.key % 2 == 0:
                lst.remove(node)
        assert [n.key for n in lst] == [1, 3]


class TestKeyedList:
    def test_membership_and_get(self):
        kl = KeyedList()
        kl.push_head("a")
        assert "a" in kl
        assert "b" not in kl
        assert kl.get("a").key == "a"
        assert kl.get("b") is None

    def test_duplicate_push_raises(self):
        kl = KeyedList()
        kl.push_head("a")
        with pytest.raises(KeyError):
            kl.push_head("a")
        with pytest.raises(KeyError):
            kl.push_tail("a")

    def test_pop_tail_removes_index(self):
        kl = KeyedList()
        kl.push_head("a")
        kl.push_head("b")
        node = kl.pop_tail()
        assert node.key == "a"
        assert "a" not in kl
        assert len(kl) == 1

    def test_push_head_node_reinsertion(self):
        kl = KeyedList()
        kl.push_head("a")
        kl.push_head("b")
        node = kl.pop_tail()
        kl.push_head_node(node)
        assert list(kl.keys()) == ["a", "b"]

    def test_remove_by_key(self):
        kl = KeyedList()
        for key in "abc":
            kl.push_head(key)
        kl.remove("b")
        assert list(kl.keys()) == ["c", "a"]
        with pytest.raises(KeyError):
            kl.remove("b")

    def test_move_to_head(self):
        kl = KeyedList()
        for key in "abc":
            kl.push_tail(key)
        kl.move_to_head("c")
        assert list(kl.keys()) == ["c", "a", "b"]

    def test_head_tail_properties(self):
        kl = KeyedList()
        assert kl.head is None and kl.tail is None
        kl.push_head("x")
        assert kl.head.key == "x" and kl.tail.key == "x"

    @given(st.lists(st.tuples(st.sampled_from(["push", "pop", "remove"]),
                              st.integers(0, 20)), max_size=200))
    def test_index_consistency_under_random_ops(self, ops):
        """The key index and the list always agree."""
        kl = KeyedList()
        for op, key in ops:
            if op == "push":
                if key not in kl:
                    kl.push_head(key)
            elif op == "pop":
                if len(kl):
                    kl.pop_tail()
            else:
                if key in kl:
                    kl.remove(key)
            keys = list(kl.keys())
            assert len(keys) == len(kl) == len(kl.index)
            assert set(keys) == set(kl.index)
