"""The `repro metrics` subcommand: sources, formats, error paths."""

import json

import pytest

from repro.cli import main
from repro.exec.journal import Journal
from repro.obs import MetricsRegistry, write_jsonl


@pytest.fixture
def metrics_file(tmp_path):
    registry = MetricsRegistry()
    registry.counter("service_requests_total", outcome="hit").inc(9)
    registry.counter("service_requests_total", outcome="miss").inc(4)
    registry.histogram("latency_seconds", "", (0.1, 1.0)).observe(0.05)
    return write_jsonl(registry, tmp_path / "metrics.jsonl")


@pytest.fixture
def journalled_run(tmp_path):
    registry = MetricsRegistry()
    registry.counter("sweep_cells_total", path="fast").inc(2)
    with Journal.create(run_id="r-obs", root=tmp_path) as journal:
        journal.record_metrics(registry.snapshot())
    return "r-obs", tmp_path


class TestSources:
    def test_table_from_file(self, metrics_file, capsys):
        assert main(["metrics", str(metrics_file)]) == 0
        out = capsys.readouterr().out
        assert "service_requests_total" in out
        assert "outcome=hit" in out
        assert "latency_seconds" in out

    def test_table_from_run_journal(self, journalled_run, capsys):
        run_id, root = journalled_run
        code = main(["metrics", "--run", run_id, "--runs-dir", str(root)])
        assert code == 0
        out = capsys.readouterr().out
        assert "sweep_cells_total" in out
        assert run_id in out


class TestFormats:
    def test_prometheus_output(self, metrics_file, capsys):
        assert main(["metrics", str(metrics_file),
                     "--format", "prom"]) == 0
        out = capsys.readouterr().out
        assert '# TYPE service_requests_total counter' in out
        assert 'service_requests_total{outcome="hit"} 9' in out
        assert 'latency_seconds_bucket{le="+Inf"} 1' in out

    def test_jsonl_output_round_trips(self, metrics_file, capsys):
        assert main(["metrics", str(metrics_file),
                     "--format", "jsonl"]) == 0
        out = capsys.readouterr().out
        rows = [json.loads(line) for line in out.splitlines() if line]
        hits = next(r for r in rows
                    if r["type"] == "counter"
                    and r["labels"] == {"outcome": "hit"})
        assert hits["value"] == 9


class TestErrorPaths:
    def test_neither_source_nor_run_is_usage_error(self, capsys):
        assert main(["metrics"]) == 2
        assert "exactly one" in capsys.readouterr().err

    def test_both_source_and_run_is_usage_error(self, metrics_file, capsys):
        assert main(["metrics", str(metrics_file), "--run", "r1"]) == 2
        assert "exactly one" in capsys.readouterr().err

    def test_missing_file_is_usage_error(self, tmp_path, capsys):
        assert main(["metrics", str(tmp_path / "nope.jsonl")]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_missing_run_is_usage_error(self, tmp_path, capsys):
        code = main(["metrics", "--run", "ghost",
                     "--runs-dir", str(tmp_path)])
        assert code == 2

    def test_run_without_metrics_line_is_runtime_error(self, tmp_path,
                                                       capsys):
        with Journal.create(run_id="bare", root=tmp_path) as journal:
            journal.record_result(("t",), {"misses": 1})
        code = main(["metrics", "--run", "bare",
                     "--runs-dir", str(tmp_path)])
        assert code == 1
        assert "no metrics snapshot" in capsys.readouterr().err

    def test_empty_file_is_runtime_error(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["metrics", str(empty)]) == 1
        assert "no metric rows" in capsys.readouterr().err


class TestFilters:
    def test_select_filters_by_name_glob(self, metrics_file, capsys):
        assert main(["metrics", str(metrics_file),
                     "--select", "service_*"]) == 0
        out = capsys.readouterr().out
        assert "service_requests_total" in out
        assert "latency_seconds" not in out

    def test_labels_filter_rows(self, metrics_file, capsys):
        assert main(["metrics", str(metrics_file), "--format", "jsonl",
                     "--labels", "outcome=hit"]) == 0
        rows = [json.loads(line)
                for line in capsys.readouterr().out.splitlines() if line]
        assert len(rows) == 1
        assert rows[0]["labels"] == {"outcome": "hit"}

    def test_filters_compose(self, metrics_file, capsys):
        assert main(["metrics", str(metrics_file), "--select", "latency_*",
                     "--labels", "outcome=hit"]) == 1
        assert "no metric rows" in capsys.readouterr().err

    def test_malformed_label_pair_is_usage_error(self, metrics_file, capsys):
        assert main(["metrics", str(metrics_file),
                     "--labels", "outcome"]) == 2
        assert "k=v" in capsys.readouterr().err

    def test_select_with_no_match_is_runtime_error(self, metrics_file,
                                                   capsys):
        assert main(["metrics", str(metrics_file),
                     "--select", "nope_*"]) == 1


class TestLabelGlobs:
    @pytest.fixture
    def sharded_file(self, tmp_path):
        registry = MetricsRegistry()
        for shard in ("s0", "s1", "s10"):
            registry.counter("service_requests_total", shard=shard,
                             outcome="hit").inc(1)
        registry.counter("cluster_requests_total", outcome="hit").inc(3)
        return write_jsonl(registry, tmp_path / "sharded.jsonl")

    def rows(self, capsys):
        return [json.loads(line)
                for line in capsys.readouterr().out.splitlines() if line]

    def test_star_glob_selects_all_shard_rows(self, sharded_file, capsys):
        assert main(["metrics", str(sharded_file), "--format", "jsonl",
                     "--labels", "shard=*"]) == 0
        rows = self.rows(capsys)
        assert {r["labels"]["shard"] for r in rows} == {"s0", "s1", "s10"}

    def test_glob_excludes_rows_without_the_label(self, sharded_file,
                                                  capsys):
        """`shard=*` must not match the unlabelled cluster row."""
        assert main(["metrics", str(sharded_file), "--format", "jsonl",
                     "--labels", "shard=*"]) == 0
        assert all("shard" in r["labels"] for r in self.rows(capsys))

    def test_partial_glob(self, sharded_file, capsys):
        assert main(["metrics", str(sharded_file), "--format", "jsonl",
                     "--labels", "shard=s1*"]) == 0
        rows = self.rows(capsys)
        assert {r["labels"]["shard"] for r in rows} == {"s1", "s10"}

    def test_exact_value_still_works(self, sharded_file, capsys):
        assert main(["metrics", str(sharded_file), "--format", "jsonl",
                     "--labels", "shard=s1"]) == 0
        rows = self.rows(capsys)
        assert len(rows) == 1
        assert rows[0]["labels"]["shard"] == "s1"


class TestLatestSnapshotWins:
    def test_journal_with_many_snapshots_renders_last(self, tmp_path,
                                                      capsys):
        """A resumed run journals one snapshot per session; the CLI
        must render the newest, deterministically."""
        with Journal.create(run_id="resumed", root=tmp_path) as journal:
            for value in (1, 5, 9):
                registry = MetricsRegistry()
                registry.counter("sweep_cells_total").inc(value)
                journal.record_metrics(registry.snapshot())
        assert main(["metrics", "--run", "resumed", "--format", "jsonl",
                     "--runs-dir", str(tmp_path)]) == 0
        [row] = [json.loads(line)
                 for line in capsys.readouterr().out.splitlines() if line]
        assert row["value"] == 9
