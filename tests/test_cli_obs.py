"""The `repro timeseries` and `repro diff` subcommands."""


import numpy as np
import pytest

from repro.cli import main
from repro.exec.journal import Journal
from repro.obs import TimeSeriesRecorder


def make_recorder(miss_every=2):
    """A recorder holding one windowed hit/miss curve."""
    recorder = TimeSeriesRecorder(cadence=4)
    mask = np.array([i % miss_every != 0 for i in range(16)], dtype=bool)
    recorder.record_mask(mask, policy="LRU")
    return recorder


def write_run(root, run_id, misses=200, rows=None):
    with Journal.create(run_id=run_id, root=root) as journal:
        journal.record_result(
            ("zipf", "LRU", 0.1),
            {"requests": 1000, "hits": 1000 - misses, "misses": misses})
        if rows is not None:
            journal.record_timeseries(rows)
    return root / run_id


class TestTimeseriesCommand:
    @pytest.fixture
    def ts_file(self, tmp_path):
        return make_recorder().write_jsonl(tmp_path / "ts.jsonl")

    def test_sparklines_from_file(self, ts_file, capsys):
        assert main(["timeseries", str(ts_file)]) == 0
        out = capsys.readouterr().out
        assert "sim_misses_total{policy=LRU}" in out
        assert "mean=" in out

    def test_csv_format(self, ts_file, capsys):
        assert main(["timeseries", str(ts_file), "--format", "csv"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert lines[0] == "series,t,window,value"
        assert len(lines) > 1

    def test_select_filters_series(self, ts_file, capsys):
        assert main(["timeseries", str(ts_file),
                     "--select", "sim_misses*"]) == 0
        out = capsys.readouterr().out
        assert "sim_misses_total" in out
        assert "sim_hits_total" not in out

    def test_from_journalled_run(self, tmp_path, capsys):
        write_run(tmp_path, "r1", rows=make_recorder().to_rows())
        assert main(["timeseries", "--run", "r1",
                     "--runs-dir", str(tmp_path)]) == 0
        assert "sim_requests_total" in capsys.readouterr().out

    def test_source_and_run_mutually_exclusive(self, ts_file, capsys):
        assert main(["timeseries", str(ts_file), "--run", "r1"]) == 2
        assert main(["timeseries"]) == 2

    def test_run_without_timeseries_is_runtime_error(self, tmp_path,
                                                     capsys):
        write_run(tmp_path, "bare")
        code = main(["timeseries", "--run", "bare",
                     "--runs-dir", str(tmp_path)])
        assert code == 1
        assert "no time series" in capsys.readouterr().err

    def test_no_matching_series_is_runtime_error(self, ts_file, capsys):
        assert main(["timeseries", str(ts_file),
                     "--select", "nope*"]) == 1
        assert "no matching series" in capsys.readouterr().err

    def test_missing_run_is_usage_error(self, tmp_path):
        assert main(["timeseries", "--run", "ghost",
                     "--runs-dir", str(tmp_path)]) == 2


class TestDiffCommand:
    def test_identical_runs_exit_zero(self, tmp_path, capsys):
        write_run(tmp_path, "a")
        write_run(tmp_path, "b")
        code = main(["diff", "a", "b", "--runs-dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "diff a -> b" in out
        assert "agree within tolerance" in out

    def test_injected_miss_ratio_delta_exits_nonzero(self, tmp_path,
                                                     capsys):
        """The acceptance check: a miss-ratio regression beyond the
        threshold must fail the command and print the offending row."""
        write_run(tmp_path, "base", misses=200)
        write_run(tmp_path, "regressed", misses=260)   # 0.20 -> 0.26
        code = main(["diff", "base", "regressed",
                     "--runs-dir", str(tmp_path)])
        assert code == 1
        out = capsys.readouterr().out
        assert "[REGRESSED]" in out
        assert "miss_ratio" in out
        assert "policy=LRU" in out

    def test_tolerance_flag_loosens_the_gate(self, tmp_path):
        write_run(tmp_path, "base", misses=200)
        write_run(tmp_path, "near", misses=260)
        assert main(["diff", "base", "near",
                     "--runs-dir", str(tmp_path)]) == 1
        assert main(["diff", "base", "near", "--runs-dir", str(tmp_path),
                     "--miss-ratio-tolerance", "0.10"]) == 0

    def test_timeseries_regression_detected(self, tmp_path, capsys):
        write_run(tmp_path, "a", rows=make_recorder(2).to_rows())
        write_run(tmp_path, "b", rows=make_recorder(4).to_rows())
        code = main(["diff", "a", "b", "--runs-dir", str(tmp_path)])
        assert code == 1
        assert "timeseries" in capsys.readouterr().out

    def test_accepts_journal_paths(self, tmp_path):
        run_a = write_run(tmp_path, "a")
        run_b = write_run(tmp_path, "b")
        assert main(["diff", str(run_a / "journal.jsonl"),
                     str(run_b)]) == 0

    def test_show_all_prints_drift(self, tmp_path, capsys):
        write_run(tmp_path, "a", misses=200)
        write_run(tmp_path, "b", misses=205)     # within tolerance
        assert main(["diff", "a", "b", "--runs-dir", str(tmp_path),
                     "--show-all"]) == 0
        assert "[drift]" in capsys.readouterr().out

    def test_ignore_pattern_skips_series(self, tmp_path):
        rows_a = [{"series": "jitter_total", "kind": "counter",
                   "t": 4.0, "window": 4.0, "value": 1.0}]
        rows_b = [{"series": "jitter_total", "kind": "counter",
                   "t": 4.0, "window": 4.0, "value": 9.0}]
        write_run(tmp_path, "a", rows=rows_a)
        write_run(tmp_path, "b", rows=rows_b)
        assert main(["diff", "a", "b", "--runs-dir", str(tmp_path)]) == 1
        assert main(["diff", "a", "b", "--runs-dir", str(tmp_path),
                     "--ignore", "jitter_*"]) == 0

    def test_unknown_run_is_usage_error(self, tmp_path, capsys):
        write_run(tmp_path, "a")
        assert main(["diff", "a", "ghost",
                     "--runs-dir", str(tmp_path)]) == 2
        assert "error" in capsys.readouterr().err

    def test_negative_tolerance_is_usage_error(self, tmp_path):
        write_run(tmp_path, "a")
        assert main(["diff", "a", "a", "--runs-dir", str(tmp_path),
                     "--metric-tolerance", "-1"]) == 2
