"""Unit tests for Belady's MIN, including optimality checks."""

import pytest

from repro.policies.belady import Belady
from repro.policies.registry import make
from tests.conftest import drive


def run_belady(keys, capacity):
    policy = Belady(capacity)
    policy.prepare(keys)
    return [policy.request(key) for key in keys], policy


class TestBelady:
    def test_requires_prepare(self):
        policy = Belady(2)
        with pytest.raises(RuntimeError):
            policy.request("a")

    def test_hand_traced_min_decision(self):
        # Sequence: a b c a b d a b, capacity 2.  Demand-fetch MIN must
        # insert every missed object, so on the c miss it evicts the
        # farther-future of {a, b} (that is b); c is then dropped for
        # the b re-fetch, and the d miss sacrifices b again.
        keys = ["a", "b", "c", "a", "b", "d", "a", "b"]
        outcomes, policy = run_belady(keys, 2)
        assert outcomes == [False, False, False, True, False, False,
                            True, False]

    def test_evicts_never_used_again_first(self):
        keys = ["a", "b", "x", "a", "b", "a", "b"]
        outcomes, policy = run_belady(keys, 2)
        # The x miss must evict b (farther next use than a); the b miss
        # then evicts x (never reused), after which a and b both hit.
        assert outcomes == [False, False, False, True, False, True, True]
        assert sum(outcomes) == 3

    def test_capacity_never_exceeded(self, zipf_keys):
        policy = Belady(30)
        policy.prepare(zipf_keys)
        for key in zipf_keys:
            policy.request(key)
            assert len(policy) <= 30

    def test_too_many_requests_raises(self):
        policy = Belady(2)
        policy.prepare(["a"])
        policy.request("a")
        with pytest.raises(RuntimeError):
            policy.request("b")

    def test_reprepare_resets(self, zipf_keys):
        policy = Belady(20)
        policy.prepare(zipf_keys[:100])
        for key in zipf_keys[:100]:
            policy.request(key)
        misses_first = policy.stats.misses
        policy.stats.reset()
        policy.prepare(zipf_keys[:100])
        for key in zipf_keys[:100]:
            policy.request(key)
        assert policy.stats.misses == misses_first

    @pytest.mark.parametrize("policy_name", [
        "FIFO", "LRU", "LFU", "SLRU", "2Q", "MQ", "ARC", "LIRS",
        "LeCaR", "CACHEUS", "LHD", "FIFO-Reinsertion", "2-bit-CLOCK",
        "QD-LP-FIFO", "S3-FIFO", "SIEVE",
    ])
    def test_optimality_upper_bound(self, policy_name, zipf_keys):
        """No online policy may beat Belady -- the core optimality
        property, checked against the whole policy zoo."""
        capacity = 40
        belady = Belady(capacity)
        belady.prepare(zipf_keys)
        for key in zipf_keys:
            belady.request(key)
        online = make(policy_name, capacity)
        drive(online, zipf_keys)
        assert belady.stats.misses <= online.stats.misses
