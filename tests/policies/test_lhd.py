"""Unit tests for LHD."""

import pytest

from repro.policies.lhd import LHD, _age_bucket, _bucket_mid
from tests.conftest import drive


class TestAgeCoarsening:
    def test_bucket_zero(self):
        assert _age_bucket(0) == 0
        assert _age_bucket(-3) == 0

    def test_log_growth(self):
        assert _age_bucket(1) == 1
        assert _age_bucket(3) == 2
        assert _age_bucket(7) == 3
        assert _age_bucket(2 ** 20) == 20

    def test_bucket_capped(self):
        assert _age_bucket(2 ** 60) == 31

    def test_mid_inside_bucket_range(self):
        for bucket in range(8):
            lo = (1 << bucket) - 1
            hi = (1 << (bucket + 1)) - 2
            assert lo <= _bucket_mid(bucket) <= hi


class TestLHD:
    def test_invalid_sample_size(self):
        with pytest.raises(ValueError):
            LHD(10, sample_size=0)

    def test_basic_hit_miss(self):
        cache = LHD(3)
        assert cache.request("a") is False
        assert cache.request("a") is True

    def test_capacity_never_exceeded(self, zipf_keys):
        cache = LHD(25)
        for key in zipf_keys:
            cache.request(key)
            assert len(cache) <= 25

    def test_index_consistency(self, zipf_keys):
        cache = LHD(20)
        for key in zipf_keys[:3000]:
            cache.request(key)
            assert len(cache._keys) == len(cache._pos) == len(cache._meta)

    def test_reconfiguration_happens(self, zipf_keys):
        cache = LHD(20)
        initial = [row[:] for row in cache._density]
        for key in zipf_keys:
            cache.request(key)
        assert cache._density != initial

    def test_density_prior_prefers_young(self):
        """Before any statistics, the prior ranks younger objects
        denser, giving LRU-ish cold-start evictions."""
        cache = LHD(10)
        densities = cache._density[0]
        assert all(densities[i] >= densities[i + 1]
                   for i in range(len(densities) - 1))

    def test_hits_recorded_in_histograms(self):
        cache = LHD(10)
        cache.request("a")
        cache.request("a")
        assert sum(cache._hits[0]) + sum(cache._hits[1]) > 0

    def test_deterministic_with_seed(self, zipf_keys):
        a = LHD(25, seed=2)
        b = LHD(25, seed=2)
        assert drive(a, zipf_keys) == drive(b, zipf_keys)

    def test_beats_fifo_on_skewed_workload(self, zipf_keys):
        from repro.policies.fifo import FIFO
        lhd, fifo = LHD(50), FIFO(50)
        drive(lhd, zipf_keys)
        drive(fifo, zipf_keys)
        assert lhd.stats.miss_ratio < fifo.stats.miss_ratio

    def test_spends_less_on_unpopular_than_lru(self, rng):
        """The Fig. 3 property, asserted directly: LHD's space-time
        share on the unpopular half is below LRU's."""
        from repro.policies.lru import LRU
        from repro.sim.profiler import profile
        from repro.experiments.fig3 import resource_shares_by_popularity
        from repro.traces.synthetic import one_hit_wonder_trace
        from repro.traces.trace import Trace
        keys = one_hit_wonder_trace(2000, 40000, 0.9, 0.3, rng)
        trace = Trace(name="t", keys=keys)
        cap = 400
        shares = {}
        for policy in (LRU(cap), LHD(cap)):
            result = profile(policy, trace)
            deciles = resource_shares_by_popularity(result, trace)
            shares[policy.name] = sum(deciles[5:])
        assert shares["LHD"] < shares["LRU"]
