"""Property-based tests over the whole policy zoo.

These are the invariants DESIGN.md commits to:

* the cache never exceeds its capacity;
* a request for a cached key is a hit, for an absent key a miss;
* hits + misses == requests;
* identical policies replaying identical traces make identical
  decisions (determinism);
* Belady lower-bounds every online policy's misses;
* an immediate repeat access is always a hit (no policy evicts the
  object it just served between two back-to-back requests).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.policies.belady import Belady
from repro.policies.registry import REGISTRY, make, names

# Policies under property test (Belady handled separately: it needs
# prepare()).
ONLINE_NAMES = [name for name in names() if name != "Belady"]

keys_strategy = st.lists(st.integers(0, 50), min_size=1, max_size=400)
capacity_strategy = st.integers(4, 40)


def replay(name, capacity, keys):
    policy = make(name, capacity)
    outcomes = [policy.request(key) for key in keys]
    return policy, outcomes


@pytest.mark.parametrize("name", ONLINE_NAMES)
@given(keys=keys_strategy, capacity=capacity_strategy)
@settings(max_examples=25, deadline=None)
def test_capacity_and_stats_invariants(name, keys, capacity):
    policy = make(name, capacity)
    hits = 0
    for key in keys:
        # A request for a currently-cached key must hit; an absent key
        # must miss; afterwards the key must be resident.
        resident_before = key in policy
        hit = policy.request(key)
        assert hit == resident_before
        assert key in policy
        assert len(policy) <= capacity
        hits += hit
    assert policy.stats.hits == hits
    assert policy.stats.requests == len(keys)
    assert policy.stats.hits + policy.stats.misses == policy.stats.requests


@pytest.mark.parametrize("name", ONLINE_NAMES)
@given(keys=keys_strategy, capacity=capacity_strategy)
@settings(max_examples=10, deadline=None)
def test_determinism(name, keys, capacity):
    _, first = replay(name, capacity, keys)
    _, second = replay(name, capacity, keys)
    assert first == second


@pytest.mark.parametrize("name", ONLINE_NAMES)
@given(keys=keys_strategy, capacity=capacity_strategy)
@settings(max_examples=10, deadline=None)
def test_immediate_repeat_is_hit(name, keys, capacity):
    policy = make(name, capacity)
    for key in keys:
        policy.request(key)
        assert policy.request(key) is True


@given(keys=keys_strategy, capacity=capacity_strategy)
@settings(max_examples=40, deadline=None)
def test_belady_dominates_all_online_policies(keys, capacity):
    belady = Belady(capacity)
    belady.prepare(keys)
    for key in keys:
        belady.request(key)
    for name in ("FIFO", "LRU", "2-bit-CLOCK", "ARC", "QD-LP-FIFO"):
        spec = REGISTRY[name]
        if capacity < spec.min_capacity:
            continue
        policy = make(name, capacity)
        for key in keys:
            policy.request(key)
        assert belady.stats.misses <= policy.stats.misses, name


@given(keys=keys_strategy)
@settings(max_examples=25, deadline=None)
def test_lru_inclusion_property(keys):
    """LRU's stack property: hits of a size-k LRU are a subset of the
    hits of any larger LRU at every position."""
    from repro.policies.lru import LRU
    small = LRU(8)
    large = LRU(16)
    for key in keys:
        small_hit = small.request(key)
        large_hit = large.request(key)
        assert not (small_hit and not large_hit)


@given(keys=keys_strategy, capacity=st.integers(4, 40))
@settings(max_examples=25, deadline=None)
def test_compulsory_misses_lower_bound(keys, capacity):
    """Every policy misses at least once per distinct key (no
    prefetching exists in this model) -- including Belady."""
    for name in ("FIFO", "LRU", "ARC", "QD-LP-FIFO", "SIEVE"):
        spec = REGISTRY[name]
        if capacity < spec.min_capacity:
            continue
        policy = make(name, capacity)
        for key in keys:
            policy.request(key)
        assert policy.stats.misses >= len(set(keys))


@given(keys=keys_strategy, capacity=capacity_strategy)
@settings(max_examples=15, deadline=None)
def test_fifo_reinsertion_never_worse_than_everything_missing(keys, capacity):
    """Sanity bound: miss count never exceeds the request count, and a
    working set that fits entirely yields only compulsory misses."""
    policy = make("FIFO-Reinsertion", capacity)
    unique = len(set(keys))
    for key in keys:
        policy.request(key)
    if unique <= capacity:
        assert policy.stats.misses == unique
