"""Unit tests for ARC, traced against the FAST'03 pseudocode."""

from repro.policies.arc import ARC
from tests.conftest import drive


class TestARC:
    def test_new_keys_enter_t1(self):
        cache = ARC(4)
        cache.request("a")
        assert cache.in_t1("a")
        assert not cache.in_t2("a")

    def test_hit_moves_to_t2(self):
        cache = ARC(4)
        cache.request("a")
        cache.request("a")
        assert cache.in_t2("a")
        assert not cache.in_t1("a")

    def test_full_t1_evicts_without_ghosting(self):
        """FAST'03 Case IV: when |T1| == c (B1 empty), the T1 LRU is
        dropped outright, not recorded in B1."""
        cache = ARC(2)
        cache.request("a")
        cache.request("b")
        cache.request("c")
        assert "a" not in cache
        assert len(cache._b1) == 0

    def test_b1_hit_grows_p(self):
        cache = ARC(2)
        cache.request("a")
        cache.request("a")      # a -> T2
        cache.request("b")      # T1 = [b]
        cache.request("c")      # replace() pushes b into the B1 ghost
        assert "b" in cache._b1
        assert cache.p == 0.0
        cache.request("b")      # ghost hit in B1: p grows
        assert cache.p > 0.0
        assert cache.in_t2("b")

    def test_b2_hit_shrinks_p(self):
        cache = ARC(2)
        # Put a into T2, then push it out into B2.
        cache.request("a")
        cache.request("a")      # a in T2
        cache.request("b")
        cache.request("c")
        cache.request("b")
        cache.request("c")      # a long gone into B2
        assert "a" not in cache
        p_before = cache.p
        cache.request("a")      # B2 ghost hit: p shrinks (floor 0)
        assert cache.p <= p_before

    def test_capacity_never_exceeded(self, zipf_keys):
        cache = ARC(30)
        for key in zipf_keys:
            cache.request(key)
            assert len(cache) <= 30

    def test_ghost_lists_bounded(self, zipf_keys):
        """|T1|+|B1| <= c and total directory <= 2c (FAST'03 invariants)."""
        cache = ARC(25)
        for key in zipf_keys:
            cache.request(key)
            assert len(cache._t1) + len(cache._b1) <= 25
            total = (len(cache._t1) + len(cache._t2)
                     + len(cache._b1) + len(cache._b2))
            assert total <= 50

    def test_p_stays_in_range(self, zipf_keys):
        cache = ARC(25)
        for key in zipf_keys:
            cache.request(key)
            assert 0.0 <= cache.p <= 25.0

    def test_lists_disjoint(self, zipf_keys):
        cache = ARC(20)
        for key in zipf_keys[:1500]:
            cache.request(key)
            t1, t2 = set(cache._t1), set(cache._t2)
            b1, b2 = set(cache._b1), set(cache._b2)
            assert not (t1 & t2)
            assert not (b1 & b2)
            assert not ((t1 | t2) & (b1 | b2))

    def test_scan_resistance(self, rng):
        """ARC's raison d'etre: scans must not flush the hot set."""
        from repro.traces.synthetic import blend, scan_trace, zipf_trace
        from repro.policies.lru import LRU
        core = zipf_trace(400, 15000, 1.1, rng)
        scan = scan_trace(5000, base=1000)
        keys = blend([core, scan], [0.75, 0.25], rng).tolist()
        arc, lru = ARC(100), LRU(100)
        drive(arc, keys)
        drive(lru, keys)
        assert arc.stats.miss_ratio < lru.stats.miss_ratio

    def test_beats_lru_on_corpus_trace(self):
        """ARC reduces LRU's miss ratio on a representative trace (the
        paper's 6.2%-on-average yardstick)."""
        from repro.traces.corpus import FAMILY_BY_NAME, build_trace
        from repro.policies.lru import LRU
        trace = build_trace(FAMILY_BY_NAME["cdn"], 0, 0.5, 42)
        capacity = trace.cache_size(0.1)
        arc, lru = ARC(capacity), LRU(capacity)
        drive(arc, trace.as_list())
        drive(lru, trace.as_list())
        assert arc.stats.miss_ratio < lru.stats.miss_ratio
