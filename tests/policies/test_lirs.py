"""Unit tests for LIRS, with the invariants the paper found broken in
public implementations."""

import pytest

from repro.policies.lirs import LIRS, _HIR_NONRES, _LIR
from tests.conftest import drive


class TestLIRSBasics:
    def test_capacity_below_two_rejected(self):
        with pytest.raises(ValueError):
            LIRS(1)

    def test_partition(self):
        cache = LIRS(100)
        assert cache.hir_capacity == 1
        assert cache.lir_capacity == 99

    def test_cold_start_fills_lir(self):
        cache = LIRS(10, hir_fraction=0.2)
        for key in "abcdefgh":
            cache.request(key)
        assert cache.lir_count == cache.lir_capacity

    def test_basic_hit(self):
        cache = LIRS(4)
        cache.request("a")
        assert cache.request("a") is True

    def test_resident_hir_in_stack_promotes_to_lir(self):
        cache = LIRS(4, hir_fraction=0.5)  # 2 LIR + 2 HIR
        cache.request("a")
        cache.request("b")   # LIR set full: a, b LIR
        cache.request("c")   # c resident HIR, in stack
        assert not cache.is_lir("c")
        cache.request("c")   # re-reference while in stack: LIR
        assert cache.is_lir("c")
        assert cache.lir_count == cache.lir_capacity  # someone demoted

    def test_capacity_never_exceeded(self, zipf_keys):
        cache = LIRS(30)
        for key in zipf_keys:
            cache.request(key)
            assert len(cache) <= 30


class TestLIRSInvariants:
    def _check(self, cache):
        # stack bottom is always LIR
        tail = cache._stack.tail
        if tail is not None:
            assert cache._state[tail.key] == _LIR
        # LIR count never exceeds the LIR capacity after warmup
        assert cache.lir_count <= cache.lir_capacity
        # every non-resident entry is tracked and in the stack
        for key, state in cache._state.items():
            if state == _HIR_NONRES:
                assert key in cache._stack
                assert key in cache._nonres
        # resident accounting agrees
        assert len(cache) == cache.lir_count + len(cache._queue)

    def test_invariants_zipf(self, zipf_keys):
        cache = LIRS(20)
        for i, key in enumerate(zipf_keys):
            cache.request(key)
            if i % 100 == 0:
                self._check(cache)

    def test_invariants_adversarial_random(self, rng):
        keys = rng.integers(0, 40, 20000).tolist()
        cache = LIRS(10, hir_fraction=0.3)
        for i, key in enumerate(keys):
            cache.request(key)
            if i % 50 == 0:
                self._check(cache)

    def test_nonresident_metadata_bounded(self, rng):
        keys = rng.integers(0, 5000, 30000).tolist()
        cache = LIRS(20, nonresident_factor=2.0)
        for key in keys:
            cache.request(key)
        assert len(cache._nonres) <= 40
        assert cache.stack_size <= 20 + 40 + 20  # LIR + nonres + res-HIR

    def test_promoting_oldest_nonresident_key(self):
        """Regression: promoting a key that is simultaneously the
        oldest non-resident entry must not corrupt the stack (the
        non-resident cap used to reclaim it mid-request)."""
        import numpy as np
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 500, 50000).tolist()
        cache = LIRS(20)
        for key in keys:
            cache.request(key)  # raised KeyError before the fix
        assert len(cache) <= 20


class TestLIRSBehaviour:
    def test_loop_friendliness(self):
        """LIRS's signature: a loop slightly larger than the cache
        still gets hits (LRU/FIFO get zero)."""
        from repro.policies.lru import LRU
        n = 30
        keys = list(range(n)) * 20
        lirs, lru = LIRS(25), LRU(25)
        drive(lirs, keys)
        drive(lru, keys)
        assert lru.stats.hit_ratio == 0.0
        assert lirs.stats.hit_ratio > 0.5

    def test_scan_resistance(self, rng):
        from repro.traces.synthetic import blend, scan_trace, zipf_trace
        from repro.policies.lru import LRU
        core = zipf_trace(400, 15000, 1.1, rng)
        scan = scan_trace(5000, base=1000)
        keys = blend([core, scan], [0.75, 0.25], rng).tolist()
        lirs, lru = LIRS(100), LRU(100)
        drive(lirs, keys)
        drive(lru, keys)
        assert lirs.stats.miss_ratio < lru.stats.miss_ratio
