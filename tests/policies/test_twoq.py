"""Unit tests for 2Q."""


from repro.policies.twoq import TwoQ
from tests.conftest import drive


class TestTwoQ:
    def test_queue_sizing(self):
        cache = TwoQ(100)
        assert cache.kin == 25
        assert cache.kout == 50

    def test_first_miss_enters_a1in(self):
        cache = TwoQ(20)
        cache.request("a")
        assert cache.in_a1in("a")
        assert not cache.in_am("a")

    def test_a1in_hit_does_not_promote(self):
        """2Q's defining behaviour: hits in A1in are treated as
        correlated references and change nothing."""
        cache = TwoQ(20)
        cache.request("a")
        assert cache.request("a") is True
        assert cache.in_a1in("a")

    def test_a1out_rehit_promotes_to_am(self):
        cache = TwoQ(8, kin_fraction=0.25, kout_fraction=0.5)  # kin=2
        cache.request("a")
        for key in ["b", "c"] + [f"x{i}" for i in range(6)]:
            cache.request(key)
        # a has long been pushed through A1in into the A1out ghost.
        assert "a" not in cache
        cache.request("a")
        assert cache.in_am("a")

    def test_am_is_lru(self):
        cache = TwoQ(8, kin_fraction=0.25)
        # Promote a and b into Am via the ghost path.
        for key in ["a", "b"]:
            cache.request(key)
        for i in range(8):
            cache.request(f"x{i}")
        cache.request("a")
        cache.request("b")
        assert cache.in_am("a") and cache.in_am("b")
        # Am LRU order: a older than b; more ghost promotions evict a first.
        for i in range(8):
            cache.request(f"y{i}")
        for i in range(8):
            cache.request(f"y{i}")  # push ys through to ghost... keep simple
        assert len(cache) <= 8

    def test_capacity_never_exceeded(self, zipf_keys):
        cache = TwoQ(30)
        for key in zipf_keys:
            cache.request(key)
            assert len(cache) <= 30

    def test_stats_consistency(self, zipf_keys):
        cache = TwoQ(30)
        hits = sum(drive(cache, zipf_keys))
        assert cache.stats.hits == hits

    def test_beats_lru_on_scan_pollution(self, rng):
        from repro.traces.synthetic import blend, scan_trace, zipf_trace
        from repro.policies.lru import LRU
        core = zipf_trace(400, 15000, 1.1, rng)
        scan = scan_trace(5000, base=1000)
        keys = blend([core, scan], [0.75, 0.25], rng).tolist()
        twoq, lru = TwoQ(100), LRU(100)
        drive(twoq, keys)
        drive(lru, keys)
        assert twoq.stats.miss_ratio < lru.stats.miss_ratio
