"""Unit tests for Segmented LRU."""

import pytest

from repro.policies.slru import SLRU
from tests.conftest import drive


class TestSLRU:
    def test_segment_sizes(self):
        cache = SLRU(10, protected_fraction=0.5)
        assert cache.protected_capacity == 5

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            SLRU(10, protected_fraction=0.0)
        with pytest.raises(ValueError):
            SLRU(10, protected_fraction=1.0)

    def test_miss_enters_probationary(self):
        cache = SLRU(4)
        cache.request("a")
        assert "a" in cache
        assert not cache.in_protected("a")

    def test_hit_promotes_to_protected(self):
        cache = SLRU(4)
        cache.request("a")
        cache.request("a")
        assert cache.in_protected("a")

    def test_eviction_comes_from_probationary(self):
        cache = SLRU(4, protected_fraction=0.5)
        cache.request("a")
        cache.request("a")   # a -> protected
        for key in "bcd":
            cache.request(key)
        cache.request("e")   # evicts from probationary, a survives
        assert "a" in cache
        assert "b" not in cache

    def test_protected_overflow_demotes(self):
        cache = SLRU(4, protected_fraction=0.5)  # protected holds 2
        for key in "ab":
            cache.request(key)
            cache.request(key)    # a, b protected
        cache.request("c")
        cache.request("c")        # c promoted; a demoted to probationary
        assert cache.in_protected("c")
        assert not cache.in_protected("a")
        assert "a" in cache       # demoted, not evicted

    def test_protected_hit_refreshes(self):
        cache = SLRU(4, protected_fraction=0.5)
        cache.request("a"); cache.request("a")
        cache.request("b"); cache.request("b")
        cache.request("a")        # refresh a in protected
        cache.request("c"); cache.request("c")  # demotes b (LRU of protected)
        assert cache.in_protected("a")
        assert not cache.in_protected("b")

    def test_capacity_never_exceeded(self, zipf_keys):
        cache = SLRU(30)
        for key in zipf_keys:
            cache.request(key)
            assert len(cache) <= 30

    def test_capacity_one(self):
        cache = SLRU(1)
        cache.request("a")
        cache.request("a")
        assert "a" in cache
        cache.request("b")
        assert len(cache) == 1

    def test_scan_resistance_vs_lru(self, rng):
        """A scan cannot flush the protected segment, so SLRU beats
        LRU on scan-polluted Zipf traffic."""
        from repro.traces.synthetic import blend, scan_trace, zipf_trace
        from repro.policies.lru import LRU
        core = zipf_trace(400, 15000, 1.1, rng)
        scan = scan_trace(5000, base=1000)
        keys = blend([core, scan], [0.75, 0.25], rng).tolist()
        slru, lru = SLRU(100), LRU(100)
        drive(slru, keys)
        drive(lru, keys)
        assert slru.stats.miss_ratio < lru.stats.miss_ratio
