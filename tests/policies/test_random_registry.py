"""Unit tests for RandomCache and the policy registry."""

import pytest

from repro.policies.random_policy import RandomCache
from repro.policies.registry import REGISTRY, SOTA_NAMES, make, names
from tests.conftest import drive


class TestRandomCache:
    def test_basic_hit_miss(self):
        cache = RandomCache(3)
        assert cache.request("a") is False
        assert cache.request("a") is True

    def test_capacity_never_exceeded(self, zipf_keys):
        cache = RandomCache(25)
        for key in zipf_keys:
            cache.request(key)
            assert len(cache) <= 25

    def test_swap_pop_index_consistency(self, zipf_keys):
        cache = RandomCache(15)
        for key in zipf_keys[:2000]:
            cache.request(key)
            for k, idx in cache._pos.items():
                assert cache._keys[idx] == k

    def test_deterministic_with_seed(self, zipf_keys):
        a = RandomCache(25, seed=9)
        b = RandomCache(25, seed=9)
        assert drive(a, zipf_keys) == drive(b, zipf_keys)


class TestRegistry:
    def test_all_names_instantiate(self):
        for name in names():
            spec = REGISTRY[name]
            policy = make(name, max(64, spec.min_capacity))
            assert policy.capacity >= spec.min_capacity

    def test_unknown_name_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="known policies"):
            make("NotAPolicy", 10)

    def test_min_capacity_enforced(self):
        with pytest.raises(ValueError):
            make("LIRS", 1)

    def test_category_filter(self):
        assert set(names("sota")) == set(SOTA_NAMES)
        assert "FIFO" in names("baseline")
        assert "QD-LP-FIFO" in names("qd")
        assert "Belady" in names("offline")
        assert set(names()) == set(REGISTRY)

    def test_qd_variants_wrap_their_base(self):
        from repro.core.qd import QDCache
        for name in SOTA_NAMES:
            policy = make(f"QD-{name}", 100)
            assert isinstance(policy, QDCache)
            assert policy.name == f"QD-{name}"

    def test_every_policy_handles_a_real_workload(self, zipf_keys):
        """Smoke: every registered policy processes 5000 requests and
        reports consistent stats."""
        for name in names():
            policy = make(name, 64)
            if name == "Belady":
                policy.prepare(zipf_keys)
            hits = sum(policy.request(key) for key in zipf_keys)
            assert policy.stats.hits == hits
            assert policy.stats.requests == len(zipf_keys)
            assert len(policy) <= 64
