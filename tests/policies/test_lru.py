"""Unit tests for LRU, including the classic stack (inclusion) property."""

from repro.policies.lru import LRU
from tests.conftest import drive


class TestLRU:
    def test_least_recent_evicted(self):
        cache = LRU(2)
        cache.request("a")
        cache.request("b")
        cache.request("a")   # a is now most recent
        cache.request("c")   # evicts b
        assert "b" not in cache
        assert "a" in cache and "c" in cache

    def test_victim_helper(self):
        cache = LRU(3)
        for key in "abc":
            cache.request(key)
        assert cache.victim() == "a"
        cache.request("a")
        assert cache.victim() == "b"

    def test_hand_traced_sequence(self):
        """Request-by-request hit pattern on a fixed sequence."""
        cache = LRU(3)
        sequence = ["a", "b", "c", "a", "d", "b", "a", "c", "e", "a"]
        # d evicts b; the b miss evicts c; the c miss evicts d; the e
        # miss evicts b again; a is kept hot throughout.
        expected = [False, False, False, True, False, False, True, False,
                    False, True]
        assert drive(cache, sequence) == expected

    def test_capacity_never_exceeded(self, zipf_keys):
        cache = LRU(35)
        for key in zipf_keys:
            cache.request(key)
            assert len(cache) <= 35

    def test_inclusion_property(self, zipf_keys):
        """LRU is a stack algorithm: a larger cache's hits are a
        superset of a smaller cache's hits at every step."""
        small = LRU(20)
        large = LRU(60)
        for key in zipf_keys[:2000]:
            small_hit = small.request(key)
            large_hit = large.request(key)
            assert not (small_hit and not large_hit)

    def test_loop_pathology(self):
        """Loops longer than the cache give LRU zero hits -- the
        pattern LIRS/ARC were invented for."""
        cache = LRU(5)
        keys = list(range(6)) * 10
        assert not any(drive(cache, keys))

    def test_beats_fifo_on_temporal_locality(self, rng):
        from repro.traces.synthetic import temporal_locality_trace
        from repro.policies.fifo import FIFO
        keys = temporal_locality_trace(500, 20000, 1.0, rng).tolist()
        lru, fifo = LRU(50), FIFO(50)
        drive(lru, keys)
        drive(fifo, keys)
        assert lru.stats.miss_ratio < fifo.stats.miss_ratio
