"""Unit tests for the O(1) LFU structure (and its CR-LFU variant)."""

import pytest

from repro.policies.lfu import LFU


class TestLFUBasics:
    def test_least_frequent_evicted(self):
        cache = LFU(2)
        cache.request("a")
        cache.request("a")
        cache.request("b")
        cache.request("c")   # b (freq 1) evicted, not a (freq 2)
        assert "a" in cache
        assert "b" not in cache

    def test_tie_break_lru_default(self):
        cache = LFU(2)
        cache.request("a")
        cache.request("b")
        cache.request("c")   # tie at freq 1: a is least recent -> evicted
        assert "a" not in cache
        assert "b" in cache

    def test_tie_break_mru_variant(self):
        cache = LFU(2, tie="mru")
        cache.request("a")
        cache.request("b")
        cache.request("c")   # tie at freq 1: b is most recent -> evicted
        assert "b" not in cache
        assert "a" in cache
        assert cache.name == "CR-LFU"

    def test_invalid_tie_rejected(self):
        with pytest.raises(ValueError):
            LFU(2, tie="fifo")

    def test_frequency_tracking(self):
        cache = LFU(5)
        for _ in range(4):
            cache.request("a")
        assert cache.frequency("a") == 4
        assert cache.frequency("missing") == 0

    def test_victim(self):
        cache = LFU(3)
        cache.request("a")
        cache.request("a")
        cache.request("b")
        assert cache.victim() == "b"
        with pytest.raises(KeyError):
            LFU(2).victim()

    def test_capacity_never_exceeded(self, zipf_keys):
        cache = LFU(30)
        for key in zipf_keys:
            cache.request(key)
            assert len(cache) <= 30


class TestStructureOps:
    def test_insert_with_frequency(self):
        cache = LFU(3)
        cache.insert("a", freq=5)
        cache.request("b")
        cache.request("c")   # cache full now
        cache.request("d")   # evicts b or c (freq 1), never a
        assert "a" in cache
        assert cache.frequency("a") == 5

    def test_insert_duplicate_raises(self):
        cache = LFU(3)
        cache.insert("a")
        with pytest.raises(KeyError):
            cache.insert("a")

    def test_insert_past_capacity_raises(self):
        cache = LFU(1)
        cache.insert("a")
        with pytest.raises(OverflowError):
            cache.insert("b")

    def test_insert_invalid_freq_raises(self):
        with pytest.raises(ValueError):
            LFU(2).insert("a", freq=0)

    def test_bump(self):
        cache = LFU(3)
        cache.insert("a")
        cache.bump("a")
        assert cache.frequency("a") == 2
        with pytest.raises(KeyError):
            cache.bump("missing")

    def test_pop_victim(self):
        cache = LFU(3)
        cache.insert("a", 3)
        cache.insert("b", 1)
        cache.insert("c", 2)
        assert cache.pop_victim() == "b"
        assert cache.pop_victim() == "c"
        assert cache.pop_victim() == "a"
        with pytest.raises(KeyError):
            cache.pop_victim()

    def test_remove(self):
        cache = LFU(3)
        cache.insert("a", 1)
        cache.insert("b", 2)
        assert cache.remove("a") is True
        assert cache.remove("a") is False
        assert cache.victim() == "b"

    def test_remove_then_victim_consistent(self):
        """Removing the only min-frequency key must advance min_freq."""
        cache = LFU(4)
        cache.insert("a", 1)
        cache.insert("b", 3)
        cache.insert("c", 3)
        cache.remove("a")
        assert cache.victim() in ("b", "c")

    def test_interleaved_ops_consistency(self, rng):
        """LFU invariant: the victim always has the global min count."""
        cache = LFU(20)
        keys = rng.integers(0, 60, 3000).tolist()
        for key in keys:
            cache.request(key)
            victim = cache.victim()
            min_freq = min(cache.frequency(k)
                           for k in cache._freq_of)
            assert cache.frequency(victim) == min_freq
