"""Unit tests for W-TinyLFU."""

import pytest

from repro.policies.wtinylfu import WTinyLFU, _SegmentedLRU
from tests.conftest import drive


class TestSegmentedLRU:
    def test_insert_and_hit_promote(self):
        slru = _SegmentedLRU(10, protected_fraction=0.8)
        slru.insert("a")
        assert "a" in slru
        slru.hit("a")
        assert "a" in slru._protected

    def test_victim_prefers_probationary(self):
        slru = _SegmentedLRU(10, protected_fraction=0.8)
        slru.insert("a")
        slru.hit("a")
        slru.insert("b")
        assert slru.victim() == "b"

    def test_protected_overflow_demotes(self):
        slru = _SegmentedLRU(5, protected_fraction=0.4)  # protected 2
        for key in "abc":
            slru.insert(key)
            slru.hit(key)
        assert len(slru._protected) <= 2

    def test_pop_victim(self):
        slru = _SegmentedLRU(4, protected_fraction=0.5)
        slru.insert("a")
        slru.insert("b")
        assert slru.pop_victim() == "a"
        assert "a" not in slru


class TestWTinyLFU:
    def test_validation(self):
        with pytest.raises(ValueError):
            WTinyLFU(1)
        with pytest.raises(ValueError):
            WTinyLFU(10, window_fraction=0.0)

    def test_partition(self):
        cache = WTinyLFU(100)
        assert cache.window_capacity == 1
        assert cache.main_capacity == 99

    def test_miss_enters_window(self):
        cache = WTinyLFU(100)
        cache.request("a")
        assert cache.in_window("a")

    def test_window_overflow_moves_to_main_when_space(self):
        cache = WTinyLFU(100)
        cache.request("a")
        cache.request("b")   # window holds 1: a pushed into main
        assert cache.in_main("a")
        assert cache.in_window("b")

    def test_admission_duel_rejects_cold_candidate(self):
        cache = WTinyLFU(10, window_fraction=0.1)  # window 1, main 9
        # Build a hot main cache.
        for key in [f"h{i}" for i in range(9)]:
            for _ in range(5):
                cache.request(key)
        # 8 hot keys graduated into main; one remains in the window.
        assert len(cache) == 9
        # A stream of one-hit wonders must not displace the hot set.
        for i in range(30):
            cache.request(f"cold{i}")
        hot_resident = sum(f"h{i}" in cache for i in range(9))
        assert hot_resident >= 8

    def test_frequent_candidate_admitted(self):
        cache = WTinyLFU(6, window_fraction=0.2)  # window 1, main 5
        for key in ["a", "b", "c", "d", "e"]:
            cache.request(key)   # fill main with once-seen keys
        for _ in range(6):
            cache.request("hot")  # hot builds sketch frequency
        assert "hot" in cache

    def test_capacity_never_exceeded(self, zipf_keys):
        cache = WTinyLFU(30)
        for key in zipf_keys:
            cache.request(key)
            assert len(cache) <= 30

    def test_stats_consistency(self, zipf_keys):
        cache = WTinyLFU(30)
        hits = sum(drive(cache, zipf_keys))
        assert cache.stats.hits == hits
        assert cache.stats.requests == len(zipf_keys)

    def test_beats_lru_on_ohw_workload(self, rng):
        """Admission filtering shines exactly where QD does: one-hit
        wonders must not pollute the cache."""
        from repro.policies.lru import LRU
        from repro.traces.synthetic import one_hit_wonder_trace
        keys = one_hit_wonder_trace(3000, 50000, 1.0, 0.3, rng).tolist()
        tiny, lru = WTinyLFU(500), LRU(500)
        drive(tiny, keys)
        drive(lru, keys)
        assert tiny.stats.miss_ratio < lru.stats.miss_ratio

    def test_deterministic(self, zipf_keys):
        a = WTinyLFU(40)
        b = WTinyLFU(40)
        assert drive(a, zipf_keys) == drive(b, zipf_keys)
