"""Unit tests for plain FIFO."""

from repro.policies.fifo import FIFO
from tests.conftest import drive


class TestFIFO:
    def test_insertion_order_eviction(self):
        cache = FIFO(3)
        for key in "abcd":
            cache.request(key)
        assert "a" not in cache
        assert {"b", "c", "d"} == set(cache._queue)

    def test_hits_do_not_change_order(self):
        cache = FIFO(2)
        cache.request("a")
        cache.request("b")
        cache.request("a")   # hit; FIFO does nothing
        cache.request("c")   # still evicts a (oldest insertion)
        assert "a" not in cache
        assert "b" in cache

    def test_hit_and_miss_return_values(self):
        cache = FIFO(2)
        assert cache.request("a") is False
        assert cache.request("a") is True

    def test_len_and_contains(self):
        cache = FIFO(5)
        for key in "abc":
            cache.request(key)
        assert len(cache) == 3
        assert "b" in cache and "z" not in cache

    def test_capacity_never_exceeded(self, zipf_keys):
        cache = FIFO(40)
        for key in zipf_keys:
            cache.request(key)
            assert len(cache) <= 40

    def test_stats(self, zipf_keys):
        cache = FIFO(40)
        hits = sum(drive(cache, zipf_keys))
        assert cache.stats.hits == hits
        assert cache.stats.requests == len(zipf_keys)

    def test_cyclic_loop_worst_case(self):
        """A loop one longer than the cache yields zero hits (the
        classic FIFO == LRU == 0 pathology)."""
        cache = FIFO(5)
        keys = list(range(6)) * 10
        assert not any(drive(cache, keys))
