"""Unit tests for LRFU."""

import pytest

from repro.policies.lrfu import LRFU
from tests.conftest import drive


class TestLRFU:
    def test_invalid_lambda(self):
        with pytest.raises(ValueError):
            LRFU(10, lambda_=-0.1)

    def test_basic_hit_miss(self):
        cache = LRFU(3)
        assert cache.request("a") is False
        assert cache.request("a") is True

    def test_high_lambda_behaves_like_lru(self, zipf_keys):
        """With strong decay only recency matters: decisions should
        closely track LRU."""
        from repro.policies.lru import LRU
        lrfu = LRFU(30, lambda_=10.0)
        lru = LRU(30)
        agreements = sum(
            lrfu.request(key) == lru.request(key) for key in zipf_keys)
        assert agreements / len(zipf_keys) > 0.98

    def test_low_lambda_behaves_like_lfu(self):
        """lambda -> 0: frequency dominates, so a twice-used object
        outlives a once-used newer one."""
        cache = LRFU(2, lambda_=1e-9)
        cache.request("a")
        cache.request("a")
        cache.request("b")
        cache.request("c")   # b (CRF ~1) evicted, a (CRF ~2) kept
        assert "a" in cache
        assert "b" not in cache

    def test_capacity_never_exceeded(self, zipf_keys):
        cache = LRFU(25)
        for key in zipf_keys:
            cache.request(key)
            assert len(cache) <= 25

    def test_heap_compaction_bounds_memory(self, zipf_keys):
        cache = LRFU(20)
        for key in zipf_keys:
            cache.request(key)
        assert len(cache._heap) <= 8 * max(len(cache._weight), 16)

    def test_weight_monotone_on_rehit(self):
        """Re-accessing an object must strictly increase its weight
        (CRF grows by the new access)."""
        cache = LRFU(5, lambda_=0.01)
        cache.request("a")
        w1 = cache._weight["a"]
        cache.request("x")
        cache.request("a")
        assert cache._weight["a"] > w1

    def test_stats_consistency(self, zipf_keys):
        cache = LRFU(25)
        hits = sum(drive(cache, zipf_keys))
        assert cache.stats.hits == hits

    def test_beats_fifo_on_skewed_workload(self, zipf_keys):
        from repro.policies.fifo import FIFO
        lrfu, fifo = LRFU(50), FIFO(50)
        drive(lrfu, zipf_keys)
        drive(fifo, zipf_keys)
        assert lrfu.stats.miss_ratio < fifo.stats.miss_ratio
