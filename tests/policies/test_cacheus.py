"""Unit tests for CACHEUS (SR-LRU + CR-LFU with adaptive learning rate)."""

import pytest

from repro.policies.cacheus import CACHEUS, _SRLRU
from tests.conftest import drive


class TestSRLRU:
    def test_insert_goes_to_scan_region(self):
        srlru = _SRLRU(4)
        srlru.insert("a")
        assert "a" in srlru._scan

    def test_hit_moves_to_reuse_region(self):
        srlru = _SRLRU(4)
        srlru.insert("a")
        srlru.hit("a")
        assert "a" in srlru._reuse
        assert "a" not in srlru._scan

    def test_victim_prefers_scan_region(self):
        srlru = _SRLRU(4)
        srlru.insert("a")
        srlru.hit("a")
        srlru.insert("b")
        assert srlru.victim() == "b"

    def test_victim_falls_back_to_reuse(self):
        srlru = _SRLRU(4)
        srlru.insert("a")
        srlru.hit("a")
        assert srlru.victim() == "a"

    def test_reuse_overflow_demotes(self):
        srlru = _SRLRU(4)  # scan_target 2 -> max_reuse 2
        for key in "abc":
            srlru.insert(key)
            srlru.hit(key)
        assert len(srlru._reuse) <= 2
        assert len(srlru._scan) >= 1

    def test_history_hit_shrinks_scan_target(self):
        srlru = _SRLRU(10)
        before = srlru.scan_target
        srlru.on_history_hit()
        assert srlru.scan_target == before - 1

    def test_scan_eviction_grows_scan_target(self):
        srlru = _SRLRU(10)
        before = srlru.scan_target
        srlru.on_scan_eviction()
        assert srlru.scan_target == before + 1

    def test_scan_target_bounded(self):
        srlru = _SRLRU(3)
        for _ in range(20):
            srlru.on_history_hit()
        assert srlru.scan_target >= 1
        for _ in range(20):
            srlru.on_scan_eviction()
        assert srlru.scan_target <= 2


class TestCACHEUS:
    def test_basic_hit_miss(self):
        cache = CACHEUS(3)
        assert cache.request("a") is False
        assert cache.request("a") is True

    def test_weights_normalised(self, zipf_keys):
        cache = CACHEUS(25)
        for key in zipf_keys:
            cache.request(key)
            w1, w2 = cache.weights
            assert w1 + w2 == pytest.approx(1.0)

    def test_learning_rate_in_bounds(self, zipf_keys):
        cache = CACHEUS(25)
        for key in zipf_keys:
            cache.request(key)
            assert CACHEUS._LR_MIN <= cache.learning_rate <= CACHEUS._LR_MAX

    def test_experts_agree_on_contents(self, zipf_keys):
        cache = CACHEUS(20)
        for key in zipf_keys[:2000]:
            cache.request(key)
            resident = set(cache._present)
            assert set(cache._crlfu._freq_of) == resident
            srlru_keys = set(cache._srlru._scan) | set(cache._srlru._reuse)
            assert srlru_keys == resident

    def test_histories_bounded(self, zipf_keys):
        cache = CACHEUS(20)
        for key in zipf_keys:
            cache.request(key)
            assert len(cache._hist_srlru) <= 10
            assert len(cache._hist_crlfu) <= 10

    def test_capacity_never_exceeded(self, zipf_keys):
        cache = CACHEUS(25)
        for key in zipf_keys:
            cache.request(key)
            assert len(cache) <= 25

    def test_deterministic_with_seed(self, zipf_keys):
        a = CACHEUS(25, seed=5)
        b = CACHEUS(25, seed=5)
        assert drive(a, zipf_keys) == drive(b, zipf_keys)

    def test_beats_fifo_on_skewed_workload(self, zipf_keys):
        from repro.policies.fifo import FIFO
        cacheus, fifo = CACHEUS(50), FIFO(50)
        drive(cacheus, zipf_keys)
        drive(fifo, zipf_keys)
        assert cacheus.stats.miss_ratio < fifo.stats.miss_ratio

    def test_scan_resistance(self, rng):
        from repro.traces.synthetic import blend, scan_trace, zipf_trace
        from repro.policies.lru import LRU
        core = zipf_trace(400, 15000, 1.1, rng)
        scan = scan_trace(5000, base=1000)
        keys = blend([core, scan], [0.75, 0.25], rng).tolist()
        cacheus, lru = CACHEUS(100), LRU(100)
        drive(cacheus, keys)
        drive(lru, keys)
        assert cacheus.stats.miss_ratio < lru.stats.miss_ratio
