"""Unit tests for hyperbolic caching."""

import pytest

from repro.policies.hyperbolic import Hyperbolic
from tests.conftest import drive


class TestHyperbolic:
    def test_invalid_sample_size(self):
        with pytest.raises(ValueError):
            Hyperbolic(10, sample_size=0)

    def test_basic_hit_miss(self):
        cache = Hyperbolic(3)
        assert cache.request("a") is False
        assert cache.request("a") is True

    def test_small_cache_exact_eviction(self):
        """With n <= sample_size the whole cache is the sample, so the
        eviction is exact: the lowest request *rate* goes."""
        cache = Hyperbolic(2, sample_size=64)
        for _ in range(6):
            cache.request("a")   # a: high rate
        cache.request("b")       # b: rate 1/age, decaying
        for _ in range(4):
            cache.request("a")   # let b age without hits
        cache.request("c")       # a: ~10/11, b: ~1/5 -> evict b
        assert "a" in cache
        assert "b" not in cache

    def test_idle_priority_decays(self):
        cache = Hyperbolic(30)
        cache.request("a")
        p0 = cache._priority("a")
        for i in range(20):
            cache.request(f"x{i}")  # cache big enough: a stays resident
        assert cache._priority("a") < p0

    def test_capacity_never_exceeded(self, zipf_keys):
        cache = Hyperbolic(25)
        for key in zipf_keys:
            cache.request(key)
            assert len(cache) <= 25

    def test_internal_indexes_consistent(self, zipf_keys):
        cache = Hyperbolic(20)
        for key in zipf_keys[:2000]:
            cache.request(key)
            assert len(cache._keys) == len(cache._pos) == len(cache._meta)
            for k, idx in list(cache._pos.items())[:5]:
                assert cache._keys[idx] == k

    def test_deterministic_with_seed(self, zipf_keys):
        a = Hyperbolic(25, seed=3)
        b = Hyperbolic(25, seed=3)
        assert drive(a, zipf_keys) == drive(b, zipf_keys)

    def test_beats_fifo_on_skewed_workload(self, zipf_keys):
        from repro.policies.fifo import FIFO
        hyp, fifo = Hyperbolic(50), FIFO(50)
        drive(hyp, zipf_keys)
        drive(fifo, zipf_keys)
        assert hyp.stats.miss_ratio < fifo.stats.miss_ratio
