"""Unit tests for LeCaR."""

import pytest

from repro.policies.lecar import LeCaR
from tests.conftest import drive


class TestLeCaR:
    def test_initial_weights(self):
        cache = LeCaR(10)
        assert cache.weights == (0.5, 0.5)

    def test_basic_hit_miss(self):
        cache = LeCaR(3)
        assert cache.request("a") is False
        assert cache.request("a") is True

    def test_weights_stay_normalised(self, zipf_keys):
        cache = LeCaR(25)
        for key in zipf_keys:
            cache.request(key)
            w_lru, w_lfu = cache.weights
            assert w_lru + w_lfu == pytest.approx(1.0)
            assert 0.0 < w_lru < 1.0

    def test_history_hit_boosts_other_expert(self):
        cache = LeCaR(2, seed=0)
        # Force evictions and replay an evicted key: whichever history
        # it sits in, the other expert's weight must rise.
        for key in ["a", "b", "c", "d", "e"]:
            cache.request(key)
        victim = next(iter(cache._hist_lru), None)
        if victim is None:
            victim = next(iter(cache._hist_lfu))
            before = cache.w_lru
            cache.request(victim)
            assert cache.w_lru > before
        else:
            before = cache.w_lfu
            cache.request(victim)
            assert cache.w_lfu > before

    def test_history_restores_frequency(self):
        cache = LeCaR(2, seed=1)
        for _ in range(5):
            cache.request("a")
        # Evict a by churning.
        for key in ["b", "c", "d", "e", "f"]:
            cache.request(key)
        if "a" in cache._hist_lru or "a" in cache._hist_lfu:
            cache.request("a")
            assert cache._lfu.frequency("a") > 1

    def test_histories_bounded(self, zipf_keys):
        cache = LeCaR(20)
        for key in zipf_keys:
            cache.request(key)
            assert len(cache._hist_lru) <= 20
            assert len(cache._hist_lfu) <= 20

    def test_structures_agree(self, zipf_keys):
        cache = LeCaR(20)
        for key in zipf_keys[:2000]:
            cache.request(key)
            assert set(cache._lru) == set(cache._lfu._freq_of)

    def test_capacity_never_exceeded(self, zipf_keys):
        cache = LeCaR(25)
        for key in zipf_keys:
            cache.request(key)
            assert len(cache) <= 25

    def test_deterministic_with_seed(self, zipf_keys):
        a = LeCaR(25, seed=7)
        b = LeCaR(25, seed=7)
        assert drive(a, zipf_keys) == drive(b, zipf_keys)

    def test_beats_fifo_on_skewed_workload(self, zipf_keys):
        from repro.policies.fifo import FIFO
        lecar, fifo = LeCaR(50), FIFO(50)
        drive(lecar, zipf_keys)
        drive(fifo, zipf_keys)
        assert lecar.stats.miss_ratio < fifo.stats.miss_ratio
