"""Unit tests for Multi-Queue (MQ)."""

import pytest

from repro.policies.mq import MQ
from tests.conftest import drive


class TestMQ:
    def test_invalid_num_queues(self):
        with pytest.raises(ValueError):
            MQ(10, num_queues=0)

    def test_queue_index_by_frequency(self):
        cache = MQ(10)
        cache.request("a")            # freq 1 -> Q0
        assert cache.queue_of("a") == 0
        cache.request("a")            # freq 2 -> Q1
        assert cache.queue_of("a") == 1
        cache.request("a")
        cache.request("a")            # freq 4 -> Q2
        assert cache.queue_of("a") == 2

    def test_queue_index_capped(self):
        cache = MQ(10, num_queues=3)
        for _ in range(100):
            cache.request("a")
        assert cache.queue_of("a") == 2

    def test_eviction_from_lowest_queue(self):
        cache = MQ(2)
        cache.request("a")
        cache.request("a")   # a in Q1
        cache.request("b")   # b in Q0
        cache.request("c")   # evicts b (lowest queue LRU), not a
        assert "a" in cache
        assert "b" not in cache

    def test_ghost_restores_frequency(self):
        # Short lifetime so "a" expires, demotes to Q0 and gets evicted
        # into Qout during the churn; a large ghost keeps it remembered.
        cache = MQ(2, lifetime=2, ghost_factor=50)
        for _ in range(4):
            cache.request("a")   # freq 4 -> Q2
        for i in range(20):
            cache.request(f"k{i}")
        assert "a" not in cache
        cache.request("a")       # readmitted with freq 4 + 1 = 5 -> Q2
        assert cache.queue_of("a") == 2

    def test_expired_head_demoted(self):
        cache = MQ(4, lifetime=3)
        cache.request("a")
        cache.request("a")       # a in Q1
        assert cache.queue_of("a") == 1
        # Let a's lifetime expire while other requests tick the clock.
        for key in ["b", "c", "d", "b", "c", "d"]:
            cache.request(key)
        assert cache.queue_of("a") == 0  # demoted Q1 -> Q0

    def test_capacity_never_exceeded(self, zipf_keys):
        cache = MQ(30)
        for key in zipf_keys:
            cache.request(key)
            assert len(cache) <= 30

    def test_meta_matches_queues(self, zipf_keys):
        cache = MQ(25)
        for key in zipf_keys[:2000]:
            cache.request(key)
        total = sum(len(q) for q in cache._queues)
        assert total == len(cache._meta) == len(cache)
        for idx, queue in enumerate(cache._queues):
            for key in queue:
                assert cache._meta[key][2] == idx

    def test_stats_consistency(self, zipf_keys):
        cache = MQ(30)
        hits = sum(drive(cache, zipf_keys))
        assert cache.stats.hits == hits

    def test_beats_fifo_on_skewed_workload(self, zipf_keys):
        from repro.policies.fifo import FIFO
        mq, fifo = MQ(50), FIFO(50)
        drive(mq, zipf_keys)
        drive(fifo, zipf_keys)
        assert mq.stats.miss_ratio < fifo.stats.miss_ratio
