"""Registry construction API: make(), aliases, params, did-you-mean."""

import numpy as np
import pytest

from repro.policies.registry import (
    ALIASES,
    REGISTRY,
    canonical_name,
    make,
    names,
    resolve,
)
from repro.traces.synthetic import zipf_trace

from tests.conftest import drive


class TestResolve:
    @pytest.mark.parametrize("spelling, canonical", [
        ("sieve", "SIEVE"),
        ("FIFO", "FIFO"),
        ("fifo-reinsertion", "FIFO-Reinsertion"),
        ("FIFO_Reinsertion", "FIFO-Reinsertion"),
        ("second-chance", "FIFO-Reinsertion"),
        ("secondchance", "FIFO-Reinsertion"),
        ("2bit-clock", "2-bit-CLOCK"),
        ("2 bit clock", "2-bit-CLOCK"),
        ("clock", "2-bit-CLOCK"),
        ("clock2", "2-bit-CLOCK"),
        ("clock3", "3-bit-CLOCK"),
        ("optimal", "Belady"),
        ("OPT", "Belady"),
        ("qd_lp_fifo", "QD-LP-FIFO"),
        ("s3fifo", "S3-FIFO"),
        ("w-tinylfu", "W-TinyLFU"),
        ("tinylfu", "W-TinyLFU"),
    ])
    def test_aliases_and_spellings(self, spelling, canonical):
        assert resolve(spelling).name == canonical
        assert canonical_name(spelling) == canonical

    def test_every_registry_name_resolves_to_itself(self):
        for name in REGISTRY:
            assert resolve(name).name == name

    def test_every_alias_targets_a_real_policy(self):
        for target in ALIASES.values():
            assert target in REGISTRY

    def test_did_you_mean_on_typo(self):
        with pytest.raises(KeyError) as excinfo:
            resolve("seive")
        message = excinfo.value.args[0]
        assert "SIEVE" in message
        assert "did you mean" in message.lower()

    def test_unknown_name_lists_known_names(self):
        with pytest.raises(KeyError) as excinfo:
            resolve("zzzz-not-a-policy")
        assert "FIFO" in excinfo.value.args[0]


class TestMake:
    def test_param_passthrough_clock_bits(self):
        policy = make("2-bit-CLOCK", 100, bits=5)
        assert policy.bits == 5

    def test_param_passthrough_qd_fraction(self):
        policy = make("QD-ARC", 100, probation_fraction=0.25)
        assert policy.probation_capacity == 25
        assert policy.main_capacity == 75

    def test_alias_with_params_bit_identical(self):
        """Acceptance: make("2-bit-CLOCK", C) == make("clock2", C, bits=2)."""
        keys = zipf_trace(2000, 20000, 1.0, np.random.default_rng(7)).tolist()
        via_name = make("2-bit-CLOCK", 100)
        via_alias = make("clock2", 100, bits=2)
        assert drive(via_name, keys) == drive(via_alias, keys)
        assert via_name.stats.hits == via_alias.stats.hits

    def test_bad_param_names_policy_and_params(self):
        with pytest.raises(TypeError) as excinfo:
            make("LRU", 100, probation_fraction=0.1)
        message = str(excinfo.value)
        assert "'LRU'" in message
        assert "probation_fraction" in message

    def test_unknown_policy_raises_keyerror(self):
        with pytest.raises(KeyError):
            make("not-a-policy", 100)

    def test_capacity_respected(self):
        policy = make("sieve", 64)
        assert policy.capacity == 64


class TestNames:
    def test_names_filterable_by_category(self):
        everything = names()
        assert "FIFO" in everything and "LRU" in everything
        for category in {spec.category for spec in REGISTRY.values()}:
            subset = names(category)
            assert subset
            assert set(subset) <= set(everything)

    def test_unknown_category_is_empty(self):
        assert names("no-such-category") == []
