"""CLI coverage for `repro hierarchy` and `repro experiment tiered`."""

from repro.cli import build_parser, main


class TestHierarchyParser:
    def test_defaults(self):
        args = build_parser().parse_args(["hierarchy"])
        assert args.family == "cdn"
        assert args.policy == "qd-lp-fifo"
        assert args.flash_policy == "fifo"
        assert args.admission == "admit-all"
        assert args.dram_fraction == 0.1
        assert args.ttl == 0


class TestHierarchyCommand:
    def test_happy_path(self, capsys):
        code = main(["hierarchy", "--family", "cdn", "--scale", "0.1",
                     "--admission", "ghost"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Sized-QD-LP-FIFO" in out
        assert "overall hit ratio" in out
        assert "write amp" in out

    def test_explicit_bytes_override_fractions(self, capsys):
        code = main(["hierarchy", "--family", "cdn", "--scale", "0.1",
                     "--dram-bytes", "65536",
                     "--flash-bytes", "262144"])
        assert code == 0
        assert "dram      : 65536 bytes" in capsys.readouterr().out

    def test_ttl_and_no_promote(self, capsys):
        code = main(["hierarchy", "--family", "wiki", "--scale", "0.1",
                     "--ttl", "200", "--no-promote",
                     "--policy", "lru"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ttl       : 200 requests" in out
        assert "Sized-LRU" in out

    def test_unknown_policy_is_user_error(self, capsys):
        code = main(["hierarchy", "--family", "cdn", "--scale", "0.1",
                     "--policy", "nosuch"])
        assert code == 2
        assert "unknown sized policy" in capsys.readouterr().err

    def test_unknown_family_is_user_error(self, capsys):
        code = main(["hierarchy", "--family", "nope"])
        assert code == 2
        assert "unknown family" in capsys.readouterr().err

    def test_list_shows_sized_section(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "sized" in out
        assert "Sized-QD-LP-FIFO" in out
        assert "GDSF" in out


class TestTieredExperiment:
    def test_dispatches_and_renders(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        assert main(["experiment", "tiered", "--tier", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "X7" in out
        assert "flash-write savings" in out
        assert (tmp_path / "tiered.txt").exists()
