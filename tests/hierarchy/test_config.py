"""TierConfig / HierarchyConfig validation and the unified registry."""

import dataclasses

import pytest

from repro.hierarchy import (
    CacheHierarchy,
    HierarchyConfig,
    TierConfig,
    dram_flash_config,
)
from repro.policies.registry import (
    SIZED_COUNTERPARTS,
    SIZED_REGISTRY,
    canonical_sized_name,
    make_sized,
    resolve_sized,
    sized_names,
)
from repro.sized.base import SizedEvictionPolicy


class TestSizedRegistry:
    @pytest.mark.parametrize("spelling, canonical", [
        ("Sized-LRU", "Sized-LRU"),
        ("sized_lru", "Sized-LRU"),
        ("lru", "Sized-LRU"),               # unsized name -> counterpart
        ("fifo", "Sized-FIFO"),
        ("clock", "Sized-2-bit-CLOCK"),     # unsized *alias* -> counterpart
        ("qd-lp-fifo", "Sized-QD-LP-FIFO"),
        ("qdlpfifo", "Sized-QD-LP-FIFO"),
        ("gdsf", "GDSF"),
        ("greedy-dual-size-frequency", "GDSF"),
        ("sized clock", "Sized-2-bit-CLOCK"),
        ("qd-gdsf", "Sized-QD-GDSF"),
    ])
    def test_aliases_and_spellings(self, spelling, canonical):
        assert resolve_sized(spelling).name == canonical
        assert canonical_sized_name(spelling) == canonical

    def test_every_sized_name_resolves_to_itself(self):
        for name in sized_names():
            assert resolve_sized(name).name == name

    def test_counterparts_target_real_sized_policies(self):
        for target in SIZED_COUNTERPARTS.values():
            assert target in SIZED_REGISTRY

    def test_did_you_mean(self):
        with pytest.raises(KeyError) as excinfo:
            resolve_sized("sized-lru2")
        assert "did you mean" in excinfo.value.args[0].lower()

    def test_unsized_policy_without_counterpart(self):
        with pytest.raises(KeyError) as excinfo:
            resolve_sized("ARC")
        assert "no size-aware counterpart" in excinfo.value.args[0]

    def test_make_sized_builds_policies(self):
        for name in sized_names():
            policy = make_sized(name, 1 << 20)
            assert isinstance(policy, SizedEvictionPolicy)
            assert policy.capacity_bytes == 1 << 20

    def test_make_sized_param_passthrough(self):
        clock = make_sized("sized-3-bit-clock", 1 << 16)
        assert clock.bits == 3
        clock = make_sized("sized-2-bit-clock", 1 << 16, bits=1)
        assert clock.bits == 1

    def test_make_sized_rejects_bad_params(self):
        with pytest.raises(TypeError) as excinfo:
            make_sized("sized-lru", 1 << 16, bogus=1)
        assert "Sized-LRU" in str(excinfo.value)

    def test_make_sized_min_capacity(self):
        with pytest.raises(ValueError):
            make_sized("sized-qd-lp-fifo", 1)


class TestTierConfig:
    def test_frozen(self):
        tier = TierConfig(name="dram", capacity_bytes=1024)
        with pytest.raises(dataclasses.FrozenInstanceError):
            tier.capacity_bytes = 2048

    def test_policy_resolved_to_canonical(self):
        tier = TierConfig(name="dram", capacity_bytes=1024, policy="lru")
        assert tier.policy == "Sized-LRU"

    def test_unknown_policy_fails_at_config_time(self):
        with pytest.raises(KeyError):
            TierConfig(name="dram", capacity_bytes=1024, policy="nope")

    @pytest.mark.parametrize("capacity", [0, -1, "big", None, 1.5])
    def test_capacity_validated(self, capacity):
        with pytest.raises((ValueError, TypeError)):
            TierConfig(name="dram", capacity_bytes=capacity)

    def test_dict_params_normalised_to_sorted_tuples(self):
        tier = TierConfig(name="dram", capacity_bytes=1024,
                          policy="sized-2-bit-clock",
                          policy_params={"bits": 3},
                          admission="frequency",
                          admission_params={"threshold": 3})
        assert tier.policy_params == (("bits", 3),)
        assert tier.policy_kwargs == {"bits": 3}
        assert tier.admission_kwargs == {"threshold": 3}

    def test_negative_costs_rejected(self):
        with pytest.raises(ValueError):
            TierConfig(name="dram", capacity_bytes=1024, read_cost=-1.0)

    def test_bad_admission_rejected(self):
        with pytest.raises(ValueError):
            TierConfig(name="dram", capacity_bytes=1024, admission="lru")

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            TierConfig(name="dram", capacity_bytes=1024, kind="tape")


class TestHierarchyConfig:
    def test_needs_a_tier(self):
        with pytest.raises(ValueError):
            HierarchyConfig(tiers=())

    def test_tier_names_unique(self):
        tier = TierConfig(name="x", capacity_bytes=1024)
        with pytest.raises(ValueError):
            HierarchyConfig(tiers=(tier, tier))

    def test_rejects_non_tierconfig(self):
        with pytest.raises(TypeError):
            HierarchyConfig(tiers=({"name": "dram"},))

    def test_ttl_and_jitter_ranges(self):
        tier = TierConfig(name="x", capacity_bytes=1024)
        with pytest.raises(ValueError):
            HierarchyConfig(tiers=(tier,), ttl=-1)
        with pytest.raises(ValueError):
            HierarchyConfig(tiers=(tier,), ttl_jitter=1.0)

    def test_dram_flash_helper(self):
        config = dram_flash_config(1024, 4096, flash_admission="ghost")
        assert config.tier_names == ("dram", "flash")
        assert config.tiers[0].policy == "Sized-QD-LP-FIFO"
        assert config.tiers[1].kind == "flash"
        assert config.tiers[1].admission == "ghost"
        assert config.tiers[1].write_cost > config.tiers[0].write_cost
        assert config.backend_read_cost > config.tiers[1].read_cost


class TestHierarchyConstruction:
    def test_rejects_unknown_kwargs(self):
        with pytest.raises(TypeError) as excinfo:
            CacheHierarchy(capacity=1024)
        assert "unexpected keyword" in str(excinfo.value)

    def test_rejects_no_config_no_legacy(self):
        with pytest.raises(TypeError):
            CacheHierarchy()

    def test_rejects_wrong_config_type(self):
        with pytest.raises(TypeError):
            CacheHierarchy(config={"tiers": []})
