"""Admission controllers: ghost probation, frequency threshold, bounds."""

import pytest

from repro.hierarchy.admission import (
    AdmitAll,
    FrequencyAdmission,
    GhostAdmission,
    make_admission,
)


class TestAdmitAll:
    def test_always_admits(self):
        controller = AdmitAll()
        assert controller.admit("a", 100)
        assert controller.admit("a", 100)


class TestGhostAdmission:
    def test_reject_then_admit_on_repeat(self):
        controller = GhostAdmission(capacity_bytes=1 << 20)
        assert not controller.admit("a", 100)   # remembered, rejected
        assert controller.admit("a", 100)       # repeat: admitted
        # admission consumed the ghost entry: next demotion starts over
        assert not controller.admit("a", 100)

    def test_one_hit_wonders_never_admitted(self):
        controller = GhostAdmission(capacity_bytes=1 << 20)
        admitted = [controller.admit(key, 10) for key in range(100)]
        assert not any(admitted)

    def test_ghost_capacity_bounds_memory(self):
        # Ghost holds ~10 objects of size 100; an old entry is evicted
        # before its repeat arrives, so it is rejected again.
        controller = GhostAdmission(capacity_bytes=1000)
        controller.admit("old", 100)
        for key in range(20):
            controller.admit(key, 100)
        assert not controller.admit("old", 100)

    def test_forget(self):
        controller = GhostAdmission(capacity_bytes=1 << 20)
        controller.admit("a", 100)
        controller.forget("a")
        assert not controller.admit("a", 100)

    def test_bad_ghost_factor(self):
        with pytest.raises(ValueError):
            GhostAdmission(capacity_bytes=1024, ghost_factor=0)


class TestFrequencyAdmission:
    def test_admit_at_threshold(self):
        controller = FrequencyAdmission(threshold=3)
        assert not controller.admit("a", 10)
        assert not controller.admit("a", 10)
        assert controller.admit("a", 10)
        # admission reset the counter
        assert not controller.admit("a", 10)

    def test_lookups_count_as_sightings(self):
        controller = FrequencyAdmission(threshold=2)
        controller.record_lookup("a", 10)
        assert controller.admit("a", 10)

    def test_threshold_one_is_admit_all(self):
        controller = FrequencyAdmission(threshold=1)
        assert controller.admit("fresh", 10)

    def test_bounded_counter_table(self):
        controller = FrequencyAdmission(threshold=2, max_entries=4)
        controller.record_lookup("a", 10)
        for key in range(10):
            controller.record_lookup(key, 10)
        # "a" was evicted from the bounded table: back to one sighting
        assert not controller.admit("a", 10)
        assert len(controller._counts) <= 5

    def test_validation(self):
        with pytest.raises(ValueError):
            FrequencyAdmission(threshold=0)
        with pytest.raises(ValueError):
            FrequencyAdmission(max_entries=0)


class TestMakeAdmission:
    def test_builds_each_kind(self):
        assert isinstance(make_admission("admit-all", 1024), AdmitAll)
        assert isinstance(make_admission("ghost", 1024), GhostAdmission)
        assert isinstance(make_admission("frequency", 1024),
                          FrequencyAdmission)

    def test_params_forwarded(self):
        controller = make_admission("frequency", 1024, threshold=5)
        assert controller.threshold == 5

    def test_unknown_spec(self):
        with pytest.raises(KeyError) as excinfo:
            make_admission("tinylfu", 1024)
        assert "admit-all" in excinfo.value.args[0]

    def test_bad_params_name_the_controller(self):
        with pytest.raises(TypeError) as excinfo:
            make_admission("ghost", 1024, threshold=2)
        assert "ghost" in str(excinfo.value)
