"""CacheHierarchy: demotion cascade, conservation invariants, TTL, shim."""

import warnings

import pytest

from repro.hierarchy import (
    CacheHierarchy,
    HierarchyConfig,
    TierConfig,
    dram_flash_config,
    simulate_hierarchy,
)
from repro.obs.metrics import MetricsRegistry
from repro.sim.options import _reset_deprecation_warnings
from repro.sized.workloads import attach_sizes, unique_bytes
from repro.traces.zipf import zipf_ranks


def small_hierarchy(dram=2048, flash=8192, **kwargs):
    return CacheHierarchy(dram_flash_config(dram, flash, **kwargs))


def zipf_sized(n_objects=300, n_requests=4000, alpha=0.8, seed=3):
    keys = zipf_ranks(n_objects, alpha, n_requests, seed=seed).tolist()
    return attach_sizes(keys, "lognormal", seed=1)


class TestDemotionCascade:
    def test_eviction_lands_in_flash(self):
        hierarchy = small_hierarchy(dram=300, flash=4096,
                                    dram_policy="fifo")
        hierarchy.request("a", 200)
        hierarchy.request("b", 200)   # evicts a from DRAM
        assert "b" in hierarchy.tier("dram")
        assert "a" not in hierarchy.tier("dram")
        assert "a" in hierarchy.tier("flash")
        assert hierarchy.request("a", 200) == "flash"

    def test_flash_eviction_leaves_hierarchy(self):
        hierarchy = small_hierarchy(dram=300, flash=300,
                                    dram_policy="fifo")
        for key in ("a", "b", "c"):
            hierarchy.request(key, 200)
        # every tier holds at most one 200-byte object
        assert "a" not in hierarchy
        hierarchy.check_conservation()

    def test_promote_on_hit_copies_to_dram(self):
        hierarchy = small_hierarchy(dram=300, flash=4096,
                                    dram_policy="fifo")
        hierarchy.request("a", 200)
        hierarchy.request("b", 200)
        hierarchy.request("a", 200)   # flash hit, promoted
        assert "a" in hierarchy.tier("dram")
        # inclusive: the flash copy stays behind
        assert "a" in hierarchy.tier("flash")

    def test_lazy_promotion_serves_in_place(self):
        hierarchy = CacheHierarchy(dram_flash_config(
            300, 4096, dram_policy="fifo", promote_on_hit=False))
        hierarchy.request("a", 200)
        hierarchy.request("b", 200)
        assert hierarchy.request("a", 200) == "flash"
        assert "a" not in hierarchy.tier("dram")

    def test_rejected_demotion_is_not_written(self):
        hierarchy = small_hierarchy(dram=300, flash=4096,
                                    dram_policy="fifo",
                                    flash_admission="ghost")
        hierarchy.request("a", 200)
        hierarchy.request("b", 200)   # a demoted, ghost-rejected
        flash = hierarchy.tier("flash")
        assert "a" not in flash
        assert flash.stats.demoted_in_rejected == 1
        assert flash.stats.write_bytes == 0
        hierarchy.request("c", 200)   # b demoted, rejected
        hierarchy.request("a", 200)   # miss; a into DRAM, c demoted+rejected
        hierarchy.request("d", 200)   # a demoted again: ghost remembers
        assert "a" in flash
        assert flash.stats.write_bytes == 200


class TestConservation:
    @pytest.mark.parametrize("dram_policy", [
        "sized-fifo", "sized-lru", "sized-2-bit-clock",
        "sized-qd-lp-fifo", "gdsf"])
    @pytest.mark.parametrize("admission", [
        "admit-all", "ghost", "frequency"])
    def test_invariants_hold_across_grid(self, dram_policy, admission):
        sized = zipf_sized()
        footprint = unique_bytes(sized)
        config = dram_flash_config(
            dram_bytes=max(4096, footprint // 20),
            flash_bytes=max(4096, footprint // 5),
            dram_policy=dram_policy, flash_admission=admission)
        result = simulate_hierarchy(config, sized)  # asserts internally
        for report in result.tiers:
            assert report.hits + report.misses == report.lookups
            assert 0 <= report.used_bytes <= report.capacity_bytes
        dram, flash = result.tiers
        assert dram.demoted_out == (flash.demoted_in_admitted
                                    + flash.demoted_in_refreshed
                                    + flash.demoted_in_rejected)
        assert result.overall_hits + result.backend_fetches == \
            result.requests

    def test_three_tier_conservation(self):
        sized = zipf_sized()
        footprint = unique_bytes(sized)
        config = HierarchyConfig(tiers=(
            TierConfig(name="dram", capacity_bytes=footprint // 50,
                       policy="lru"),
            TierConfig(name="flash", capacity_bytes=footprint // 10,
                       policy="fifo", kind="flash", admission="ghost",
                       read_cost=25.0, write_cost=250.0),
            TierConfig(name="disk", capacity_bytes=footprint // 2,
                       policy="fifo", kind="disk",
                       read_cost=200.0, write_cost=400.0),
        ), backend_read_cost=2500.0)
        result = simulate_hierarchy(config, sized)
        assert [r.name for r in result.tiers] == ["dram", "flash", "disk"]
        assert result.tiers[0].demoted_out > 0
        assert result.tiers[1].demoted_out > 0

    def test_write_amplification_accounting(self):
        sized = zipf_sized()
        config = dram_flash_config(
            dram_bytes=max(4096, unique_bytes(sized) // 20),
            flash_bytes=max(4096, unique_bytes(sized) // 5))
        result = simulate_hierarchy(config, sized)
        flash = result.tier_report("flash")
        assert flash.write_amplification >= 1.0
        assert result.flash_write_bytes == flash.write_bytes

    def test_oversized_object_passes_through(self):
        hierarchy = small_hierarchy(dram=300, flash=300)
        assert hierarchy.request("huge", 5000) == "miss"
        assert hierarchy.request("huge", 5000) == "miss"
        hierarchy.check_conservation()

    def test_metrics_carry_tier_labels(self):
        registry = MetricsRegistry()
        config = dram_flash_config(2048, 8192)
        sized = zipf_sized(n_requests=500)
        simulate_hierarchy(config, sized, registry=registry)
        counters = registry.counter_values()
        assert counters["hierarchy_lookups_total{tier=dram}"] == 500
        assert "hierarchy_lookups_total{tier=flash}" in counters
        assert "hierarchy_write_bytes_total{tier=flash}" in counters


class TestTTL:
    def test_expiry_while_resident_in_flash(self):
        # One object requested, demoted to flash, then re-requested
        # after its TTL: the stale flash copy must not serve the hit.
        config = HierarchyConfig(tiers=(
            TierConfig(name="dram", capacity_bytes=300, policy="fifo"),
            TierConfig(name="flash", capacity_bytes=4096, policy="fifo",
                       kind="flash"),
        ), ttl=4)
        keys = [1, 2, 3, 1, 1]   # reuse at distance 3 (fresh), then 4+
        sizes = [200] * len(keys)
        result = simulate_hierarchy(config, (keys, sizes))
        # only the *fresh* reuse of key 1 can hit
        assert result.overall_hits <= 1

    def test_ttl_lowers_hit_ratio(self):
        sized = zipf_sized()
        footprint = unique_bytes(sized)
        base = dict(dram_bytes=max(4096, footprint // 10),
                    flash_bytes=max(4096, footprint // 3))
        fresh = simulate_hierarchy(dram_flash_config(**base), sized)
        expiring = simulate_hierarchy(
            dram_flash_config(**base, ttl=100), sized)
        assert expiring.overall_hit_ratio < fresh.overall_hit_ratio
        assert expiring.ttl == 100

    def test_stale_bytes_linger_until_evicted(self):
        config = HierarchyConfig(tiers=(
            TierConfig(name="dram", capacity_bytes=300, policy="fifo"),
            TierConfig(name="flash", capacity_bytes=4096, policy="fifo",
                       kind="flash"),
        ), ttl=2)
        keys = [1, 2, 3]
        result = simulate_hierarchy(config, (keys, [200] * 3))
        # key 1 expired after the first epoch but its copy still holds
        # flash bytes (lazy expiry: versions only leave by eviction)
        flash = result.tier_report("flash")
        assert flash.used_bytes >= 200


class TestLegacyShim:
    def setup_method(self):
        _reset_deprecation_warnings()

    def test_legacy_kwargs_warn_once_per_keyword(self):
        sized = zipf_sized(n_requests=300)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            simulate_hierarchy(None, sized, capacity_bytes=4096,
                               policy="lru")
            simulate_hierarchy(None, sized, capacity_bytes=4096,
                               policy="lru")
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 2   # capacity_bytes + policy, once
        assert any("capacity_bytes" in str(w.message)
                   for w in deprecations)

    def test_legacy_matches_single_tier_config(self):
        sized = zipf_sized(n_requests=800)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            legacy = simulate_hierarchy(None, sized,
                                        capacity_bytes=8192, policy="lru")
        explicit = simulate_hierarchy(HierarchyConfig(tiers=(
            TierConfig(name="cache", capacity_bytes=8192, policy="lru"),
        )), sized)
        assert legacy.overall_hits == explicit.overall_hits
        assert legacy.tiers[0].write_bytes == explicit.tiers[0].write_bytes

    def test_mixing_config_and_legacy_rejected(self):
        config = dram_flash_config(2048, 8192)
        with pytest.raises(ValueError) as excinfo:
            CacheHierarchy(config, capacity_bytes=4096)
        assert "one or the other" in str(excinfo.value)

    def test_unknown_kwarg_rejected_even_with_legacy(self):
        with pytest.raises(TypeError):
            simulate_hierarchy(None, ([], []), capacity_bytes=4096,
                               polcy="lru")

    def test_trace_length_mismatch(self):
        config = dram_flash_config(2048, 8192)
        with pytest.raises(ValueError):
            simulate_hierarchy(config, ([1, 2], [10]))
