"""Request tracing through the multi-tier hierarchy.

Per-tier lookup probes, demotions and their admission verdicts become
child spans with ``tier=`` labels.  The hierarchy is clockless, so the
spans are instantaneous markers: what matters is the request *shape*.
"""

from repro.hierarchy import CacheHierarchy, dram_flash_config
from repro.hierarchy.tier import ADMITTED
from repro.obs.reqtrace import RequestTracer, TailRules

KEEP_ALL = TailRules(keep_fraction=1.0)


def traced_hierarchy(dram=300, flash=4096, **kwargs):
    tracer = RequestTracer(sample=1.0, seed=0, tail=KEEP_ALL)
    hierarchy = CacheHierarchy(dram_flash_config(dram, flash, **kwargs),
                               tracer=tracer)
    return hierarchy, tracer


def spans_by_name(trace):
    by_name = {}
    for span in trace.spans:
        by_name.setdefault(span["name"], []).append(span)
    return by_name


class TestHierarchySpans:
    def test_lookup_probes_carry_tier_labels(self):
        hierarchy, tracer = traced_hierarchy()
        assert hierarchy.request("a", 200) == "miss"
        (trace,) = tracer.kept
        probes = spans_by_name(trace)["tier.lookup"]
        assert [p["args"]["tier"] for p in probes] == ["dram", "flash"]
        assert all(p["args"]["hit"] is False for p in probes)
        root = spans_by_name(trace)["hierarchy.request"][0]
        assert root["args"]["outcome"] == "miss"

    def test_hit_stops_probing_and_names_the_serving_tier(self):
        hierarchy, tracer = traced_hierarchy(dram_policy="fifo")
        hierarchy.request("a", 200)
        hierarchy.request("b", 200)       # demotes a to flash
        assert hierarchy.request("a", 200) == "flash"
        trace = list(tracer.kept)[-1]
        names = spans_by_name(trace)
        probes = names["tier.lookup"]
        assert [p["args"]["tier"] for p in probes] == ["dram", "flash"]
        assert probes[-1]["args"]["hit"] is True
        root = names["hierarchy.request"][0]
        assert root["args"]["outcome"] == "flash"
        assert root["args"]["promoted_to"] == "dram"

    def test_demotion_spans_carry_admission_verdicts(self):
        hierarchy, tracer = traced_hierarchy(dram_policy="fifo")
        hierarchy.request("a", 200)
        hierarchy.request("b", 200)       # a: dram -> flash
        trace = list(tracer.kept)[-1]
        (demote,) = spans_by_name(trace)["tier.demote"]
        assert demote["args"]["tier"] == "flash"
        assert demote["args"]["verdict"] == ADMITTED
        assert demote["args"]["key"] == "'a'"

    def test_last_tier_eviction_leaves_the_hierarchy(self):
        hierarchy, tracer = traced_hierarchy(dram=300, flash=300,
                                             dram_policy="fifo")
        for key in ("a", "b", "c"):
            hierarchy.request(key, 200)
        evicted = [span
                   for trace in tracer.kept
                   for span in trace.spans
                   if span["name"] == "tier.demote"
                   and span["args"]["verdict"] == "evicted"]
        assert evicted, "no final-tier eviction span recorded"
        assert all(span["args"]["tier"] == "flash" for span in evicted)

    def test_ctx_joins_an_outer_trace(self):
        hierarchy, tracer = traced_hierarchy()
        root = tracer.start("request", key="'a'")
        hierarchy.request("a", 200, ctx=root.ctx)
        root.end(outcome="miss")
        (trace,) = tracer.kept
        names = spans_by_name(trace)
        assert names["hierarchy.request"][0]["parent_id"] == \
            names["request"][0]["span_id"]

    def test_tracing_does_not_change_counters(self):
        def replay(traced):
            tracer = (RequestTracer(sample=1.0, seed=0, tail=KEEP_ALL)
                      if traced else None)
            hierarchy = CacheHierarchy(dram_flash_config(2048, 8192),
                                       tracer=tracer)
            for index in range(400):
                hierarchy.request(index % 37, 100 + (index % 5) * 50)
            hierarchy.check_conservation()
            return (hierarchy.hits_by_tier, hierarchy.backend_fetches,
                    hierarchy.total_cost)

        assert replay(False) == replay(True)
