"""Cross-run regression diffing: alignment, thresholds, loading."""

import pytest

from repro.exec.journal import Journal, JournalState
from repro.obs import (
    DEFAULT_IGNORES,
    DiffRow,
    DiffThresholds,
    diff_runs,
    diff_states,
    load_run,
)


def result_payload(requests=1000, misses=200):
    return {"requests": requests, "hits": requests - misses,
            "misses": misses}


def make_state(miss_a=200, metrics=None, timeseries=None):
    return JournalState(
        results={("zipf", "LRU", 0.1): result_payload(misses=miss_a)},
        metrics=metrics,
        timeseries=timeseries,
    )


def counter_row(name, value, **labels):
    return {"type": "counter", "name": name, "labels": labels,
            "value": value}


def ts_row(series, t, value, window=100.0):
    return {"series": series, "kind": "counter", "t": t,
            "window": window, "value": value}


class TestThresholds:
    def test_negative_tolerance_rejected(self):
        for kwargs in ({"metric_rel": -0.1}, {"miss_ratio_abs": -1},
                       {"timeseries_rel": -0.5}):
            with pytest.raises(ValueError):
                DiffThresholds(**kwargs)

    def test_default_ignores_wall_time(self):
        thresholds = DiffThresholds()
        assert thresholds.ignore == DEFAULT_IGNORES
        assert thresholds.ignored("cell_duration_seconds")
        assert thresholds.ignored("latency_seconds:sum")
        assert not thresholds.ignored("sweep_cells_total")

    def test_diff_row_deltas(self):
        row = DiffRow("results", "k", "miss_ratio", 0.2, 0.25,
                      regressed=True)
        assert row.delta == pytest.approx(0.05)
        assert row.rel_delta == pytest.approx(0.2)


class TestResults:
    def test_identical_states_agree(self):
        report = diff_states(make_state(), make_state())
        assert report.ok
        assert report.rows == []
        assert "agree within tolerance" in report.render()

    def test_miss_ratio_above_threshold_regresses(self):
        report = diff_states(make_state(miss_a=200),
                             make_state(miss_a=250))  # 0.20 -> 0.25
        [row] = report.regressions
        assert (row.section, row.metric) == ("results", "miss_ratio")
        assert not report.ok
        assert "[REGRESSED]" in report.render()

    def test_drift_within_threshold_is_ok(self):
        report = diff_states(make_state(miss_a=200),
                             make_state(miss_a=205))  # delta 0.005 < 0.01
        assert report.ok
        assert len(report.rows) == 1 and not report.rows[0].regressed
        assert "[drift]" in report.render(show_all=True)
        assert "[drift]" not in report.render()

    def test_request_count_mismatch_always_regresses(self):
        a = JournalState(results={("t", "LRU", 0.1): result_payload(1000)})
        b = JournalState(results={("t", "LRU", 0.1): result_payload(900)})
        rows = diff_states(a, b).regressions
        assert any(r.metric == "requests" for r in rows)

    def test_missing_cells_reported_per_side(self):
        a = JournalState(results={("t", "LRU", 0.1): result_payload()})
        b = JournalState(results={("t", "FIFO", 0.1): result_payload()})
        report = diff_states(a, b)
        assert not report.ok
        assert any("LRU" in key for key in report.only_a)
        assert any("FIFO" in key for key in report.only_b)
        assert "[MISSING in B]" in report.render()


class TestGenericPayloadFields:
    """Result payloads beyond the classic requests/misses pair."""

    def overload_payload(self, goodput=500.0, dropped=100):
        return {"offered": 4000, "goodput": goodput,
                "drop_ratio": dropped / 4000,
                "outcomes": {"hit": 2000, "miss": 1900 - dropped + 100,
                             "dropped": dropped},
                "policy": "LRU", "mode": "adaptive",
                "elapsed_seconds": 1.23, "interrupted": False}

    def state(self, **kwargs):
        return JournalState(
            results={("LRU", "adaptive", "?"): self.overload_payload(
                **kwargs)})

    def test_identical_payloads_agree(self):
        report = diff_states(self.state(), self.state())
        assert report.ok and report.rows == []
        # offered, goodput, drop_ratio + 3 outcomes.* + the classic
        # requests/miss_ratio pair; strings, bools and *_seconds skipped.
        assert report.compared == 8

    def test_numeric_field_beyond_tolerance_regresses(self):
        report = diff_states(self.state(goodput=500.0),
                             self.state(goodput=750.0))
        [row] = report.regressions
        assert (row.section, row.metric) == ("results", "goodput")
        assert "[REGRESSED]" in report.render()

    def test_nested_outcome_counts_compared(self):
        report = diff_states(self.state(dropped=100),
                             self.state(dropped=400))
        metrics = {row.metric for row in report.regressions}
        assert "outcomes.dropped" in metrics

    def test_numeric_drift_within_tolerance_is_ok(self):
        report = diff_states(self.state(goodput=500.0),
                             self.state(goodput=510.0))  # 2% < 5%
        assert report.ok
        assert any(row.metric == "goodput" for row in report.rows)

    def test_wall_time_payload_fields_ignored(self):
        a, b = self.state(), self.state()
        b.results[("LRU", "adaptive", "?")]["elapsed_seconds"] = 99.0
        assert diff_states(a, b).ok

    def test_field_missing_on_one_side_reported(self):
        a, b = self.state(), self.state()
        del b.results[("LRU", "adaptive", "?")]["goodput"]
        report = diff_states(a, b)
        assert not report.ok
        assert any("goodput" in key for key in report.only_a)

    def test_zero_tolerance_catches_any_change(self):
        thresholds = DiffThresholds(metric_rel=0.0, miss_ratio_abs=0.0,
                                    timeseries_rel=0.0)
        report = diff_states(self.state(goodput=500.0),
                             self.state(goodput=500.0001), thresholds)
        assert not report.ok

    def test_classic_fields_not_double_counted(self):
        # misses moves -> exactly one miss_ratio row, no hits/misses rows
        report = diff_states(make_state(miss_a=200), make_state(miss_a=250))
        assert [row.metric for row in report.rows] == ["miss_ratio"]


class TestMetrics:
    def test_relative_threshold(self):
        a = make_state(metrics=[counter_row("sweep_cells_total", 100)])
        b = make_state(metrics=[counter_row("sweep_cells_total", 104)])
        assert diff_states(a, b).ok             # 4% < default 5%
        c = make_state(metrics=[counter_row("sweep_cells_total", 110)])
        report = diff_states(a, c)
        [row] = report.regressions
        assert row.section == "metrics"
        assert row.key == "sweep_cells_total"

    def test_labels_distinguish_series(self):
        a = make_state(metrics=[counter_row("cells", 5, path="fast"),
                                counter_row("cells", 5, path="exec")])
        b = make_state(metrics=[counter_row("cells", 5, path="fast")])
        report = diff_states(a, b)
        assert report.only_a == ["metrics cells{path=exec}"]

    def test_wall_time_metrics_ignored_by_default(self):
        a = make_state(metrics=[counter_row("run_seconds", 10)])
        b = make_state(metrics=[counter_row("run_seconds", 99)])
        assert diff_states(a, b).ok

    def test_custom_ignore_patterns(self):
        a = make_state(metrics=[counter_row("flaky_total", 1)])
        b = make_state(metrics=[counter_row("flaky_total", 100)])
        thresholds = DiffThresholds(ignore=("flaky_*",))
        assert diff_states(a, b, thresholds).ok

    def test_histogram_rows_compared_on_count_and_sum(self):
        hist_a = {"type": "histogram", "name": "age", "labels": {},
                  "buckets": [[10, 3]], "sum": 30.0, "count": 3}
        hist_b = {**hist_a, "sum": 90.0}
        report = diff_states(make_state(metrics=[hist_a]),
                             make_state(metrics=[hist_b]))
        [row] = report.regressions
        assert row.key == "age:sum"


class TestTimeseries:
    def test_absent_timeseries_is_not_a_regression(self):
        with_ts = make_state(timeseries=[ts_row("s", 100, 5.0)])
        without = make_state(timeseries=None)
        assert diff_states(with_ts, without).ok
        assert diff_states(without, with_ts).ok

    def test_worst_point_reported_once_per_series(self):
        a = make_state(timeseries=[ts_row("s", 100, 10.0),
                                   ts_row("s", 200, 10.0),
                                   ts_row("s", 300, 10.0)])
        b = make_state(timeseries=[ts_row("s", 100, 10.2),
                                   ts_row("s", 200, 20.0),
                                   ts_row("s", 300, 10.0)])
        report = diff_states(a, b)
        ts_rows = [r for r in report.rows if r.section == "timeseries"]
        assert len(ts_rows) == 1            # only the worst point
        assert ts_rows[0].key == "s @t=200"
        assert ts_rows[0].regressed

    def test_transient_regression_caught_despite_equal_totals(self):
        """The point of windowed diffing: totals agree, the curve moved."""
        a = make_state(timeseries=[ts_row("miss", 100, 50.0),
                                   ts_row("miss", 200, 50.0)])
        b = make_state(timeseries=[ts_row("miss", 100, 90.0),
                                   ts_row("miss", 200, 10.0)])
        assert sum(r["value"] for r in a.timeseries) == \
            sum(r["value"] for r in b.timeseries)
        assert not diff_states(a, b).ok

    def test_missing_series_reported(self):
        a = make_state(timeseries=[ts_row("s1", 100, 1.0)])
        b = make_state(timeseries=[ts_row("s2", 100, 1.0)])
        report = diff_states(a, b)
        assert report.only_a == ["timeseries s1"]
        assert report.only_b == ["timeseries s2"]

    def test_ignored_series_skipped(self):
        a = make_state(timeseries=[ts_row("fetch_seconds{p=a}", 1, 1.0)])
        b = make_state(timeseries=[ts_row("fetch_seconds{p=a}", 1, 9.0)])
        assert diff_states(a, b).ok


class TestLoadRun:
    def _write_run(self, root, run_id="base", misses=200):
        with Journal.create(run_id=run_id, root=root) as journal:
            journal.record_result(("zipf", "LRU", 0.1),
                                  result_payload(misses=misses))
        return root / run_id

    def test_accepts_file_dir_and_run_id(self, tmp_path):
        run_dir = self._write_run(tmp_path)
        by_file = load_run(run_dir / "journal.jsonl")
        by_dir = load_run(run_dir)
        by_id = load_run("base", runs_dir=tmp_path)
        assert by_file.results == by_dir.results == by_id.results

    def test_unknown_run_id_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_run("nope", runs_dir=tmp_path)

    def test_diff_runs_end_to_end(self, tmp_path):
        self._write_run(tmp_path, "a", misses=200)
        self._write_run(tmp_path, "b", misses=400)
        report = diff_runs("a", "b", runs_dir=tmp_path)
        assert not report.ok
        assert diff_runs("a", "a", runs_dir=tmp_path).ok
