"""Per-request tracing: sampling, tail keep rules, exports.

Everything runs on a ``VirtualClock`` with fixed seeds, so the sampled
set, the trace ids and the kept buffer are bit-reproducible -- which is
exactly the property the CI smoke baseline relies on.
"""

import json

import pytest

from repro.exec.clock import VirtualClock
from repro.obs import MetricsRegistry
from repro.obs.reqtrace import (
    KEEP_EXEMPLAR,
    KEEP_MARKED,
    KEEP_OUTCOME,
    KEEP_SAMPLED,
    KEEP_SLOW,
    NOT_SAMPLED,
    RequestTracer,
    TailRules,
    TraceContext,
    chrome_from_rows,
    read_trace_jsonl,
    render_trace_list,
    render_trace_tree,
)
from repro.obs.span import validate_chrome_trace


def make_tracer(**kw):
    kw.setdefault("clock", VirtualClock())
    return RequestTracer(**kw)


class TestHeadSampling:
    def test_sample_zero_traces_nothing(self):
        tracer = make_tracer(sample=0.0, seed=1)
        assert all(tracer.start("request") is None for _ in range(50))
        assert tracer.summary() == {
            "requests": 50, "sampled": 0, "kept": 0, "discarded": 0,
            "open": 0, "by_reason": {}}

    def test_sample_one_traces_everything(self):
        tracer = make_tracer(sample=1.0, seed=1)
        spans = [tracer.start("request") for _ in range(20)]
        assert all(span is not None for span in spans)
        assert tracer.summary()["sampled"] == 20

    def test_sampling_is_seed_deterministic(self):
        def sampled_mask(seed):
            tracer = make_tracer(sample=0.3, seed=seed)
            return [tracer.start("r") is not None for _ in range(200)]

        assert sampled_mask(7) == sampled_mask(7)
        assert sampled_mask(7) != sampled_mask(8)

    def test_trace_ids_unique_and_hex(self):
        tracer = make_tracer(tail=TailRules(keep_fraction=1.0))
        ids = set()
        for _ in range(100):
            span = tracer.start("r")
            ids.add(span.trace_id)
            span.end(outcome="hit")
        assert len(ids) == 100
        assert all(len(t) == 12 and int(t, 16) >= 0 for t in ids)

    def test_invalid_sample_rejected(self):
        with pytest.raises(ValueError):
            make_tracer(sample=1.5)
        with pytest.raises(ValueError):
            make_tracer(max_traces=0)


class TestContextPropagation:
    def test_child_joins_parent_trace(self):
        tracer = make_tracer(tail=TailRules(keep_fraction=1.0))
        root = tracer.start("request")
        joined = tracer.start("service.get", ctx=root.ctx)
        assert joined.trace_id == root.trace_id
        joined.end(outcome="hit")
        root.end(outcome="hit")
        (trace,) = tracer.kept
        assert {s["name"] for s in trace.spans} == {"request",
                                                    "service.get"}
        by_name = {s["name"]: s for s in trace.spans}
        assert by_name["service.get"]["parent_id"] == root.span_id

    def test_not_sampled_sentinel_stays_dark(self):
        tracer = make_tracer(sample=1.0)
        before = tracer.summary()["requests"]
        assert tracer.start("service.get", ctx=NOT_SAMPLED) is None
        # A propagated no-trace decision is not a new request either.
        assert tracer.summary()["requests"] == before

    def test_ctx_for_finished_trace_stays_dark(self):
        tracer = make_tracer(tail=TailRules(keep_fraction=1.0))
        root = tracer.start("request")
        ctx = root.ctx
        root.end(outcome="hit")
        assert tracer.start("late", ctx=ctx) is None

    def test_ctx_for_unknown_trace_stays_dark(self):
        tracer = make_tracer()
        ctx = TraceContext(trace_id="feedfacecafe", span_id=1)
        assert tracer.start("orphan", ctx=ctx) is None


class TestSpans:
    def test_add_span_rejects_negative_duration(self):
        tracer = make_tracer()
        root = tracer.start("request")
        with pytest.raises(ValueError):
            root.add_span("queue.wait", 2.0, 1.0)

    def test_end_is_idempotent(self):
        tracer = make_tracer(tail=TailRules(keep_fraction=1.0))
        root = tracer.start("request")
        assert root.end(outcome="hit") is not None
        assert root.end(outcome="hit") is None
        assert len(tracer.kept) == 1

    def test_retroactive_spans_and_explicit_end_time(self):
        clock = VirtualClock()
        tracer = make_tracer(clock=clock,
                             tail=TailRules(keep_fraction=1.0))
        clock.advance(5.0)
        root = tracer.start("request", start=1.0)
        root.add_span("queue.wait", 1.0, 4.0, depth=3)
        root.end(outcome="hit", at=6.0)
        (trace,) = tracer.kept
        assert trace.latency == pytest.approx(5.0)
        wait = next(s for s in trace.spans if s["name"] == "queue.wait")
        assert (wait["start"], wait["end"]) == (1.0, 4.0)
        assert wait["args"]["depth"] == 3

    def test_context_manager_records_errors(self):
        tracer = make_tracer()
        with pytest.raises(RuntimeError):
            with tracer.start("request") as root:
                raise RuntimeError("backend exploded")
        (trace,) = tracer.kept
        assert trace.keep == KEEP_OUTCOME
        assert "backend exploded" in trace.spans[-1]["args"]["error"]


class TestTailRules:
    def test_error_dropped_shed_always_kept(self):
        tracer = make_tracer()
        for outcome in ("error", "dropped", "shed"):
            tracer.start("request").end(outcome=outcome)
        tracer.start("request").end(outcome="hit")   # boring: discarded
        assert [t.outcome for t in tracer.kept] == ["error", "dropped",
                                                    "shed"]
        assert all(t.keep == KEEP_OUTCOME for t in tracer.kept)
        assert tracer.summary()["discarded"] == 1

    def test_marked_traces_kept(self):
        tracer = make_tracer()
        root = tracer.start("request")
        root.mark("breaker-open")
        root.end(outcome="stale")
        (trace,) = tracer.kept
        assert trace.keep == KEEP_MARKED

    def test_slow_rule_engages_after_min_samples(self):
        clock = VirtualClock()
        tracer = make_tracer(
            clock=clock,
            tail=TailRules(latency_quantile=0.95, min_latency_samples=10))
        # 20 fast requests, then one 100x slower.
        for _ in range(20):
            root = tracer.start("request")
            clock.advance(0.001)
            root.end(outcome="hit")
        root = tracer.start("request")
        clock.advance(0.1)
        root.end(outcome="hit")
        kept = list(tracer.kept)
        assert kept and kept[-1].keep == KEEP_SLOW
        assert kept[-1].latency == pytest.approx(0.1)

    def test_keep_fraction_residual_sampling(self):
        tracer = make_tracer(tail=TailRules(keep_fraction=1.0))
        tracer.start("request").end(outcome="hit")
        (trace,) = tracer.kept
        assert trace.keep == KEEP_SAMPLED

    def test_buffer_is_bounded(self):
        tracer = make_tracer(max_traces=8)
        for _ in range(50):
            tracer.start("request").end(outcome="error")
        assert len(tracer.kept) == 8
        assert tracer.summary()["kept"] == 8


class TestExemplarPinning:
    def test_exemplar_traces_survive_buffer_churn(self):
        tracer = make_tracer(max_traces=4)
        root = tracer.start("request")
        pinned_id = root.trace_id
        root.mark(KEEP_EXEMPLAR)
        root.end(outcome="hit")
        for _ in range(20):                       # churn the deque
            tracer.start("request").end(outcome="error")
        ids = {row["trace_id"] for row in tracer._rows()}
        assert pinned_id in ids
        assert len(ids) == 5                      # 4 ring + 1 pinned


class TestExports:
    def build(self):
        clock = VirtualClock()
        tracer = make_tracer(clock=clock)
        for index in range(3):
            root = tracer.start("request", key=f"k{index}")
            child = root.child("service.get")
            clock.advance(0.01)
            child.end(outcome="error")
            root.end(outcome="error")
        return tracer

    def test_jsonl_round_trip(self, tmp_path):
        tracer = self.build()
        path = tracer.write_jsonl(tmp_path / "reqtrace.jsonl")
        rows = read_trace_jsonl(path)
        assert len(rows) == 3
        assert all(row["type"] == "reqtrace" for row in rows)
        assert all(len(row["spans"]) == 2 for row in rows)
        # Torn last line (crashed writer) is skipped, not fatal.
        path.write_text(path.read_text() + '{"type": "reqtr',
                        encoding="utf-8")
        assert len(read_trace_jsonl(path)) == 3

    def test_rows_are_strict_json(self):
        rows = self.build()._rows()
        json.loads(json.dumps(rows, allow_nan=False))

    def test_chrome_export_validates(self, tmp_path):
        tracer = self.build()
        path = tracer.write_chrome_trace(tmp_path / "trace.json")
        doc = json.loads(path.read_text())
        validate_chrome_trace(doc)    # raises on a malformed document
        lanes = {e["tid"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert len(lanes) == 3                    # one lane per trace
        names = {e["args"]["name"] for e in doc["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        assert all("[error]" in n for n in names)

    def test_span_ids_unique_across_traces(self):
        rows = self.build()._rows()
        ids = [s["span_id"] for row in rows for s in row["spans"]]
        assert len(ids) == len(set(ids))

    def test_render_trace_list_filters(self):
        rows = self.build()._rows()
        assert "request" in render_trace_list(rows)
        assert render_trace_list(rows, outcome="hit") == \
            "(no kept traces)"
        assert len(render_trace_list(rows, slowest=1).splitlines()) == 2

    def test_render_trace_tree_nests_children(self):
        rows = self.build()._rows()
        tree = render_trace_tree(rows[0])
        lines = tree.splitlines()
        assert lines[0].startswith(f"trace {rows[0]['trace_id']}")
        assert any(line.startswith("  - request") for line in lines)
        assert any(line.startswith("    - service.get")
                   for line in lines)


class TestRegistryCounters:
    def test_reqtrace_counters_flow_to_registry(self):
        registry = MetricsRegistry()
        tracer = make_tracer(sample=1.0, registry=registry,
                             labels={"policy": "LRU"})
        tracer.start("request").end(outcome="error")
        tracer.start("request").end(outcome="hit")
        values = {(row["name"], tuple(sorted(row["labels"].items()))):
                  row["value"]
                  for row in registry.snapshot()
                  if row["name"].startswith("reqtrace_")}
        base = (("policy", "LRU"),)
        assert values[("reqtrace_requests_total", base)] == 2
        assert values[("reqtrace_sampled_total", base)] == 2
        assert values[("reqtrace_discarded_total", base)] == 1
        assert values[("reqtrace_kept_total",
                       (("policy", "LRU"), ("reason", "outcome")))] == 1
