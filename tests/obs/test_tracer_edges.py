"""CacheTracer edge cases: exact ring fill, bucket boundaries, races."""

import threading

import pytest

from repro.obs import ADMIT, EVICT, CacheTracer, MetricsRegistry
from repro.obs.metrics import DEFAULT_AGE_BUCKETS
from repro.policies.fifo import FIFO

from tests.conftest import drive


class TestRingWraparound:
    def test_exactly_ring_events_all_retained(self):
        tracer = CacheTracer(ring=8)
        for i in range(8):
            tracer.on_admit(i)
        events = tracer.events(ADMIT)
        assert len(events) == 8
        assert [ev.key for ev in events] == list(range(8))
        assert tracer.counts[ADMIT] == 8

    def test_one_past_ring_drops_exactly_the_oldest(self):
        tracer = CacheTracer(ring=8)
        for i in range(9):
            tracer.on_admit(i)
        events = tracer.events(ADMIT)
        assert len(events) == 8
        assert [ev.key for ev in events] == list(range(1, 9))
        assert tracer.counts[ADMIT] == 9     # totals stay exact

    def test_rings_are_per_stream(self):
        """Filling one stream to maxlen must not evict another's events."""
        tracer = CacheTracer(ring=4)
        tracer.on_admit("keeper")
        for i in range(16):
            tracer.on_admit(i)
            tracer.on_evict(i)
        assert len(tracer.events(EVICT)) == 4
        assert len(tracer.events(ADMIT)) == 4
        assert tracer.counts[ADMIT] == 17


class TestAgeBucketBoundaries:
    def _evict_at_age(self, tracer, key, age):
        """Admit *key*, advance the clock by *age* hits, evict it."""
        tracer.on_admit(key)
        for _ in range(age):
            tracer.on_hit(("filler", key))   # never admitted: clock only
        tracer.on_evict(key)

    def _bucket_counts(self, registry):
        [row] = [r for r in registry.snapshot()
                 if r["labels"].get("tenure") == "zero-hit"]
        return dict((bound, count) for bound, count in row["buckets"])

    def test_age_on_bound_lands_in_that_bucket(self):
        """Bounds are inclusive upper edges: age == bound counts below."""
        registry = MetricsRegistry()
        tracer = CacheTracer(registry=registry)
        first_bound = DEFAULT_AGE_BUCKETS[0]         # 10 requests
        self._evict_at_age(tracer, "on-edge", first_bound)
        buckets = self._bucket_counts(registry)
        assert buckets[float(first_bound)] == 1

    def test_age_just_past_bound_lands_in_next_bucket(self):
        registry = MetricsRegistry()
        tracer = CacheTracer(registry=registry)
        first, second = DEFAULT_AGE_BUCKETS[:2]      # 10, 40
        self._evict_at_age(tracer, "past-edge", first + 1)
        buckets = self._bucket_counts(registry)
        assert buckets[float(first)] == 0
        assert buckets[float(second)] == 1           # cumulative export

    def test_zero_age_eviction_counts_in_first_bucket(self):
        """Admit-then-immediately-evict: age 0 must not be lost."""
        registry = MetricsRegistry()
        tracer = CacheTracer(registry=registry)
        self._evict_at_age(tracer, "instant", 0)
        buckets = self._bucket_counts(registry)
        assert buckets[float(DEFAULT_AGE_BUCKETS[0])] == 1
        assert tracer.eviction_ages(zero_hit_only=True) == [0]

    def test_age_beyond_last_bound_only_in_inf(self):
        registry = MetricsRegistry()
        tracer = CacheTracer(registry=registry)
        last = DEFAULT_AGE_BUCKETS[-1]
        self._evict_at_age(tracer, "ancient", last + 1)
        [row] = [r for r in registry.snapshot()
                 if r["labels"].get("tenure") == "zero-hit"]
        assert all(count == 0 for _, count in row["buckets"])
        assert row["count"] == 1                     # +Inf catches it
        assert row["sum"] == pytest.approx(last + 1)


class TestConcurrentRegistration:
    def test_two_threads_register_listeners_without_loss(self):
        """Concurrent add_listener from two threads must not drop any."""
        policy = FIFO(8)
        per_thread = 50
        tracers = {side: [CacheTracer() for _ in range(per_thread)]
                   for side in ("a", "b")}
        barrier = threading.Barrier(2)

        def register(side):
            barrier.wait()
            for tracer in tracers[side]:
                policy.add_listener(tracer)

        threads = [threading.Thread(target=register, args=(side,))
                   for side in tracers]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert len(policy._listeners) == 2 * per_thread
        assert set(policy._listeners) == \
            set(tracers["a"]) | set(tracers["b"])
        # Every registered tracer observes the same stream afterwards.
        drive(policy, [1, 2, 3, 1])
        counts = {t.counts[ADMIT] for side in tracers
                  for t in tracers[side]}
        assert counts == {3}
