"""CacheTracer: event streams, ring bounds, eviction ages, registry feed."""

import json
import math

import pytest

from repro.obs import (
    ADMIT,
    EVENT_KINDS,
    EVICT,
    GHOST_HIT,
    PROMOTE,
    CacheTracer,
    MetricsRegistry,
)
from repro.core.qd import QDCache
from repro.policies.lru import LRU
from repro.policies.registry import make
from repro.sim.simulator import simulate

from tests.conftest import drive


class TestEventStreams:
    def test_promote_stream_matches_policy_stats(self, zipf_keys):
        tracer = CacheTracer()
        policy = LRU(100)
        policy.add_listener(tracer)
        drive(policy, zipf_keys)
        assert tracer.counts[PROMOTE] == policy.stats.promotions
        assert tracer.counts[ADMIT] == policy.stats.misses
        # Every eviction came from an earlier admission.
        assert tracer.counts[EVICT] <= tracer.counts[ADMIT]

    def test_ghost_hits_traced_for_qd_policies(self, zipf_keys):
        tracer = CacheTracer()
        policy = QDCache(50, LRU)
        policy.add_listener(tracer)
        drive(policy, zipf_keys)
        assert tracer.counts[GHOST_HIT] > 0
        assert all(ev.kind == GHOST_HIT for ev in tracer.events(GHOST_HIT))

    def test_unknown_stream_rejected(self):
        with pytest.raises(KeyError):
            CacheTracer().events("warm-up")


class TestRingBounds:
    def test_ring_caps_retained_events_but_not_counts(self, zipf_keys):
        tracer = CacheTracer(ring=16)
        policy = make("FIFO", 50)
        policy.add_listener(tracer)
        drive(policy, zipf_keys)
        assert tracer.counts[EVICT] > 16
        retained = tracer.events(EVICT)
        assert len(retained) == 16
        # Ring keeps the newest events, oldest first.
        times = [ev.time for ev in retained]
        assert times == sorted(times)
        assert times[-1] <= tracer.now

    def test_ring_must_be_positive(self):
        with pytest.raises(ValueError):
            CacheTracer(ring=0)


class TestEvictionAges:
    def test_ages_split_by_tenure_hits(self):
        tracer = CacheTracer()
        policy = LRU(2)
        policy.add_listener(tracer)
        # "a" hits once before being evicted; "b" never hits.
        drive(policy, ["a", "b", "a", "c", "d"])
        all_ages = tracer.eviction_ages()
        zero_hit = tracer.eviction_ages(zero_hit_only=True)
        assert len(all_ages) == tracer.counts[EVICT]
        assert 0 < len(zero_hit) < len(all_ages)
        assert all(age >= 0 for age in all_ages)

    def test_mean_age_zero_before_first_eviction(self):
        # 0.0 rather than NaN: summaries must stay strict-JSON
        # serialisable and diff-stable (NaN != NaN).
        tracer = CacheTracer()
        assert tracer.mean_eviction_age() == 0.0
        assert tracer.mean_eviction_age(zero_hit_only=True) == 0.0

    def test_summary_json_safe_on_fresh_tracer(self):
        summary = CacheTracer().summary()
        for value in summary.values():
            assert not math.isnan(value)
            assert not math.isinf(value)
        # Round-trips through strict JSON (allow_nan=False would raise).
        json.loads(json.dumps(summary, allow_nan=False))

    def test_summary_keys(self, zipf_keys):
        tracer = CacheTracer()
        policy = LRU(100)
        policy.add_listener(tracer)
        drive(policy, zipf_keys)
        summary = tracer.summary()
        for kind in EVENT_KINDS:
            assert summary[f"{kind}s"] == float(tracer.counts[kind])
        assert summary["requests"] == float(len(zipf_keys))
        assert summary["mean_eviction_age"] > 0


class TestRegistryFeed:
    def test_counters_and_age_histogram_mirror_tracer(self, zipf_keys):
        registry = MetricsRegistry()
        tracer = CacheTracer(registry=registry)
        policy = make("QD-LP-FIFO", 50)
        policy.add_listener(tracer)
        drive(policy, zipf_keys)

        values = registry.counter_values()
        for kind in EVENT_KINDS:
            expected = tracer.counts[kind]
            got = values.get(f"cache_events_total{{event={kind}}}", 0)
            assert got == expected
        hist_count = sum(
            row["count"] for row in registry.snapshot()
            if row["name"] == "cache_eviction_age_requests")
        assert hist_count == tracer.counts[EVICT]


class TestSimulateIntegration:
    def test_tracer_via_sim_options_listeners(self, small_trace):
        from repro.sim.options import SimOptions

        registry = MetricsRegistry()
        tracer = CacheTracer(registry=registry)
        policy = make("SIEVE", 60)
        result = simulate(policy, small_trace,
                          SimOptions(listeners=(tracer,), metrics=registry))
        assert tracer.counts[ADMIT] == result.misses
        values = registry.counter_values()
        assert values["sim_requests_total{policy=SIEVE}"] == len(small_trace)
