"""MetricsRegistry: identity, thread-safety surface, snapshots, merge."""

import threading

import pytest

from repro.obs import (
    MetricsRegistry,
    exponential_buckets,
    merge_snapshots,
)


class TestRegistryIdentity:
    def test_same_name_labels_same_object(self):
        reg = MetricsRegistry()
        a = reg.counter("requests_total", outcome="hit")
        b = reg.counter("requests_total", outcome="hit")
        assert a is b

    def test_different_labels_different_series(self):
        reg = MetricsRegistry()
        hit = reg.counter("requests_total", outcome="hit")
        miss = reg.counter("requests_total", outcome="miss")
        assert hit is not miss
        hit.inc(3)
        miss.inc()
        assert hit.value == 3
        assert miss.value == 1

    def test_one_type_per_name(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(TypeError):
            reg.gauge("x_total")
        with pytest.raises(TypeError):
            reg.gauge("x_total", policy="LRU")

    def test_invalid_name_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("bad name")

    def test_counter_negative_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("x_total").inc(-1)


class TestHistogram:
    def test_observe_and_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", "", (1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 100.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(105.0)
        assert [c for _, c in h.cumulative()] == [1, 2, 3, 4]

    def test_quantile_clamps_overflow(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", "", (1.0, 2.0))
        h.observe(50.0)
        # The overflow bucket has no finite bound; the estimate clamps.
        assert h.quantile(0.99) == 2.0

    def test_exponential_buckets(self):
        assert exponential_buckets(1.0, 2.0, 4) == (1.0, 2.0, 4.0, 8.0)


class TestSnapshot:
    def _populated(self):
        reg = MetricsRegistry()
        reg.counter("c_total", "help", policy="LRU").inc(7)
        reg.gauge("g").set(2.5)
        reg.histogram("h", "", (1.0, 10.0)).observe(3.0)
        return reg

    def test_snapshot_rows_cover_every_metric(self):
        rows = self._populated().snapshot()
        assert {row["type"] for row in rows} == {
            "counter", "gauge", "histogram"}
        counter = next(r for r in rows if r["type"] == "counter")
        assert counter["name"] == "c_total"
        assert counter["labels"] == {"policy": "LRU"}
        assert counter["value"] == 7

    def test_histogram_row_buckets_cumulative(self):
        rows = self._populated().snapshot()
        hist = next(r for r in rows if r["type"] == "histogram")
        assert hist["count"] == 1
        assert hist["sum"] == pytest.approx(3.0)
        # [le, cumulative-count] pairs over the finite bounds; the +Inf
        # bucket is implied by "count" (Prometheus exposition adds it).
        assert [le for le, _ in hist["buckets"]] == [1.0, 10.0]
        assert [c for _, c in hist["buckets"]] == [0, 1]

    def test_counter_values_flat_view(self):
        vals = self._populated().counter_values()
        assert vals == {"c_total{policy=LRU}": 7}

    def test_merge_snapshots_sums_counters_and_buckets(self):
        a, b = self._populated(), self._populated()
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        counter = next(r for r in merged if r["type"] == "counter")
        assert counter["value"] == 14
        hist = next(r for r in merged if r["type"] == "histogram")
        assert hist["count"] == 2
        assert [c for _, c in hist["buckets"]] == [0, 2]


class TestThreadSafety:
    def test_concurrent_increments_lose_nothing(self):
        reg = MetricsRegistry()
        counter = reg.counter("n_total")
        hist = reg.histogram("h", "", (10.0,))

        def worker():
            for _ in range(2000):
                counter.inc()
                hist.observe(1.0)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 16000
        assert hist.count == 16000
