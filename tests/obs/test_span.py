"""SpanTracer: nesting, external spans, metric deltas, Chrome export."""

import json
import threading

import pytest

from repro.obs import (
    CHROME_TRACE_SCHEMA,
    MetricsRegistry,
    SpanTracer,
    validate_chrome_trace,
    validate_json,
)


class FakeClock:
    """Deterministic monotonic clock: each call advances one second."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        self.t += 1.0
        return self.t


def make_tracer(registry=None):
    return SpanTracer(registry, clock=FakeClock())


class TestNesting:
    def test_context_manager_spans_nest_by_thread_stack(self):
        tracer = make_tracer()
        with tracer.span("sweep", cat="sweep"):
            with tracer.span("cell", cat="cell"):
                with tracer.span("attempt", cat="attempt"):
                    pass
        by_name = {s.name: s for s in tracer.spans()}
        assert by_name["sweep"].parent_id is None
        assert by_name["cell"].parent_id == by_name["sweep"].span_id
        assert by_name["attempt"].parent_id == by_name["cell"].span_id

    def test_siblings_share_a_parent(self):
        tracer = make_tracer()
        with tracer.span("sweep"):
            with tracer.span("cell-a"):
                pass
            with tracer.span("cell-b"):
                pass
        by_name = {s.name: s for s in tracer.spans()}
        assert (by_name["cell-a"].parent_id
                == by_name["cell-b"].parent_id
                == by_name["sweep"].span_id)
        assert len(tracer.children(by_name["sweep"].span_id)) == 2

    def test_current_span_id_tracks_stack(self):
        tracer = make_tracer()
        assert tracer.current_span_id() is None
        with tracer.span("outer") as outer:
            assert tracer.current_span_id() == outer.span_id
        assert tracer.current_span_id() is None

    def test_spans_sorted_by_start_and_cat_filter(self):
        tracer = make_tracer()
        with tracer.span("a", cat="x"):
            pass
        with tracer.span("b", cat="y"):
            pass
        assert [s.name for s in tracer.spans()] == ["a", "b"]
        assert [s.name for s in tracer.spans(cat="y")] == ["b"]


class TestAddSpan:
    def test_explicit_timestamps_and_args(self):
        tracer = make_tracer()
        span_id = tracer.add_span("cell", 1.0, 3.5, cat="cell",
                                  policy="LRU")
        [span] = tracer.spans()
        assert span.span_id == span_id
        assert span.duration == 2.5
        assert span.args["policy"] == "LRU"

    def test_defaults_parent_to_open_span(self):
        tracer = make_tracer()
        with tracer.span("sweep") as sweep:
            tracer.add_span("cell", 0.0, 1.0)
        [cell] = [s for s in tracer.spans() if s.name == "cell"]
        assert cell.parent_id == sweep.span_id

    def test_preallocated_id_lets_children_arrive_first(self):
        """The executor records attempts before their cell settles."""
        tracer = make_tracer()
        cell_id = tracer.allocate_id()
        tracer.add_span("attempt", 1.0, 2.0, parent_id=cell_id)
        tracer.add_span("cell", 0.5, 3.0, span_id=cell_id)
        [attempt] = tracer.children(cell_id)
        assert attempt.name == "attempt"

    def test_end_before_start_rejected(self):
        with pytest.raises(ValueError):
            make_tracer().add_span("bad", 2.0, 1.0)

    def test_threads_get_distinct_lanes(self):
        tracer = make_tracer()
        tracer.add_span("main-side", 0.0, 1.0)

        def worker():
            tracer.add_span("worker-side", 0.0, 1.0)

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        tids = {s.name: s.tid for s in tracer.spans()}
        assert tids["main-side"] != tids["worker-side"]


class TestMetricDeltas:
    def test_counter_deltas_attached_to_span(self):
        registry = MetricsRegistry()
        retries = registry.counter("retries_total")
        tracer = make_tracer(registry)
        with tracer.span("cell"):
            retries.inc(3)
        [span] = tracer.spans()
        assert span.args["metric_deltas"] == {"retries_total": 3}

    def test_zero_delta_counters_omitted(self):
        registry = MetricsRegistry()
        registry.counter("quiet_total").inc(5)   # before the span opens
        tracer = make_tracer(registry)
        with tracer.span("cell"):
            pass
        [span] = tracer.spans()
        assert "metric_deltas" not in span.args

    def test_error_captured_and_exception_propagates(self):
        tracer = make_tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("cell"):
                raise RuntimeError("boom")
        [span] = tracer.spans()
        assert span.args["error"] == "RuntimeError"


class TestChromeExport:
    def _traced(self):
        tracer = make_tracer()
        with tracer.span("sweep", cat="sweep"):
            with tracer.span("cell", cat="cell", policy="LRU"):
                pass
        return tracer

    def test_export_passes_schema(self):
        validate_chrome_trace(self._traced().to_chrome())

    def test_events_carry_ids_and_microseconds(self):
        tracer = self._traced()
        trace = tracer.to_chrome()
        meta, *events = trace["traceEvents"]
        assert meta["ph"] == "M"
        by_name = {e["name"]: e for e in events}
        cell = by_name["cell"]
        assert cell["ph"] == "X"
        assert cell["args"]["parent_id"] == \
            by_name["sweep"]["args"]["span_id"]
        # FakeClock ticks one second per call: durations are whole µs.
        assert cell["dur"] >= 1e6

    def test_write_validates_and_produces_valid_json(self, tmp_path):
        path = self._traced().write_chrome_trace(tmp_path / "trace.json")
        loaded = json.loads(path.read_text())
        validate_chrome_trace(loaded)


class TestValidator:
    def test_missing_required_key(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({})

    def test_wrong_type(self):
        with pytest.raises(ValueError, match="expected array"):
            validate_json({"traceEvents": "nope"}, CHROME_TRACE_SCHEMA)

    def test_enum_violation(self):
        bad = {"traceEvents": [
            {"name": "e", "ph": "Z", "pid": 1, "tid": 0, "ts": 0}]}
        with pytest.raises(ValueError, match="not in"):
            validate_json(bad, CHROME_TRACE_SCHEMA)

    def test_minimum_violation(self):
        bad = {"traceEvents": [
            {"name": "e", "ph": "M", "pid": 1, "tid": 0, "ts": -1}]}
        with pytest.raises(ValueError, match="minimum"):
            validate_json(bad, CHROME_TRACE_SCHEMA)

    def test_bool_is_not_an_integer(self):
        bad = {"traceEvents": [
            {"name": "e", "ph": "M", "pid": True, "tid": 0, "ts": 0}]}
        with pytest.raises(ValueError, match="expected integer"):
            validate_json(bad, CHROME_TRACE_SCHEMA)

    def test_complete_event_requires_dur(self):
        bad = {"traceEvents": [
            {"name": "e", "ph": "X", "pid": 1, "tid": 0, "ts": 0}]}
        with pytest.raises(ValueError, match="dur"):
            validate_chrome_trace(bad)
