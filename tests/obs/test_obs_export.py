"""Exporters: JSONL round-trip, Prometheus parity, CLI table rendering."""

import pytest

from repro.obs import (
    MetricsRegistry,
    parse_prometheus_values,
    read_jsonl,
    render_metrics_table,
    to_jsonl,
    to_prometheus,
    write_jsonl,
)


def populated_registry():
    reg = MetricsRegistry()
    reg.counter("service_requests_total", outcome="hit").inc(42)
    reg.counter("service_requests_total", outcome="miss").inc(17)
    reg.counter("coalesced_total").inc(3)
    reg.gauge("breaker_state").set(1)
    hist = reg.histogram("latency_seconds", "", (0.01, 0.1, 1.0))
    for value in (0.005, 0.05, 0.5, 5.0):
        hist.observe(value)
    return reg


class TestJsonl:
    def test_round_trip_preserves_rows(self, tmp_path):
        reg = populated_registry()
        path = write_jsonl(reg, tmp_path / "metrics.jsonl")
        assert read_jsonl(path) == reg.snapshot()

    def test_reader_skips_blank_and_torn_lines(self, tmp_path):
        reg = populated_registry()
        path = tmp_path / "metrics.jsonl"
        path.write_text(to_jsonl(reg) + "\n{torn json...\n")
        assert read_jsonl(path) == reg.snapshot()


class TestPrometheusParity:
    def test_counter_values_identical_across_exporters(self, tmp_path):
        """Acceptance: Prometheus and JSONL report the same counters."""
        reg = populated_registry()
        path = write_jsonl(reg, tmp_path / "metrics.jsonl")
        rows = read_jsonl(path)

        prom = parse_prometheus_values(to_prometheus(rows))
        assert prom['service_requests_total{outcome="hit"}'] == 42
        assert prom['service_requests_total{outcome="miss"}'] == 17
        assert prom["coalesced_total"] == 3

        # Every registry counter appears in the Prometheus text with the
        # same value (label syntax differs: prom quotes values).
        for key, value in reg.counter_values().items():
            prom_key = key.replace("=", '="').replace(",", '",') \
                .replace("}", '"}') if "{" in key else key
            assert prom[prom_key] == value

    def test_histogram_exposition_shape(self):
        prom = parse_prometheus_values(to_prometheus(populated_registry()))
        assert prom['latency_seconds_bucket{le="0.01"}'] == 1
        assert prom['latency_seconds_bucket{le="1"}'] == 3
        assert prom['latency_seconds_bucket{le="+Inf"}'] == 4
        assert prom["latency_seconds_count"] == 4
        assert prom["latency_seconds_sum"] == pytest.approx(5.555)

    def test_type_lines_emitted_once_per_metric(self):
        text = to_prometheus(populated_registry())
        type_lines = [line for line in text.splitlines()
                      if line.startswith("# TYPE service_requests_total")]
        assert type_lines == ["# TYPE service_requests_total counter"]


class TestTable:
    def test_render_accepts_registry_and_rows(self):
        reg = populated_registry()
        from_registry = render_metrics_table(reg, title="svc")
        from_rows = render_metrics_table(reg.snapshot(), title="svc")
        assert from_registry == from_rows
        assert "svc" in from_registry
        assert "service_requests_total" in from_registry
        assert "outcome=hit" in from_registry

    def test_table_shows_histogram_digest(self):
        table = render_metrics_table(populated_registry())
        assert "latency_seconds" in table
        assert "histogram" in table
