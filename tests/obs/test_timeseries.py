"""TimeSeriesRecorder: cadence, window semantics, bounding, export."""

import numpy as np
import pytest

from repro.obs import (
    MetricsRegistry,
    TimeSeriesRecorder,
    read_timeseries_jsonl,
    render_csv,
    render_sparklines,
    series_from_rows,
    series_key,
    sparkline,
)
from repro.obs.timeseries import SPARK_CHARS


class TestConstruction:
    def test_cadence_must_be_positive(self):
        with pytest.raises(ValueError):
            TimeSeriesRecorder(cadence=0)
        with pytest.raises(ValueError):
            TimeSeriesRecorder(cadence=-5)

    def test_maxlen_floor(self):
        with pytest.raises(ValueError):
            TimeSeriesRecorder(maxlen=1)

    def test_series_key_sorts_labels(self):
        assert series_key("m", {"b": 1, "a": 2}) == "m{a=2,b=1}"
        assert series_key("m") == "m"
        assert series_key("m", {}, suffix=":sum") == "m:sum"


class TestTickSampling:
    def test_counter_records_windowed_delta(self):
        registry = MetricsRegistry()
        counter = registry.counter("misses_total")
        recorder = TimeSeriesRecorder(registry, cadence=10)
        counter.inc(4)
        recorder.tick(10)       # first window: delta 4
        counter.inc(7)
        recorder.tick(10)       # second window: delta 7
        points = recorder.series("misses_total")
        assert [(t, v) for t, _, v in points] == [(10.0, 4.0), (20.0, 7.0)]
        assert all(w == 10.0 for _, w, _ in points)

    def test_gauge_records_instantaneous_value(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("inflight")
        recorder = TimeSeriesRecorder(registry, cadence=5)
        gauge.set(5)
        recorder.tick(5)
        gauge.set(3)
        recorder.tick(5)
        assert [v for _, _, v in recorder.series("inflight")] == [5.0, 3.0]

    def test_histogram_records_count_and_sum_deltas(self):
        registry = MetricsRegistry()
        hist = registry.histogram("age", "", (10, 100))
        recorder = TimeSeriesRecorder(registry, cadence=2)
        hist.observe(4)
        hist.observe(6)
        recorder.tick(2)
        hist.observe(50)
        recorder.tick(2)
        assert [v for _, _, v in recorder.series("age:count")] == [2.0, 1.0]
        assert [v for _, _, v in recorder.series("age:sum")] == [10.0, 50.0]

    def test_no_sample_before_cadence_boundary(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        recorder = TimeSeriesRecorder(registry, cadence=100)
        recorder.tick(99)
        assert recorder.series_names() == []
        recorder.tick(1)
        assert recorder.series_names() == ["c"]

    def test_burst_tick_yields_one_sample(self):
        """One big tick crosses many boundaries but samples once."""
        registry = MetricsRegistry()
        registry.counter("c").inc(9)
        recorder = TimeSeriesRecorder(registry, cadence=10)
        recorder.tick(95)
        assert recorder.samples == 1
        [(t, window, value)] = recorder.series("c")
        assert (t, window, value) == (95.0, 95.0, 9.0)

    def test_flush_records_partial_tail_window(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        recorder = TimeSeriesRecorder(registry, cadence=10)
        counter.inc(2)
        recorder.tick(10)
        counter.inc(1)
        recorder.tick(3)        # below next boundary: not yet sampled
        recorder.flush()
        points = recorder.series("c")
        assert [(t, w, v) for t, w, v in points] == [
            (10.0, 10.0, 2.0), (13.0, 3.0, 1.0)]
        recorder.flush()        # nothing accrued: no extra point
        assert len(recorder.series("c")) == 2


class TestProbes:
    def test_probe_deltas_and_removal(self):
        recorder = TimeSeriesRecorder(cadence=10)
        total = {"value": 0.0}

        def probe():
            return {"sim_hits_total{policy=LRU}": total["value"]}

        recorder.add_probe(probe)
        total["value"] = 6.0
        recorder.tick(10)
        total["value"] = 10.0
        recorder.tick(10)
        assert [v for _, _, v in
                recorder.series("sim_hits_total{policy=LRU}")] == [6.0, 4.0]
        recorder.remove_probe(probe)
        recorder.tick(10)
        assert len(recorder.series("sim_hits_total{policy=LRU}")) == 2
        recorder.remove_probe(probe)  # double-remove is a no-op


class TestMaybeSample:
    def test_first_call_anchors_epoch(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        recorder = TimeSeriesRecorder(registry, cadence=1.0)
        recorder.maybe_sample(100.0)     # anchor only
        assert recorder.samples == 0
        recorder.maybe_sample(100.5)
        assert recorder.samples == 0
        recorder.maybe_sample(101.0)
        assert recorder.samples == 1


class TestRecordMask:
    def test_windowed_hit_miss_series(self):
        recorder = TimeSeriesRecorder(cadence=4)
        mask = np.array([0, 1, 1, 0, 1, 1, 1, 1, 0, 1], dtype=bool)
        recorder.record_mask(mask, policy="LRU")
        req = recorder.series("sim_requests_total{policy=LRU}")
        hits = recorder.series("sim_hits_total{policy=LRU}")
        misses = recorder.series("sim_misses_total{policy=LRU}")
        assert [v for _, _, v in req] == [4.0, 4.0, 2.0]
        assert [v for _, _, v in hits] == [2.0, 4.0, 1.0]
        assert [v for _, _, v in misses] == [2.0, 0.0, 1.0]
        assert [t for t, _, _ in req] == [4.0, 8.0, 10.0]

    def test_warmup_excluded(self):
        recorder = TimeSeriesRecorder(cadence=4)
        mask = np.array([0, 0, 0, 0, 1, 1, 1, 1], dtype=bool)
        recorder.record_mask(mask, warmup=4, policy="FIFO")
        [(t, w, v)] = recorder.series("sim_hits_total{policy=FIFO}")
        assert (t, w, v) == (4.0, 4.0, 4.0)

    def test_empty_after_warmup_is_noop(self):
        recorder = TimeSeriesRecorder(cadence=4)
        recorder.record_mask(np.zeros(3, dtype=bool), warmup=3)
        assert recorder.series_names() == []

    def test_ratio_gives_windowed_miss_ratio(self):
        recorder = TimeSeriesRecorder(cadence=4)
        mask = np.array([0, 1, 1, 0, 1, 1, 1, 1], dtype=bool)
        recorder.record_mask(mask, policy="LRU")
        curve = recorder.ratio("sim_misses_total{policy=LRU}",
                               "sim_requests_total{policy=LRU}")
        assert curve == [(4.0, 0.5), (8.0, 0.0)]


class TestBounding:
    def _fill(self, recorder, n):
        registry = recorder.registry
        counter = registry.counter("c")
        for _ in range(n):
            counter.inc()
            recorder.tick(1)

    def test_downsample_halves_points_and_preserves_totals(self):
        recorder = TimeSeriesRecorder(MetricsRegistry(), cadence=1,
                                      maxlen=4, downsample=True)
        self._fill(recorder, 5)
        points = recorder.series("c")
        # 5th append merged (p1,p2) and (p3,p4) pairwise: 3 points left.
        assert len(points) == 3
        assert sum(v for _, _, v in points) == 5.0      # nothing forgotten
        assert sum(w for _, w, _ in points) == 5.0
        assert points[0] == (2.0, 2.0, 2.0)             # merged window

    def test_downsampled_gauge_keeps_latest_value(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        recorder = TimeSeriesRecorder(registry, cadence=1,
                                      maxlen=2, downsample=True)
        for value in (1, 2, 3):
            gauge.set(value)
            recorder.tick(1)
        points = recorder.series("g")
        assert points[0][2] == 2.0      # merged pair keeps the later value

    def test_ring_drop_mode_keeps_newest(self):
        recorder = TimeSeriesRecorder(MetricsRegistry(), cadence=1,
                                      maxlen=4, downsample=False)
        self._fill(recorder, 6)
        points = recorder.series("c")
        assert len(points) == 4
        assert [t for t, _, _ in points] == [3.0, 4.0, 5.0, 6.0]


class TestExport:
    def _recorder(self):
        recorder = TimeSeriesRecorder(cadence=2)
        recorder.record_mask(np.array([0, 1, 1, 1], dtype=bool),
                             policy="LRU")
        return recorder

    def test_unknown_series_raises(self):
        with pytest.raises(KeyError):
            self._recorder().series("nope")

    def test_rows_round_trip_through_jsonl(self, tmp_path):
        recorder = self._recorder()
        path = recorder.write_jsonl(tmp_path / "ts.jsonl")
        rows = read_timeseries_jsonl(path)
        assert rows == recorder.to_rows()
        grouped = series_from_rows(rows)
        assert grouped["sim_hits_total{policy=LRU}"] == \
            recorder.series("sim_hits_total{policy=LRU}")

    def test_reader_skips_torn_lines(self, tmp_path):
        recorder = self._recorder()
        path = recorder.write_jsonl(tmp_path / "ts.jsonl")
        path.write_text(path.read_text() + "{torn...\n\n")
        assert read_timeseries_jsonl(path) == recorder.to_rows()

    def test_render_csv_long_format(self):
        text = render_csv(series_from_rows(self._recorder().to_rows()))
        lines = text.splitlines()
        assert lines[0] == "series,t,window,value"
        assert any(line.startswith("sim_misses_total{policy=LRU},")
                   for line in lines[1:])

    def test_render_sparklines_lists_every_series(self):
        out = render_sparklines(series_from_rows(self._recorder().to_rows()))
        for name in ("sim_requests_total", "sim_hits_total",
                     "sim_misses_total"):
            assert name in out
        assert render_sparklines({}) == "(no series)"


class TestSparkline:
    def test_empty_and_constant(self):
        assert sparkline([]) == ""
        assert sparkline([5, 5, 5]) == SPARK_CHARS[0] * 3

    def test_min_max_hit_extremes(self):
        line = sparkline([0.0, 1.0])
        assert line == SPARK_CHARS[0] + SPARK_CHARS[-1]

    def test_long_input_bucketed_to_width(self):
        line = sparkline(range(1000), width=10)
        assert len(line) == 10
