"""repro: a reproduction of "FIFO can be Better than LRU: the Power of
Lazy Promotion and Quick Demotion" (Yang et al., HotOS 2023).

Quickstart::

    from repro import QDLPFIFO, simulate, build_corpus

    trace = build_corpus(traces_per_family=1)[0]
    cache = QDLPFIFO(capacity=trace.cache_size(0.1))
    print(simulate(cache, trace).miss_ratio)

Package map:

* :mod:`repro.core` -- Lazy Promotion (FIFO-Reinsertion, k-bit CLOCK),
  Quick Demotion (the probationary-FIFO + ghost wrapper), QD-LP-FIFO,
  and the S3-FIFO/SIEVE extensions.
* :mod:`repro.policies` -- LRU, ARC, LIRS, CACHEUS, LeCaR, LHD, Belady
  and more, behind one registry.
* :mod:`repro.sim` -- trace-driven simulator, sweep runner, resource
  profiler.
* :mod:`repro.exec` -- fault-tolerant sweep execution: crash-isolated
  workers, retries, checkpointed resume (see docs/robustness.md).
* :mod:`repro.obs` -- zero-dependency metrics registry, cache event
  tracer and exporters (see docs/observability.md).
* :mod:`repro.traces` -- synthetic workload generators and the Table 1
  corpus.
* :mod:`repro.hierarchy` -- multi-tier DRAM -> flash -> backend cache
  with demotion-on-eviction and admission control (docs/hierarchy.md).
* :mod:`repro.analysis` -- miss-ratio reductions, win fractions, tables.
* :mod:`repro.experiments` -- one module per paper table/figure.
"""

from repro.core import (
    CacheListener,
    CacheStats,
    EvictionPolicy,
    FIFOReinsertion,
    GhostQueue,
    KBitClock,
    OfflinePolicy,
    QDCache,
    QDLPFIFO,
    S3FIFO,
    Sieve,
    two_bit_clock,
    wrap_with_qd,
)
from repro.policies import (
    ARC,
    Belady,
    CACHEUS,
    FIFO,
    LeCaR,
    LFU,
    LHD,
    LIRS,
    LRU,
    SOTA_NAMES,
    make,
)
from repro.policies.registry import (
    canonical_name,
    canonical_sized_name,
    make_sized,
    resolve,
    resolve_sized,
    sized_names,
)
from repro.hierarchy import (
    CacheHierarchy,
    HierarchyConfig,
    TierConfig,
    dram_flash_config,
    simulate_hierarchy,
)
from repro.exec import (
    ExecOptions,
    FailureReport,
    FaultPlan,
    RetryPolicy,
)
from repro.obs import CacheTracer, MetricsRegistry
from repro.sim import (
    LARGE_FRACTION,
    SMALL_FRACTION,
    RunRecord,
    SimOptions,
    SimResult,
    SweepResult,
    miss_ratio,
    profile,
    run_matrix,
    run_sweep,
    simulate,
)
from repro.traces import Trace, build_corpus, from_keys

__version__ = "1.0.0"

__all__ = [
    "CacheListener",
    "CacheStats",
    "EvictionPolicy",
    "FIFOReinsertion",
    "GhostQueue",
    "KBitClock",
    "OfflinePolicy",
    "QDCache",
    "QDLPFIFO",
    "S3FIFO",
    "Sieve",
    "two_bit_clock",
    "wrap_with_qd",
    "ARC",
    "Belady",
    "CACHEUS",
    "FIFO",
    "LeCaR",
    "LFU",
    "LHD",
    "LIRS",
    "LRU",
    "SOTA_NAMES",
    "make",
    "resolve",
    "canonical_name",
    "make_sized",
    "resolve_sized",
    "canonical_sized_name",
    "sized_names",
    "CacheHierarchy",
    "HierarchyConfig",
    "TierConfig",
    "dram_flash_config",
    "simulate_hierarchy",
    "ExecOptions",
    "FailureReport",
    "FaultPlan",
    "RetryPolicy",
    "CacheTracer",
    "MetricsRegistry",
    "LARGE_FRACTION",
    "SMALL_FRACTION",
    "RunRecord",
    "SimOptions",
    "SimResult",
    "SweepResult",
    "miss_ratio",
    "profile",
    "run_matrix",
    "run_sweep",
    "simulate",
    "Trace",
    "build_corpus",
    "from_keys",
    "__version__",
]
