"""A sharded cache cluster over independent :class:`CacheService` shards.

:class:`CacheCluster` is the routing tier the ROADMAP asks for: N
single-node services (each with its own backend, circuit breaker,
serve-stale window and fault plan -- one **fault domain** per shard)
behind one consistent-hash ring.  The paper's operational claim scales
with it: every promotion a policy performs still happens inside one
shard's critical section, so lazy-promotion policies keep their edge
shard by shard, and the cluster adds the availability story on top:

* **Consistent placement** -- keys map to shards via
  :class:`~repro.cluster.ring.HashRing` (virtual nodes), so membership
  changes move only ring-adjacent arcs, never the whole key space.
* **Replication of hot keys** -- once a key's observed frequency
  crosses ``hot_key_threshold``, fetched values are also pushed to the
  next ``replicas`` distinct shards.  When the primary's breaker is
  open or the shard is down, reads fall back to those copies
  (outcome ``replica_hit``).
* **Per-shard fault domains** -- a shard outage (``kill`` windows on
  the shared clock, or a manual ``set_down``) makes only that shard's
  arc degrade; the rest of the ring serves unaffected.
* **Hot-key mitigation** -- an optional tiny front cache absorbs the
  very hottest keys before they reach any shard, so a single viral key
  cannot saturate its primary.
* **Bounded rebalancing** -- :meth:`add_shard` / :meth:`remove_shard`
  migrate only the cached entries whose ownership actually moved and
  report exactly how many.

Accounting is conservation-checked cluster-wide: every request ends in
exactly one of ``hit | miss | replica_hit | stale | shed | error``, and
``hit + miss + replica_hit + stale + shed + error == requests`` holds
under arbitrary concurrency (the stress suite hammers it with a shard
dying mid-run).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Any, Callable, Dict, Hashable, List,
                    Optional, Tuple)

from repro.core.base import validate_capacity
from repro.exec.clock import Clock, SystemClock
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    Reservoir,
)
from repro.cluster.ring import DEFAULT_VNODES, HashRing, moved_keys
from repro.obs.reqtrace import NOT_SAMPLED
from repro.service.service import (
    ERROR,
    HIT,
    LATENCY_RESERVOIR_SIZE,
    MISS,
    SHED,
    STALE,
    CacheService,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.reqtrace import ActiveSpan, RequestTracer, TraceContext

Key = Hashable

REPLICA_HIT = "replica_hit"   # primary unavailable; a replica's copy served

#: Every cluster request resolves to exactly one of these.
CLUSTER_OUTCOMES = (HIT, MISS, REPLICA_HIT, STALE, SHED, ERROR)


@dataclass(frozen=True)
class ClusterConfig:
    """Routing/replication knobs for :class:`CacheCluster` (validated).

    * ``vnodes`` -- virtual nodes per shard on the hash ring.
    * ``replicas`` -- replica copies kept *in addition to* the primary
      for hot keys (0 disables replication).
    * ``hot_key_threshold`` -- observed requests after which a key
      counts as hot (replicated + front-cache eligible).  1 replicates
      everything touched twice; higher values focus on the true head.
    * ``hot_tracker_size`` -- bounded size of the frequency tracker.
    * ``front_cache_size`` -- entries in the tiny front cache
      (0 disables it).
    * ``front_cache_ttl`` -- seconds a front-cache copy may be served;
      keeps the mitigation window, and therefore staleness, tiny.
    """

    vnodes: int = DEFAULT_VNODES
    replicas: int = 1
    hot_key_threshold: int = 8
    hot_tracker_size: int = 1024
    front_cache_size: int = 0
    front_cache_ttl: float = 1.0

    def __post_init__(self) -> None:
        if self.vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {self.vnodes}")
        if self.replicas < 0:
            raise ValueError(
                f"replicas must be >= 0, got {self.replicas}")
        if self.hot_key_threshold < 1:
            raise ValueError(
                f"hot_key_threshold must be >= 1, "
                f"got {self.hot_key_threshold}")
        if self.hot_tracker_size < 1:
            raise ValueError(
                f"hot_tracker_size must be >= 1, "
                f"got {self.hot_tracker_size}")
        if self.front_cache_size < 0:
            raise ValueError(
                f"front_cache_size must be >= 0, "
                f"got {self.front_cache_size}")
        if self.front_cache_ttl <= 0:
            raise ValueError(
                f"front_cache_ttl must be > 0, "
                f"got {self.front_cache_ttl}")


class HotKeyTracker:
    """Bounded request-frequency tracker with periodic top-k pruning.

    A plain dict of counts, pruned to the hottest half whenever it
    doubles past ``size`` -- amortised O(log size) per observation, no
    per-request scans, deterministic.  Precise enough to find the Zipf
    head, which is all hot-key replication needs.
    """

    def __init__(self, size: int = 1024, threshold: int = 8) -> None:
        self.size = validate_capacity(size, what="size")
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self._counts: Dict[Key, int] = {}
        self._lock = threading.Lock()

    def observe(self, key: Key) -> bool:
        """Count one request for *key*; returns whether it is hot."""
        with self._lock:
            count = self._counts.get(key, 0) + 1
            self._counts[key] = count
            if len(self._counts) > 2 * self.size:
                self._prune()
            return count >= self.threshold

    def _prune(self) -> None:
        import heapq
        keep = heapq.nlargest(self.size, self._counts.items(),
                              key=lambda item: item[1])
        self._counts = dict(keep)

    def is_hot(self, key: Key) -> bool:
        """Whether *key* has crossed the threshold (no count taken)."""
        with self._lock:
            return self._counts.get(key, 0) >= self.threshold

    def hot_keys(self) -> List[Key]:
        """Currently-hot keys, hottest first."""
        with self._lock:
            items = [(count, repr(key), key)
                     for key, count in self._counts.items()
                     if count >= self.threshold]
        items.sort(reverse=True)
        return [key for _, _, key in items]


class FrontCache:
    """A tiny TTL'd LRU in front of the ring (hot-key mitigation).

    Holds a handful of the hottest keys' values so a viral key is
    answered before it reaches -- and serialises on -- its primary
    shard.  The TTL bounds how stale the mitigation can get.
    """

    def __init__(self, size: int, ttl: float, clock: Clock) -> None:
        self.size = validate_capacity(size, what="size")
        if ttl <= 0:
            raise ValueError(f"ttl must be > 0, got {ttl}")
        self.ttl = ttl
        self.clock = clock
        self._lock = threading.Lock()
        self._entries: "Dict[Key, Tuple[Any, float]]" = {}

    def get(self, key: Key) -> Optional[Tuple[Any]]:
        """The cached value as a 1-tuple (``None`` caches cleanly), or
        ``None`` on miss/expiry."""
        now = self.clock.now()
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            value, stored_at = entry
            if now - stored_at > self.ttl:
                del self._entries[key]
                return None
            # LRU touch: move to the MRU end.
            del self._entries[key]
            self._entries[key] = (value, stored_at)
            return (value,)

    def put(self, key: Key, value: Any) -> None:
        with self._lock:
            self._entries.pop(key, None)
            if len(self._entries) >= self.size:
                oldest = next(iter(self._entries))
                del self._entries[oldest]
            self._entries[key] = (value, self.clock.now())

    def invalidate(self, key: Key) -> None:
        with self._lock:
            self._entries.pop(key, None)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


@dataclass
class ClusterGetResult:
    """What one cluster request resolved to."""

    key: Key
    value: Any
    outcome: str            # one of CLUSTER_OUTCOMES
    shard: Optional[str]    # shard that served it (None = front cache)
    latency: float          # seconds on the cluster clock
    front: bool = False     # answered by the front cache
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Whether a value was served."""
        return self.outcome in (HIT, MISS, REPLICA_HIT, STALE)


class ClusterMetrics:
    """Thread-safe cluster-wide accounting (the conservation invariant).

    Mirrors into a registry when given one:
    ``cluster_requests_total{outcome=}``,
    ``cluster_request_latency_seconds{outcome=}``,
    ``cluster_replications_total``, ``cluster_front_hits_total``,
    ``cluster_replica_probes_total``, plus the ring-state gauges
    ``cluster_ring_nodes`` and ``cluster_shard_up{shard=}`` maintained
    by the cluster itself.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self._lock = threading.Lock()
        self.counts: Dict[str, int] = {
            outcome: 0 for outcome in CLUSTER_OUTCOMES}
        self.front_hits = 0
        self.replications = 0
        self.replica_probes = 0
        # Fixed-size latency samples: cluster-wide open-loop runs must
        # not grow memory one float per request.
        self._latencies: Dict[str, Reservoir] = {
            outcome: Reservoir(LATENCY_RESERVOIR_SIZE, seed=index)
            for index, outcome in enumerate(CLUSTER_OUTCOMES)}
        self.registry = registry
        if registry is not None:
            self._obs_requests = {
                outcome: registry.counter(
                    "cluster_requests_total",
                    "Cluster requests by outcome", outcome=outcome)
                for outcome in CLUSTER_OUTCOMES}
            self._obs_latency = {
                outcome: registry.histogram(
                    "cluster_request_latency_seconds",
                    "Cluster request latency by outcome",
                    DEFAULT_LATENCY_BUCKETS, outcome=outcome)
                for outcome in CLUSTER_OUTCOMES}
            self._obs_front = registry.counter(
                "cluster_front_hits_total",
                "Requests absorbed by the front cache")
            self._obs_replications = registry.counter(
                "cluster_replications_total",
                "Hot-key values pushed to replica shards")
            self._obs_probes = registry.counter(
                "cluster_replica_probes_total",
                "Replica reads attempted while a primary was unavailable")

    def record(self, outcome: str, latency: float,
               front: bool = False, exemplar: Optional[str] = None) -> bool:
        """Account one finished cluster request.

        ``exemplar`` optionally offers a trace id to the latency
        histogram (first observation per bucket wins); returns True
        when it was taken so the caller can pin that trace.
        """
        with self._lock:
            self.counts[outcome] += 1
            self._latencies[outcome].add(latency)
            if front:
                self.front_hits += 1
        took = False
        if self.registry is not None:
            self._obs_requests[outcome].inc()
            took = self._obs_latency[outcome].observe(latency,
                                                      exemplar=exemplar)
            if front:
                self._obs_front.inc()
        return took

    def record_replication(self, copies: int) -> None:
        with self._lock:
            self.replications += copies
        if self.registry is not None:
            self._obs_replications.inc(copies)

    def record_replica_probe(self) -> None:
        with self._lock:
            self.replica_probes += 1
        if self.registry is not None:
            self._obs_probes.inc()

    # -- views ---------------------------------------------------------
    @property
    def requests(self) -> int:
        with self._lock:
            return sum(self.counts.values())

    def latencies(self, outcome: Optional[str] = None) -> List[float]:
        """Sampled latencies, for one outcome or all of them."""
        with self._lock:
            if outcome is not None:
                return self._latencies[outcome].values()
            merged: List[float] = []
            for reservoir in self._latencies.values():
                merged.extend(reservoir.values())
            return merged

    def snapshot(self) -> Dict[str, int]:
        """A consistent copy of every counter."""
        with self._lock:
            snap = dict(self.counts)
            snap["requests"] = sum(self.counts.values())
            snap["front_hits"] = self.front_hits
            snap["replications"] = self.replications
            snap["replica_probes"] = self.replica_probes
            return snap

    def check_conservation(self) -> None:
        """Assert the cluster-wide outcome-conservation invariant."""
        snap = self.snapshot()
        accounted = sum(snap[outcome] for outcome in CLUSTER_OUTCOMES)
        if accounted != snap["requests"]:
            raise AssertionError(
                f"cluster outcome accounting broken: {accounted} "
                f"accounted vs {snap['requests']} requests ({snap})")


@dataclass
class RebalanceReport:
    """What one membership change moved (and what it did not)."""

    joined: Optional[str] = None
    left: Optional[str] = None
    keys_before: int = 0          # cached keys examined
    keys_moved: int = 0           # cached keys whose primary changed
    migrated: int = 0             # moved entries copied to new owners
    dropped: int = 0              # moved entries invalidated only
    by_shard: Dict[str, int] = field(default_factory=dict)

    @property
    def moved_fraction(self) -> float:
        """Fraction of examined keys that changed primary."""
        if self.keys_before == 0:
            return 0.0
        return self.keys_moved / self.keys_before

    def render(self) -> str:
        event = (f"join {self.joined}" if self.joined
                 else f"leave {self.left}")
        per_shard = "  ".join(f"{name}:{count}"
                              for name, count in sorted(self.by_shard.items()))
        return (f"rebalance ({event}): {self.keys_moved}/{self.keys_before} "
                f"cached keys moved ({self.moved_fraction:.1%}); "
                f"{self.migrated} migrated, {self.dropped} dropped"
                + (f"  [{per_shard}]" if per_shard else ""))


class _DownWindows:
    """Scheduled + manual per-shard down state on the shared clock."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._windows: Dict[str, List[Tuple[float, float]]] = {}
        self._manual: Dict[str, bool] = {}

    def add_window(self, shard: str, start: float, end: float) -> None:
        if end <= start:
            raise ValueError(
                f"down window must have end > start, got [{start}, {end})")
        with self._lock:
            self._windows.setdefault(shard, []).append(
                (float(start), float(end)))

    def set_manual(self, shard: str, down: bool) -> None:
        with self._lock:
            self._manual[shard] = bool(down)

    def is_down(self, shard: str, now: float) -> bool:
        with self._lock:
            if self._manual.get(shard, False):
                return True
            return any(start <= now < end
                       for start, end in self._windows.get(shard, ()))


class CacheCluster:
    """Consistent-hash router over named :class:`CacheService` shards.

    ``shards`` maps shard names to fully-constructed services; each
    service should share the cluster's ``clock`` (the
    :func:`build_cluster` helper wires all of this, including one
    fault plan and breaker per shard and per-shard metric labels).
    The single public serving operation is :meth:`get`.
    """

    def __init__(
        self,
        shards: Dict[str, CacheService],
        config: Optional[ClusterConfig] = None,
        clock: Optional[Clock] = None,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional["RequestTracer"] = None,
    ) -> None:
        if not shards:
            raise ValueError("a cluster needs at least one shard")
        for name, service in shards.items():
            if not isinstance(service, CacheService):
                raise TypeError(
                    f"shard {name!r} must be a CacheService, "
                    f"got {type(service).__name__}")
        self.config = config or ClusterConfig()
        self.clock = clock or SystemClock()
        # Request tracing is opt-in; shards should share this tracer
        # (build_cluster wires it) so their spans nest under ours.
        self.tracer = tracer
        self.shards: Dict[str, CacheService] = dict(shards)
        self.ring = HashRing(self.shards, vnodes=self.config.vnodes)
        self.metrics = ClusterMetrics(registry)
        self.registry = registry
        self.hot_tracker = HotKeyTracker(
            self.config.hot_tracker_size, self.config.hot_key_threshold)
        self.front_cache: Optional[FrontCache] = (
            FrontCache(self.config.front_cache_size,
                       self.config.front_cache_ttl, self.clock)
            if self.config.front_cache_size > 0 else None)
        self._down = _DownWindows()
        self._membership_lock = threading.Lock()
        self._ring_gauge = None
        self._up_gauges: Dict[str, Any] = {}
        if registry is not None:
            self._ring_gauge = registry.gauge(
                "cluster_ring_nodes", "Shards currently on the ring")
            self._ring_gauge.set(len(self.ring))
            for name in self.shards:
                gauge = registry.gauge(
                    "cluster_shard_up", "1 = shard serving, 0 = down",
                    shard=name)
                gauge.set(1)
                self._up_gauges[name] = gauge

    # ------------------------------------------------------------------
    # Serving path
    # ------------------------------------------------------------------
    def get(self, key: Key,
            ctx: Optional["TraceContext"] = None) -> ClusterGetResult:
        """Serve one request for *key* (thread-safe).

        ``ctx`` optionally joins an existing request trace (e.g. the
        open-loop engine's root span); shard-level spans then nest
        under this cluster hop.
        """
        t0 = self.clock.now()
        span = None
        if self.tracer is not None:
            span = self.tracer.start("cluster.get", ctx=ctx, start=t0,
                                     key=repr(key))
        # Once the cluster owns the sampling decision, un-sampled
        # requests propagate NOT_SAMPLED so the per-shard services
        # (which share this tracer) don't head-sample fresh roots of
        # their own mid-stack.
        if span is not None:
            child_ctx = span.ctx
        elif self.tracer is not None:
            child_ctx = NOT_SAMPLED
        else:
            child_ctx = ctx
        hot = self.hot_tracker.observe(key)

        # 1. Front cache: absorb the very hottest keys before routing.
        if self.front_cache is not None:
            boxed = self.front_cache.get(key)
            if boxed is not None:
                if span is not None:
                    span.note(front_cache=True)
                return self._finish(key, boxed[0], HIT, None, t0,
                                    front=True, span=span)

        owners = self.ring.owners(key, 1 + self.config.replicas)
        primary, replicas = owners[0], owners[1:]
        if span is not None:
            span.note(shard=primary)

        # 2. Primary down or failing fast: degrade along the replica
        #    set.  A cached copy serves as ``replica_hit``; a cold key
        #    fails over entirely -- the first healthy replica shard
        #    fetches through its own origin (the shard died, not the
        #    backend).  With replication disabled there is nowhere to
        #    go and the arc degrades honestly to errors.
        primary_down = self._shard_down(primary, t0)
        if primary_down or self.shards[primary].breaker_open:
            if span is not None:
                if primary_down:
                    span.note(primary_down=True)
                else:
                    span.note(primary_breaker="open")
                    span.mark("breaker-open")
            served = self._try_replicas(key, replicas, t0, span=span)
            if served is not None:
                return served
            if primary_down:
                fallback = next(
                    (name for name in replicas
                     if not self._shard_down(name, self.clock.now())),
                    None)
                if fallback is None:
                    return self._finish(
                        key, None, ERROR, primary, t0,
                        error=f"shard {primary!r} down; no replica "
                              f"could serve {key!r}", span=span)
                if span is not None:
                    span.note(failover=fallback)
                result = self.shards[fallback].get(key, ctx=child_ctx)
                return self._finish(key, result.value, result.outcome,
                                    fallback, t0, error=result.error,
                                    span=span)
            # Breaker open but the shard process is up: let the shard
            # degrade deterministically (stale / fast error).

        # 3. Normal path: the primary shard serves.
        result = self.shards[primary].get(key, ctx=child_ctx)

        # 4. Backend failed at the primary: last-ditch replica read.
        if result.outcome == ERROR and replicas:
            served = self._try_replicas(key, replicas, t0, span=span)
            if served is not None:
                return served

        # 5. Hot-key replication + front-cache admission.  A hot key's
        #    value is pushed to every healthy replica that does not
        #    already hold a servable copy (a fetch refreshes them all).
        if result.ok and hot:
            if replicas:
                copies = 0
                for name in replicas:
                    if self._shard_down(name, self.clock.now()):
                        continue
                    if result.outcome != MISS and \
                            self.shards[name].peek(key) is not None:
                        continue
                    self.shards[name].put(key, result.value)
                    copies += 1
                if copies:
                    self.metrics.record_replication(copies)
            if self.front_cache is not None:
                self.front_cache.put(key, result.value)

        return self._finish(key, result.value, result.outcome, primary,
                            t0, error=result.error, span=span)

    #: alias so the cluster can stand in where a callable is expected
    __call__ = get

    def _try_replicas(self, key: Key, replicas: List[str], t0: float,
                      span: Optional["ActiveSpan"] = None
                      ) -> Optional[ClusterGetResult]:
        """Read *key* from its replica shards, in ring order."""
        for name in replicas:
            if self._shard_down(name, self.clock.now()):
                continue
            self.metrics.record_replica_probe()
            probe = (span.child("replica.peek", shard=name)
                     if span is not None else None)
            peeked = self.shards[name].peek(key, allow_stale=True)
            if probe is not None:
                probe.end(found=peeked is not None,
                          **({"outcome": peeked.outcome}
                             if peeked is not None else {}))
            if peeked is not None:
                outcome = REPLICA_HIT if peeked.outcome == HIT else STALE
                return self._finish(key, peeked.value, outcome, name, t0,
                                    span=span)
        return None

    def _shard_down(self, name: str, now: float) -> bool:
        down = self._down.is_down(name, now)
        gauge = self._up_gauges.get(name)
        if gauge is not None:
            gauge.set(0 if down else 1)
        return down

    def _finish(self, key: Key, value: Any, outcome: str,
                shard: Optional[str], t0: float, front: bool = False,
                error: Optional[str] = None,
                span: Optional["ActiveSpan"] = None) -> ClusterGetResult:
        latency = self.clock.now() - t0
        took = self.metrics.record(
            outcome, latency, front=front,
            exemplar=span.trace_id if span is not None else None)
        if span is not None:
            if took:
                span.mark("exemplar")
            if shard is not None:
                span.note(served_by=shard)
            span.end(outcome=outcome,
                     **({"error": error} if error else {}))
        return ClusterGetResult(key=key, value=value, outcome=outcome,
                                shard=shard, latency=latency, front=front,
                                error=error)

    # ------------------------------------------------------------------
    # Fault domains
    # ------------------------------------------------------------------
    def kill(self, shard: str, start: float, end: float) -> None:
        """Schedule shard *shard* down for ``[start, end)`` clock time.

        Requests routed to it inside the window fail over to replicas
        or error; the shard's cached contents survive and serve again
        once the window closes (a crash-restart, not a decommission).
        """
        self._require_shard(shard)
        self._down.add_window(shard, start, end)

    def set_down(self, shard: str, down: bool = True) -> None:
        """Manually mark *shard* down/up (real-clock stress tests)."""
        self._require_shard(shard)
        self._down.set_manual(shard, down)

    def shard_is_down(self, shard: str) -> bool:
        """Whether *shard* is down right now."""
        self._require_shard(shard)
        return self._down.is_down(shard, self.clock.now())

    def _require_shard(self, shard: str) -> None:
        if shard not in self.shards:
            raise KeyError(
                f"no shard {shard!r} (members: "
                f"{', '.join(sorted(self.shards))})")

    # ------------------------------------------------------------------
    # Membership / rebalancing
    # ------------------------------------------------------------------
    def add_shard(self, name: str, service: CacheService,
                  migrate: bool = True) -> RebalanceReport:
        """Join *service* as shard *name*, rebalancing bounded arcs.

        Only cached entries whose primary moved (necessarily onto the
        new shard) are touched: with ``migrate`` they are copied to the
        new owner then invalidated at the old one, otherwise just
        invalidated.  Everything else keeps serving untouched.
        """
        if not isinstance(service, CacheService):
            raise TypeError(
                f"shard {name!r} must be a CacheService, "
                f"got {type(service).__name__}")
        with self._membership_lock:
            if name in self.shards:
                raise ValueError(f"shard {name!r} already in the cluster")
            cached = {shard: self.shards[shard].cached_keys()
                      for shard in self.shards}
            before = self.ring.assignments(
                [key for keys in cached.values() for key in keys])
            self.ring.add(name)
            self.shards[name] = service
            report = self._rebalance(cached, before, migrate)
            report.joined = name
            self._after_membership_change(name, up=True)
            return report

    def remove_shard(self, name: str,
                     migrate: bool = True) -> RebalanceReport:
        """Gracefully drain shard *name* off the ring.

        Its cached entries fall to the ring-adjacent shards (migrated
        when ``migrate``); keys owned by other shards do not move --
        the consistent-hashing guarantee the property tests pin down.
        """
        with self._membership_lock:
            self._require_shard(name)
            if len(self.shards) == 1:
                raise ValueError(
                    "cannot remove the last shard of a cluster")
            cached = {shard: self.shards[shard].cached_keys()
                      for shard in self.shards}
            before = self.ring.assignments(
                [key for keys in cached.values() for key in keys])
            self.ring.remove(name)
            leaving = self.shards.pop(name)
            cached_leaving = cached.pop(name, [])
            report = self._rebalance(cached, before, migrate,
                                     extra={name: (leaving,
                                                   cached_leaving)})
            report.left = name
            self._after_membership_change(name, up=False)
            return report

    def _rebalance(self, cached: Dict[str, List[Key]],
                   before: Dict[Key, str], migrate: bool,
                   extra: Optional[Dict[str, tuple]] = None
                   ) -> RebalanceReport:
        """Move cached entries whose primary changed; count everything."""
        report = RebalanceReport(keys_before=len(before))
        moved = set(moved_keys(before,
                               self.ring.assignments(list(before))))
        sources: List[Tuple[str, CacheService, List[Key]]] = [
            (shard, self.shards[shard], keys)
            for shard, keys in cached.items()]
        for shard, (service, keys) in (extra or {}).items():
            sources.append((shard, service, keys))
        for shard, service, keys in sources:
            for key in keys:
                if key not in moved and shard in self.shards:
                    continue
                new_owner = self.ring.primary(key)
                if new_owner == shard:
                    continue
                report.keys_moved += 1
                report.by_shard[shard] = report.by_shard.get(shard, 0) + 1
                if migrate:
                    peeked = service.peek(key, allow_stale=True)
                    if peeked is not None:
                        self.shards[new_owner].put(key, peeked.value)
                        report.migrated += 1
                    else:
                        report.dropped += 1
                else:
                    report.dropped += 1
                service.invalidate(key)
                if self.front_cache is not None:
                    self.front_cache.invalidate(key)
        return report

    def _after_membership_change(self, name: str, up: bool) -> None:
        if self._ring_gauge is not None:
            self._ring_gauge.set(len(self.ring))
        if self.registry is not None and up and name not in self._up_gauges:
            gauge = self.registry.gauge(
                "cluster_shard_up", "1 = shard serving, 0 = down",
                shard=name)
            self._up_gauges[name] = gauge
        gauge = self._up_gauges.get(name)
        if gauge is not None:
            gauge.set(1 if up else 0)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def shard_snapshots(self) -> Dict[str, Dict[str, int]]:
        """Per-shard :class:`ServiceMetrics` snapshots."""
        return {name: service.metrics.snapshot()
                for name, service in self.shards.items()}

    def breaker_transitions(self) -> List[Tuple[float, str, str, str]]:
        """Merged ``(time, shard, from, to)`` transitions, time-ordered."""
        merged: List[Tuple[float, str, str, str]] = []
        for name, service in self.shards.items():
            for timestamp, src, dst in service.breaker_transitions():
                merged.append((timestamp, name, src, dst))
        merged.sort(key=lambda item: (item[0], item[1]))
        return merged


def build_cluster(
    policy_factory: Callable[[], "Any"],
    shards: int = 4,
    config: Optional[ClusterConfig] = None,
    service_config: Optional["Any"] = None,
    clock: Optional[Clock] = None,
    registry: Optional[MetricsRegistry] = None,
    backend_factory: Optional[Callable[[str], "Any"]] = None,
    tracer: Optional["RequestTracer"] = None,
) -> CacheCluster:
    """Assemble a ready-to-serve cluster of homogeneous shards.

    Each shard gets its own policy instance (``policy_factory()``),
    its own :class:`~repro.service.backend.InMemoryBackend` wrapped in
    a fresh :class:`~repro.service.faults.BackendFaultPlan` (reachable
    as ``cluster.plans[name]`` for deterministic per-fault-domain
    injection), its own breaker, and per-shard metric labels -- all on
    the one shared *clock*.  ``backend_factory(name)`` overrides the
    origin per shard when the defaults don't fit.
    """
    from repro.service.backend import FaultInjectedBackend, InMemoryBackend
    from repro.service.faults import BackendFaultPlan
    from repro.service.service import ServiceConfig

    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    clock = clock or SystemClock()
    plans: Dict[str, BackendFaultPlan] = {}
    members: Dict[str, CacheService] = {}
    for index in range(shards):
        name = f"s{index}"
        if backend_factory is not None:
            backend = backend_factory(name)
        else:
            plan = BackendFaultPlan()
            plans[name] = plan
            backend = FaultInjectedBackend(InMemoryBackend(), plan, clock)
        members[name] = CacheService(
            policy_factory(),
            backend,
            service_config or ServiceConfig(),
            clock=clock,
            registry=registry,
            metric_labels={"shard": name},
            tracer=tracer,
        )
    cluster = CacheCluster(members, config=config, clock=clock,
                           registry=registry, tracer=tracer)
    cluster.plans = plans
    return cluster


__all__ = [
    "CLUSTER_OUTCOMES",
    "REPLICA_HIT",
    "CacheCluster",
    "ClusterConfig",
    "ClusterGetResult",
    "ClusterMetrics",
    "FrontCache",
    "HotKeyTracker",
    "RebalanceReport",
    "build_cluster",
]
