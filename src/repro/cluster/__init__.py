"""Sharded cache cluster: consistent hashing + per-shard fault domains.

Layers on :mod:`repro.service`: N independent
:class:`~repro.service.service.CacheService` shards -- each with its
own breaker, serve-stale window and fault plan -- behind a
consistent-hash router with hot-key replication, front-cache
mitigation, bounded rebalancing and cluster-wide outcome conservation.
See ``docs/robustness.md`` for the design and ``X3-cluster`` in
``EXPERIMENTS.md`` for the kill-a-shard experiment built on it.
"""

from repro.cluster.cluster import (
    CLUSTER_OUTCOMES,
    REPLICA_HIT,
    CacheCluster,
    ClusterConfig,
    ClusterGetResult,
    ClusterMetrics,
    FrontCache,
    HotKeyTracker,
    RebalanceReport,
    build_cluster,
)
from repro.cluster.loadgen import (
    SERVED,
    ClusterLoadReport,
    run_cluster_load,
    run_open_cluster_load,
)
from repro.cluster.ring import (
    DEFAULT_VNODES,
    HashRing,
    key_point,
    moved_keys,
    stable_hash,
)
from repro.cluster.workload import (
    ClusterWorkload,
    make_cluster_workload,
    pareto_sizes_kb,
    zipf_ranks,
)

__all__ = [
    "CLUSTER_OUTCOMES",
    "DEFAULT_VNODES",
    "REPLICA_HIT",
    "SERVED",
    "CacheCluster",
    "ClusterConfig",
    "ClusterGetResult",
    "ClusterLoadReport",
    "ClusterMetrics",
    "ClusterWorkload",
    "FrontCache",
    "HashRing",
    "HotKeyTracker",
    "RebalanceReport",
    "build_cluster",
    "key_point",
    "make_cluster_workload",
    "moved_keys",
    "pareto_sizes_kb",
    "run_cluster_load",
    "run_open_cluster_load",
    "stable_hash",
    "zipf_ranks",
]
