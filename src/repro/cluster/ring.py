"""Consistent-hash ring with virtual nodes.

The router's placement function: each shard contributes ``vnodes``
points on a 64-bit hash circle, and a key belongs to the first shard
point clockwise of the key's own hash.  Virtual nodes smooth the
arc-length distribution (more points, smaller variance), and give the
ring its headline robustness property: **adding or removing one shard
only reassigns the keys in the arcs adjacent to that shard's points**
-- roughly ``1/(N+1)`` of the key space for an N-shard ring -- while
every other key keeps its owner.  A modulo placement (``hash(key) %
N``) would reshuffle nearly everything on every membership change,
invalidating all N caches at once.

Replicas are the next ``R`` *distinct* shards clockwise of the
primary, so a key's copies always live in different fault domains and
the replica set changes as little as the primary does.

Hashing is ``blake2b`` (stable across processes and Python versions;
``hash()`` is salted per process and useless here).  Keys are hashed
via ``repr`` so ints, strings and tuples place deterministically.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Dict, Hashable, Iterable, List, Sequence, Tuple

Key = Hashable

#: Default virtual nodes per shard.  64 keeps per-shard load within a
#: few percent of fair for small clusters at negligible ring size.
DEFAULT_VNODES = 64


def stable_hash(text: str) -> int:
    """A process-stable 64-bit hash of *text*."""
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def key_point(key: Key) -> int:
    """Where *key* lands on the circle."""
    return stable_hash(f"key:{key!r}")


class HashRing:
    """Consistent hashing over named nodes with virtual nodes.

    Membership operations (:meth:`add`, :meth:`remove`) rebuild the
    sorted point list -- O(total vnodes) -- which is vastly cheaper
    than the key movement they bound, and lookups are one bisect.
    """

    def __init__(self, nodes: Iterable[str] = (),
                 vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = int(vnodes)
        self._nodes: List[str] = []
        self._points: List[Tuple[int, str]] = []   # sorted (point, node)
        self._hashes: List[int] = []               # just the points
        for node in nodes:
            self.add(node)

    # -- membership ----------------------------------------------------
    @property
    def nodes(self) -> List[str]:
        """Member nodes in join order."""
        return list(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def add(self, node: str) -> None:
        """Join *node* (its vnode points enter the circle)."""
        if not node:
            raise ValueError("node name must be non-empty")
        if node in self._nodes:
            raise ValueError(f"node {node!r} is already on the ring")
        self._nodes.append(node)
        self._rebuild()

    def remove(self, node: str) -> None:
        """Leave *node* (its arcs fall to the next shards clockwise)."""
        if node not in self._nodes:
            raise ValueError(
                f"node {node!r} is not on the ring "
                f"(members: {', '.join(self._nodes) or 'none'})")
        self._nodes.remove(node)
        self._rebuild()

    def _rebuild(self) -> None:
        points = []
        for node in self._nodes:
            for index in range(self.vnodes):
                points.append((stable_hash(f"node:{node}:vn:{index}"),
                               node))
        points.sort()
        self._points = points
        self._hashes = [point for point, _ in points]

    # -- placement -----------------------------------------------------
    def primary(self, key: Key) -> str:
        """The shard owning *key*."""
        return self.owners(key, 1)[0]

    def owners(self, key: Key, count: int) -> List[str]:
        """The first *count* distinct shards clockwise of *key*.

        ``owners(key, 1 + replicas)`` is the key's primary followed by
        its replica shards.  With fewer than *count* members the whole
        membership is returned (primary first).
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        if not self._points:
            raise ValueError("ring has no nodes")
        start = bisect_right(self._hashes, key_point(key))
        found: List[str] = []
        total = len(self._points)
        for step in range(total):
            node = self._points[(start + step) % total][1]
            if node not in found:
                found.append(node)
                if len(found) == count:
                    break
        return found

    # -- introspection -------------------------------------------------
    def assignments(self, keys: Sequence[Key]) -> Dict[Key, str]:
        """``key -> primary`` for every key (rebalance accounting)."""
        return {key: self.primary(key) for key in keys}

    def ownership(self, sample: int = 4096) -> Dict[str, float]:
        """Approximate fraction of the key space owned per node.

        Measured by arc length between consecutive vnode points, which
        is exact for the hash circle itself (``sample`` is unused when
        arc math suffices; kept for API stability).
        """
        if not self._points:
            return {}
        span = 1 << 64
        fractions: Dict[str, float] = {node: 0.0 for node in self._nodes}
        for index, (point, _) in enumerate(self._points):
            owner = self._points[index][1]
            previous = self._points[index - 1][0]
            arc = (point - previous) % span
            if len(self._points) == 1:
                arc = span
            fractions[owner] += arc / span
        return fractions


def moved_keys(before: Dict[Key, str], after: Dict[Key, str]) -> List[Key]:
    """Keys whose primary changed between two assignment snapshots."""
    return [key for key, owner in before.items()
            if after.get(key) != owner]


__all__ = [
    "DEFAULT_VNODES",
    "HashRing",
    "key_point",
    "moved_keys",
    "stable_hash",
]
