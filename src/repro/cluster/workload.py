"""Cluster-scale synthetic workload: Zipf keys with Pareto sizes.

The single-node loadgen draws keys from a small Zipf universe; a
cluster experiment needs the shape production measurements actually
report (paper §4, and the open-source trace studies it cites): a
**Zipfian popularity law over millions of objects** with a heavy-tailed
(bounded Pareto) size distribution.  This module pre-materialises such
a workload deterministically so every policy/replication arm of an
experiment replays the identical request stream.

Keys are drawn lazily per request from the Zipf law but rendered as
stable strings (``k<rank>``), so a "millions of keys" universe costs
only the requests actually sampled, not the universe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

#: Pareto size parameters measured on production CDN traces
#: (shape ~1.16 => infinite variance; scale in KB; capped to keep a
#: single object from dominating a shard).
PARETO_SHAPE = 1.16
PARETO_SCALE_KB = 1.0
PARETO_CAP_KB = 5000.0


@dataclass(frozen=True)
class ClusterWorkload:
    """An immutable, replayable request stream.

    ``keys[i]`` is the i-th requested key; ``sizes_kb[i]`` its object
    size.  Both arrays come from one seeded generator, so two workloads
    built with the same parameters are identical element-for-element.
    """

    keys: List[str]
    sizes_kb: "np.ndarray"
    universe: int
    alpha: float
    seed: int

    def __len__(self) -> int:
        return len(self.keys)

    @property
    def unique_keys(self) -> int:
        return len(set(self.keys))

    def describe(self) -> str:
        return (f"{len(self.keys)} requests over a {self.universe}-key "
                f"universe (zipf alpha={self.alpha}, "
                f"{self.unique_keys} unique touched, seed={self.seed})")


def zipf_ranks(rng: "np.random.Generator", count: int, universe: int,
               alpha: float) -> "np.ndarray":
    """Sample *count* ranks in ``[1, universe]`` from a Zipf(alpha) law.

    Uses the inverse-CDF over the truncated harmonic weights when the
    universe is small enough to materialise, and rejection from
    numpy's unbounded Zipf sampler for multi-million-key universes
    (where the weight vector itself would dominate memory).
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if universe < 1:
        raise ValueError(f"universe must be >= 1, got {universe}")
    if alpha <= 0:
        raise ValueError(f"alpha must be > 0, got {alpha}")
    if universe <= 1_000_000:
        weights = 1.0 / np.arange(1, universe + 1, dtype=np.float64) ** alpha
        weights /= weights.sum()
        return rng.choice(universe, size=count, p=weights) + 1
    if alpha <= 1.0:
        raise ValueError(
            "universes beyond 1e6 keys need alpha > 1 "
            "(numpy's rejection sampler requires it)")
    ranks = np.empty(count, dtype=np.int64)
    filled = 0
    while filled < count:
        draw = rng.zipf(alpha, size=count - filled)
        draw = draw[draw <= universe]
        ranks[filled:filled + len(draw)] = draw
        filled += len(draw)
    return ranks


def pareto_sizes_kb(rng: "np.random.Generator", count: int,
                    shape: float = PARETO_SHAPE,
                    scale_kb: float = PARETO_SCALE_KB,
                    cap_kb: float = PARETO_CAP_KB) -> "np.ndarray":
    """Bounded-Pareto object sizes in KB (heavy tail, capped)."""
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    sizes = (rng.pareto(shape, size=count) + 1.0) * scale_kb
    return np.minimum(sizes, cap_kb)


def make_cluster_workload(requests: int, universe: int = 2_000_000,
                          alpha: float = 1.1,
                          seed: int = 42) -> ClusterWorkload:
    """Build a deterministic Zipf+Pareto request stream.

    The default two-million-key universe exercises the consistent-hash
    ring at realistic cardinality while the Zipf head keeps per-shard
    caches meaningfully warm.
    """
    if requests < 1:
        raise ValueError(f"requests must be >= 1, got {requests}")
    rng = np.random.default_rng(seed)
    ranks = zipf_ranks(rng, requests, universe, alpha)
    keys = [f"k{rank}" for rank in ranks]
    sizes = pareto_sizes_kb(rng, requests)
    return ClusterWorkload(keys=keys, sizes_kb=sizes, universe=universe,
                           alpha=alpha, seed=seed)


__all__ = [
    "PARETO_CAP_KB",
    "PARETO_SCALE_KB",
    "PARETO_SHAPE",
    "ClusterWorkload",
    "make_cluster_workload",
    "pareto_sizes_kb",
    "zipf_ranks",
]
