"""Closed-loop load harness for a :class:`CacheCluster`.

The cluster counterpart of :mod:`repro.service.loadgen`: replays a key
sequence through the router from ``threads`` workers, then reports
cluster-wide outcome counts (all six, including ``replica_hit``),
latency percentiles, availability and per-shard breakdowns.

Two additions the single-node harness does not need:

* **Phase checkpoints** -- outage experiments want before/during/after
  accounting around a kill window.  ``checkpoints`` is a list of
  virtual-clock times; the deterministic single-threaded mode snapshots
  the cluster counters the first time the clock crosses each one, and
  :meth:`ClusterLoadReport.phases` turns consecutive snapshots into
  per-phase deltas.
* **Tick pacing on absolute deadlines** -- requests are scheduled at
  ``origin + i * tick`` via :meth:`Clock.sleep_until`, so injected
  backend latencies never skew the schedule and a kill window at
  virtual time *t* always lands on the same request index.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exec.clock import VirtualClock
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import TimeSeriesRecorder
from repro.service.loadgen import LoadInterrupted, percentile
from repro.service.overload import (
    AdmissionQueue,
    ArrivalSchedule,
    ConcurrencyLimiter,
    OpenLoadReport,
    ServiceCostModel,
    StaticLimiter,
    run_open_loop,
)
from repro.cluster.cluster import CLUSTER_OUTCOMES, CacheCluster

#: Outcomes that delivered a value to the caller.
SERVED = ("hit", "miss", "replica_hit", "stale")


@dataclass
class ClusterLoadReport:
    """Everything one cluster load run measured."""

    requests: int
    outcomes: Dict[str, int]
    front_hits: int
    replications: int
    replica_probes: int
    latency_p50: float
    latency_p90: float
    latency_p99: float
    elapsed: float                 # wall seconds (real clock)
    threads: int
    shards: int
    shard_outcomes: Dict[str, Dict[str, int]] = field(default_factory=dict)
    checkpoints: List[Tuple[float, Dict[str, int]]] = field(
        default_factory=list)
    breaker_transitions: List[Tuple[float, str, str, str]] = field(
        default_factory=list)
    interrupted: bool = False

    @property
    def throughput(self) -> float:
        if self.elapsed <= 0:
            return 0.0
        return self.requests / self.elapsed

    @property
    def availability(self) -> float:
        """Fraction of requests that got a value (any serving outcome)."""
        if self.requests == 0:
            return 0.0
        return sum(self.outcomes[name] for name in SERVED) / self.requests

    @property
    def effective_hit_ratio(self) -> float:
        """Cache-served fraction: hits + replica hits + stale serves."""
        if self.requests == 0:
            return 0.0
        served = (self.outcomes["hit"] + self.outcomes["replica_hit"]
                  + self.outcomes["stale"])
        return served / self.requests

    def check_accounting(self) -> None:
        """Assert hit+miss+replica_hit+stale+shed+error == requests."""
        accounted = sum(self.outcomes[name] for name in CLUSTER_OUTCOMES)
        if accounted != self.requests:
            raise AssertionError(
                f"cluster outcome accounting broken: {accounted} "
                f"accounted vs {self.requests} requests ({self.outcomes})")

    def phases(self) -> List[Dict[str, int]]:
        """Per-phase outcome deltas between consecutive checkpoints.

        With checkpoints at ``[t1, t2]`` this yields three dicts --
        before ``t1``, between ``t1`` and ``t2``, and after ``t2`` (the
        final phase is measured against the end-of-run totals).
        """
        snapshots = [snap for _, snap in self.checkpoints]
        end = dict(self.outcomes)
        end["requests"] = self.requests
        snapshots.append(end)
        deltas: List[Dict[str, int]] = []
        previous: Dict[str, int] = {}
        for snap in snapshots:
            delta = {name: snap.get(name, 0) - previous.get(name, 0)
                     for name in (*CLUSTER_OUTCOMES, "requests")}
            deltas.append(delta)
            previous = snap
        return deltas

    def render(self) -> str:
        lines = [
            f"requests      : {self.requests} over {self.threads} "
            f"thread(s), {self.shards} shard(s)"
            + (" [interrupted]" if self.interrupted else ""),
            "outcomes      : " + "  ".join(
                f"{name}={self.outcomes[name]}"
                for name in CLUSTER_OUTCOMES),
            f"hot keys      : {self.replications} replication(s), "
            f"{self.front_hits} front-cache hit(s), "
            f"{self.replica_probes} replica probe(s)",
            f"availability  : {self.availability:.2%}",
            f"eff hit ratio : {self.effective_hit_ratio:.2%}",
            f"latency       : p50={self.latency_p50 * 1e3:.3f}ms "
            f"p90={self.latency_p90 * 1e3:.3f}ms "
            f"p99={self.latency_p99 * 1e3:.3f}ms",
            f"elapsed       : {self.elapsed:.3f}s "
            f"({self.throughput:.0f} req/s)",
        ]
        if self.shard_outcomes:
            for name in sorted(self.shard_outcomes):
                snap = self.shard_outcomes[name]
                lines.append(
                    f"  shard {name:<6}: " + "  ".join(
                        f"{outcome}={snap.get(outcome, 0)}"
                        for outcome in ("hit", "miss", "stale", "shed",
                                        "error")))
        if self.breaker_transitions:
            moves = ", ".join(
                f"{shard}:{src}->{dst}@{ts:.2f}s"
                for ts, shard, src, dst in self.breaker_transitions)
            lines.append(f"breakers      : {moves}")
        return "\n".join(lines)


def _report(cluster: CacheCluster, elapsed: float, threads: int,
            checkpoints: List[Tuple[float, Dict[str, int]]],
            interrupted: bool) -> ClusterLoadReport:
    snap = cluster.metrics.snapshot()
    latencies = cluster.metrics.latencies()
    return ClusterLoadReport(
        requests=snap["requests"],
        outcomes={name: snap[name] for name in CLUSTER_OUTCOMES},
        front_hits=snap["front_hits"],
        replications=snap["replications"],
        replica_probes=snap["replica_probes"],
        latency_p50=percentile(latencies, 0.50),
        latency_p90=percentile(latencies, 0.90),
        latency_p99=percentile(latencies, 0.99),
        elapsed=elapsed,
        threads=threads,
        shards=len(cluster.shards),
        shard_outcomes=cluster.shard_snapshots(),
        checkpoints=checkpoints,
        breaker_transitions=cluster.breaker_transitions(),
        interrupted=interrupted,
    )


def run_cluster_load(
    cluster: CacheCluster,
    keys: Sequence,
    threads: int = 1,
    tick: float = 0.0,
    checkpoints: Optional[Sequence[float]] = None,
) -> ClusterLoadReport:
    """Replay *keys* through *cluster* and measure what happened.

    ``tick`` > 0 paces requests on the cluster's
    :class:`~repro.exec.clock.VirtualClock` at absolute deadlines
    (single-threaded deterministic mode only).  ``checkpoints`` are
    virtual times at which to snapshot the cluster counters for phase
    accounting; they require tick mode.
    """
    if threads < 1:
        raise ValueError(f"threads must be >= 1, got {threads}")
    if tick < 0:
        raise ValueError(f"tick must be >= 0, got {tick}")
    if tick > 0 and threads != 1:
        raise ValueError("tick-based virtual time requires threads=1")
    if tick > 0 and not isinstance(cluster.clock, VirtualClock):
        raise ValueError(
            "tick requires the cluster to run on a VirtualClock")
    if checkpoints and tick == 0:
        raise ValueError("checkpoints require tick-paced virtual time")

    marks = sorted(float(t) for t in (checkpoints or ()))
    taken: List[Tuple[float, Dict[str, int]]] = []
    stop = threading.Event()
    started = time.perf_counter()
    origin = cluster.clock.now()

    def take_due_checkpoints() -> None:
        while marks and cluster.clock.now() >= marks[0]:
            taken.append((marks.pop(0), cluster.metrics.snapshot()))

    def worker(slice_keys: Sequence) -> None:
        for index, key in enumerate(slice_keys, start=1):
            if stop.is_set():
                return
            if tick:
                # Snapshot *before* crossing a checkpoint boundary so a
                # phase delta contains exactly the requests issued
                # strictly before that virtual time.
                deadline = origin + index * tick
                take_due_checkpoints()
                while marks and marks[0] <= deadline:
                    cluster.clock.sleep_until(marks[0])
                    take_due_checkpoints()
                cluster.clock.sleep_until(deadline)
            cluster.get(key)

    if threads == 1:
        try:
            worker(keys)
        except KeyboardInterrupt:
            raise LoadInterrupted(_report(
                cluster, time.perf_counter() - started, threads, taken,
                interrupted=True)) from None
        take_due_checkpoints()
        return _report(cluster, time.perf_counter() - started, threads,
                       taken, interrupted=False)

    slices = [list(keys[t::threads]) for t in range(threads)]
    pool = [threading.Thread(target=worker, args=(s,), daemon=True)
            for s in slices]
    for thread in pool:
        thread.start()
    try:
        for thread in pool:
            while thread.is_alive():
                thread.join(timeout=0.1)
    except KeyboardInterrupt:
        stop.set()
        for thread in pool:
            thread.join(timeout=5.0)
        raise LoadInterrupted(_report(
            cluster, time.perf_counter() - started, threads, taken,
            interrupted=True)) from None
    return _report(cluster, time.perf_counter() - started, threads,
                   taken, interrupted=False)


def run_open_cluster_load(
    cluster: CacheCluster,
    keys: Sequence,
    schedule: ArrivalSchedule,
    queue: Optional[AdmissionQueue] = None,
    limiter: Optional[ConcurrencyLimiter] = None,
    cost: Optional[ServiceCostModel] = None,
    timeseries: Optional[TimeSeriesRecorder] = None,
    registry: Optional[MetricsRegistry] = None,
    metric_labels: Optional[dict] = None,
) -> OpenLoadReport:
    """Open-loop load against a :class:`CacheCluster`.

    The cluster counterpart of
    :func:`repro.service.loadgen.run_open_load`: the arrival schedule
    drives the router, the admission queue and limiter sit in front of
    it, and promotion cost is aggregated across every shard's policy
    (each shard's promotions serialise on its own lock in reality, but
    the single serialised timeline is a conservative upper bound that
    keeps the model identical to the single-node harness).  Outcomes
    include ``replica_hit``, so the conservation invariant here is
    ``hit+miss+replica_hit+stale+shed+dropped+error == offered``.
    """
    # `is None` checks: an empty AdmissionQueue is falsy (len() == 0),
    # so `queue or default` would silently discard the caller's queue.
    if queue is None:
        queue = AdmissionQueue(capacity=1024)
    if limiter is None:
        limiter = StaticLimiter(8)

    def probe() -> int:
        return sum(service.policy.promotion_count
                   for service in cluster.shards.values())

    return run_open_loop(
        get=cluster.get,
        arrivals=schedule.times(),
        keys=keys,
        clock=cluster.clock,
        queue=queue,
        limiter=limiter,
        cost=cost,
        promotions_probe=probe,
        timeseries=timeseries,
        registry=registry,
        metric_labels=metric_labels,
    )


__all__ = ["SERVED", "ClusterLoadReport", "run_cluster_load",
           "run_open_cluster_load"]
