"""ASCII rendering of experiment tables and series.

Every experiment module renders its result through these helpers so
benchmark output, example scripts, and EXPERIMENTS.md all show the same
rows the paper's tables/figures report.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float, None]


def _format_cell(cell: Cell, precision: int) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, bool):
        return str(cell)
    if isinstance(cell, float):
        return f"{cell:.{precision}f}"
    return str(cell)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    title: str = "",
    precision: int = 4,
) -> str:
    """Render an aligned ASCII table.

    Floats are fixed to ``precision`` decimals; ``None`` renders as
    ``-``.  Column widths adapt to content.
    """
    formatted = [[_format_cell(cell, precision) for cell in row]
                 for row in rows]
    widths = [len(h) for h in headers]
    for row in formatted:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) if i else cell.ljust(widths[i])
                         for i, cell in enumerate(cells))

    out: List[str] = []
    if title:
        out.append(title)
        out.append("=" * max(len(title), sum(widths) + 2 * (len(widths) - 1)))
    out.append(line(list(headers)))
    out.append(line(["-" * w for w in widths]))
    for row in formatted:
        out.append(line(row))
    return "\n".join(out)


def render_percent(value: float, precision: int = 1) -> str:
    """Format a ratio as a percentage string."""
    return f"{100.0 * value:.{precision}f}%"


def render_kv_block(title: str, pairs: Iterable[Sequence[Cell]],
                    precision: int = 4) -> str:
    """Render a simple key/value block under a title."""
    lines = [title, "-" * len(title)]
    for key, value in pairs:
        lines.append(f"{key}: {_format_cell(value, precision)}")
    return "\n".join(lines)


__all__ = ["render_table", "render_percent", "render_kv_block"]
