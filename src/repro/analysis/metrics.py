"""Efficiency metrics.

The paper reports efficiency as the **miss-ratio reduction from FIFO**

    reduction = (mr_FIFO - mr_algo) / mr_FIFO

because raw miss ratios vary wildly across 5307 traces; the Fig. 5
box-style plots then show percentiles of that reduction across the
corpus.  This module implements the metric and the percentile
summaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.sim.runner import RunRecord

#: The percentiles the summaries report (matching a box plot's whiskers,
#: quartiles and median).
PERCENTILES = (10, 25, 50, 75, 90)


def miss_ratio_reduction(mr_algo: float, mr_base: float) -> float:
    """Relative miss-ratio reduction of an algorithm vs a baseline.

    Positive values mean the algorithm beats the baseline.  When the
    baseline's miss ratio is zero, both algorithms are perfect (any
    online algorithm's miss ratio is bounded below by compulsory
    misses, which FIFO shares), so the reduction is defined as 0.
    """
    if mr_base <= 0.0:
        return 0.0
    return (mr_base - mr_algo) / mr_base


@dataclass(frozen=True)
class PercentileSummary:
    """Percentiles + mean of a metric across traces."""

    label: str
    count: int
    mean: float
    percentiles: Tuple[Tuple[int, float], ...]

    def percentile(self, p: int) -> float:
        """The value at percentile *p*; ``KeyError`` if not computed."""
        for percentile, value in self.percentiles:
            if percentile == p:
                return value
        raise KeyError(f"percentile {p} not computed")

    @property
    def median(self) -> float:
        """The 50th percentile."""
        return self.percentile(50)


def summarize(values: Sequence[float], label: str = "") -> PercentileSummary:
    """Percentile summary of a sequence of per-trace metric values."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sequence")
    return PercentileSummary(
        label=label,
        count=int(arr.size),
        mean=float(arr.mean()),
        percentiles=tuple(
            (p, float(np.percentile(arr, p))) for p in PERCENTILES),
    )


def reductions_from_baseline(
    records: Iterable[RunRecord],
    baseline: str = "FIFO",
) -> Dict[str, Dict[Tuple[str, float], float]]:
    """Per-policy, per-(trace, size) miss-ratio reductions from *baseline*.

    Every (trace, size) pair must have a baseline record; pairs without
    one raise ``KeyError`` (a sweep bug, better loud than silent).
    """
    records = list(records)
    base: Dict[Tuple[str, float], float] = {}
    for record in records:
        if record.policy == baseline:
            base[(record.trace, record.size_fraction)] = record.miss_ratio

    out: Dict[str, Dict[Tuple[str, float], float]] = {}
    for record in records:
        if record.policy == baseline:
            continue
        cell = (record.trace, record.size_fraction)
        if cell not in base:
            raise KeyError(
                f"no {baseline} run for trace {record.trace!r} at size "
                f"{record.size_fraction}")
        out.setdefault(record.policy, {})[cell] = miss_ratio_reduction(
            record.miss_ratio, base[cell])
    return out


def mean_reduction(
    records: Iterable[RunRecord],
    policy: str,
    baseline: str = "FIFO",
) -> float:
    """Mean miss-ratio reduction of *policy* from *baseline* over all
    (trace, size) cells -- the paper's "X reduces Y's miss ratio by
    N % on average" statistic."""
    table = reductions_from_baseline(records, baseline=baseline)
    cells = table.get(policy)
    if not cells:
        raise KeyError(f"no runs recorded for policy {policy!r}")
    return float(np.mean(list(cells.values())))


def pairwise_reduction(
    records: Iterable[RunRecord],
    policy: str,
    reference: str,
) -> List[float]:
    """Per-cell reduction of *policy* relative to *reference* (both
    must appear for each shared (trace, size) cell)."""
    records = list(records)
    ref: Dict[Tuple[str, float], float] = {
        (r.trace, r.size_fraction): r.miss_ratio
        for r in records if r.policy == reference
    }
    out = []
    for record in records:
        if record.policy != policy:
            continue
        cell = (record.trace, record.size_fraction)
        if cell in ref:
            out.append(miss_ratio_reduction(record.miss_ratio, ref[cell]))
    return out


__all__ = [
    "PERCENTILES",
    "miss_ratio_reduction",
    "PercentileSummary",
    "summarize",
    "reductions_from_baseline",
    "mean_reduction",
    "pairwise_reduction",
]
