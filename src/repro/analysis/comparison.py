"""Pairwise algorithm comparison: the Fig. 2 win-fraction analysis.

Fig. 2(a-d) asks, per dataset and cache size: *on what fraction of
traces does algorithm A have a lower miss ratio than algorithm B?*
This module computes those fractions from sweep records, with ties
split evenly (a tie is evidence for neither side).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.sim.runner import RunRecord


@dataclass(frozen=True)
class WinFraction:
    """Win statistics of challenger vs reference on one slice."""

    slice_name: str          # dataset family or group
    size_fraction: float
    challenger: str
    reference: str
    wins: int                # challenger strictly better (lower mr)
    losses: int
    ties: int

    @property
    def total(self) -> int:
        """Number of traces compared."""
        return self.wins + self.losses + self.ties

    @property
    def win_fraction(self) -> float:
        """Fraction of traces favouring the challenger, ties split."""
        if self.total == 0:
            return float("nan")
        return (self.wins + 0.5 * self.ties) / self.total


def _index(records: Iterable[RunRecord]
           ) -> Dict[Tuple[str, str, float], RunRecord]:
    return {(r.policy, r.trace, r.size_fraction): r for r in records}


def win_fractions(
    records: Iterable[RunRecord],
    challenger: str,
    reference: str,
    by: str = "family",
    tie_epsilon: float = 1e-9,
) -> List[WinFraction]:
    """Win fractions of *challenger* over *reference*, sliced.

    ``by`` is ``"family"`` (Fig. 2's per-dataset bars), ``"group"``
    (block vs web rollups) or ``"all"``.  Miss ratios closer than
    ``tie_epsilon`` count as ties.
    """
    if by not in ("family", "group", "all"):
        raise ValueError(f"by must be 'family', 'group' or 'all', got {by!r}")
    records = list(records)
    indexed = _index(records)

    tallies: Dict[Tuple[str, float], List[int]] = {}
    seen: set = set()
    for record in records:
        if record.policy != challenger:
            continue
        cell = (record.trace, record.size_fraction)
        if cell in seen:
            continue
        seen.add(cell)
        other = indexed.get((reference, record.trace, record.size_fraction))
        if other is None:
            continue
        if by == "family":
            slice_name = record.family
        elif by == "group":
            slice_name = record.group
        else:
            slice_name = "all"
        tally = tallies.setdefault((slice_name, record.size_fraction),
                                   [0, 0, 0])
        delta = other.miss_ratio - record.miss_ratio
        if delta > tie_epsilon:
            tally[0] += 1
        elif delta < -tie_epsilon:
            tally[1] += 1
        else:
            tally[2] += 1

    return [
        WinFraction(
            slice_name=slice_name,
            size_fraction=size_fraction,
            challenger=challenger,
            reference=reference,
            wins=wins,
            losses=losses,
            ties=ties,
        )
        for (slice_name, size_fraction), (wins, losses, ties)
        in sorted(tallies.items(), key=lambda kv: (kv[0][1], kv[0][0]))
    ]


def datasets_won(fractions: Iterable[WinFraction],
                 threshold: float = 0.5) -> int:
    """How many slices the challenger wins (win fraction > threshold) --
    the paper's "better on 9 of the 10 datasets" style statistic."""
    return sum(1 for f in fractions if f.win_fraction > threshold)


__all__ = ["WinFraction", "win_fractions", "datasets_won"]
