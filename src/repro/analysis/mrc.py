"""Miss-ratio curves (MRCs).

An MRC plots miss ratio against cache size -- the standard lens for
cache-efficiency studies (the paper's Fig. 2/5 are two size-points of
an MRC; its §4 closes with a size-dependent claim this module's sweep
reproduces).  Two constructions:

* :func:`lru_mrc` -- the *exact* LRU curve for every size at once, via
  reuse distances computed with a Fenwick tree in O(N log N) (the
  classic Mattson stack analysis).  LRU's inclusion property makes
  this single pass valid for all sizes simultaneously.
* :func:`simulated_mrc` -- any policy's curve by direct simulation at
  a chosen set of sizes (no inclusion property needed).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.base import EvictionPolicy
from repro.sim.simulator import simulate
from repro.traces.trace import Trace

PolicyFactory = Callable[[int], EvictionPolicy]


class _Fenwick:
    """Binary indexed tree over request positions (prefix sums)."""

    def __init__(self, size: int) -> None:
        self._tree = [0] * (size + 1)

    def add(self, index: int, delta: int) -> None:
        index += 1
        while index < len(self._tree):
            self._tree[index] += delta
            index += index & (-index)

    def prefix_sum(self, index: int) -> int:
        """Sum of entries at positions 0..index-1."""
        total = 0
        while index > 0:
            total += self._tree[index]
            index -= index & (-index)
        return total


def reuse_distances(keys: Sequence[int]) -> List[int]:
    """Per-request LRU reuse distances (-1 for first-ever accesses).

    The reuse distance of a request is the number of *distinct* keys
    accessed since that key's previous access -- exactly the minimum
    LRU cache size at which the request hits.
    """
    n = len(keys)
    tree = _Fenwick(n)
    last_position: Dict[int, int] = {}
    distances = [0] * n
    for i, key in enumerate(keys):
        previous = last_position.get(key)
        if previous is None:
            distances[i] = -1
        else:
            # Distinct keys touched in (previous, i): each key's most
            # recent access in that span carries a 1 in the tree.
            distances[i] = tree.prefix_sum(i) - tree.prefix_sum(previous + 1)
            tree.add(previous, -1)
        tree.add(i, 1)
        last_position[key] = i
    return distances


@dataclass(frozen=True)
class MissRatioCurve:
    """A miss-ratio curve: sorted sizes and their miss ratios."""

    policy: str
    sizes: tuple
    miss_ratios: tuple

    def __post_init__(self) -> None:
        if len(self.sizes) != len(self.miss_ratios):
            raise ValueError("sizes and miss_ratios must align")
        if list(self.sizes) != sorted(self.sizes):
            raise ValueError("sizes must be sorted ascending")

    def miss_ratio_at(self, size: int) -> float:
        """Miss ratio at the largest computed size <= *size*."""
        index = bisect_right(self.sizes, size) - 1
        if index < 0:
            raise ValueError(
                f"size {size} below smallest computed size {self.sizes[0]}")
        return self.miss_ratios[index]

    def as_rows(self) -> List[List]:
        """(size, miss ratio) rows for table rendering."""
        return [[size, ratio]
                for size, ratio in zip(self.sizes, self.miss_ratios)]


def lru_mrc(trace: Union[Trace, Sequence[int]],
            sizes: Optional[Sequence[int]] = None) -> MissRatioCurve:
    """The exact LRU miss-ratio curve from one reuse-distance pass."""
    keys = trace.as_list() if isinstance(trace, Trace) else list(trace)
    distances = reuse_distances(keys)
    n = len(keys)
    finite = np.array([d for d in distances if d >= 0], dtype=np.int64)
    cold = n - len(finite)
    if sizes is None:
        max_size = int(finite.max()) + 1 if len(finite) else 1
        sizes = sorted({max(1, round(max_size * f))
                        for f in np.linspace(0.01, 1.0, 25)})
    sizes = sorted(set(int(s) for s in sizes))
    finite.sort()
    ratios = []
    for size in sizes:
        # Hits at cache size c: requests with reuse distance < c.
        hits = int(np.searchsorted(finite, size, side="left"))
        ratios.append((n - hits) / n)
    return MissRatioCurve(policy="LRU", sizes=tuple(sizes),
                          miss_ratios=tuple(ratios))


def simulated_mrc(
    factory: PolicyFactory,
    trace: Union[Trace, Sequence[int]],
    sizes: Sequence[int],
    name: Optional[str] = None,
) -> MissRatioCurve:
    """A policy's MRC by direct simulation at each size.

    The trace is interned once and shared across all sizes through a
    :class:`~repro.sim.fast.batch.BatchRunner`; policies without a
    vectorized engine fall back to the reference simulator per size.
    """
    from repro.sim.fast.batch import BatchRunner

    source = trace if isinstance(trace, Trace) else list(trace)
    sizes = sorted(set(int(s) for s in sizes))
    runner = BatchRunner()
    ratios = []
    policy_name = name
    for size in sizes:
        policy = factory(size)
        if policy_name is None:
            policy_name = policy.name
        outcome = runner.run_policy(policy, source)
        if outcome is not None:
            ratios.append(outcome.miss_ratio)
        else:
            ratios.append(simulate(policy, source).miss_ratio)
    return MissRatioCurve(policy=policy_name or "policy",
                          sizes=tuple(sizes), miss_ratios=tuple(ratios))


def shards_mrc(
    trace: Union[Trace, Sequence[int]],
    sizes: Optional[Sequence[int]] = None,
    sample_rate: float = 0.01,
    seed: int = 0,
) -> MissRatioCurve:
    """Approximate LRU MRC via SHARDS spatial sampling (FAST'15 [69]).

    SHARDS keeps only the requests whose key hashes below
    ``sample_rate`` and computes reuse distances on that substream,
    scaling each distance by ``1 / sample_rate``.  Memory and time
    drop by ~1/rate with small error -- the paper's own reference for
    making MRC construction tractable on billion-request traces.
    """
    if not 0.0 < sample_rate <= 1.0:
        raise ValueError(
            f"sample_rate must be in (0, 1], got {sample_rate}")
    keys = trace.as_list() if isinstance(trace, Trace) else list(trace)
    n = len(keys)

    import zlib
    threshold = int(sample_rate * 0xFFFFFFFF)
    sampled = [key for key in keys
               if zlib.crc32(f"{seed}:{key}".encode()) <= threshold]
    if not sampled:
        raise ValueError(
            f"sample_rate {sample_rate} left no requests; use a larger "
            "rate for this trace")

    distances = reuse_distances(sampled)
    finite = np.array(sorted(d for d in distances if d >= 0),
                      dtype=np.float64)
    finite *= 1.0 / sample_rate  # rescale to the full key space
    # Rescale the request counts too: the sampled miss/hit mix is an
    # unbiased estimate of the full trace's.
    total = len(sampled)
    if sizes is None:
        max_size = int(finite.max()) + 1 if len(finite) else 1
        sizes = sorted({max(1, round(max_size * f))
                        for f in np.linspace(0.01, 1.0, 25)})
    sizes = sorted(set(int(s) for s in sizes))
    ratios = []
    for size in sizes:
        hits = int(np.searchsorted(finite, size, side="left"))
        ratios.append((total - hits) / total)
    return MissRatioCurve(policy=f"LRU~SHARDS({sample_rate:g})",
                          sizes=tuple(sizes), miss_ratios=tuple(ratios))


__all__ = [
    "reuse_distances",
    "MissRatioCurve",
    "lru_mrc",
    "simulated_mrc",
    "shards_mrc",
    "PolicyFactory",
]
