"""Analysis layer: metrics, pairwise comparisons, table rendering."""

from repro.analysis.comparison import WinFraction, datasets_won, win_fractions
from repro.analysis.mrc import MissRatioCurve, lru_mrc, reuse_distances, simulated_mrc
from repro.analysis.metrics import (
    PERCENTILES,
    PercentileSummary,
    mean_reduction,
    miss_ratio_reduction,
    pairwise_reduction,
    reductions_from_baseline,
    summarize,
)
from repro.analysis.tables import render_kv_block, render_percent, render_table

__all__ = [
    "WinFraction",
    "datasets_won",
    "win_fractions",
    "PERCENTILES",
    "PercentileSummary",
    "mean_reduction",
    "miss_ratio_reduction",
    "pairwise_reduction",
    "reductions_from_baseline",
    "summarize",
    "render_kv_block",
    "render_percent",
    "render_table",
    "MissRatioCurve",
    "lru_mrc",
    "reuse_distances",
    "simulated_mrc",
]
