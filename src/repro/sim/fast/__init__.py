"""Array-backed fast simulation engines (see docs/performance.md).

The reference policies in :mod:`repro.core` / :mod:`repro.policies`
spend nearly all their time in per-request Python: dict lookups,
linked-list node shuffling, attribute access.  The engines in this
package replay the *same* algorithms over interned ``int64`` id arrays
with preallocated slot/index arrays, processing requests in chunks so
that miss detection, reference-bit updates and recency stamps are
vectorized with numpy and only true evict decisions drop to scalar
code.  Every engine is bit-identical to its reference policy: same
hit/miss outcome per request, same final cache contents, same
promotion count (gated by differential tests).

Entry points:

* :func:`~repro.sim.fast.dispatch.engine_for` -- build the fast engine
  mirroring a reference policy instance (``None`` when unsupported).
* :class:`~repro.sim.fast.batch.BatchRunner` -- intern a trace once and
  replay it through many (policy, size) cells.
"""

from repro.sim.fast.batch import BatchOutcome, BatchRunner
from repro.sim.fast.dispatch import (
    FAST_POLICY_NAMES,
    engine_for,
    has_fast_engine,
)
from repro.sim.fast.intern import InternedTrace, intern_trace

__all__ = [
    "BatchOutcome",
    "BatchRunner",
    "FAST_POLICY_NAMES",
    "InternedTrace",
    "engine_for",
    "has_fast_engine",
    "intern_trace",
]
