"""Select a fast engine for a reference policy instance.

Dispatch is by *exact* type so behavioural subclasses (e.g. the
adaptive QD variant, which resizes its segments online) never match a
fast engine silently.  Configuration is read off the built instance --
derived quantities such as S3-FIFO's small/main split or the QD
wrapper's probation capacity are taken from the reference object
itself, so both implementations always agree on parameter rounding.
"""

from __future__ import annotations

from typing import Optional

from repro.core.base import EvictionPolicy
from repro.core.clock import FIFOReinsertion, KBitClock
from repro.core.qd import QDCache
from repro.core.qdlpfifo import QDLPFIFO
from repro.core.s3fifo import S3FIFO
from repro.core.sieve import Sieve
from repro.policies.arc import ARC
from repro.policies.fifo import FIFO
from repro.policies.lhd import LHD
from repro.policies.lru import LRU
from repro.sim.fast.arc import FastARC
from repro.sim.fast.base import FastEngine
from repro.sim.fast.clock import FastClock
from repro.sim.fast.fifo import FastFIFO
from repro.sim.fast.lhd import FastLHD
from repro.sim.fast.lru import FastLRU
from repro.sim.fast.qd import FastQDLP
from repro.sim.fast.qdgeneric import FastQD, _ARCCore, _LHDCore
from repro.sim.fast.s3fifo import FastS3FIFO
from repro.sim.fast.sieve import FastSieve

#: Registry names with a fast engine (given their default factories).
FAST_POLICY_NAMES = frozenset({
    "FIFO",
    "LRU",
    "FIFO-Reinsertion",
    "2-bit-CLOCK",
    "3-bit-CLOCK",
    "SIEVE",
    "S3-FIFO",
    "QD-LP-FIFO",
    "ARC",
    "LHD",
    "QD-ARC",
    "QD-LHD",
})


def engine_for(policy: EvictionPolicy,
               num_unique: int) -> Optional[FastEngine]:
    """The fast engine mirroring *policy*, or ``None`` if unsupported.

    Only fresh, unobserved policies dispatch: prior requests or
    attached listeners mean per-request callbacks/state the chunked
    engines cannot reproduce, so the caller must fall back to the
    reference implementation.
    """
    if policy.stats.requests or len(policy) or policy._listeners:
        return None
    kind = type(policy)
    capacity = policy.capacity
    engine: Optional[FastEngine] = None
    if kind is FIFO:
        engine = FastFIFO(capacity, num_unique)
    elif kind is ARC:
        engine = FastARC(capacity, num_unique)
    elif kind is LHD:
        engine = FastLHD(
            capacity, num_unique,
            sample_size=policy.sample_size,
            ewma_decay=policy.ewma_decay,
            reconf_interval=policy._reconf_interval,
            rng_state=policy._rng.getstate())
    elif kind is LRU:
        engine = FastLRU(capacity, num_unique)
    elif kind is FIFOReinsertion:
        engine = FastClock(capacity, num_unique, bits=1)
    elif kind is KBitClock:
        engine = FastClock(capacity, num_unique, bits=policy.bits)
    elif kind is Sieve:
        engine = FastSieve(capacity, num_unique)
    elif kind is S3FIFO:
        engine = FastS3FIFO(
            capacity, num_unique,
            small_capacity=policy.small_capacity,
            main_capacity=policy.main_capacity,
            ghost_entries=policy.ghost.max_entries)
    elif kind in (QDCache, QDLPFIFO) and type(policy.main) is KBitClock:
        engine = FastQDLP(
            capacity, num_unique,
            probation_capacity=policy.probation_capacity,
            main_capacity=policy.main_capacity,
            ghost_entries=policy.ghost.max_entries,
            bits=policy.main.bits)
    elif kind is QDCache and type(policy.main) is ARC:
        engine = FastQD(
            capacity, num_unique,
            probation_capacity=policy.probation_capacity,
            main_capacity=policy.main_capacity,
            ghost_entries=policy.ghost.max_entries,
            core_factory=lambda host: _ARCCore(
                host, policy.main_capacity))
    elif kind is QDCache and type(policy.main) is LHD:
        main = policy.main
        engine = FastQD(
            capacity, num_unique,
            probation_capacity=policy.probation_capacity,
            main_capacity=policy.main_capacity,
            ghost_entries=policy.ghost.max_entries,
            core_factory=lambda host: _LHDCore(
                host, policy.main_capacity,
                sample_size=main.sample_size,
                ewma_decay=main.ewma_decay,
                reconf_interval=main._reconf_interval,
                rng_state=main._rng.getstate()))
    if engine is not None:
        engine.name = policy.name
    return engine


def has_fast_engine(name: str) -> bool:
    """Whether the registry policy *name* dispatches to a fast engine."""
    return name in FAST_POLICY_NAMES


__all__ = ["FAST_POLICY_NAMES", "engine_for", "has_fast_engine"]
