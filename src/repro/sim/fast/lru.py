"""Fast LRU via recency stamps and a monotone eviction boundary.

An LRU cache of capacity *C* holds exactly the *C* most recently
requested distinct keys, so explicit list maintenance is unnecessary:
give every request a global position stamp, track each key's latest
stamp (``last``), mark which stamps are current (``alive``), and evict
by advancing a boundary pointer to the oldest alive stamp.  The
boundary only ever moves forward (stamps are never created in the
past), so total eviction-scan work is O(N) across the whole replay.

Chunking: membership is one gather (``alive[last[ids]]``).  Classified
hits change nothing the candidate walk can observe except their key's
recency, so re-stamping is deferred to one vectorized scatter at the
end of the chunk (last write wins per key, matching move-to-end
semantics).  The boundary walk reconciles lazily: when the boundary
reaches a key that was re-accessed in the chunk, the key's true
current stamp is its last in-chunk hit at or before the walk position
(a binary search over the hit index).  If that stamp is newer than the
one the boundary sits on, the key is *eagerly re-stamped* there and
the boundary moves on -- it will be reconsidered at its true recency,
which keeps the walk's visit order identical to the reference even
when candidate insertions interleave.  If the stamp is already
current, the reference evicts the key now; its later in-chunk hits (if
any) become misses, handled by injecting the next occurrence into the
candidate stream.

Boundary scan: stamps older than the current chunk can only die *at*
the scan cursor during a walk (classified-hit deaths are deferred to
``_post_apply``, eager re-stamps land inside the chunk), so the scan
harvests pre-chunk alive positions in vectorized ``nonzero`` windows
and serves them from a queue; only once it enters the current chunk's
position range does it fall back to scalar stepping.  The queue is
flushed at the end of every chunk because ``_post_apply`` invalidates
it.

Promotions: the reference LRU promotes on every hit, so
``promotions == hits`` by construction.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import List, Optional

import numpy as np

from repro.sim.fast.base import FAR, FastEngine


class FastLRU(FastEngine):
    """Stamp-based LRU."""

    name = "LRU"
    _TRACK = "first"

    def __init__(self, capacity: int, num_unique: int) -> None:
        super().__init__(capacity, num_unique)
        self._last = np.full(num_unique, -1, dtype=np.int64)
        self._alive: Optional[np.ndarray] = None   # sized to the trace
        self._owner: Optional[np.ndarray] = None
        self._boundary = 0
        self._bq: List[int] = []
        self._size = 0

    def replay(self, ids: np.ndarray, warmup: int = 0) -> np.ndarray:
        n = int(np.asarray(ids).size)
        self._alive = np.zeros(n, dtype=np.uint8)
        self._owner = np.empty(n, dtype=np.int64)
        return super().replay(ids, warmup)

    # ------------------------------------------------------------------
    def _classify(self, cids):
        stamps = self._last[cids]
        known = stamps >= 0
        known &= self._alive[np.maximum(stamps, 0)] != 0
        return known, stamps

    def _post_apply(self, cids, known, aux) -> None:
        keys = cids[known]
        if keys.size == 0:
            return
        positions = self._base + np.nonzero(known)[0]
        # Each key's current stamp may be pre-chunk or an eager walk
        # re-stamp; keys the walk evicted for good carry -1 and must
        # stay evicted.
        cur = self._last[keys]
        resident = cur >= 0
        keys = keys[resident]
        positions = positions[resident]
        self._alive[cur[resident]] = 0
        self._last[keys] = positions    # duplicate keys: last write wins
        self._owner[positions] = keys
        self._alive[self._last[keys]] = 1   # only each key's final stamp

    def _scalar_pass(self, positions: List[int],
                     keys: List[int]) -> List[int]:
        last = self._last
        alive = self._alive
        owner = self._owner
        hitpos = self._hitpos
        capacity = self.capacity
        base = self._base
        boundary = self._boundary
        bq = self._bq
        size = self._size
        extra = []
        for p, k in self._stream(positions, keys):
            t = base + p
            s = last.item(k)
            if s >= 0 and alive.item(s):
                alive[s] = 0
                extra.append(p)
            else:
                if size >= capacity:
                    while True:
                        # Next alive scan position: queued pre-chunk
                        # harvest first, then windowed harvest, then
                        # scalar stepping inside the chunk.
                        if bq:
                            b = bq.pop()
                        else:
                            b = boundary
                            while b < base:
                                hi = base if base - b < 8192 else b + 8192
                                w = np.nonzero(alive[b:hi])[0]
                                boundary = hi
                                if w.size:
                                    bq[:] = (b + w)[::-1].tolist()
                                    b = bq.pop()
                                    break
                                b = hi
                            else:
                                while not alive.item(b):
                                    b += 1
                                boundary = b
                        victim = owner.item(b)
                        if hitpos.item(victim) == FAR:
                            break
                        occ, _lo = self._occ_list(victim)
                        done = bisect_right(occ, p)
                        if done:
                            tgt = base + occ[done - 1]
                            if tgt > b:
                                # Re-accessed since this stamp: move the
                                # key to its true recency and continue.
                                alive[b] = 0
                                alive[tgt] = 1
                                owner[tgt] = victim
                                last[victim] = tgt
                                continue
                        # The stamp is the key's current recency: the
                        # reference evicts it now; any later in-chunk
                        # hits become misses via injection.
                        if done < len(occ):
                            self._inject(victim, p)
                        break
                    alive[b] = 0
                    last[victim] = -1
                else:
                    size += 1
            last[k] = t
            owner[t] = k
            alive[t] = 1
        if bq:
            # _post_apply is about to invalidate the harvest; rewind the
            # frontier to the next unconsumed position and re-harvest
            # next chunk.
            boundary = bq[-1]
            bq.clear()
        self._boundary = boundary
        self._size = size
        return extra

    def _finalise(self) -> None:
        self.promotions = self.hits

    def contents(self) -> set:
        last = self._last
        resident = (last >= 0) & (self._alive[np.maximum(last, 0)] != 0)
        return set(np.nonzero(resident)[0].tolist())


__all__ = ["FastLRU"]
