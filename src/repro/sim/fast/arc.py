"""Fast ARC: stamp-ordered T1/T2 lists + scalar ghost FIFOs.

ARC's four lists split cleanly along the chunked-optimism seams:

* **T1** is a FIFO ordered by insertion position and **T2** an LRU
  ordered by last-access position, so both reuse the stamp machinery of
  :class:`~repro.sim.fast.lru.FastLRU`: one shared ``last``/``owner``
  pair over trace positions plus one ``alive`` bitmap *per list*, each
  with its own monotone eviction boundary.
* **B1/B2** are metadata-only FIFOs touched exclusively on the miss
  path, so they stay plain ``OrderedDict``\\ s mutated by the candidate
  walk -- the reference's own representation, at reference cost, on a
  path that is orders of magnitude colder than the hit path.
* The adaptation target ``p`` is a float updated only on ghost hits
  (also the walk), replicated operation-for-operation so its value is
  bit-identical to the reference's.

The one ARC-specific wrinkle is that a *hit moves state between
lists*: a T1 hit relocates the key to T2's MRU end, changing both list
lengths -- which the walk's ``_replace`` decisions observe.  Classified
T1 hits therefore become **move events**: per chunk, the first
classified hit of every T1-resident key is precomputed (one stable
argsort recovers each key's earliest hit) and merged into the
candidate walk by position, so every eviction decision sees exactly
the list sizes and orders the reference would.
Events validate at fire time (the key must still be T1-resident --
an earlier eviction drops the event, with the usual ``_inject``
machinery turning the key's later hits into misses); keys admitted to
T1 *during* the walk schedule their move event dynamically.  Events
past the last candidate are absorbed by ``_post_apply``, which settles
every resident hit key into T2 at its final in-chunk position (last
write wins), exactly like FastLRU's deferred re-stamp.

Promotions: the reference promotes on every hit (T1->T2 move or T2
MRU update), so ``promotions == hits`` by construction.
"""

from __future__ import annotations

import heapq
from bisect import bisect_right
from collections import OrderedDict
from typing import List, Optional

import numpy as np

from repro.sim.fast.base import FastEngine


class FastARC(FastEngine):
    """Array-backed Adaptive Replacement Cache."""

    name = "ARC"
    _TRACK = "last"

    def __init__(self, capacity: int, num_unique: int) -> None:
        super().__init__(capacity, num_unique)
        self.p = 0.0
        #: 0 = absent, 1 = T1-resident, 2 = T2-resident
        self._where = np.zeros(num_unique, dtype=np.int8)
        self._last = np.full(num_unique, -1, dtype=np.int64)
        self._owner: Optional[np.ndarray] = None
        self._alive1: Optional[np.ndarray] = None
        self._alive2: Optional[np.ndarray] = None
        self._bnd1 = 0
        self._bnd2 = 0
        self._t1n = 0
        self._t2n = 0
        self._b1: "OrderedDict[int, None]" = OrderedDict()
        self._b2: "OrderedDict[int, None]" = OrderedDict()
        self._events: List = []      # static per-chunk T1 move events
        self._ei = 0                 # next static event to fire
        self._dyn: List = []         # heap: events scheduled by the walk

    def _alloc(self, n: int) -> None:
        """Size the stamp arrays for an *n*-request replay."""
        self._owner = np.empty(n, dtype=np.int64)
        self._alive1 = np.zeros(n, dtype=np.uint8)
        self._alive2 = np.zeros(n, dtype=np.uint8)

    def replay(self, ids: np.ndarray, warmup: int = 0) -> np.ndarray:
        self._alloc(int(np.asarray(ids).size))
        return super().replay(ids, warmup)

    # ------------------------------------------------------------------
    def _classify(self, cids):
        w = self._where[cids]
        return w != 0, w

    def _pre_apply(self, cids, known, aux) -> None:
        # T1-resident keys hit in this chunk move to T2 at their first
        # hit; precompute those (position, key) events in walk order.
        # Pure-hit chunks skip the walk, so their moves settle in
        # _post_apply instead.
        self._events = []
        self._ei = 0
        self._dyn.clear()
        if self._last_cand == 0:
            return
        self._build_events(np.nonzero(known & (aux == 1))[0], cids)

    def _build_events(self, hpos: np.ndarray, cids: np.ndarray) -> None:
        """Queue a T1->T2 move at the earliest position in *hpos* (hit
        positions on currently-T1 keys) of each distinct key."""
        if hpos.size == 0:
            return
        kk = cids[hpos]
        order = np.argsort(kk, kind="stable")
        sk = kk[order]
        sp = hpos[order]
        head = np.empty(sk.size, dtype=bool)
        head[0] = True
        np.not_equal(sk[1:], sk[:-1], out=head[1:])
        epos = sp[head]
        ekeys = sk[head]
        by_pos = np.argsort(epos)
        self._events = list(zip(epos[by_pos].tolist(),
                                ekeys[by_pos].tolist()))

    def _post_apply(self, cids, known, aux) -> None:
        keys = cids[known]
        if keys.size == 0:
            return
        positions = self._base + np.nonzero(known)[0]
        w = self._where[keys]
        resident = w != 0
        keys = keys[resident]
        if keys.size == 0:
            return
        positions = positions[resident]
        w = w[resident]
        cur = self._last[keys]
        # Only hits strictly after the key's current stamp are still
        # pending: earlier occurrences were consumed by the walk
        # (eager re-stamps, fired move events, demotions).
        live = positions > cur
        keys = keys[live]
        if keys.size == 0:
            return
        positions = positions[live]
        w = w[live]
        cur = cur[live]
        t1keys = keys[w == 1]
        self._alive1[cur[w == 1]] = 0
        self._alive2[cur[w == 2]] = 0
        self._last[keys] = positions    # duplicate keys: last write wins
        self._owner[positions] = keys
        self._alive2[self._last[keys]] = 1
        self._where[keys] = 2
        if t1keys.size:
            moved = int(np.unique(t1keys).size)
            self._t1n -= moved
            self._t2n += moved

    # ------------------------------------------------------------------
    # Reference algorithm bodies
    # ------------------------------------------------------------------
    def _move_to_t2(self, k: int, p: int) -> None:
        """A T1 hit at chunk-relative *p*: relocate to T2's MRU end."""
        t = self._base + p
        self._alive1[self._last.item(k)] = 0
        self._alive2[t] = 1
        self._owner[t] = k
        self._last[k] = t
        self._where[k] = 2
        self._t1n -= 1
        self._t2n += 1

    def _evict_t1(self, p: int, to_ghost: bool) -> None:
        """Evict T1's LRU (the oldest alive T1 stamp).

        T1 stamps never change while resident (a hit *leaves* T1), so
        the boundary scan needs no re-stamp reconciliation; a victim
        with not-yet-due classified hits turns them into misses via
        injection, exactly as the reference (which no longer holds the
        key) would.
        """
        alive1 = self._alive1
        b = self._bnd1
        while not alive1.item(b):
            b += 1
        self._bnd1 = b + 1
        victim = self._owner.item(b)
        alive1[b] = 0
        self._where[victim] = 0
        self._t1n -= 1
        if to_ghost:
            self._b1[victim] = None
        if self._hitpos.item(victim) > p:
            self._inject(victim, p)

    def _evict_t2(self, p: int) -> None:
        """Evict T2's LRU with FastLRU-style lazy re-stamping."""
        alive2 = self._alive2
        owner = self._owner
        last = self._last
        hitpos = self._hitpos
        b = self._bnd2
        while True:
            while not alive2.item(b):
                b += 1
            victim = owner.item(b)
            if hitpos.item(victim) < 0:
                break
            occ, _lo = self._occ_list(victim)
            done = bisect_right(occ, p)
            if done:
                tgt = self._base + occ[done - 1]
                if tgt > b:
                    # Re-accessed since this stamp: move the key to its
                    # true recency and keep scanning.
                    alive2[b] = 0
                    alive2[tgt] = 1
                    owner[tgt] = victim
                    last[victim] = tgt
                    continue
            if done < len(occ):
                self._inject(victim, p)
            break
        self._bnd2 = b + 1
        alive2[b] = 0
        self._where[victim] = 0
        self._t2n -= 1
        self._b2[victim] = None

    def _replace(self, p: int, in_b2: bool) -> None:
        """The FAST'03 REPLACE subroutine: pick the list to evict from."""
        if self._t1n and (self._t1n > self.p
                          or (in_b2 and self._t1n == self.p)):
            self._evict_t1(p, to_ghost=True)
        else:
            self._evict_t2(p)

    def _schedule_event(self, k: int, p: int) -> None:
        """A key admitted to T1 mid-walk moves at its next classified hit."""
        if self._hitpos.item(k) > p:
            occ, _lo = self._occ_list(k)
            i = bisect_right(occ, p)
            if i < len(occ):
                heapq.heappush(self._dyn, (occ[i], k))

    def _admit(self, k: int, p: int) -> None:
        """The reference miss path (Cases II-IV), verbatim."""
        t = self._base + p
        c = self.capacity
        b1, b2 = self._b1, self._b2
        if k in b1:
            # Case II: ghost hit in B1 -> favour recency.
            delta = max(len(b2) / len(b1), 1.0)
            self.p = min(float(c), self.p + delta)
            self._replace(p, in_b2=False)
            del b1[k]
        elif k in b2:
            # Case III: ghost hit in B2 -> favour frequency.
            delta = max(len(b1) / len(b2), 1.0)
            self.p = max(0.0, self.p - delta)
            self._replace(p, in_b2=True)
            del b2[k]
        else:
            # Case IV: a completely new key -> T1.
            l1 = self._t1n + len(b1)
            if l1 == c:
                if self._t1n < c:
                    b1.popitem(last=False)
                    self._replace(p, in_b2=False)
                else:
                    # B1 empty and T1 full: evict T1's LRU outright.
                    self._evict_t1(p, to_ghost=False)
            else:
                total = l1 + self._t2n + len(b2)
                if total >= c:
                    if total == 2 * c:
                        b2.popitem(last=False)
                    self._replace(p, in_b2=False)
            self._alive1[t] = 1
            self._owner[t] = k
            self._last[k] = t
            self._where[k] = 1
            self._t1n += 1
            self._schedule_event(k, p)
            return
        # Ghost-hit admissions (Cases II/III) land at T2's MRU end.
        self._alive2[t] = 1
        self._owner[t] = k
        self._last[k] = t
        self._where[k] = 2
        self._t2n += 1

    # ------------------------------------------------------------------
    def _run_events(self, p: int) -> None:
        """Fire every pending move event at a position <= *p*.

        An event *at* p belongs to an earlier eviction's stale schedule
        (a hit and a candidate cannot share a position) and must be
        dropped -- via the residency validation -- before the candidate
        at p re-admits the key.
        """
        events = self._events
        dyn = self._dyn
        ei = self._ei
        ne = len(events)
        while True:
            if ei < ne and (not dyn or events[ei][0] <= dyn[0][0]):
                if events[ei][0] > p:
                    break
                epos, ekey = events[ei]
                ei += 1
            elif dyn and dyn[0][0] <= p:
                epos, ekey = heapq.heappop(dyn)
            else:
                break
            if self._where.item(ekey) == 1:
                self._move_to_t2(ekey, epos)
        self._ei = ei

    def _walk_hit(self, k: int, p: int) -> None:
        """A hit discovered mid-walk (key admitted earlier in chunk)."""
        if self._where.item(k) == 1:
            self._move_to_t2(k, p)
        else:
            t = self._base + p
            self._alive2[self._last.item(k)] = 0
            self._alive2[t] = 1
            self._owner[t] = k
            self._last[k] = t

    def _scalar_pass(self, positions: List[int],
                     keys: List[int]) -> List[int]:
        where = self._where
        extra = []
        for p, k in self._stream(positions, keys):
            self._run_events(p)
            if where.item(k):
                self._walk_hit(k, p)
                extra.append(p)
            else:
                self._admit(k, p)
        return extra

    def _finalise(self) -> None:
        self.promotions = self.hits

    def contents(self) -> set:
        return set(np.nonzero(self._where != 0)[0].tolist())


__all__ = ["FastARC"]
