"""On-disk intern cache: persist interned traces across processes.

Interning a trace (``np.unique`` over the key array) is cheap relative
to a replay, but it is the one per-trace cost that every *process*
pays: the in-memory cache lives on the :class:`Trace` instance, so a
sweep fanned out across worker processes re-interns each trace once
per worker, and repeated CLI invocations re-intern everything from
scratch.  :class:`InternCache` persists the interned form under
``runs/intern-cache/`` keyed by a fingerprint of the raw key array;
any process that sees the same trace loads the dense ids and the
id -> key table straight from disk.

Entries are content-addressed -- the fingerprint is a BLAKE2b digest
over a version tag, the element count, and the key bytes -- so a cache
hit *is* a correctness proof: two traces share a file iff their key
sequences are byte-identical.  Writes go through a temp file plus
atomic rename, so concurrent writers (parallel sweep workers racing on
a cold cache) at worst both do the interning work; readers never see a
partial file.  A corrupt or truncated entry (e.g. a crash mid-write on
a filesystem without atomic rename) is treated as a miss, counted in
``stats['invalid']``, and overwritten by the subsequent store.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.exec.journal import runs_root
from repro.sim.fast.intern import InternedTrace

#: Subdirectory of the runs root holding cache entries.
CACHE_DIRNAME = "intern-cache"

#: Bump when the on-disk layout changes; old entries become unreachable
#: (different fingerprints) rather than misread.
_VERSION = b"intern-v1"


def trace_fingerprint(keys: np.ndarray) -> str:
    """Content fingerprint of a raw key array.

    BLAKE2b over a version tag, the length, and the little-endian key
    bytes.  The length is hashed separately from the payload so the
    digest is well-defined even for the empty trace.
    """
    keys = np.ascontiguousarray(keys, dtype=np.int64)
    digest = hashlib.blake2b(digest_size=20)
    digest.update(_VERSION)
    digest.update(np.int64(keys.size).tobytes())
    if keys.size:
        data = keys if keys.dtype.byteorder in ("=", "<", "|") else \
            keys.astype("<i8")
        digest.update(data.tobytes())
    return digest.hexdigest()


class InternCache:
    """Content-addressed on-disk store of :class:`InternedTrace` entries.

    Parameters
    ----------
    root:
        Directory holding the ``<fingerprint>.npz`` entries.  Defaults
        to ``<runs-root>/intern-cache`` (i.e. ``runs/intern-cache/``
        unless ``$REPRO_RUNS_DIR`` overrides the runs root).  Created
        lazily on first store.
    """

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        if root is None:
            root = runs_root() / CACHE_DIRNAME
        self.root = Path(root)
        self.stats: Dict[str, int] = {
            "hits": 0, "misses": 0, "writes": 0, "invalid": 0}

    def path_for(self, fingerprint: str) -> Path:
        """Where the entry for *fingerprint* lives (whether or not it
        exists yet)."""
        return self.root / f"{fingerprint}.npz"

    # ------------------------------------------------------------------
    def load(self, keys: np.ndarray) -> Optional[InternedTrace]:
        """The cached interned form of *keys*, or ``None`` on a miss.

        Any failure to read or validate the entry -- missing file,
        truncated archive, wrong arrays -- is a miss; a corrupt file
        additionally bumps ``stats['invalid']`` (the caller's store
        will overwrite it).
        """
        path = self.path_for(trace_fingerprint(keys))
        if not path.exists():
            self.stats["misses"] += 1
            return None
        try:
            with np.load(path) as archive:
                ids = np.ascontiguousarray(archive["ids"], dtype=np.int64)
                uniques = np.ascontiguousarray(archive["uniques"],
                                               dtype=np.int64)
            if ids.ndim != 1 or uniques.ndim != 1 or ids.size != keys.size:
                raise ValueError("intern-cache entry shape mismatch")
        except Exception:
            self.stats["invalid"] += 1
            self.stats["misses"] += 1
            return None
        self.stats["hits"] += 1
        return InternedTrace(ids=ids, num_unique=int(uniques.size),
                             uniques=uniques)

    def store(self, keys: np.ndarray, interned: InternedTrace) -> Path:
        """Persist *interned* (the interning of *keys*) atomically.

        Returns the entry path.  Concurrent stores of the same trace
        are safe: each writes a private temp file and the final rename
        is atomic, so the entry is always a complete archive.
        """
        path = self.path_for(trace_fingerprint(keys))
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=self.root, prefix=path.stem + ".", suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez(handle, ids=interned.ids, uniques=interned.uniques)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats["writes"] += 1
        return path


__all__ = ["CACHE_DIRNAME", "InternCache", "trace_fingerprint"]
