"""Fast LHD: vectorized age-bucket accounting + exact sampled eviction.

LHD is the first fast engine whose per-request work is *statistical*
rather than structural: a hit only increments an age-bucket histogram
and refreshes the key's ``(last_access, class)`` metadata.  Crucially,
the histograms feed decisions **only at periodic reconfigurations**
(every ``max(1000, capacity)`` requests), never mid-stream -- so the
whole hit path vectorizes: one stable argsort recovers each key's
in-chunk predecessor, ages fall out as clock differences, and
``floor(log2(age + 1))`` buckets come from ``np.frexp`` exponents
(exact, unlike a float ``log2`` round-trip).

Three devices keep the replay bit-identical to the reference:

* **Epoch-aligned chunks.**  :meth:`_begin_chunk` caps every chunk at
  the next reconfiguration boundary and runs the reconfiguration when
  the boundary is reached, so histogram updates never straddle a table
  rebuild.  Within an epoch all updates are ``+= 1.0``, which commutes
  bit-exactly, so hits are *counted* vectorized (integer pending
  arrays) and *materialised* into the float histograms at the epoch
  edge by repeated ``+= 1.0`` -- the reference's exact float walk.
* **Metadata at walk time.**  Sampled eviction reads the metadata of
  arbitrary resident keys, so the vectorized metadata scatter is
  deferred to ``_post_apply`` and the walk reconstructs any key's
  mid-chunk ``(last, class)`` from its classified-hit positions (occ
  bisect), including re-admission points recorded in ``_fresh_at``.
* **Chain repair on demotion.**  Evicting a key with not-yet-due
  classified hits subtracts their pending bucket counts (stored per
  position) and injects the next occurrence as a miss; re-admission
  re-derives the hit chain (fresh class, new ages) from that point.

The eviction walk itself -- ``rng.randrange`` sampling, ``min`` by
learned density, swap-remove -- replicates the reference op-for-op on
a plain Python key list, so RNG draws and tie-breaks line up exactly.

LHD never reorders a queue, so ``promotions == 0``.
"""

from __future__ import annotations

import math
import random
from bisect import bisect_right
from typing import Dict, List, Optional

import numpy as np

from repro.policies.lhd import (
    _CLASS_FRESH,
    _CLASS_REUSED,
    _NUM_BUCKETS,
    _age_bucket,
    _bucket_mid,
)
from repro.sim.fast.base import FastEngine


def _add_ones(value: float, count: int) -> float:
    """*count* repeated IEEE additions of ``1.0``, in O(binades).

    Bit-identical to the unit-step loop: while the value sits inside a
    binade with ``ulp <= 1`` every ``+ 1.0`` is exact (the value stays
    a multiple of its own ulp and below the binade edge), so a block of
    steps collapses into one exact ``+ float(j)``.  Rounding can only
    happen on the single step that crosses the binade edge (or once
    ``ulp > 1``, beyond 2**53) -- those steps run literally.
    """
    while count:
        e = math.frexp(value)[1]
        if value <= 0.0 or e >= 53:
            value += 1.0
            count -= 1
            continue
        j = int(math.ldexp(1.0, e) - value)   # exact steps to the edge
        if j == 0:
            value += 1.0
            count -= 1
        elif j >= count:
            value += float(count)
            count = 0
        else:
            value += float(j)
            count -= j
    return value


class FastLHD(FastEngine):
    """Array-backed Least Hit Density cache."""

    name = "LHD"
    _TRACK = "last"

    def __init__(self, capacity: int, num_unique: int, *,
                 sample_size: int, ewma_decay: float,
                 reconf_interval: int, rng_state: tuple) -> None:
        super().__init__(capacity, num_unique)
        self.sample_size = sample_size
        self.ewma_decay = ewma_decay
        self._reconf_interval = reconf_interval
        self._next_reconf = reconf_interval
        self._rng = random.Random()
        self._rng.setstate(rng_state)
        self._clock = 0
        #: Deferred metadata: last-access clock and class per key.  The
        #: numpy arrays serve the vectorized chunk gathers; the plain
        #: lists mirror them for the sampled-eviction walk, whose
        #: per-sample reads would otherwise pay ``.item()`` calls.
        self._mlast = np.zeros(num_unique, dtype=np.int64)
        self._mklass = np.zeros(num_unique, dtype=np.int8)
        self._mlastl = [0] * num_unique
        self._mklassl = [0] * num_unique
        #: Keys with a classified hit in the current chunk (only keys
        #: outside this set may read their density straight off the
        #: metadata mirrors during the walk).
        self._hitset: set = set()
        #: Residency: index into ``_klist``, or -1.
        self._kpos = np.full(num_unique, -1, dtype=np.int64)
        self._klist: List[int] = []
        # Float histograms (reference representation) + integer pending
        # counts accumulated within the current epoch.
        self._hits_hist = [[0.0] * _NUM_BUCKETS for _ in range(2)]
        self._ev_hist = [[0.0] * _NUM_BUCKETS for _ in range(2)]
        self._density = [
            [1.0 / (_bucket_mid(b) + 1.0) for b in range(_NUM_BUCKETS)]
            for _ in range(2)
        ]
        self._pend_hits = np.zeros(2 * _NUM_BUCKETS, dtype=np.int64)
        self._pend_evs = np.zeros(2 * _NUM_BUCKETS, dtype=np.int64)
        # Per-position (class, bucket) of each pre-applied chunk hit,
        # so demotions subtract exactly what was added.
        self._ckk: Optional[np.ndarray] = None
        self._ckb: Optional[np.ndarray] = None
        #: Per-chunk dedup from ``_pre_apply``: each hit key once
        #: (ascending) with its last chunk hit position.
        self._pa_uk: Optional[np.ndarray] = None
        self._pa_lastpos: Optional[np.ndarray] = None
        #: key -> chunk position of its latest mid-chunk (re-)insertion.
        #: Recorded only for keys with classified hits; metadata
        #: reconstruction compares it against hit positions to decide
        #: whether the key's state is a fresh insertion or a later hit.
        self._ins_at: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Epoch alignment
    # ------------------------------------------------------------------
    def _begin_chunk(self, pos: int, hi: int) -> int:
        # The reference reconfigures while processing the request whose
        # clock reaches ``_next_reconf`` (clock at index i is i + 1),
        # *before* recording that request's outcome -- so that request
        # must start a chunk and the rebuild runs here, between chunks.
        if pos + 1 >= self._next_reconf:
            self._clock = pos + 1
            self._reconfigure()
        boundary = self._next_reconf - 1
        return boundary if boundary < hi else hi

    @staticmethod
    def _materialise(pending: np.ndarray, hist: List[List[float]]) -> None:
        # Unit steps, not a single += float(count): float addition of a
        # count is not bit-equal to the reference's repeated += 1.0.
        # ``_add_ones`` collapses the steps exactly.
        for klass in (0, 1):
            row = hist[klass]
            off = klass * _NUM_BUCKETS
            for b in range(_NUM_BUCKETS):
                count = int(pending[off + b])
                if count:
                    row[b] = _add_ones(row[b], count)
        pending[:] = 0

    def _reconfigure(self) -> None:
        """The reference's backward density sweep, verbatim."""
        self._materialise(self._pend_hits, self._hits_hist)
        self._materialise(self._pend_evs, self._ev_hist)
        self._next_reconf = self._clock + self._reconf_interval
        for klass in range(2):
            hits = self._hits_hist[klass]
            evictions = self._ev_hist[klass]
            density = self._density[klass]
            hits_above = 0.0
            events_above = 0.0
            lifetime_above = 0.0
            for b in range(_NUM_BUCKETS - 1, -1, -1):
                events = hits[b] + evictions[b]
                if b < _NUM_BUCKETS - 1:
                    gap = _bucket_mid(b + 1) - _bucket_mid(b)
                    lifetime_above += gap * events_above
                hits_above += hits[b]
                events_above += events
                lifetime_above += events
                if events_above > 0.0 and lifetime_above > 0.0:
                    density[b] = hits_above / lifetime_above
            for b in range(_NUM_BUCKETS):
                hits[b] *= self.ewma_decay
                evictions[b] *= self.ewma_decay

    # ------------------------------------------------------------------
    # Chunk hooks
    # ------------------------------------------------------------------
    def _classify(self, cids):
        return self._kpos[cids] >= 0, None

    def _pre_apply(self, cids, known, aux) -> None:
        self._ins_at = {}
        self._hitset = set()
        self._pa_uk = None
        if self._last_cand:
            self._ckk = np.zeros(cids.size, dtype=np.int64)
            self._ckb = np.zeros(cids.size, dtype=np.int64)
        hidx = np.nonzero(known)[0]
        if hidx.size == 0:
            return
        # Key-major / position-minor order via one packed single-array
        # sort (positions fit in 17 bits; see ``_occ_index``) -- far
        # cheaper than a stable argsort over the keys.
        shift = np.uint64(17)
        packed = (cids[hidx].astype(np.uint64) << shift) \
            | hidx.astype(np.uint64)
        packed.sort()
        sk = (packed >> shift).astype(np.int64)
        sp = (packed & np.uint64(0x1FFFF)).astype(np.int64)
        first = np.empty(sp.size, dtype=bool)
        first[0] = True
        np.not_equal(sk[1:], sk[:-1], out=first[1:])
        last = np.empty(sp.size, dtype=bool)
        last[-1] = True
        np.copyto(last[:-1], first[1:])
        # Saved for ``_post_apply``: each hit key once, with its last
        # chunk hit position -- the only (key, stamp) pairs the
        # end-of-chunk metadata scatter can leave behind.
        self._pa_uk = sk[first]
        self._pa_lastpos = sp[last]
        if self._last_cand:
            self._hitset = set(self._pa_uk.tolist())
        # Each hit's age spans from the key's previous access: the
        # prior in-chunk hit, or the pre-chunk metadata for the first.
        prev_clock = np.empty(sp.size, dtype=np.int64)
        prev_clock[first] = self._mlast[sk[first]]
        not_first = ~first
        prev_clock[not_first] = self._base + sp[:-1][not_first[1:]] + 1
        klass = np.where(first, self._mklass[sk],
                         np.int8(_CLASS_REUSED)).astype(np.int64)
        ages = (self._base + sp + 1) - prev_clock
        # bucket = floor(log2(age + 1)): the frexp exponent is exact.
        bucket = np.frexp((ages + 1).astype(np.float64))[1] \
            .astype(np.int64) - 1
        np.minimum(bucket, _NUM_BUCKETS - 1, out=bucket)
        self._pend_hits += np.bincount(klass * _NUM_BUCKETS + bucket,
                                       minlength=2 * _NUM_BUCKETS)
        if self._last_cand:
            self._ckk[sp] = klass
            self._ckb[sp] = bucket

    def _post_apply(self, cids, known, aux) -> None:
        uk = self._pa_uk
        if uk is None:
            return
        # Only a key's *last* chunk hit survives the last-write-wins
        # scatter, so the deduplicated (key, last position) pairs from
        # ``_pre_apply`` write exactly the per-hit loop's final state.
        resident = self._kpos[uk] >= 0
        keys = uk[resident]
        if keys.size:
            stamps = self._base + self._pa_lastpos[resident] + 1
            self._mlast[keys] = stamps
            self._mklass[keys] = _CLASS_REUSED
            mlastl = self._mlastl
            mklassl = self._mklassl
            for k, stamp in zip(keys.tolist(), stamps.tolist()):
                mlastl[k] = stamp
                mklassl[k] = _CLASS_REUSED
        else:
            mlastl = self._mlastl
            mklassl = self._mklassl
        # A key with no classified hit after its latest mid-chunk
        # insertion ends the chunk fresh, stamped at that insertion.
        for k, ins in self._ins_at.items():
            if (self._kpos.item(k) >= 0
                    and self._mlast.item(k) <= self._base + ins + 1):
                self._mlast[k] = self._base + ins + 1
                self._mklass[k] = _CLASS_FRESH
                mlastl[k] = self._base + ins + 1
                mklassl[k] = _CLASS_FRESH

    # ------------------------------------------------------------------
    # Walk-time metadata and eviction
    # ------------------------------------------------------------------
    def _meta_at(self, k: int, p: int):
        """(last, class) of resident key *k* as of walk position *p*."""
        ins = self._ins_at.get(k)
        if self._hitpos.item(k) >= 0:
            occ, _lo = self._occ_list(k)
            done = bisect_right(occ, p)
            if done:
                q = occ[done - 1]
                if ins is None or q > ins:
                    return self._base + q + 1, _CLASS_REUSED
        if ins is not None:
            return self._base + ins + 1, _CLASS_FRESH
        return self._mlastl[k], self._mklassl[k]

    def _evict_one(self, p: int) -> None:
        clock = self._base + p + 1
        klist = self._klist
        n = len(klist)
        if n <= self.sample_size:
            sample = klist
        else:
            # Inlined ``randrange(n)`` (CPython's rejection loop over
            # ``getrandbits``): the identical draw sequence at a
            # fraction of the call overhead.
            getrandbits = self._rng.getrandbits
            kbits = n.bit_length()
            sample = []
            for _ in range(self.sample_size):
                r = getrandbits(kbits)
                while r >= n:
                    r = getrandbits(kbits)
                sample.append(klist[r])
        # Inlined ``min(sample, key=hit_density)``: most sampled keys
        # have no classified hit this chunk and no mid-chunk insertion,
        # so their (last, class) reads straight off the metadata
        # mirrors; ``d < best`` keeps the first minimum, like ``min``.
        # ``(age + 1).bit_length() - 1`` equals the reference's
        # ``int(log2(age + 1))`` for every age below 2**47 (float log2
        # only rounds across a power of two beyond that).
        density = self._density
        mlastl = self._mlastl
        mklassl = self._mklassl
        hitset = self._hitset
        ins_at = self._ins_at
        cap_bucket = _NUM_BUCKETS - 1
        best = None
        victim = -1
        for k in sample:
            if k in hitset or k in ins_at:
                last, klass = self._meta_at(k, p)
            else:
                last = mlastl[k]
                klass = mklassl[k]
            age = clock - last
            bucket = (age + 1).bit_length() - 1 if age > 0 else 0
            d = density[klass][bucket if bucket < cap_bucket else cap_bucket]
            if best is None or d < best:
                best = d
                victim = k
        last, klass = self._meta_at(victim, p)
        self._pend_evs[klass * _NUM_BUCKETS
                       + _age_bucket(clock - last)] += 1
        idx = int(self._kpos.item(victim))
        self._kpos[victim] = -1
        tail = klist.pop()
        if tail != victim:
            klist[idx] = tail
            self._kpos[tail] = idx
        if self._hitpos.item(victim) > p:
            # Not-yet-due classified hits become misses: retract their
            # pending counts; the re-admission rebuilds the chain.
            occ, _lo = self._occ_list(victim)
            ckk, ckb = self._ckk, self._ckb
            pend = self._pend_hits
            for q in occ[bisect_right(occ, p):]:
                pend[ckk.item(q) * _NUM_BUCKETS + ckb.item(q)] -= 1
            self._inject(victim, p)

    def _rechain(self, k: int, p: int) -> None:
        """Re-derive *k*'s hit chain after its re-admission at *p*."""
        occ, _lo = self._occ_list(k)
        prev = self._base + p + 1
        klass = _CLASS_FRESH
        ckk, ckb = self._ckk, self._ckb
        pend = self._pend_hits
        for q in occ[bisect_right(occ, p):]:
            clock = self._base + q + 1
            bucket = _age_bucket(clock - prev)
            pend[klass * _NUM_BUCKETS + bucket] += 1
            ckk[q] = klass
            ckb[q] = bucket
            prev = clock
            klass = _CLASS_REUSED

    def _scalar_pass(self, positions: List[int],
                     keys: List[int]) -> List[int]:
        kpos = self._kpos
        mlast = self._mlast
        mklass = self._mklass
        mlastl = self._mlastl
        mklassl = self._mklassl
        pend_hits = self._pend_hits
        base = self._base
        extra = []
        for p, k in self._stream(positions, keys):
            clock = base + p + 1
            if kpos.item(k) >= 0:
                # Hit discovered mid-walk: the key was admitted earlier
                # in this chunk, so its metadata arrays are current.
                last = mlastl[k]
                klass = mklassl[k]
                pend_hits[klass * _NUM_BUCKETS
                          + _age_bucket(clock - last)] += 1
                mlast[k] = clock
                mklass[k] = _CLASS_REUSED
                mlastl[k] = clock
                mklassl[k] = _CLASS_REUSED
                extra.append(p)
                continue
            self._insert(k, p)
        return extra

    def _insert(self, k: int, p: int) -> None:
        """The reference miss path: evict if full, admit fresh."""
        if len(self._klist) >= self.capacity:
            self._evict_one(p)
        self._mlast[k] = self._base + p + 1
        self._mklass[k] = _CLASS_FRESH
        self._mlastl[k] = self._base + p + 1
        self._mklassl[k] = _CLASS_FRESH
        self._kpos[k] = len(self._klist)
        self._klist.append(k)
        if self._hitpos.item(k) >= 0:
            # A mid-chunk (re-)insertion of a key with classified
            # hits: record it and re-derive the not-yet-due chain.
            self._ins_at[k] = p
            if self._hitpos.item(k) > p:
                self._rechain(k, p)

    def contents(self) -> set:
        return set(np.nonzero(self._kpos >= 0)[0].tolist())


__all__ = ["FastLHD"]
