"""Generic fast QD wrapper: probation ring + ghost over a fast main.

Mirrors :class:`repro.core.qd.QDCache` over *any* main cache exposing
the small core protocol below -- the realisation of the paper's "QD in
front of a state-of-the-art policy" composition for the fast path.
The probationary FIFO, ghost queue and graduation logic are shared
verbatim with :class:`~repro.sim.fast.qd.FastQDLP`; what differs per
main policy is wrapped in a *core* object:

``resident(k)`` / ``resident_mask(cids)``
    Main-cache membership (scalar / vectorized).
``pre_hits(cids, hidx, mh, walk)``
    Per-chunk preparation from the classified-hit index (``hidx``) and
    its main-resident subset (``mh``).
``advance(p)``
    Fire deferred main-hit work due at positions <= *p*; called before
    every candidate so eviction decisions see exact main state.
``hit(k, p)`` / ``insert(k, p)``
    ``main.request`` on a walk-discovered hit / miss.
``finish(cids, known)``
    End-of-chunk settlement (leftover events, deferred scatters).

Two cores ship here.  **ARC** (:class:`_ARCCore`) stays fully
vectorized: ARC has no notion of time beyond relative order, so
:class:`~repro.sim.fast.arc.FastARC` drops in whole -- its stamp
machinery, T1-move events and ghost lists all operate on composite
trace positions, which order main requests exactly as the reference's
inner ARC sees them.  The only surgery is delegation: the core shares
the host's ``_hitpos`` array and routes ``_occ_list``/``_inject`` to
the host, so conflict repair and miss injection act on the *composite*
candidate stream.

**LHD** (:class:`_LHDCore`) cannot be vectorized under the wrapper:
LHD's logical clock ticks once per *main* request, so every age (and
therefore every histogram bucket) depends on how many graduations and
ghost admissions the walk discovers earlier in the chunk.  The core
instead replays main events scalar in exact reference order: all
classified hits enter a per-chunk event stream, each event validated
at fire time against main residency (probation hits and stale events
drop out), and every fired hit / insert ticks the clock, updates the
age histograms and runs reconfigurations precisely where the reference
would.  Metadata lives in flat arrays and is always current, so
sampled evictions read exact state with no occurrence reconstruction.

Promotions: the wrapper counts graduations via ``_count_promotion``;
cores with per-hit promotions (ARC) are accounted by the ``_mainhit``
position mask -- marked for classified and walk-discovered main hits,
unmarked when an eviction demotes a key's future occurrences -- whose
post-warmup popcount is exactly the inner cache's hit count.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from typing import Callable, List

import numpy as np

from repro.policies.lhd import (
    _CLASS_FRESH,
    _CLASS_REUSED,
    _NUM_BUCKETS,
    _age_bucket,
    _bucket_mid,
)
from repro.sim.fast.arc import FastARC
from repro.sim.fast.base import FastEngine
from repro.sim.fast.ghost import FastGhost


class _ARCCore(FastARC):
    """ARC main core: FastARC running on composite trace positions."""

    #: The reference ARC promotes on every hit.
    hit_promotes = True

    def __init__(self, host: "FastQD", capacity: int) -> None:
        super().__init__(capacity, host.num_unique)
        self._host = host
        # Shared chunk machinery: one hit index, one candidate stream.
        self._hitpos = host._hitpos

    def _occ_list(self, key):
        return self._host._occ_list(key)

    def _inject(self, key, position):
        return self._host._inject(key, position)

    # Core protocol -----------------------------------------------------
    def resident(self, k: int) -> bool:
        return self._where.item(k) != 0

    def resident_mask(self, cids: np.ndarray) -> np.ndarray:
        return self._where[cids] != 0

    def pre_hits(self, cids, hidx, mh, walk: bool) -> None:
        self._events = []
        self._ei = 0
        self._dyn.clear()
        if not walk:
            return
        self._build_events(mh[self._where[cids[mh]] == 1], cids)

    advance = FastARC._run_events
    hit = FastARC._walk_hit
    insert = FastARC._admit

    def finish(self, cids, known) -> None:
        # Settles every resident key's final stamp; probation-era hit
        # positions of graduated keys die on the stamp filter (their
        # graduation stamp is later), probation residents on the
        # where-filter.
        self._post_apply(cids, known, None)


class _LHDCore:
    """LHD main core: scalar main-event replay with array metadata.

    Every classified hit becomes a pending event; ``advance`` fires
    events in position order, keeping only those whose key is
    main-resident *at that point of the walk* -- which is exactly the
    set of composite hits the reference serves from its inner LHD.
    """

    hit_promotes = False

    def __init__(self, host: "FastQD", capacity: int, *,
                 sample_size: int, ewma_decay: float,
                 reconf_interval: int, rng_state) -> None:
        self._host = host
        self.capacity = int(capacity)
        self.sample_size = int(sample_size)
        self.ewma_decay = ewma_decay
        self._reconf_interval = int(reconf_interval)
        self._next_reconf = self._reconf_interval
        self._rng = random.Random()
        self._rng.setstate(rng_state)
        self._clock = 0
        n = host.num_unique
        # Metadata lives in plain Python lists: every read and write on
        # the event path is scalar, where list indexing beats ndarray
        # item access severalfold.  Only membership needs a vectorized
        # view, so ``_kpos`` (the numpy gather target for classify)
        # mirrors ``_kposl`` -- both updated on the cold miss path.
        self._mlast = [0] * n
        self._mklass = [0] * n
        self._kposl = [-1] * n
        self._kpos = np.full(n, -1, dtype=np.int64)
        self._klist: List[int] = []
        self._hits = [[0.0] * _NUM_BUCKETS for _ in range(2)]
        self._evictions = [[0.0] * _NUM_BUCKETS for _ in range(2)]
        self._density = [
            [1.0 / (_bucket_mid(b) + 1.0) for b in range(_NUM_BUCKETS)]
            for _ in range(2)
        ]
        self._ev_pos: List[int] = []
        self._ev_keys: List[int] = []
        self._evi = 0

    def _alloc(self, n: int) -> None:
        pass

    # Core protocol -----------------------------------------------------
    def resident(self, k: int) -> bool:
        return self._kposl[k] >= 0

    def resident_mask(self, cids: np.ndarray) -> np.ndarray:
        return self._kpos[cids] >= 0

    def pre_hits(self, cids, hidx, mh, walk: bool) -> None:
        self._ev_pos = hidx.tolist()
        self._ev_keys = cids[hidx].tolist()
        self._evi = 0

    def advance(self, p: int) -> None:
        """Fire every pending main-hit event at a position <= *p*.

        The inlined body is ``hit`` below: one clock tick, one age
        histogram bump, metadata refresh.  ``(age + 1).bit_length() - 1``
        equals the reference's ``int(math.log2(age + 1))`` for every
        age below 2**47 (far beyond any trace length); above that the
        float log could round up across a power of two.
        """
        pos = self._ev_pos
        i = self._evi
        n = len(pos)
        if i >= n or pos[i] > p:
            return
        keys = self._ev_keys
        kpos = self._kposl
        mlast = self._mlast
        mklass = self._mklass
        hists = self._hits
        clock = self._clock
        next_reconf = self._next_reconf
        while i < n and pos[i] <= p:
            k = keys[i]
            i += 1
            if kpos[k] < 0:
                continue
            clock += 1
            if clock >= next_reconf:
                self._clock = clock
                self._reconfigure()
                next_reconf = self._next_reconf
            bucket = (clock - mlast[k] + 1).bit_length() - 1
            hists[mklass[k]][bucket if bucket < 31 else 31] += 1.0
            mlast[k] = clock
            mklass[k] = _CLASS_REUSED
        self._evi = i
        self._clock = clock

    def _tick(self) -> None:
        self._clock += 1
        if self._clock >= self._next_reconf:
            self._reconfigure()

    def hit(self, k: int, p: int) -> None:
        self._tick()
        age = self._clock - self._mlast[k]
        self._hits[self._mklass[k]][_age_bucket(age)] += 1.0
        self._mlast[k] = self._clock
        self._mklass[k] = _CLASS_REUSED

    def insert(self, k: int, p: int) -> None:
        self._tick()
        if len(self._klist) >= self.capacity:
            self._evict_one(p)
        self._mlast[k] = self._clock
        self._mklass[k] = _CLASS_FRESH
        self._kposl[k] = len(self._klist)
        self._kpos[k] = len(self._klist)
        self._klist.append(k)

    def finish(self, cids, known) -> None:
        self.advance(1 << 62)

    def _evict_one(self, p: int) -> None:
        klist = self._klist
        n = len(klist)
        if n <= self.sample_size:
            sample = klist
        else:
            # Inlined ``randrange(n)`` (CPython's rejection loop over
            # ``getrandbits``): the identical draw sequence at a
            # fraction of the call overhead.
            getrandbits = self._rng.getrandbits
            kbits = n.bit_length()
            sample = []
            for _ in range(self.sample_size):
                r = getrandbits(kbits)
                while r >= n:
                    r = getrandbits(kbits)
                sample.append(klist[r])
        mlast = self._mlast
        mklass = self._mklass
        density = self._density
        clock = self._clock
        cap_bucket = _NUM_BUCKETS - 1
        best = None
        victim = -1
        for k in sample:
            age = clock - mlast[k]
            bucket = (age + 1).bit_length() - 1 if age > 0 else 0
            d = density[mklass[k]][
                bucket if bucket < cap_bucket else cap_bucket]
            if best is None or d < best:
                best = d
                victim = k
        self._evictions[mklass[victim]][
            _age_bucket(clock - mlast[victim])] += 1.0
        idx = self._kposl[victim]
        self._kposl[victim] = -1
        self._kpos[victim] = -1
        tail = klist.pop()
        if tail != victim:
            klist[idx] = tail
            self._kposl[tail] = idx
            self._kpos[tail] = idx
        host = self._host
        if host._hitpos.item(victim) > p:
            # Pending events for the victim's later occurrences drop on
            # residency validation; the first becomes a composite miss.
            host._inject(victim, p)

    def _reconfigure(self) -> None:
        # Verbatim reference backward sweep (repro.policies.lhd).
        self._next_reconf = self._clock + self._reconf_interval
        for klass in range(2):
            hits = self._hits[klass]
            evictions = self._evictions[klass]
            density = self._density[klass]
            hits_above = 0.0
            events_above = 0.0
            lifetime_above = 0.0
            for b in range(_NUM_BUCKETS - 1, -1, -1):
                events = hits[b] + evictions[b]
                if b < _NUM_BUCKETS - 1:
                    gap = _bucket_mid(b + 1) - _bucket_mid(b)
                    lifetime_above += gap * events_above
                hits_above += hits[b]
                events_above += events
                lifetime_above += events
                if events_above > 0.0 and lifetime_above > 0.0:
                    density[b] = hits_above / lifetime_above
            for b in range(_NUM_BUCKETS):
                hits[b] *= self.ewma_decay
                evictions[b] *= self.ewma_decay

    def contents(self) -> set:
        return set(np.nonzero(self._kpos >= 0)[0].tolist())


class FastQD(FastEngine):
    """Array-backed QD wrapper over a pluggable fast main core."""

    name = "QD"

    def __init__(self, capacity: int, num_unique: int,
                 probation_capacity: int, main_capacity: int,
                 ghost_entries: int,
                 core_factory: Callable[["FastQD"], object]) -> None:
        super().__init__(capacity, num_unique)
        if probation_capacity + main_capacity != capacity:
            raise ValueError("probation + main must equal total capacity")
        self.probation_capacity = int(probation_capacity)
        self.main_capacity = int(main_capacity)
        self.ghost = FastGhost(ghost_entries)
        self._pslot = np.full(num_unique, -1, dtype=np.int64)
        pcap = self.probation_capacity
        self._pkeys = np.empty(pcap, dtype=np.int64)
        self._pvis = np.zeros(pcap, dtype=np.uint8)
        self._php = 0    # ring head: next insert position
        self._pn = 0
        self._visbefore = None
        self._cleared = {}   # probation slot -> admission position
        self.core = core_factory(self)
        self._track_mainhit = bool(self.core.hit_promotes)
        self._mainhit = None

    def replay(self, ids: np.ndarray, warmup: int = 0) -> np.ndarray:
        n = int(np.asarray(ids).size)
        self._mainhit = np.zeros(n, dtype=bool)
        self.core._alloc(n)
        return super().replay(ids, warmup)

    # ------------------------------------------------------------------
    def _classify(self, cids):
        ps = self._pslot[cids]
        known = ps >= 0
        known |= self.core.resident_mask(cids)
        return known, ps

    def _pre_apply(self, cids, known, aux) -> None:
        core = self.core
        core._base = self._base
        hidx = np.nonzero(known)[0]
        slots = aux[known]
        in_prob = slots >= 0
        pslots = slots[in_prob]
        visbefore = np.zeros(slots.size, dtype=np.uint8)
        visbefore[in_prob] = self._pvis[pslots]
        self._visbefore = visbefore
        self._pvis[pslots] = 1
        self._cleared.clear()
        mh = hidx[~in_prob]
        if self._track_mainhit and mh.size:
            self._mainhit[self._base + mh] = True
        core.pre_hits(cids, hidx, mh, self._last_cand > 0)

    def _post_apply(self, cids, known, aux) -> None:
        self.core.finish(cids, known)

    def _inject(self, key, position):
        # A demoted key's later occurrences stop being main hits.
        if self._track_mainhit:
            occ, _lo = self._occ_list(int(key))
            mainhit = self._mainhit
            base = self._base
            for q in occ[bisect_right(occ, position):]:
                mainhit[base + q] = False
        return super()._inject(key, position)

    # ------------------------------------------------------------------
    # Reference algorithm bodies
    # ------------------------------------------------------------------
    def _insert_main(self, k: int, position: int) -> None:
        """``main.request`` on a key known to miss there."""
        self._pslot[k] = -1
        self.core.insert(k, position)
        if self._track_mainhit and self._hitpos.item(k) > position:
            occ, _lo = self._occ_list(k)
            mainhit = self._mainhit
            base = self._base
            for q in occ[bisect_right(occ, position):]:
                mainhit[base + q] = True

    def _demote_one(self, position: int) -> None:
        """Pop the probation tail: graduate if visited, else ghost."""
        pcap = self.probation_capacity
        tail = (self._php - self._pn) % pcap
        victim = self._pkeys.item(tail)
        if self._hitpos.item(victim) > position:
            occ, _lo = self._occ_list(victim)
            done = bisect_right(occ, position)
            fut = len(occ) - done
            c = self._cleared.get(tail)
            if c is None:
                v = done > 0 or bool(
                    self._visbefore[self._hit_ordinal(occ[0])])
            else:
                v = done > bisect_right(occ, c, 0, done)
        else:
            fut = 0
            v = bool(self._pvis.item(tail))
        self._pn -= 1
        if v:
            self._insert_main(victim, position)
            self._count_promotion(position)
        else:
            self.ghost.add(victim)
            self._pslot[victim] = -1
            if fut:
                self._inject(victim, position)

    # ------------------------------------------------------------------
    def _scalar_pass(self, positions: List[int],
                     keys: List[int]) -> List[int]:
        core = self.core
        pslot = self._pslot
        pvis = self._pvis
        pkeys = self._pkeys
        pcap = self.probation_capacity
        mainhit = self._mainhit
        base = self._base
        deferred = self._deferred
        track = self._track_mainhit
        extra = []
        for p, k in self._stream(positions, keys):
            core.advance(p)
            s = pslot.item(k)
            if s >= 0:
                pvis[s] = 1
                extra.append(p)
                continue
            if core.resident(k):
                core.hit(k, p)
                if track:
                    mainhit[base + p] = True
                extra.append(p)
                continue
            if self.ghost.remove(k):
                self._insert_main(k, p)
                deferred.pop(k, None)
                continue
            if self._pn >= pcap:
                self._demote_one(p)
            slot = self._php
            pkeys[slot] = k
            pvis[slot] = 0
            pslot[k] = slot
            self._php = (slot + 1) % pcap
            self._pn += 1
            self._cleared[slot] = p
            if deferred.pop(k, 0):
                pvis[slot] = 1
        return extra

    def _finalise(self) -> None:
        if self._track_mainhit:
            self.promotions += int(
                np.count_nonzero(self._mainhit[self._warmup:]))

    def contents(self) -> set:
        probation = set(np.nonzero(self._pslot >= 0)[0].tolist())
        return probation | self.core.contents()


__all__ = ["FastQD", "_ARCCore", "_LHDCore"]
