"""Lazy-deletion ghost queue for the fast engines.

Semantically identical to :class:`repro.core.ghost.GhostQueue`
(re-adding refreshes position; eviction drops the oldest entry), but
O(1) per operation without OrderedDict relinking: membership is a
plain dict of key -> monotone stamp, FIFO order is a deque of
``(stamp, key)`` pairs where superseded pairs are left in place and
skipped lazily when they surface at the front.
"""

from __future__ import annotations

from collections import deque

_MISSING = object()


class FastGhost:
    """Bounded FIFO key set with stamp-based lazy deletion."""

    def __init__(self, max_entries: int) -> None:
        if max_entries < 0:
            raise ValueError(
                f"max_entries must be >= 0, got {max_entries}")
        self.max_entries = int(max_entries)
        self._stamps = {}
        self._queue: deque = deque()
        self._clock = 0
        self._live = 0

    def __contains__(self, key) -> bool:
        return key in self._stamps

    def __len__(self) -> int:
        return self._live

    def remove(self, key) -> bool:
        """Forget *key*; returns whether it was present."""
        if self._stamps.pop(key, _MISSING) is _MISSING:
            return False
        self._live -= 1
        return True

    def add(self, key) -> None:
        """Record *key*, evicting the oldest live entry when full."""
        if self.max_entries == 0:
            return
        stamps = self._stamps
        stamp = self._clock
        self._clock += 1
        if key in stamps:
            # Refresh: the stale (old, key) pair stays queued and is
            # skipped when it surfaces.
            stamps[key] = stamp
            self._queue.append((stamp, key))
            return
        queue = self._queue
        while self._live >= self.max_entries:
            old_stamp, old_key = queue.popleft()
            if stamps.get(old_key) == old_stamp:
                del stamps[old_key]
                self._live -= 1
        stamps[key] = stamp
        queue.append((stamp, key))
        self._live += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<FastGhost {self._live}/{self.max_entries}>"


__all__ = ["FastGhost"]
