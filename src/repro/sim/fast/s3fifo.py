"""Fast S3-FIFO: small/main FIFOs over one slot pool + lazy ghost.

Both queues live in one preallocated pool of ``capacity`` slots with
shared ``prv``/``nxt`` link arrays (``prv`` toward the head).  Hits in
either queue only bump the shared frequency counter, so one
``np.bincount`` covers the whole chunk's classified hits; graduation
decisions (``freq > 1``) and main-queue lazy promotion (``freq > 0``
with the saturating cap applied at read time) run in exact scalar code
on the candidate walk.  Not-yet-due frequency increments (hits after
the walk position) are subtracted for each decision and re-added for
survivors; an evicted key's later hits are demoted via ``_inject``,
re-entering through the ghost queue exactly as the reference does.

Only the structures a vectorized step touches are ndarrays: ``slot_of``
(the classify gather, list-mirrored for walk reads) and ``freq`` (the
per-chunk bincount add).  The link arrays and slot keys exist purely
for the scalar walk, so they are plain Python lists -- list indexing
beats ndarray item access severalfold on the eviction path.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.sim.fast.base import FastEngine
from repro.sim.fast.ghost import FastGhost

_MAX_FREQ = 3


class FastS3FIFO(FastEngine):
    """Array-backed S3-FIFO."""

    name = "S3-FIFO"

    def __init__(self, capacity: int, num_unique: int,
                 small_capacity: int, main_capacity: int,
                 ghost_entries: int) -> None:
        super().__init__(capacity, num_unique)
        if small_capacity + main_capacity != capacity:
            raise ValueError("small + main must equal total capacity")
        self.small_capacity = int(small_capacity)
        self.main_capacity = int(main_capacity)
        self.ghost = FastGhost(ghost_entries)
        self._slot_of = np.full(num_unique, -1, dtype=np.int64)
        self._slotl = [-1] * num_unique     # walk-side mirror
        self._keys = [0] * capacity
        self._freq = np.zeros(capacity, dtype=np.int64)
        self._prv = [0] * capacity
        self._nxt = [0] * capacity
        self._free = list(range(capacity - 1, -1, -1))
        # (head, tail, length) per queue, mutated as attributes so the
        # nested insert/evict helpers stay in sync.
        self._sh = -1
        self._st = -1
        self._sn = 0
        self._mh = -1
        self._mt = -1
        self._mn = 0

    # ------------------------------------------------------------------
    def _classify(self, cids):
        slots = self._slot_of[cids]
        return slots >= 0, slots

    def _pre_apply(self, cids, known, aux) -> None:
        counts = np.bincount(aux[known])
        self._freq[:counts.size] += counts

    def _pending(self, victim: int, position: int) -> int:
        """Pre-applied hit increments of *victim* not yet due at
        *position* (0 for keys with no later in-chunk hit)."""
        if self._hitpos.item(victim) > position:
            return self._future_count(victim, position)
        return 0

    # ------------------------------------------------------------------
    # Queue plumbing (python scalars over the shared slot pool)
    # ------------------------------------------------------------------
    def _push_small(self, slot: int) -> None:
        prv, nxt = self._prv, self._nxt
        prv[slot] = -1
        nxt[slot] = self._sh
        if self._sh >= 0:
            prv[self._sh] = slot
        self._sh = slot
        if self._st < 0:
            self._st = slot
        self._sn += 1

    def _pop_small_tail(self) -> int:
        slot = self._st
        p = self._prv[slot]
        self._st = p
        if p >= 0:
            self._nxt[p] = -1
        else:
            self._sh = -1
        self._sn -= 1
        return slot

    def _push_main(self, slot: int) -> None:
        prv, nxt = self._prv, self._nxt
        prv[slot] = -1
        nxt[slot] = self._mh
        if self._mh >= 0:
            prv[self._mh] = slot
        self._mh = slot
        if self._mt < 0:
            self._mt = slot
        self._mn += 1

    def _pop_main_tail(self) -> int:
        slot = self._mt
        p = self._prv[slot]
        self._mt = p
        if p >= 0:
            self._nxt[p] = -1
        else:
            self._mh = -1
        self._mn -= 1
        return slot

    # ------------------------------------------------------------------
    # Reference algorithm bodies
    # ------------------------------------------------------------------
    def _evict_from_main(self, position: int) -> None:
        skeys, freq = self._keys, self._freq
        hitpos = self._hitpos
        while True:
            slot = self._pop_main_tail()
            victim = skeys[slot]
            fut = (self._future_count(victim, position)
                   if hitpos.item(victim) > position else 0)
            f = freq.item(slot) - fut
            if f > 0:
                freq[slot] = (f if f <= _MAX_FREQ else _MAX_FREQ) - 1 + fut
                self._push_main(slot)
                self._count_promotion(position)
            else:
                self._slot_of[victim] = -1
                self._slotl[victim] = -1
                self._free.append(slot)
                if fut:
                    self._inject(victim, position)
                return

    def _evict_from_small(self, position: int) -> None:
        slot = self._pop_small_tail()
        victim = self._keys[slot]
        fut = (self._future_count(victim, position)
               if self._hitpos.item(victim) > position else 0)
        f = self._freq.item(slot) - fut
        if (f if f <= _MAX_FREQ else _MAX_FREQ) > 1:
            # Graduation zeroes the counter; keep the not-yet-due
            # increments pending against the main-queue residency.
            self._freq[slot] = fut
            while self._mn >= self.main_capacity:
                self._evict_from_main(position)
            self._push_main(slot)
            self._count_promotion(position)
        else:
            self.ghost.add(victim)
            self._slot_of[victim] = -1
            self._slotl[victim] = -1
            self._free.append(slot)
            if fut:
                self._inject(victim, position)

    def _admit(self, k: int, position: int) -> None:
        if self.ghost.remove(k):
            while self._mn >= self.main_capacity:
                self._evict_from_main(position)
            slot = self._free.pop()
            self._keys[slot] = k
            self._freq[slot] = 0
            self._push_main(slot)
        else:
            while self._sn >= self.small_capacity:
                self._evict_from_small(position)
            slot = self._free.pop()
            self._keys[slot] = k
            self._freq[slot] = 0
            self._push_small(slot)
        self._slot_of[k] = slot
        self._slotl[k] = slot

    # ------------------------------------------------------------------
    def _scalar_pass(self, positions: List[int],
                     keys: List[int]) -> List[int]:
        slotl = self._slotl
        freq = self._freq
        deferred = self._deferred
        extra = []
        append = extra.append
        for p, k in self._stream(positions, keys):
            s = slotl[k]
            if s >= 0:
                freq[s] += 1
                append(p)
                continue
            self._admit(k, p)
            if deferred:
                rest = deferred.pop(k, 0)
                if rest:
                    freq[slotl[k]] += rest
        return extra

    def contents(self) -> set:
        return set(np.nonzero(self._slot_of >= 0)[0].tolist())


__all__ = ["FastS3FIFO"]
