"""Shared chunked-replay skeleton for the fast engines.

Every engine except FIFO (which has a closed-form chunk algorithm)
replays the trace through :meth:`FastEngine.replay` in chunks of
``CHUNK`` requests.  Per chunk:

1. **Classify** membership for the whole chunk with one vectorized
   gather against the engine's id-indexed state (``slot_of[ids]``).
   Positions whose key was resident *before* the chunk are classified
   hits; the rest are *candidates*.
2. **Apply hit effects vectorized.**  Reference-bit/frequency engines
   scatter their hit updates up front (``visited[slots] = 1`` is
   idempotent; frequency bumps are stored uncapped and capped lazily at
   read time, which is exact because saturation only matters at sweep
   decisions).  LRU defers its recency-stamp scatter to the end of the
   chunk instead.
3. **Walk the candidates in order with scalar code**, performing the
   exact reference insert/evict logic.  Candidates can resolve to hits
   (the key was inserted earlier in the same chunk); evictions run the
   real algorithm.
4. **Correct optimism per key as the walk observes it.**  The
   vectorized hit effects assumed every classified hit stays resident
   for the whole chunk.  Whenever a sweep examines a key whose last
   classified hit lies *after* the current walk position (``_hitpos``),
   the engine looks up the key's in-chunk hit positions (a lazily
   built sorted index, O(log) per lookup), subtracts the not-yet-due
   effects, and decides exactly:

   * a **survivor** gets the future effects re-applied and the sweep
     moves on;
   * an **evicted** key's next occurrence -- a classified "hit" that
     the reference would miss -- is *injected* into the candidate
     stream via :meth:`_inject`.  The walk later re-admits the key at
     that position exactly as the reference does (``_deferred`` carries
     the count of hits after the re-admission so their pre-applied
     effect lands on the new slot), and the position is recorded in
     ``_demoted`` so the final hit mask reports it as a miss.

   Hits that already happened before the walk position need no
   correction: their pre-applied effect is order-equivalent to the
   reference timeline.

Every chunk commits -- there is no rollback and no abort path.  A
conflict costs a couple of binary searches, so adversarial traces
(e.g. loops that evict every key before its next access) degrade
smoothly toward scalar-walk speed instead of collapsing.

The hit/miss mask is exact per position, so ``warmup`` is applied by
counting statistics from the warmup index; promotion events carry
their global position and are counted only past warmup, matching the
reference's ``stats.reset()`` semantics.
"""

from __future__ import annotations

import heapq
from bisect import bisect_right
from typing import Iterator, List, Optional, Tuple

import numpy as np

#: ``_hitpos`` fill for first-hit tracking ("no hit" sorts last).
FAR = 1 << 62


class FastEngine:
    """Base class: chunk loop, per-key conflict repair, stats."""

    #: Initial requests per chunk for the optimistic engines.
    CHUNK = 4096
    #: Ceiling for adaptive chunk growth.  Chunks double while the
    #: candidate fraction stays low (vector setup amortizes over more
    #: requests) and halve when misses dominate (bounds wasted
    #: classification work on adversarial traces).
    MAX_CHUNK = 65536
    #: Which classified-hit position ``_hitpos`` records per key:
    #: "last" (sweep conflict test: hit after the walk position) or
    #: "first" (LRU's restamp-or-evict test).
    _TRACK = "last"

    name = "fast"

    def __init__(self, capacity: int, num_unique: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if num_unique < 1:
            raise ValueError(f"num_unique must be >= 1, got {num_unique}")
        self.capacity = int(capacity)
        self.num_unique = int(num_unique)
        self.hits = 0
        self.misses = 0
        self.promotions = 0
        self._hitfill = FAR if self._TRACK == "first" else -1
        self._hitpos = np.full(num_unique, self._hitfill, dtype=np.int64)
        self._chunks = 0
        self._conflicts = 0
        self._last_cand = 0
        self._last_conflict = False
        self._base = 0
        self._warmup = 0
        self._replayed = False
        # Chunk context for conflict handling.
        self._ck_cids: Optional[np.ndarray] = None
        self._ck_aux: Optional[np.ndarray] = None
        self._ck_hidx: Optional[np.ndarray] = None
        self._occ_keys: Optional[np.ndarray] = None   # lazy sorted index
        self._occ_pos: Optional[np.ndarray] = None
        self._occ_cache = {}   # key -> (positions list, lo index)
        self._injected: List[Tuple[int, int]] = []
        self._demoted: List[int] = []
        self._deferred = {}

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def replay(self, ids: np.ndarray, warmup: int = 0) -> np.ndarray:
        """Replay interned *ids*; returns the per-request hit mask.

        ``hits``/``misses``/``promotions`` count requests from index
        *warmup* on, mirroring ``simulate(..., warmup=...)``.  An engine
        instance replays exactly one sequence.
        """
        if self._replayed:
            raise RuntimeError("fast engines are single-use; build a new "
                               "engine per replay")
        self._replayed = True
        ids = np.ascontiguousarray(ids, dtype=np.int64)
        n = ids.size
        if warmup < 0 or warmup > n:
            raise ValueError(f"warmup must be in [0, {n}], got {warmup}")
        self._warmup = warmup
        mask = np.empty(n, dtype=np.bool_)
        chunk = floor = self._chunk_len()
        ceil = max(self._max_chunk(), floor)
        pos = 0
        while pos < n:
            hi = self._begin_chunk(pos, min(pos + chunk, n))
            self._base = pos
            self._last_cand = 0
            self._last_conflict = False
            self._run_chunk(ids[pos:hi], mask[pos:hi])
            clen = hi - pos
            if self._last_conflict:
                # Conflict-repair cost scales with chunk size (the hit
                # index covers the whole chunk); back off first.
                chunk = max(chunk // 2, floor)
            elif self._last_cand * 16 < clen:
                if chunk < ceil:
                    chunk = min(chunk * 2, ceil)
            elif self._last_cand * 4 > clen and chunk > floor:
                chunk = max(chunk // 2, floor)
            pos = hi
        observed = n - warmup
        self.hits = int(np.count_nonzero(mask[warmup:]))
        self.misses = observed - self.hits
        self._finalise()
        return mask

    @property
    def requests(self) -> int:
        """Requests counted (post-warmup)."""
        return self.hits + self.misses

    @property
    def miss_ratio(self) -> float:
        """Fraction of counted requests that missed."""
        total = self.requests
        return self.misses / total if total else 0.0

    # ------------------------------------------------------------------
    # Chunk machinery
    # ------------------------------------------------------------------
    def _begin_chunk(self, pos: int, hi: int) -> int:
        """Pre-chunk hook: may run epoch work due at *pos* (e.g. LHD's
        periodic reconfiguration) and cap *hi* so the chunk stops short
        of the next epoch boundary.  Must return a value in
        ``(pos, hi]``."""
        return hi

    def _chunk_len(self) -> int:
        return self.CHUNK

    def _max_chunk(self) -> int:
        return self.MAX_CHUNK

    def _run_chunk(self, cids: np.ndarray, out: np.ndarray) -> None:
        self._chunks += 1
        known, aux = self._classify(cids)
        cand = np.nonzero(~known)[0]
        self._last_cand = cand.size
        if cand.size == 0:
            # Pure-hit chunk: no evictions can happen, so the
            # vectorized hit effects cannot be violated.
            self._pre_apply(cids, known, aux)
            self._post_apply(cids, known, aux)
            out[:] = True
            return
        hidx = np.nonzero(known)[0]
        # Fancy assignment with duplicate indices keeps the last write,
        # so ascending order records each key's last hit and descending
        # order its first -- both far cheaper than ufunc.at.
        if self._TRACK == "first":
            rev = hidx[::-1]
            self._hitpos[cids[rev]] = rev
        else:
            self._hitpos[cids[hidx]] = hidx
        self._ck_cids = cids
        self._ck_aux = aux
        self._ck_hidx = hidx
        self._occ_keys = None
        self._occ_pos = None
        self._occ_cache.clear()
        self._injected.clear()
        self._demoted.clear()
        self._deferred.clear()
        self._pre_apply(cids, known, aux)
        extra = self._scalar_pass(cand.tolist(), cids[cand].tolist())
        self._post_apply(cids, known, aux)
        out[:] = known
        if extra:
            out[np.asarray(extra, dtype=np.int64)] = True
        if self._demoted:
            out[np.asarray(self._demoted, dtype=np.int64)] = False
        self._hitpos[cids] = self._hitfill

    def _stream(self, positions: List[int],
                keys: List[int]) -> Iterator[Tuple[int, int]]:
        """The candidate walk order: originals merged with injections.

        Injected positions always lie ahead of the walk, so a plain
        two-way merge between the original list and the injection heap
        yields every candidate in strictly increasing position order.
        """
        inj = self._injected
        i = 0
        n = len(positions)
        while True:
            if inj and (i >= n or inj[0][0] < positions[i]):
                yield heapq.heappop(inj)
            elif i < n:
                yield positions[i], keys[i]
                i += 1
            else:
                return

    # ------------------------------------------------------------------
    # Conflict helpers (all O(log chunk) per call)
    # ------------------------------------------------------------------
    def _occ_index(self):
        """Sorted (key, position) view of the chunk's classified hits.

        Built by packing each (key, position) pair into one ``uint64``
        and sorting that -- positions fit in 17 bits (``MAX_CHUNK`` is
        ``2**16``), so a plain single-array sort gives exactly the
        stable key-major / position-minor order an ``argsort`` over the
        keys would, at a fraction of the cost."""
        if self._occ_keys is None:
            self._conflicts += 1
            self._last_conflict = True
            hidx = self._ck_hidx
            shift = np.uint64(17)
            packed = (self._ck_cids[hidx].astype(np.uint64) << shift) \
                | hidx.astype(np.uint64)
            packed.sort()
            self._occ_keys = (packed >> shift).astype(np.int64)
            self._occ_pos = (packed & np.uint64(0x1FFFF)).astype(np.int64)
        return self._occ_keys, self._occ_pos

    def _hit_ordinal(self, position: int) -> int:
        """Index of chunk-hit *position* within the chunk's ascending
        hit list (``_ck_hidx``) -- recovers what an argsort permutation
        of the occ index would have recorded there."""
        return int(self._ck_hidx.searchsorted(position))

    def _occ_list(self, key: int) -> Tuple[List[int], int]:
        """*key*'s sorted chunk hit positions as a plain list, plus its
        start index ``lo`` in the sorted chunk-wide index.  Cached per
        key per chunk: conflicted keys (hot keys under the hand, the
        LRU boundary) tend to be examined repeatedly, and ``bisect`` on
        a list is an order of magnitude cheaper than array searches."""
        hit = self._occ_cache.get(key)
        if hit is None:
            occ_keys, occ_pos = self._occ_index()
            lo = int(occ_keys.searchsorted(key, side="left"))
            hi = int(occ_keys.searchsorted(key, side="right"))
            hit = (occ_pos[lo:hi].tolist(), lo)
            self._occ_cache[key] = hit
        return hit

    def _future_count(self, key: int, position: int) -> int:
        """How many of *key*'s pre-applied chunk hits lie strictly
        after *position* (not yet due at the walk's current point)."""
        occ, _lo = self._occ_list(int(key))
        return len(occ) - bisect_right(occ, position)

    def _inject(self, key: int, position: int) -> int:
        """Demote *key*'s classified hits after *position*.

        The first such occurrence becomes an injected candidate (the
        reference misses there and re-admits the key); the count of
        occurrences after it is remembered in ``_deferred`` so the
        engine re-applies their pre-computed effect to the key's new
        slot on re-admission.  Returns the number of demoted-to-future
        occurrences (0 if the key never recurs)."""
        key = int(key)
        occ, _lo = self._occ_list(key)
        i = bisect_right(occ, position)
        if i == len(occ):
            return 0
        heapq.heappush(self._injected, (occ[i], key))
        self._demoted.append(occ[i])
        rest = len(occ) - i - 1
        if rest:
            self._deferred[key] = rest
        else:
            self._deferred.pop(key, None)
        return len(occ) - i

    def _count_promotion(self, position: int) -> None:
        """Count one promotion at chunk-relative *position* (warmup-aware)."""
        if self._base + position >= self._warmup:
            self.promotions += 1

    def _finalise(self) -> None:
        """End-of-replay hook (e.g. LRU derives promotions from hits)."""

    # ------------------------------------------------------------------
    # Engine hooks
    # ------------------------------------------------------------------
    def _classify(self, cids: np.ndarray):
        """Vectorized membership: (known bool array, engine aux data)."""
        raise NotImplementedError

    def _pre_apply(self, cids, known, aux) -> None:
        """Vectorized hit effects applied before the candidate walk."""

    def _post_apply(self, cids, known, aux) -> None:
        """Vectorized hit effects deferred until the walk finished."""

    def _scalar_pass(self, positions: List[int],
                     keys: List[int]) -> List[int]:
        """Resolve the chunk's candidates in order with exact scalar
        logic, iterating ``self._stream(positions, keys)``.  Returns
        chunk-relative positions of candidates that resolved to hits."""
        raise NotImplementedError

    def contents(self) -> set:
        """Resident interned ids (for differential final-state tests)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<{type(self).__name__} name={self.name!r} "
                f"capacity={self.capacity} chunks={self._chunks} "
                f"conflicts={self._conflicts}>")


__all__ = ["FAR", "FastEngine"]
