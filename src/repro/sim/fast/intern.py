"""Trace interning: arbitrary int64 keys -> dense ids ``0..U-1``.

Dense ids let every engine replace its per-key dict with a preallocated
array indexed by id -- the single change that makes vectorized
membership tests (``slot_of[ids] >= 0``) possible.  Interning costs one
``np.unique`` pass; the result is cached on the :class:`Trace` so a
sweep over many (policy, size) cells pays it once per trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional, Sequence, Union

import numpy as np

from repro.traces.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.fast.interncache import InternCache


@dataclass(frozen=True)
class InternedTrace:
    """A request sequence as dense ids plus the id -> key mapping."""

    ids: np.ndarray       # int64, values in [0, num_unique)
    num_unique: int
    uniques: np.ndarray   # uniques[id] == original key

    @property
    def num_requests(self) -> int:
        """Number of requests in the interned sequence."""
        return int(self.ids.size)

    def keys_for(self, ids: Iterable[int]) -> list:
        """Map interned ids back to original keys."""
        return [int(self.uniques[i]) for i in ids]


def intern_trace(
    trace: Union[Trace, Sequence[int], np.ndarray],
    cache: Optional["InternCache"] = None,
) -> InternedTrace:
    """Intern *trace*, caching the result on :class:`Trace` instances.

    With *cache* (an :class:`~repro.sim.fast.interncache.InternCache`)
    the on-disk store is consulted before interning and populated
    after: the in-memory :class:`Trace` cache still wins (no disk
    touch on a warm instance), the disk cache then serves any process
    that has seen the same key sequence before, and only a cold trace
    pays the ``np.unique`` pass.
    """
    if isinstance(trace, Trace):
        cached = trace._interned
        if cached is not None:
            return cached
        keys = trace.keys
    else:
        keys = np.asarray(
            trace if isinstance(trace, np.ndarray) else list(trace),
            dtype=np.int64)
        if keys.ndim != 1:
            raise ValueError("trace keys must be a 1-D sequence")
    interned = cache.load(keys) if cache is not None else None
    if interned is None:
        uniques, inverse = np.unique(keys, return_inverse=True)
        interned = InternedTrace(
            ids=np.ascontiguousarray(inverse, dtype=np.int64),
            num_unique=int(uniques.size),
            uniques=uniques,
        )
        if cache is not None:
            cache.store(keys, interned)
    if isinstance(trace, Trace):
        trace._interned = interned
    return interned


__all__ = ["InternedTrace", "intern_trace"]
