"""Exact chunked FIFO -- no optimism needed.

FIFO admits on every miss and never reorders, so residency has a
closed form: key *k* is cached iff its last insertion rank is within
the most recent ``capacity`` insertions.  With per-key insertion ranks
(``entry``) and the global insertion counter *S*, a request hits iff

    entry[k] - (S - capacity) >= m

where *m* is the number of misses earlier in the chunk (each miss
pushes one insertion, demoting everything by one).  Keeping the chunk
no longer than ``capacity`` guarantees a key can miss at most once per
chunk (a key inserted this chunk cannot also be evicted this chunk),
so candidates resolve with one pass: previously-missed keys hit, keys
whose pre-chunk slack covers the running miss count hit, the rest miss
in order.  Guaranteed hits (slack >= chunk length) never enter the
scalar walk at all.
"""

from __future__ import annotations

import numpy as np

from repro.sim.fast.base import FastEngine

_NEVER = -(1 << 62)


class FastFIFO(FastEngine):
    """Vectorized FIFO via insertion-rank arithmetic."""

    name = "FIFO"

    def __init__(self, capacity: int, num_unique: int) -> None:
        super().__init__(capacity, num_unique)
        self._entry = np.full(num_unique, _NEVER, dtype=np.int64)
        self._inserted = 0

    def _chunk_len(self) -> int:
        # Correctness requires chunk length <= capacity (single miss
        # per key per chunk).
        return min(self.CHUNK, self.capacity)

    def _max_chunk(self) -> int:
        return min(self.MAX_CHUNK, self.capacity)

    def _run_chunk(self, cids: np.ndarray, out: np.ndarray) -> None:
        self._chunks += 1
        entry = self._entry
        slack = entry[cids]
        slack -= self._inserted - self.capacity
        out[:] = True
        maybe = slack < cids.size
        if not maybe.any():
            return
        # Tighten the guaranteed-hit bound: position i can only miss
        # if its slack is below the number of *possible* misses before
        # it, so iterating "possible-miss prefix count" against slack
        # sheds hits that the worst-case bound (chunk length) kept.
        for _ in range(3):
            before = np.cumsum(maybe)
            before -= maybe                       # exclusive prefix
            refined = maybe & (slack < before)
            if int(refined.sum()) == int(maybe.sum()):
                break
            maybe = refined
        cand = np.nonzero(maybe)[0]
        self._last_cand = cand.size
        if cand.size == 0:
            return
        positions = cand.tolist()
        keys = cids[cand].tolist()
        slacks = slack[cand].tolist()
        misses = 0
        resolved = set()
        miss_pos = []
        miss_keys = []
        for p, k, s in zip(positions, keys, slacks):
            if s >= misses or k in resolved:
                continue
            resolved.add(k)
            miss_pos.append(p)
            miss_keys.append(k)
            misses += 1
        if misses:
            out[np.asarray(miss_pos, dtype=np.int64)] = False
            entry[np.asarray(miss_keys, dtype=np.int64)] = \
                self._inserted + np.arange(misses, dtype=np.int64)
            self._inserted += misses

    def contents(self) -> set:
        resident = np.nonzero(
            self._entry >= self._inserted - self.capacity)[0]
        return set(resident.tolist())


__all__ = ["FastFIFO"]
