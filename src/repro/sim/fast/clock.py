"""Fast CLOCK: FIFO-Reinsertion (1 bit) and k-bit CLOCK on a ring.

The reference implementations rotate a linked list (pop tail, reinsert
at head).  On a fixed circular buffer that rotation is the identity:
the queue order is the ring order starting at the hand, a "reinsertion"
is just the hand advancing, and an eviction reuses the victim's slot
for the new head.  Both views visit objects in exactly the same order,
so hit/miss sequences are bit-identical.

Hits only bump a per-slot frequency counter, which vectorizes as one
``np.add.at`` per chunk.  Frequencies are stored uncapped; every read
caps with ``min(freq, max_freq)``, which is exact because the
saturating cap only matters when the hand examines a slot.  When the
hand reaches a key with pre-applied hits that lie *after* the walk
position, the not-yet-due increments are subtracted for the decision
(a binary search over the chunk's hit index) and re-added if the key
survives; an evicted key's later hits are demoted via ``_inject``.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.sim.fast.base import FastEngine


class FastClock(FastEngine):
    """Ring-buffer CLOCK with a *bits*-wide saturating counter."""

    def __init__(self, capacity: int, num_unique: int,
                 bits: int = 1) -> None:
        super().__init__(capacity, num_unique)
        if bits < 1:
            raise ValueError(f"bits must be >= 1, got {bits}")
        self.bits = bits
        self.max_freq = (1 << bits) - 1
        self.name = ("FIFO-Reinsertion" if bits == 1
                     else f"{bits}-bit-CLOCK")
        self._slot_of = np.full(num_unique, -1, dtype=np.int64)
        self._keys = np.empty(capacity, dtype=np.int64)
        self._freq = np.zeros(capacity, dtype=np.int64)
        self._hand = 0
        self._size = 0

    # ------------------------------------------------------------------
    def _classify(self, cids):
        slots = self._slot_of[cids]
        return slots >= 0, slots

    def _pre_apply(self, cids, known, aux) -> None:
        self._freq += np.bincount(aux[known], minlength=self.capacity)

    def _scalar_pass(self, positions: List[int],
                     keys: List[int]) -> List[int]:
        slot_of = self._slot_of
        skeys = self._keys
        freq = self._freq
        hitpos = self._hitpos
        capacity = self.capacity
        max_freq = self.max_freq
        hand = self._hand
        size = self._size
        deferred = self._deferred
        warm = self._warmup - self._base
        promotions = 0
        extra = []
        for p, k in self._stream(positions, keys):
            s = slot_of.item(k)
            if s >= 0:
                freq[s] += 1
                extra.append(p)
                continue
            if size < capacity:
                s = size
                size += 1
            else:
                while True:
                    victim = skeys.item(hand)
                    fut = (self._future_count(victim, p)
                           if hitpos.item(victim) > p else 0)
                    f = freq.item(hand) - fut
                    if f > 0:
                        freq[hand] = ((f if f <= max_freq else max_freq)
                                      - 1 + fut)
                        if p >= warm:
                            promotions += 1
                        hand += 1
                        if hand == capacity:
                            hand = 0
                    else:
                        slot_of[victim] = -1
                        if fut:
                            self._inject(victim, p)
                        break
                s = hand
                hand += 1
                if hand == capacity:
                    hand = 0
            skeys[s] = k
            freq[s] = 0
            slot_of[k] = s
            if deferred:
                rest = deferred.pop(k, 0)
                if rest:
                    freq[s] = rest
        self._hand = hand
        self._size = size
        self.promotions += promotions
        return extra

    def contents(self) -> set:
        return set(np.nonzero(self._slot_of >= 0)[0].tolist())


__all__ = ["FastClock"]
