"""Fast QD-LP-FIFO: probation ring + lazy ghost + k-bit CLOCK main.

Mirrors :class:`repro.core.qd.QDCache` with a :class:`KBitClock` main
cache (the ``QD-LP-FIFO`` configuration).  The probationary FIFO is a
circular buffer (a key's physical slot never changes while resident),
the main cache is the same ring-with-hand used by
:class:`~repro.sim.fast.clock.FastClock`, and ``slot_of`` encodes
residency as ``[0, pcap)`` for probation and ``pcap + slot`` for main.
Probation hits set a visited bit (idempotent scatter); main hits bump
the uncapped frequency (one ``np.add.at``); demotion, graduation and
main-clock sweeps run scalar on the candidate walk, correcting each
examined key for hits that lie after the walk position (binary search
over the chunk's hit index).  Evicted keys with later in-chunk hits
are demoted via ``_inject``; on re-admission the pending hits land on
the key's new slot (``pvis`` bit or ``mfreq`` count).  A key that
*graduates* keeps pending main-frequency credit for its remaining
probation-scattered hits, since those increments never reached the
main counter.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import List

import numpy as np

from repro.sim.fast.base import FastEngine
from repro.sim.fast.ghost import FastGhost


class FastQDLP(FastEngine):
    """Array-backed QD wrapper over a k-bit CLOCK main cache."""

    name = "QD-LP-FIFO"

    def __init__(self, capacity: int, num_unique: int,
                 probation_capacity: int, main_capacity: int,
                 ghost_entries: int, bits: int = 2) -> None:
        super().__init__(capacity, num_unique)
        if probation_capacity + main_capacity != capacity:
            raise ValueError("probation + main must equal total capacity")
        self.probation_capacity = int(probation_capacity)
        self.main_capacity = int(main_capacity)
        self.bits = bits
        self.max_freq = (1 << bits) - 1
        self.ghost = FastGhost(ghost_entries)
        self._slot_of = np.full(num_unique, -1, dtype=np.int64)
        pcap, mcap = self.probation_capacity, self.main_capacity
        self._pkeys = np.empty(pcap, dtype=np.int64)
        self._pvis = np.zeros(pcap, dtype=np.uint8)
        self._php = 0    # ring head: next insert position
        self._pn = 0
        self._mkeys = np.empty(mcap, dtype=np.int64)
        self._mfreq = np.zeros(mcap, dtype=np.int64)
        self._mhand = 0
        self._mn = 0
        self._visbefore = None
        self._cleared = {}   # probation slot -> admission position

    # ------------------------------------------------------------------
    def _classify(self, cids):
        slots = self._slot_of[cids]
        return slots >= 0, slots

    def _pre_apply(self, cids, known, aux) -> None:
        slots = aux[known]
        in_probation = slots < self.probation_capacity
        pslots = slots[in_probation]
        visbefore = np.zeros(slots.size, dtype=np.uint8)
        visbefore[in_probation] = self._pvis[pslots]
        self._visbefore = visbefore
        self._pvis[pslots] = 1
        self._mfreq += np.bincount(
            slots[~in_probation] - self.probation_capacity,
            minlength=self.main_capacity)
        self._cleared.clear()

    # ------------------------------------------------------------------
    # Reference algorithm bodies
    # ------------------------------------------------------------------
    def _main_insert(self, k: int, position: int) -> None:
        """``main.request`` on a key known to miss: sweep + insert."""
        mkeys, mfreq, hitpos = self._mkeys, self._mfreq, self._hitpos
        mcap = self.main_capacity
        max_freq = self.max_freq
        pcap = self.probation_capacity
        if self._mn >= mcap:
            hand = self._mhand
            while True:
                victim = mkeys.item(hand)
                fut = (self._future_count(victim, position)
                       if hitpos.item(victim) > position else 0)
                f = mfreq.item(hand) - fut
                if f > 0:
                    mfreq[hand] = ((f if f <= max_freq else max_freq)
                                   - 1 + fut)
                    self._count_promotion(position)
                    hand += 1
                    if hand == mcap:
                        hand = 0
                else:
                    self._slot_of[victim] = -1
                    if fut:
                        self._inject(victim, position)
                    break
            slot = hand
            hand += 1
            self._mhand = 0 if hand == mcap else hand
        else:
            slot = self._mn
            self._mn += 1
        mkeys[slot] = k
        mfreq[slot] = 0
        self._slot_of[k] = pcap + slot

    def _demote_one(self, position: int) -> None:
        """Pop the probation tail: graduate if visited, else ghost."""
        pcap = self.probation_capacity
        tail = (self._php - self._pn) % pcap
        victim = self._pkeys.item(tail)
        if self._hitpos.item(victim) > position:
            occ, _lo = self._occ_list(victim)
            done = bisect_right(occ, position)
            fut = len(occ) - done
            c = self._cleared.get(tail)
            if c is None:
                v = done > 0 or bool(
                    self._visbefore[self._hit_ordinal(occ[0])])
            else:
                v = done > bisect_right(occ, c, 0, done)
        else:
            fut = 0
            v = bool(self._pvis.item(tail))
        self._pn -= 1
        if v:
            self._main_insert(victim, position)
            self._count_promotion(position)
            if fut:
                self._mfreq[self._slot_of.item(victim) - pcap] += fut
        else:
            self.ghost.add(victim)
            self._slot_of[victim] = -1
            if fut:
                self._inject(victim, position)

    def _admit(self, k: int, position: int) -> None:
        if self.ghost.remove(k):
            self._main_insert(k, position)
            return
        if self._pn >= self.probation_capacity:
            self._demote_one(position)
        slot = self._php
        self._pkeys[slot] = k
        self._pvis[slot] = 0
        self._slot_of[k] = slot
        self._php = (slot + 1) % self.probation_capacity
        self._pn += 1
        self._cleared[slot] = position

    # ------------------------------------------------------------------
    def _scalar_pass(self, positions: List[int],
                     keys: List[int]) -> List[int]:
        slot_of = self._slot_of
        pvis = self._pvis
        mfreq = self._mfreq
        pcap = self.probation_capacity
        deferred = self._deferred
        extra = []
        for p, k in self._stream(positions, keys):
            s = slot_of.item(k)
            if s >= 0:
                if s < pcap:
                    pvis[s] = 1
                else:
                    mfreq[s - pcap] += 1
                extra.append(p)
                continue
            self._admit(k, p)
            if deferred:
                rest = deferred.pop(k, 0)
                if rest:
                    s = slot_of.item(k)
                    if s < pcap:
                        pvis[s] = 1
                    else:
                        mfreq[s - pcap] += rest
        return extra

    def contents(self) -> set:
        return set(np.nonzero(self._slot_of >= 0)[0].tolist())


__all__ = ["FastQDLP"]
