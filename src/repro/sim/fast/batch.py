"""BatchRunner: one interned trace, many (policy, size) cells.

The sweep shape every experiment needs -- ``run_sweep``,
``simulated_mrc``, the size sweep -- replays the *same* trace through
many policy/capacity combinations.  The reference path re-materialised
the request list per cell; here the trace is interned once (cached on
the :class:`Trace`) and each cell is one :meth:`run` call that builds
the policy's fast engine and replays the shared id array.  Cells whose
policy has no fast engine return ``None`` so callers can fall back to
the reference simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional, Sequence, Union

import numpy as np

from repro.core.base import EvictionPolicy
from repro.policies.registry import REGISTRY
from repro.sim.fast.dispatch import engine_for, has_fast_engine
from repro.sim.fast.intern import InternedTrace, intern_trace
from repro.traces.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.fast.interncache import InternCache

TraceLike = Union[Trace, Sequence[int], np.ndarray]


@dataclass(frozen=True)
class BatchOutcome:
    """One fast cell's result."""

    policy: str
    capacity: int
    requests: int
    hits: int
    misses: int
    promotions: int

    @property
    def miss_ratio(self) -> float:
        """Fraction of counted requests that missed."""
        return self.misses / self.requests if self.requests else 0.0

    @property
    def hit_ratio(self) -> float:
        """Fraction of counted requests that hit."""
        return self.hits / self.requests if self.requests else 0.0


class BatchRunner:
    """Replay a shared interned trace through many simulation cells.

    *intern_cache*, if given, is an
    :class:`~repro.sim.fast.interncache.InternCache` consulted before
    interning a cold trace and populated after -- it lets separate
    processes (parallel sweep workers, repeated CLI runs) share the
    interning work through ``runs/intern-cache/``.
    """

    def __init__(self, intern_cache: Optional["InternCache"] = None) -> None:
        self._interned: Optional[InternedTrace] = None
        self._source: Optional[int] = None
        self._cache = intern_cache

    def _ids_for(self, trace: TraceLike) -> InternedTrace:
        if isinstance(trace, Trace):
            return intern_trace(trace, cache=self._cache)
        if self._interned is not None and self._source == id(trace):
            return self._interned
        interned = intern_trace(trace, cache=self._cache)
        self._interned = interned
        self._source = id(trace)
        return interned

    def run(self, policy_name: str, trace: TraceLike, capacity: int,
            warmup: int = 0,
            mask_sink: Optional[Callable[[np.ndarray], None]] = None,
            ) -> Optional[BatchOutcome]:
        """Run one (policy, capacity) cell over *trace*.

        Returns ``None`` when *policy_name* has no fast engine; the
        caller decides whether to fall back to the reference simulator.
        *mask_sink*, if given, receives the engine's per-request hit
        mask (``run_sweep`` feeds it to a
        :class:`~repro.obs.timeseries.TimeSeriesRecorder` to derive
        windowed curves without touching the replay loop).
        """
        if not has_fast_engine(policy_name):
            return None
        spec = REGISTRY[policy_name]
        policy = spec.factory(capacity)
        return self.run_policy(policy, trace, warmup=warmup,
                               mask_sink=mask_sink)

    def run_policy(self, policy: EvictionPolicy, trace: TraceLike,
                   warmup: int = 0,
                   mask_sink: Optional[Callable[[np.ndarray], None]] = None,
                   ) -> Optional[BatchOutcome]:
        """Run one cell for an already-built reference policy instance."""
        interned = self._ids_for(trace)
        engine = engine_for(policy, interned.num_unique)
        if engine is None:
            return None
        mask = engine.replay(interned.ids, warmup=warmup)
        if mask_sink is not None:
            mask_sink(mask)
        return BatchOutcome(
            policy=engine.name,
            capacity=policy.capacity,
            requests=engine.requests,
            hits=engine.hits,
            misses=engine.misses,
            promotions=engine.promotions,
        )


__all__ = ["BatchOutcome", "BatchRunner"]
