"""Fast SIEVE: visited bits vectorized, hand sweeps scalar.

SIEVE survivors keep their queue position (no reinsertion), so the
queue is kept as an explicit doubly-linked list over preallocated slot
arrays (``prv`` toward the head / newest, ``nxt`` toward the tail /
oldest), exactly mirroring the reference ``KeyedList`` topology.  Hits
only set a visited bit -- idempotent, so one boolean scatter per chunk
covers every classified hit regardless of multiplicity.

The scatter assumes every hit already happened, so when the hand
examines a key whose last hit lies after the walk position the bit is
recomputed exactly from the chunk's hit index: the reference bit at
position *p* is "set since the last time it was cleared".  ``_cleared``
remembers, per slot, the chunk position of the most recent clear
(sweep pass or fresh insertion); before that the baseline is the
gathered before-chunk bit kept by ``_pre_apply``.  A surviving key's
bit is left as "will it be set by the remaining hits" (the pre-applied
convention); an evicted key's later hits are demoted via ``_inject``.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import List

import numpy as np

from repro.sim.fast.base import FastEngine


class FastSieve(FastEngine):
    """Array-backed SIEVE."""

    name = "SIEVE"

    def __init__(self, capacity: int, num_unique: int) -> None:
        super().__init__(capacity, num_unique)
        self._slot_of = np.full(num_unique, -1, dtype=np.int64)
        self._keys = np.empty(capacity, dtype=np.int64)
        self._vis = np.zeros(capacity, dtype=np.uint8)
        self._prv = np.empty(capacity, dtype=np.int64)
        self._nxt = np.empty(capacity, dtype=np.int64)
        self._visbefore = None
        self._cleared = {}
        self._head = -1
        self._tail = -1
        self._hand = -1
        self._size = 0

    # ------------------------------------------------------------------
    def _classify(self, cids):
        slots = self._slot_of[cids]
        return slots >= 0, slots

    def _pre_apply(self, cids, known, aux) -> None:
        slots = aux[known]
        self._visbefore = self._vis[slots]      # gather copies
        self._vis[slots] = 1
        self._cleared.clear()

    def _bit_at(self, slot: int, occ: List[int], done: int,
                position: int) -> bool:
        """Reference visited bit at *position* for a conflicted key:
        *occ* is its chunk hit-position list, *done* the count of
        hits <= p."""
        c = self._cleared.get(slot)
        if c is None:
            return done > 0 or bool(self._visbefore[self._hit_ordinal(occ[0])])
        if c >= position:
            return False
        return done > bisect_right(occ, c, 0, done)

    # ------------------------------------------------------------------
    def _insert_resolve(self, k: int, position: int) -> None:
        """Reference request-miss body: evict if full, push at head."""
        slot_of = self._slot_of
        skeys = self._keys
        vis = self._vis
        prv = self._prv
        nxt = self._nxt
        cleared = self._cleared
        if self._size >= self.capacity:
            node = self._hand if self._hand >= 0 else self._tail
            hitpos = self._hitpos
            while True:
                victim = skeys.item(node)
                if hitpos.item(victim) > position:
                    occ, _lo = self._occ_list(victim)
                    done = bisect_right(occ, position)
                    fut = len(occ) - done
                    v = self._bit_at(node, occ, done, position)
                else:
                    fut = 0
                    v = bool(vis.item(node))
                if v:
                    # Cleared now; leave the pre-applied "will be set
                    # by the remaining hits" value behind.
                    vis[node] = 1 if fut else 0
                    cleared[node] = position
                    p = prv.item(node)
                    node = p if p >= 0 else self._tail
                else:
                    if fut:
                        self._inject(victim, position)
                    break
            # The hand rests on the victim's predecessor; unlink the
            # victim and reuse its slot for the new head.
            p = prv.item(node)
            x = nxt.item(node)
            self._hand = p
            if p >= 0:
                nxt[p] = x
            else:
                self._head = x
            if x >= 0:
                prv[x] = p
            else:
                self._tail = p
            slot_of[victim] = -1
            s = node
        else:
            s = self._size
            self._size += 1
        skeys[s] = k
        vis[s] = 0
        cleared[s] = position
        prv[s] = -1
        nxt[s] = self._head
        if self._head >= 0:
            prv[self._head] = s
        self._head = s
        if self._tail < 0:
            self._tail = s
        slot_of[k] = s

    def _scalar_pass(self, positions: List[int],
                     keys: List[int]) -> List[int]:
        slot_of = self._slot_of
        vis = self._vis
        deferred = self._deferred
        extra = []
        for p, k in self._stream(positions, keys):
            s = slot_of.item(k)
            if s >= 0:
                vis[s] = 1
                extra.append(p)
                continue
            self._insert_resolve(k, p)
            if deferred and deferred.pop(k, 0):
                vis[slot_of.item(k)] = 1
        return extra

    def contents(self) -> set:
        return set(np.nonzero(self._slot_of >= 0)[0].tolist())


__all__ = ["FastSieve"]
