"""Trace-driven cache simulation.

The simulator replays a request sequence through an
:class:`~repro.core.base.EvictionPolicy` and reports hit/miss counts.
Offline policies (Belady) are transparently supplied with the full
trace via :meth:`~repro.core.base.OfflinePolicy.prepare` before replay.

``fast=True`` routes the replay through the vectorized engines in
:mod:`repro.sim.fast` when the policy has one (bit-identical hit/miss
sequences, order-of-magnitude faster) and falls back to the reference
request loop otherwise -- offline policies, attached listeners, or a
policy with prior state always take the reference path.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import islice
from typing import Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.core.base import CacheListener, EvictionPolicy, OfflinePolicy
from repro.traces.trace import Trace


@dataclass(frozen=True)
class SimResult:
    """Outcome of one simulation run."""

    policy: str
    requests: int
    hits: int
    misses: int

    @property
    def miss_ratio(self) -> float:
        """Fraction of requests that missed."""
        if self.requests == 0:
            return 0.0
        return self.misses / self.requests

    @property
    def hit_ratio(self) -> float:
        """Fraction of requests that hit."""
        if self.requests == 0:
            return 0.0
        return self.hits / self.requests


def _materialise(trace: Union[Trace, Sequence, Iterable, np.ndarray]) -> List:
    """Normalise any accepted trace representation to a list of keys."""
    if isinstance(trace, Trace):
        return trace.as_list()
    if isinstance(trace, np.ndarray):
        return trace.tolist()
    if isinstance(trace, list):
        return trace
    return list(trace)


def _simulate_fast(policy: EvictionPolicy, trace, warmup: int,
                   ) -> Optional[SimResult]:
    """One cell through the vectorized engines; ``None`` on fallback."""
    from repro.sim.fast.dispatch import engine_for
    from repro.sim.fast.intern import intern_trace

    interned = intern_trace(trace)
    engine = engine_for(policy, interned.num_unique)
    if engine is None:
        return None
    engine.replay(interned.ids, warmup=warmup)
    return SimResult(
        policy=policy.name,
        requests=engine.requests,
        hits=engine.hits,
        misses=engine.misses,
    )


def simulate(
    policy: EvictionPolicy,
    trace: Union[Trace, Sequence, Iterable, np.ndarray],
    warmup: int = 0,
    listeners: Optional[List[CacheListener]] = None,
    fast: bool = False,
) -> SimResult:
    """Replay *trace* through *policy* and return the hit/miss outcome.

    ``warmup`` requests are replayed first and excluded from the
    reported statistics (the cache state they build is kept).
    Listeners, if given, are attached for the duration of the run and
    observe *all* requests including warmup.

    ``fast=True`` dispatches to the policy's vectorized engine when one
    exists (the result is bit-identical); unsupported policies, offline
    policies, listeners, or prior policy state silently fall back to
    the reference loop.  The fast path leaves *policy* untouched -- use
    the reference path when the final cache contents matter.
    """
    if warmup < 0:
        raise ValueError(f"warmup must be >= 0, got {warmup}")

    # One-shot iterables stay on the reference path: a failed dispatch
    # must leave the trace unconsumed for the fallback below.
    if (fast and not listeners
            and not isinstance(policy, OfflinePolicy)
            and isinstance(trace, (Trace, list, tuple, np.ndarray))):
        result = _simulate_fast(policy, trace, warmup)
        if result is not None:
            return result

    keys = _materialise(trace)
    if warmup > len(keys):
        raise ValueError(
            f"warmup ({warmup}) exceeds trace length ({len(keys)})")

    if isinstance(policy, OfflinePolicy):
        policy.prepare(keys)

    attached = listeners or []
    for listener in attached:
        policy.add_listener(listener)
    try:
        request = policy.request  # bind once: this loop dominates runtime
        it = iter(keys)
        for key in islice(it, warmup):
            request(key)
        policy.stats.reset()
        for key in it:
            request(key)
    finally:
        for listener in attached:
            policy.remove_listener(listener)

    stats = policy.stats
    return SimResult(
        policy=policy.name,
        requests=stats.requests,
        hits=stats.hits,
        misses=stats.misses,
    )


def miss_ratio(policy: EvictionPolicy, trace) -> float:
    """Convenience: simulate and return just the miss ratio."""
    return simulate(policy, trace).miss_ratio


__all__ = ["SimResult", "simulate", "miss_ratio"]
