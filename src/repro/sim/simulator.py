"""Trace-driven cache simulation.

The simulator replays a request sequence through an
:class:`~repro.core.base.EvictionPolicy` and reports hit/miss counts.
Offline policies (Belady) are transparently supplied with the full
trace via :meth:`~repro.core.base.OfflinePolicy.prepare` before replay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.core.base import CacheListener, EvictionPolicy, OfflinePolicy
from repro.traces.trace import Trace


@dataclass(frozen=True)
class SimResult:
    """Outcome of one simulation run."""

    policy: str
    requests: int
    hits: int
    misses: int

    @property
    def miss_ratio(self) -> float:
        """Fraction of requests that missed."""
        if self.requests == 0:
            return 0.0
        return self.misses / self.requests

    @property
    def hit_ratio(self) -> float:
        """Fraction of requests that hit."""
        if self.requests == 0:
            return 0.0
        return self.hits / self.requests


def _materialise(trace: Union[Trace, Sequence, Iterable, np.ndarray]) -> List:
    """Normalise any accepted trace representation to a list of keys."""
    if isinstance(trace, Trace):
        return trace.as_list()
    if isinstance(trace, np.ndarray):
        return trace.tolist()
    if isinstance(trace, list):
        return trace
    return list(trace)


def simulate(
    policy: EvictionPolicy,
    trace: Union[Trace, Sequence, Iterable, np.ndarray],
    warmup: int = 0,
    listeners: Optional[List[CacheListener]] = None,
) -> SimResult:
    """Replay *trace* through *policy* and return the hit/miss outcome.

    ``warmup`` requests are replayed first and excluded from the
    reported statistics (the cache state they build is kept).
    Listeners, if given, are attached for the duration of the run and
    observe *all* requests including warmup.
    """
    keys = _materialise(trace)
    if warmup < 0:
        raise ValueError(f"warmup must be >= 0, got {warmup}")
    if warmup > len(keys):
        raise ValueError(
            f"warmup ({warmup}) exceeds trace length ({len(keys)})")

    if isinstance(policy, OfflinePolicy):
        policy.prepare(keys)

    attached = listeners or []
    for listener in attached:
        policy.add_listener(listener)
    try:
        request = policy.request  # bind once: this loop dominates runtime
        for key in keys[:warmup]:
            request(key)
        policy.stats.reset()
        for key in keys[warmup:]:
            request(key)
    finally:
        for listener in attached:
            policy.remove_listener(listener)

    stats = policy.stats
    return SimResult(
        policy=policy.name,
        requests=stats.requests,
        hits=stats.hits,
        misses=stats.misses,
    )


def miss_ratio(policy: EvictionPolicy, trace) -> float:
    """Convenience: simulate and return just the miss ratio."""
    return simulate(policy, trace).miss_ratio


__all__ = ["SimResult", "simulate", "miss_ratio"]
