"""Trace-driven cache simulation.

The simulator replays a request sequence through an
:class:`~repro.core.base.EvictionPolicy` and reports hit/miss counts.
Offline policies (Belady) are transparently supplied with the full
trace via :meth:`~repro.core.base.OfflinePolicy.prepare` before replay.

``fast=True`` routes the replay through the vectorized engines in
:mod:`repro.sim.fast` when the policy has one (bit-identical hit/miss
sequences, order-of-magnitude faster) and falls back to the reference
request loop otherwise -- offline policies, attached listeners, or a
policy with prior state always take the reference path.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import islice
from typing import Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.core.base import CacheListener, EvictionPolicy, OfflinePolicy
from repro.sim.options import (
    SimOptions,
    reject_mixed_options,
    warn_deprecated_kwarg,
)
from repro.traces.trace import Trace


@dataclass(frozen=True)
class SimResult:
    """Outcome of one simulation run."""

    policy: str
    requests: int
    hits: int
    misses: int

    @property
    def miss_ratio(self) -> float:
        """Fraction of requests that missed."""
        if self.requests == 0:
            return 0.0
        return self.misses / self.requests

    @property
    def hit_ratio(self) -> float:
        """Fraction of requests that hit."""
        if self.requests == 0:
            return 0.0
        return self.hits / self.requests


def _materialise(trace: Union[Trace, Sequence, Iterable, np.ndarray]) -> List:
    """Normalise any accepted trace representation to a list of keys."""
    if isinstance(trace, Trace):
        return trace.as_list()
    if isinstance(trace, np.ndarray):
        return trace.tolist()
    if isinstance(trace, list):
        return trace
    return list(trace)


def _simulate_fast(policy: EvictionPolicy, trace, warmup: int,
                   timeseries=None, intern_cache=None) -> Optional[SimResult]:
    """One cell through the vectorized engines; ``None`` on fallback."""
    from repro.sim.fast.dispatch import engine_for
    from repro.sim.fast.intern import intern_trace

    interned = intern_trace(trace, cache=intern_cache)
    engine = engine_for(policy, interned.num_unique)
    if engine is None:
        return None
    mask = engine.replay(interned.ids, warmup=warmup)
    if timeseries is not None:
        # Windowed curves fall out of the hit mask post-hoc -- the hot
        # replay stays untouched, which is what keeps the overhead gate
        # (<5% at cadence 1/1000) satisfiable.
        timeseries.record_mask(mask, warmup=warmup, policy=policy.name)
    return SimResult(
        policy=policy.name,
        requests=engine.requests,
        hits=engine.hits,
        misses=engine.misses,
    )


def _resolve_sim_options(
    options: Union[SimOptions, int, None],
    warmup: Optional[int],
    listeners: Optional[List[CacheListener]],
    fast: Optional[bool],
) -> SimOptions:
    """Merge the ``options`` parameter with the deprecated keywords."""
    if isinstance(options, int) and not isinstance(options, bool):
        # Legacy positional warmup: simulate(policy, trace, 5).
        warn_deprecated_kwarg("simulate", "warmup", "SimOptions(warmup=...)")
        if warmup is not None:
            raise TypeError("simulate() got warmup both positionally and "
                            "by keyword")
        warmup, options = options, None
    reject_mixed_options("simulate", options, {
        "warmup": warmup, "listeners": listeners, "fast": fast})
    if isinstance(options, SimOptions):
        return options
    if options is not None:
        raise TypeError(
            f"options must be a SimOptions, got {type(options).__name__}")
    for kwarg, value in (("warmup", warmup), ("listeners", listeners),
                         ("fast", fast)):
        if value is not None:
            warn_deprecated_kwarg("simulate", kwarg,
                                  f"SimOptions({kwarg}=...)")
    return SimOptions(
        warmup=warmup if warmup is not None else 0,
        listeners=tuple(listeners) if listeners else (),
        fast=fast,
    )


def simulate(
    policy: EvictionPolicy,
    trace: Union[Trace, Sequence, Iterable, np.ndarray],
    options: Union[SimOptions, int, None] = None,
    warmup: Optional[int] = None,
    listeners: Optional[List[CacheListener]] = None,
    fast: Optional[bool] = None,
) -> SimResult:
    """Replay *trace* through *policy* and return the hit/miss outcome.

    *options* is a :class:`~repro.sim.options.SimOptions` bundling the
    run configuration.  The individual ``warmup``/``listeners``/``fast``
    keywords are deprecated shims (a ``DeprecationWarning`` fires once
    per keyword); mixing them with *options* raises ``ValueError``.

    ``warmup`` requests are replayed first and excluded from the
    reported statistics (the cache state they build is kept).
    Listeners, if given, are attached for the duration of the run and
    observe *all* requests including warmup.

    ``fast=True`` dispatches to the policy's vectorized engine when one
    exists (the result is bit-identical); unsupported policies, offline
    policies, listeners, or prior policy state silently fall back to
    the reference loop.  The fast path leaves *policy* untouched -- use
    the reference path when the final cache contents matter.

    With ``options.metrics`` set, summary counters
    (``sim_requests_total`` / ``sim_hits_total`` / ``sim_misses_total``,
    labelled by policy) are recorded after the run -- no per-request
    overhead.  With ``options.timeseries`` set, the same counters are
    additionally recorded as *windowed* curves on the recorder's
    cadence: the reference loop ticks the recorder per request, the
    fast path derives the windows from the engine's hit mask post-hoc.
    """
    opts = _resolve_sim_options(options, warmup, listeners, fast)
    warmup = opts.warmup
    listeners = list(opts.listeners)
    fast = opts.resolved_fast(False)

    # One-shot iterables stay on the reference path: a failed dispatch
    # must leave the trace unconsumed for the fallback below.
    if (fast and not listeners
            and not isinstance(policy, OfflinePolicy)
            and isinstance(trace, (Trace, list, tuple, np.ndarray))):
        result = _simulate_fast(policy, trace, warmup, opts.timeseries,
                                opts.intern_cache)
        if result is not None:
            return _record_sim_metrics(result, opts)

    keys = _materialise(trace)
    if warmup > len(keys):
        raise ValueError(
            f"warmup ({warmup}) exceeds trace length ({len(keys)})")

    if isinstance(policy, OfflinePolicy):
        policy.prepare(keys)

    recorder = opts.timeseries
    probe = None
    if recorder is not None:
        # Cumulative-stats probe: the recorder turns these into windowed
        # deltas at each sample, so the hot loop pays one tick() call
        # per request and no registry updates.
        from repro.obs.timeseries import series_key

        stats_src = policy.stats
        series = {series_key(f"sim_{part}_total", {"policy": policy.name}):
                  part for part in ("requests", "hits", "misses")}

        def probe() -> dict:
            return {key: float(getattr(stats_src, part))
                    for key, part in series.items()}

        recorder.add_probe(probe)

    attached = listeners or []
    for listener in attached:
        policy.add_listener(listener)
    try:
        request = policy.request  # bind once: this loop dominates runtime
        it = iter(keys)
        for key in islice(it, warmup):
            request(key)
        policy.stats.reset()
        if recorder is None:
            for key in it:
                request(key)
        else:
            tick = recorder.tick
            for key in it:
                request(key)
                tick()
            recorder.flush()
    finally:
        if probe is not None:
            recorder.remove_probe(probe)
        for listener in attached:
            policy.remove_listener(listener)

    stats = policy.stats
    return _record_sim_metrics(SimResult(
        policy=policy.name,
        requests=stats.requests,
        hits=stats.hits,
        misses=stats.misses,
    ), opts)


def _record_sim_metrics(result: SimResult, opts: SimOptions) -> SimResult:
    """Record the run's summary counters into ``opts.metrics``, if any."""
    registry = opts.metrics
    if registry is not None:
        registry.counter("sim_requests_total", "Requests simulated",
                         policy=result.policy).inc(result.requests)
        registry.counter("sim_hits_total", "Simulated cache hits",
                         policy=result.policy).inc(result.hits)
        registry.counter("sim_misses_total", "Simulated cache misses",
                         policy=result.policy).inc(result.misses)
    return result


def miss_ratio(policy: EvictionPolicy, trace) -> float:
    """Convenience: simulate and return just the miss ratio."""
    return simulate(policy, trace).miss_ratio


__all__ = ["SimResult", "SimOptions", "simulate", "miss_ratio"]
