"""Request model.

The paper assumes uniform object sizes throughout (its §5 limitations
note), so the simulator's hot path works on bare keys.  The
:class:`Request` record exists for trace I/O and for future size-aware
extensions; readers can produce either representation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

Key = Hashable


@dataclass(frozen=True)
class Request:
    """A single cache request.

    ``time`` is a logical timestamp (the request index for synthetic
    traces), ``size`` an object size in arbitrary units -- carried, but
    ignored by the uniform-size policies in this library, matching the
    paper's setup.
    """

    key: Key
    time: int = 0
    size: int = 1

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError(f"size must be >= 1, got {self.size}")


__all__ = ["Request", "Key"]
