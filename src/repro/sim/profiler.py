"""Cache-resource-consumption profiling (paper §4, Fig. 3 and Fig. 2e).

The paper measures how much cache *space-time* each object consumes:
an object admitted at ``t_insert`` and evicted at ``t_evict`` consumed
``t_evict - t_insert`` request-slots of cache space.  Efficient
algorithms spend little space-time on unpopular objects -- they demote
them quickly -- and Belady spends the least.

:func:`profile` replays a trace while recording every admit -> evict
lifetime (with the number of hits received during the tenure), which
the analysis layer then aggregates by object popularity (Fig. 3) or
uses to measure the demotion speed of never-hit objects (Fig. 2e).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple, Union

import numpy as np

from repro.core.base import CacheListener, EvictionEvent, EvictionPolicy, Key, OfflinePolicy
from repro.traces.trace import Trace


class _Recorder(CacheListener):
    """Listener turning admit/hit/evict events into lifetimes."""

    def __init__(self) -> None:
        self.now = 0
        self._open: Dict[Key, Tuple[int, int]] = {}  # key -> (admit, hits)
        self.events: List[EvictionEvent] = []

    def on_admit(self, key: Key) -> None:
        self._open[key] = (self.now, 0)

    def on_hit(self, key: Key) -> None:
        entry = self._open.get(key)
        if entry is not None:
            self._open[key] = (entry[0], entry[1] + 1)

    def on_evict(self, key: Key) -> None:
        admit, hits = self._open.pop(key)
        self.events.append(EvictionEvent(key, admit, self.now, hits))

    def close(self, final_time: int) -> None:
        """Close out still-resident objects at the end of the trace."""
        for key, (admit, hits) in self._open.items():
            self.events.append(EvictionEvent(key, admit, final_time, hits))
        self._open.clear()


@dataclass
class ProfileResult:
    """Lifetimes plus derived per-key aggregates for one run."""

    policy: str
    requests: int
    misses: int
    events: List[EvictionEvent] = field(default_factory=list)

    @property
    def miss_ratio(self) -> float:
        """Miss ratio of the profiled run."""
        if self.requests == 0:
            return 0.0
        return self.misses / self.requests

    def residency_by_key(self) -> Dict[Key, int]:
        """Total space-time consumed per object across all tenures."""
        totals: Dict[Key, int] = {}
        for event in self.events:
            totals[event.key] = totals.get(event.key, 0) + event.residency
        return totals

    def zero_hit_eviction_ages(self) -> List[int]:
        """Residencies of tenures that received no hit before eviction.

        These are the unpopular objects quick demotion targets: the
        smaller these ages, the faster the algorithm demotes (Fig. 2e).
        """
        return [e.residency for e in self.events if e.hits == 0]

    def mean_zero_hit_age(self) -> float:
        """Mean demotion age of never-hit tenures; 0.0 when none.

        Zero rather than NaN so the value survives strict-JSON export
        and ``repro diff`` comparison (NaN != NaN).
        """
        ages = self.zero_hit_eviction_ages()
        if not ages:
            return 0.0
        return float(np.mean(ages))

    def snapshot_rows(self, labels: Union[Dict[str, str], None] = None
                      ) -> List[dict]:
        """This profile as ``repro.obs`` snapshot rows.

        Fig. 2e / Fig. 3 data used to live in a bespoke path; exporting
        it in the metrics wire format means the JSONL / Prometheus /
        table exporters (and the journal + ``repro diff``) all work on
        lifetime results unchanged:

        * ``profile_requests_total`` / ``profile_misses_total`` /
          ``profile_tenures_total{tenure=hit|zero-hit}`` counters,
        * ``profile_space_time_requests_total{tenure=}`` counters --
          the paper's space-time-consumed aggregate,
        * ``profile_eviction_age_requests{tenure=}`` histograms over
          the standard eviction-age buckets.

        Every row carries ``policy=<name>`` plus any extra *labels*.
        """
        from repro.obs.metrics import (DEFAULT_AGE_BUCKETS,
                                       MetricsRegistry)

        base = {"policy": self.policy, **(labels or {})}
        registry = MetricsRegistry()
        registry.counter("profile_requests_total",
                         "Requests replayed by the profiler",
                         **base).inc(self.requests)
        registry.counter("profile_misses_total",
                         "Misses during the profiled replay",
                         **base).inc(self.misses)
        for event in self.events:
            tenure = "zero-hit" if event.hits == 0 else "hit"
            registry.counter(
                "profile_tenures_total",
                "Completed admit->evict tenures",
                tenure=tenure, **base).inc()
            registry.counter(
                "profile_space_time_requests_total",
                "Space-time consumed (request-slots) by tenures",
                tenure=tenure, **base).inc(event.residency)
            registry.histogram(
                "profile_eviction_age_requests",
                "Eviction-age distribution (requests)",
                buckets=DEFAULT_AGE_BUCKETS,
                tenure=tenure, **base).observe(event.residency)
        return registry.snapshot()


def profile(
    policy: EvictionPolicy,
    trace: Union[Trace, list, np.ndarray],
) -> ProfileResult:
    """Replay *trace* through *policy*, recording object lifetimes."""
    if isinstance(trace, Trace):
        keys = trace.as_list()
    elif isinstance(trace, np.ndarray):
        keys = trace.tolist()
    else:
        keys = list(trace)

    if isinstance(policy, OfflinePolicy):
        policy.prepare(keys)

    recorder = _Recorder()
    policy.add_listener(recorder)
    try:
        request = policy.request
        for t, key in enumerate(keys):
            recorder.now = t
            request(key)
    finally:
        policy.remove_listener(recorder)
    recorder.close(len(keys))

    return ProfileResult(
        policy=policy.name,
        requests=policy.stats.requests,
        misses=policy.stats.misses,
        events=recorder.events,
    )


__all__ = ["ProfileResult", "profile"]
