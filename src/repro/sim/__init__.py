"""Trace-driven simulation substrate."""

from repro.sim.profiler import ProfileResult, profile
from repro.sim.request import Request
from repro.sim.runner import (
    LARGE_FRACTION,
    SMALL_FRACTION,
    RunRecord,
    run_matrix,
    run_one,
)
from repro.sim.simulator import SimResult, miss_ratio, simulate

__all__ = [
    "ProfileResult",
    "profile",
    "Request",
    "LARGE_FRACTION",
    "SMALL_FRACTION",
    "RunRecord",
    "run_matrix",
    "run_one",
    "SimResult",
    "miss_ratio",
    "simulate",
]
