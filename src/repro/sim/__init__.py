"""Trace-driven simulation substrate."""

from repro.sim.options import SimOptions
from repro.sim.profiler import ProfileResult, profile
from repro.sim.request import Request
from repro.sim.runner import (
    LARGE_FRACTION,
    SMALL_FRACTION,
    RunRecord,
    SweepResult,
    run_matrix,
    run_one,
    run_sweep,
)
from repro.sim.simulator import SimResult, miss_ratio, simulate

__all__ = [
    "SimOptions",
    "ProfileResult",
    "profile",
    "Request",
    "LARGE_FRACTION",
    "SMALL_FRACTION",
    "RunRecord",
    "SweepResult",
    "run_matrix",
    "run_one",
    "run_sweep",
    "SimResult",
    "miss_ratio",
    "simulate",
]
