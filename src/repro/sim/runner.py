"""Sweep runner: (policy x trace x cache size) simulation matrices.

The paper's experiments all have the same shape -- run a set of
algorithms over a corpus of traces at the "small" (0.1 % of unique
objects) and "large" (10 %) cache sizes and aggregate the per-trace
miss ratios.  :func:`run_sweep` executes that matrix through the
fault-tolerant execution layer (:mod:`repro.exec`): every
(trace, policy, size) cell is an independent task, so a worker crash,
exception, or timeout fails that cell only; cells retry per a
:class:`~repro.exec.retry.RetryPolicy`; and with checkpointing enabled
every completed cell is journalled to ``runs/<run-id>/journal.jsonl``
so an interrupted sweep resumes losslessly via ``resume=<run-id>``.

Results are always returned in deterministic (trace, size, policy)
order regardless of worker scheduling, retries, or resume.
:func:`run_matrix` is the records-only convenience wrapper the
analysis layer consumes.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import asdict, dataclass
from functools import partial
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.exec.executor import Task, run_tasks
from repro.exec.faults import FaultPlan
from repro.exec.journal import Journal
from repro.exec.report import FailureReport
from repro.exec.retry import NO_RETRY, RetryPolicy
from repro.obs.metrics import DEFAULT_DURATION_BUCKETS, MetricsRegistry
from repro.policies.registry import make, resolve
from repro.sim.fast.batch import BatchRunner
from repro.sim.fast.dispatch import has_fast_engine
from repro.sim.options import (
    SimOptions,
    reject_mixed_options,
    warn_deprecated_kwarg,
)
from repro.sim.simulator import simulate
from repro.traces.trace import Trace

#: The paper's two evaluation points: 0.1 % and 10 % of unique objects.
SMALL_FRACTION = 0.001
LARGE_FRACTION = 0.1
SIZE_LABELS = {SMALL_FRACTION: "small", LARGE_FRACTION: "large"}


@dataclass(frozen=True)
class RunRecord:
    """One (policy, trace, size) simulation outcome."""

    policy: str
    trace: str
    family: str
    group: str
    size_fraction: float
    capacity: int
    requests: int
    misses: int

    @property
    def miss_ratio(self) -> float:
        """Miss ratio of this run."""
        if self.requests == 0:
            return 0.0
        return self.misses / self.requests

    @property
    def size_label(self) -> str:
        """'small' / 'large' for the paper's two sizes, else the number."""
        return SIZE_LABELS.get(self.size_fraction, str(self.size_fraction))


def run_one(policy_name: str, trace: Trace, size_fraction: float,
            min_capacity: int = 10) -> RunRecord:
    """Simulate one policy over one trace at one relative cache size."""
    capacity = trace.cache_size(size_fraction, minimum=min_capacity)
    spec = resolve(policy_name)
    capacity = max(capacity, spec.min_capacity)
    policy = make(spec.name, capacity)
    result = simulate(policy, trace)
    return RunRecord(
        policy=spec.name,
        trace=trace.name,
        family=trace.family,
        group=trace.group,
        size_fraction=size_fraction,
        capacity=capacity,
        requests=result.requests,
        misses=result.misses,
    )


# ----------------------------------------------------------------------
# Cell tasks for the execution layer
# ----------------------------------------------------------------------

def cell_key(trace_name: str, policy_name: str,
             size_fraction: float) -> Tuple[str, str, float]:
    """Journal/report identity of one sweep cell."""
    return (trace_name, policy_name, float(size_fraction))


def _run_cell(payload) -> RunRecord:
    """Execution-layer task body: simulate one cell."""
    trace, policy_name, size_fraction, min_capacity = payload
    return run_one(policy_name, trace, size_fraction, min_capacity)


def _fast_cell(payload, timeseries=None,
               intern_cache=None) -> Optional[RunRecord]:
    """One cell through the shared-trace fast engines, or ``None``.

    Produces a record identical to :func:`run_one`'s (the engines'
    hit/miss sequences are bit-identical to the reference policies);
    the capacity derivation matches field for field.  With a
    :class:`~repro.obs.timeseries.TimeSeriesRecorder` the engine's hit
    mask additionally yields the cell's windowed request/hit/miss
    curves, labelled (policy, trace, size).
    """
    trace, policy_name, size_fraction, min_capacity = payload
    if not has_fast_engine(policy_name):
        return None
    capacity = trace.cache_size(size_fraction, minimum=min_capacity)
    capacity = max(capacity, resolve(policy_name).min_capacity)
    mask_sink = None
    if timeseries is not None:
        def mask_sink(mask):
            timeseries.record_mask(mask, policy=policy_name,
                                   trace=trace.name,
                                   size=str(size_fraction))
    outcome = BatchRunner(intern_cache=intern_cache).run(
        policy_name, trace, capacity, mask_sink=mask_sink)
    if outcome is None:
        return None
    return RunRecord(
        policy=policy_name,
        trace=trace.name,
        family=trace.family,
        group=trace.group,
        size_fraction=size_fraction,
        capacity=capacity,
        requests=outcome.requests,
        misses=outcome.misses,
    )


def _fast_cell_worker(payload, cache=None) -> RunRecord:
    """Execution-layer task body for the *parallel* fast phase.

    Unlike :func:`_fast_cell` this raises when the cell cannot be
    served by a fast engine, so the execution layer records a failure
    and the cell falls back to the reference phase -- ``None`` would be
    journalled as a (bogus) success.  Each worker process interns its
    trace independently; *cache* (an
    :class:`~repro.sim.fast.interncache.InternCache`, shipped by
    ``functools.partial``) lets them share that work through the
    on-disk store instead of repeating it per worker.
    """
    record = _fast_cell(payload, intern_cache=cache)
    if record is None:
        raise RuntimeError(
            f"no fast engine for {payload[1]!r}; cell falls back to the "
            f"reference phase")
    return record


def _cell_tasks(policy_names: Sequence[str], traces: Sequence[Trace],
                size_fractions: Sequence[float],
                min_capacity: int) -> List[Task]:
    """The matrix as independent tasks, in canonical result order."""
    tasks = []
    for trace in traces:
        for fraction in size_fractions:
            for name in policy_names:
                tasks.append(Task(
                    key=cell_key(trace.name, name, fraction),
                    payload=(trace, name, float(fraction), min_capacity)))
    return tasks


def _record_to_json(record: RunRecord) -> dict:
    return asdict(record)


def _record_from_json(payload: dict) -> RunRecord:
    return RunRecord(**payload)


@dataclass
class SweepResult:
    """Everything one sweep produced, including what it lost.

    ``records`` holds the successful cells in deterministic
    (trace, size, policy) order; ``failures`` describes cells whose
    retries were exhausted; ``run_id`` is set when checkpointing was on
    (pass it back as ``resume=`` to continue an interrupted run);
    ``resumed`` counts cells restored from the journal rather than
    simulated; ``accelerated`` counts cells served by the vectorized
    engines instead of the reference simulator.
    """

    records: List[RunRecord]
    failures: FailureReport
    run_id: Optional[str] = None
    resumed: int = 0
    accelerated: int = 0
    #: the registry passed via ``SimOptions.metrics``, after the sweep
    #: recorded its counters/timings into it (None when not supplied)
    metrics: Optional["MetricsRegistry"] = None

    @property
    def ok(self) -> bool:
        """True when every cell completed."""
        return self.failures.ok


def _resolve_sweep_options(
    options, min_capacity: Optional[int], fast: Optional[bool],
) -> SimOptions:
    """Merge ``run_sweep``'s options with its deprecated keywords."""
    if isinstance(options, int) and not isinstance(options, bool):
        # Legacy positional min_capacity: run_sweep(names, traces, sizes, 20).
        warn_deprecated_kwarg("run_sweep", "min_capacity",
                              "SimOptions(min_capacity=...)")
        if min_capacity is not None:
            raise TypeError("run_sweep() got min_capacity both positionally "
                            "and by keyword")
        min_capacity, options = options, None
    reject_mixed_options("run_sweep", options, {
        "min_capacity": min_capacity, "fast": fast})
    if isinstance(options, SimOptions):
        if options.warmup:
            raise ValueError("run_sweep does not support warmup")
        if options.listeners:
            raise ValueError("run_sweep does not support listeners")
        return options
    if options is not None:
        raise TypeError(
            f"options must be a SimOptions, got {type(options).__name__}")
    for kwarg, value in (("min_capacity", min_capacity), ("fast", fast)):
        if value is not None:
            warn_deprecated_kwarg("run_sweep", kwarg,
                                  f"SimOptions({kwarg}=...)")
    return SimOptions(
        min_capacity=min_capacity if min_capacity is not None else 10,
        fast=fast,
    )


def run_sweep(
    policy_names: Sequence[str],
    traces: Iterable[Trace],
    size_fractions: Sequence[float] = (SMALL_FRACTION, LARGE_FRACTION),
    options: Union[SimOptions, int, None] = None,
    workers: int = 1,
    retry: Optional[RetryPolicy] = None,
    resume: Optional[str] = None,
    run_id: Optional[str] = None,
    checkpoint: bool = False,
    runs_dir=None,
    fault_plan: Optional[FaultPlan] = None,
    min_capacity: Optional[int] = None,
    fast: Optional[bool] = None,
) -> SweepResult:
    """Run the (policy x trace x size) matrix fault-tolerantly.

    *options* is a :class:`~repro.sim.options.SimOptions`; its
    ``min_capacity`` and ``fast`` fields replace the deprecated
    keywords of the same names (which still work but warn).  Policy
    names accept the registry's aliases ("sieve", "clock2", ...) and
    are canonicalised before the matrix is built.

    With ``fast=True`` (the default) every cell whose policy has a
    vectorized engine is served from the shared interned trace first --
    the trace is interned once and reused across all of its
    (policy, size) cells.  With ``workers <= 1`` those cells run
    in-process; with ``workers > 1`` (and no
    ``options.timeseries``, whose recorder lives in this process) they
    fan out across worker processes through the same process-isolating
    executor the reference cells use, with ``options.intern_cache``
    letting the workers share the interning work through the on-disk
    store instead of repeating it per process.  A fast cell that fails
    in a worker simply falls back to the reference phase -- no retries,
    no entry in the failure report unless the reference attempt also
    fails.  Remaining cells (unsupported policies) go through the
    execution layer as before.  Fast cells are journalled like any
    other completed cell, so checkpoint/resume semantics are unchanged
    and ``accelerated`` counts them either way.  Fault injection plans
    disable the fast path: faults target the execution layer, so every
    cell must actually flow through it.

    ``workers > 1`` gives each cell attempt its own worker process --
    simulation is pure CPU-bound Python, so threads would not help, and
    per-attempt processes additionally isolate crashes and enforce the
    retry policy's per-task timeout.  Cell failures do not raise; they
    are reported in the returned :class:`SweepResult`.

    Checkpointing is enabled by ``checkpoint=True``, an explicit
    ``run_id``, or ``resume=<run-id>`` (which loads the journal, skips
    its finished cells, and appends to it).  Resuming validates that
    the sweep's shape (policies, traces, sizes, min_capacity) matches
    the journal's; a mismatch raises ``ValueError``.

    Temporal observability is opt-in via *options*: with
    ``options.timeseries`` set, every fast-path cell records windowed
    request/hit/miss curves labelled (policy, trace, size) -- derived
    from the engine's hit mask, so the replay loop is untouched -- and
    the rows are journalled as a ``timeseries`` line; with
    ``options.tracer`` set, the sweep records nested
    sweep→cell→attempt spans and, when checkpointing, writes
    ``trace.json`` (Chrome trace-event JSON, loadable in Perfetto)
    next to the journal.
    """
    opts = _resolve_sweep_options(options, min_capacity, fast)
    min_capacity = opts.min_capacity
    fast = opts.resolved_fast(True)
    policy_names = [resolve(n).name for n in policy_names]
    trace_list = list(traces)
    fractions = [float(f) for f in size_fractions]
    tasks = _cell_tasks(policy_names, trace_list, fractions, min_capacity)

    meta = {
        "policies": list(policy_names),
        "traces": [t.name for t in trace_list],
        "size_fractions": fractions,
        "min_capacity": min_capacity,
    }
    journal: Optional[Journal] = None
    completed: Dict[Tuple, RunRecord] = {}
    if resume:
        journal = Journal.open(resume, root=runs_dir)
        state = journal.load()
        if state.meta is not None and state.meta != meta:
            journal.close()
            raise ValueError(
                f"run {resume!r} was checkpointed for a different sweep "
                f"(policies/traces/sizes/min_capacity differ); refusing "
                f"to resume")
        completed = {key: _record_from_json(payload)
                     for key, payload in state.results.items()}
    elif checkpoint or run_id:
        journal = Journal.create(run_id=run_id, root=runs_dir, meta=meta)

    registry = opts.metrics
    fast_cell_seconds = None
    cells_total = None
    if registry is not None:
        fast_cell_seconds = registry.histogram(
            "sweep_cell_seconds", "Wall time of vectorized sweep cells",
            DEFAULT_DURATION_BUCKETS, path="fast")
        cells_total = {
            path: registry.counter(
                "sweep_cells_total", "Sweep cells completed by path",
                path=path)
            for path in ("fast", "exec", "resumed")}
        cells_total["resumed"].inc(len(completed))

    tracer = opts.tracer
    sweep_span = (tracer.span(
        "sweep", cat="sweep", policies=list(policy_names),
        traces=[t.name for t in trace_list], sizes=fractions)
        if tracer is not None else nullcontext())

    accelerated = 0
    try:
        with sweep_span:
            fast_todo = [task for task in tasks
                         if task.key not in completed
                         and has_fast_engine(task.payload[1])]
            if fast and fault_plan is None and workers > 1 \
                    and opts.timeseries is None and len(fast_todo) > 1:
                # Fan the fast cells across worker processes.  Retries
                # are pointless here (a failed fast cell falls straight
                # back to the reference phase below), and the exec-path
                # metrics/spans stay reserved for genuine exec cells --
                # the fast phase gets one enclosing span and a bulk
                # counter instead.
                fanout_span = (tracer.span(
                    "fast-fanout", cat="sweep", cells=len(fast_todo),
                    workers=workers) if tracer is not None
                    else nullcontext())
                with fanout_span:
                    fast_outcome = run_tasks(
                        fast_todo,
                        partial(_fast_cell_worker, cache=opts.intern_cache),
                        workers=workers,
                        retry=NO_RETRY,
                        journal=journal,
                        encode=_record_to_json,
                    )
                completed.update(fast_outcome.results)
                accelerated = len(fast_outcome.results)
                if cells_total is not None:
                    cells_total["fast"].inc(accelerated)
            elif fast and fault_plan is None:
                for task in fast_todo:
                    started = time.perf_counter()
                    cell_start = tracer.now() if tracer is not None else 0.0
                    record = _fast_cell(task.payload, opts.timeseries,
                                        opts.intern_cache)
                    if record is None:
                        continue
                    completed[task.key] = record
                    accelerated += 1
                    if tracer is not None:
                        trace_name, policy_name, fraction = task.key
                        tracer.add_span(
                            "cell", cell_start, tracer.now(), cat="cell",
                            trace=trace_name, policy=policy_name,
                            size=fraction, path="fast")
                    if registry is not None:
                        fast_cell_seconds.observe(
                            time.perf_counter() - started)
                        cells_total["fast"].inc()
                    if journal is not None:
                        journal.record_result(task.key,
                                              _record_to_json(record))
            outcome = run_tasks(
                tasks, _run_cell,
                workers=workers,
                retry=retry if retry is not None else NO_RETRY,
                journal=journal,
                completed=completed,
                fault_plan=fault_plan,
                encode=_record_to_json,
                registry=registry,
                tracer=tracer,
            )
        if cells_total is not None:
            cells_total["exec"].inc(outcome.executed - len(outcome.failures))
        if journal is not None:
            if registry is not None:
                journal.record_metrics(registry.snapshot())
            if opts.timeseries is not None:
                journal.record_timeseries(opts.timeseries.to_rows())
            if tracer is not None:
                tracer.write_chrome_trace(journal.directory / "trace.json")
    finally:
        if journal is not None:
            journal.close()

    records = [outcome.results[task.key] for task in tasks
               if task.key in outcome.results]
    return SweepResult(
        records=records,
        failures=outcome.failures,
        run_id=journal.run_id if journal is not None else None,
        resumed=outcome.resumed - accelerated,
        accelerated=accelerated,
        metrics=registry,
    )


def run_matrix(
    policy_names: Sequence[str],
    traces: Iterable[Trace],
    size_fractions: Sequence[float] = (SMALL_FRACTION, LARGE_FRACTION),
    options: Union[SimOptions, int, None] = None,
    workers: int = 1,
    **sweep_kwargs,
) -> List[RunRecord]:
    """Run the full matrix and return the records.

    Convenience wrapper over :func:`run_sweep`; extra keyword arguments
    (``retry``, ``resume``, ``run_id``, ``checkpoint``, ``runs_dir``,
    ``fault_plan``, plus the deprecated ``min_capacity``/``fast``) pass
    straight through.  On cell failure the remaining records are still
    returned (graceful degradation) -- use :func:`run_sweep` when the
    caller needs the :class:`~repro.exec.report.FailureReport`.
    """
    return run_sweep(policy_names, traces, size_fractions=size_fractions,
                     options=options, workers=workers,
                     **sweep_kwargs).records


def index_by(records: Iterable[RunRecord]
             ) -> Dict[Tuple[str, str, float], RunRecord]:
    """Index records by (policy, trace, size_fraction) for joins."""
    return {(r.policy, r.trace, r.size_fraction): r for r in records}


def miss_ratio_table(
    records: Iterable[RunRecord],
) -> Dict[str, Dict[Tuple[str, float], float]]:
    """policy -> {(trace, size) -> miss ratio} nested mapping."""
    table: Dict[str, Dict[Tuple[str, float], float]] = {}
    for record in records:
        table.setdefault(record.policy, {})[
            (record.trace, record.size_fraction)] = record.miss_ratio
    return table


__all__ = [
    "SMALL_FRACTION",
    "LARGE_FRACTION",
    "SIZE_LABELS",
    "RunRecord",
    "SweepResult",
    "cell_key",
    "run_one",
    "run_sweep",
    "run_matrix",
    "index_by",
    "miss_ratio_table",
]
