"""Sweep runner: (policy x trace x cache size) simulation matrices.

The paper's experiments all have the same shape -- run a set of
algorithms over a corpus of traces at the "small" (0.1 % of unique
objects) and "large" (10 %) cache sizes and aggregate the per-trace
miss ratios.  :func:`run_matrix` executes that matrix, optionally in
parallel across traces, and returns flat records the analysis layer
consumes.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.policies.registry import REGISTRY, make
from repro.sim.simulator import simulate
from repro.traces.trace import Trace

#: The paper's two evaluation points: 0.1 % and 10 % of unique objects.
SMALL_FRACTION = 0.001
LARGE_FRACTION = 0.1
SIZE_LABELS = {SMALL_FRACTION: "small", LARGE_FRACTION: "large"}


@dataclass(frozen=True)
class RunRecord:
    """One (policy, trace, size) simulation outcome."""

    policy: str
    trace: str
    family: str
    group: str
    size_fraction: float
    capacity: int
    requests: int
    misses: int

    @property
    def miss_ratio(self) -> float:
        """Miss ratio of this run."""
        if self.requests == 0:
            return 0.0
        return self.misses / self.requests

    @property
    def size_label(self) -> str:
        """'small' / 'large' for the paper's two sizes, else the number."""
        return SIZE_LABELS.get(self.size_fraction, str(self.size_fraction))


def run_one(policy_name: str, trace: Trace, size_fraction: float,
            min_capacity: int = 10) -> RunRecord:
    """Simulate one policy over one trace at one relative cache size."""
    capacity = trace.cache_size(size_fraction, minimum=min_capacity)
    spec = REGISTRY[policy_name]
    capacity = max(capacity, spec.min_capacity)
    policy = make(policy_name, capacity)
    result = simulate(policy, trace)
    return RunRecord(
        policy=policy_name,
        trace=trace.name,
        family=trace.family,
        group=trace.group,
        size_fraction=size_fraction,
        capacity=capacity,
        requests=result.requests,
        misses=result.misses,
    )


def _run_trace_task(args: Tuple[Trace, Sequence[str], Sequence[float], int]
                    ) -> List[RunRecord]:
    """Worker: all (policy, size) combinations for a single trace."""
    trace, policy_names, size_fractions, min_capacity = args
    records = []
    for fraction in size_fractions:
        for name in policy_names:
            records.append(run_one(name, trace, fraction, min_capacity))
    return records


def run_matrix(
    policy_names: Sequence[str],
    traces: Iterable[Trace],
    size_fractions: Sequence[float] = (SMALL_FRACTION, LARGE_FRACTION),
    min_capacity: int = 10,
    workers: int = 1,
) -> List[RunRecord]:
    """Run the full (policy x trace x size) matrix.

    ``workers > 1`` parallelises across traces with a process pool --
    simulation is pure CPU-bound Python, so threads would not help.
    Results are returned in deterministic (trace, size, policy) order
    regardless of worker scheduling.
    """
    unknown = [n for n in policy_names if n not in REGISTRY]
    if unknown:
        raise KeyError(f"unknown policies: {unknown}")
    trace_list = list(traces)
    tasks = [(t, tuple(policy_names), tuple(size_fractions), min_capacity)
             for t in trace_list]
    if workers <= 1 or len(trace_list) <= 1:
        nested = [_run_trace_task(task) for task in tasks]
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            nested = list(pool.map(_run_trace_task, tasks, chunksize=1))
    return [record for batch in nested for record in batch]


def index_by(records: Iterable[RunRecord]
             ) -> Dict[Tuple[str, str, float], RunRecord]:
    """Index records by (policy, trace, size_fraction) for joins."""
    return {(r.policy, r.trace, r.size_fraction): r for r in records}


def miss_ratio_table(
    records: Iterable[RunRecord],
) -> Dict[str, Dict[Tuple[str, float], float]]:
    """policy -> {(trace, size) -> miss ratio} nested mapping."""
    table: Dict[str, Dict[Tuple[str, float], float]] = {}
    for record in records:
        table.setdefault(record.policy, {})[
            (record.trace, record.size_fraction)] = record.miss_ratio
    return table


__all__ = [
    "SMALL_FRACTION",
    "LARGE_FRACTION",
    "SIZE_LABELS",
    "RunRecord",
    "run_one",
    "run_matrix",
    "index_by",
    "miss_ratio_table",
]
