"""Shared simulation options: the consolidated knob set for the sim layer.

:func:`~repro.sim.simulator.simulate` and
:func:`~repro.sim.runner.run_sweep` historically grew overlapping
keyword arguments (``warmup``, ``listeners``, ``fast``,
``min_capacity``).  :class:`SimOptions` consolidates them into one
frozen dataclass that both entry points accept as their ``options``
parameter; the old keywords still work but emit a
``DeprecationWarning`` (once per keyword per process).

``fast=None`` means "use the subsystem default": ``simulate`` defaults
to the reference loop (``False``), ``run_sweep`` to the vectorized
engines (``True``).  ``metrics`` optionally supplies a
:class:`~repro.obs.metrics.MetricsRegistry` that the sim layer records
summary counters and timings into (see docs/observability.md).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Set, Tuple

from repro.core.base import CacheListener
from repro.obs.metrics import MetricsRegistry
from repro.obs.span import SpanTracer
from repro.obs.timeseries import TimeSeriesRecorder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.fast.interncache import InternCache


@dataclass(frozen=True)
class SimOptions:
    """Options shared by ``simulate`` and ``run_sweep``.

    Parameters
    ----------
    warmup:
        Requests replayed before statistics collection starts
        (``simulate`` only; ``run_sweep`` rejects a nonzero value).
    fast:
        ``True``/``False`` forces the vectorized or reference path;
        ``None`` keeps the entry point's default (``simulate``: ``False``,
        ``run_sweep``: ``True``).
    listeners:
        :class:`~repro.core.base.CacheListener` instances attached for
        the duration of the run (``simulate`` only).  Attaching a
        listener forces the reference path.
    min_capacity:
        Cache-size floor when sizes are derived from a fraction of a
        trace's unique objects (``run_sweep`` only).
    metrics:
        Optional registry receiving simulation counters and timings.
    timeseries:
        Optional :class:`~repro.obs.timeseries.TimeSeriesRecorder`
        receiving windowed per-request curves: the reference loop ticks
        it per request, the fast path derives windows from the engine's
        hit mask post-hoc, and ``run_sweep`` journals the rows.
    tracer:
        Optional :class:`~repro.obs.span.SpanTracer`; ``run_sweep``
        records sweep→cell→attempt spans into it and writes
        ``trace.json`` (Chrome trace-event JSON) next to the journal
        when checkpointing.
    intern_cache:
        Optional :class:`~repro.sim.fast.interncache.InternCache`
        persisting interned traces under ``runs/intern-cache/`` so
        separate processes (parallel sweep workers, repeated runs)
        share the interning work.  Only the fast path consults it.
    """

    warmup: int = 0
    fast: Optional[bool] = None
    listeners: Tuple[CacheListener, ...] = ()
    min_capacity: int = 10
    metrics: Optional[MetricsRegistry] = field(default=None, compare=False)
    timeseries: Optional[TimeSeriesRecorder] = field(default=None,
                                                    compare=False)
    tracer: Optional[SpanTracer] = field(default=None, compare=False)
    intern_cache: Optional["InternCache"] = field(default=None,
                                                 compare=False)

    def __post_init__(self) -> None:
        if self.warmup < 0:
            raise ValueError(f"warmup must be >= 0, got {self.warmup}")
        if self.min_capacity < 1:
            raise ValueError(
                f"min_capacity must be >= 1, got {self.min_capacity}")
        # Accept any iterable of listeners, store an immutable tuple.
        object.__setattr__(self, "listeners", tuple(self.listeners))

    def resolved_fast(self, default: bool) -> bool:
        """The effective ``fast`` flag given the entry point's *default*."""
        return default if self.fast is None else self.fast


# ----------------------------------------------------------------------
# Deprecated-keyword plumbing
# ----------------------------------------------------------------------

_warned: Set[Tuple[str, str]] = set()


def warn_deprecated_kwarg(func: str, kwarg: str, replacement: str) -> None:
    """Emit a ``DeprecationWarning`` for *func(kwarg=...)* once per process."""
    key = (func, kwarg)
    if key in _warned:
        return
    _warned.add(key)
    warnings.warn(
        f"{func}({kwarg}=...) is deprecated; pass {replacement} instead",
        DeprecationWarning,
        stacklevel=4,
    )


def _reset_deprecation_warnings() -> None:
    """Forget which deprecation warnings fired (test hook)."""
    _warned.clear()


def reject_mixed_options(func: str, options: object, legacy: dict) -> None:
    """Raise when both ``options=`` and a legacy keyword were given."""
    given = sorted(k for k, v in legacy.items() if v is not None)
    if options is not None and given:
        raise ValueError(
            f"{func}() got both options= and legacy keyword(s) "
            f"{given}; pass one or the other")


__all__ = [
    "SimOptions",
    "warn_deprecated_kwarg",
    "reject_mixed_options",
]
