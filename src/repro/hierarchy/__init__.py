"""Multi-tier storage hierarchy: DRAM -> flash -> backend.

Evictions demote downward instead of disappearing, admission
controllers gate the resulting writes, and every tier carries its own
policy, byte budget and access-cost model.  See ``docs/hierarchy.md``.
"""

from repro.hierarchy.admission import (
    AdmissionController,
    AdmitAll,
    FrequencyAdmission,
    GhostAdmission,
    make_admission,
)
from repro.hierarchy.config import (
    ADMISSION_KINDS,
    TIER_KINDS,
    HierarchyConfig,
    TierConfig,
    dram_flash_config,
)
from repro.hierarchy.hierarchy import CacheHierarchy, coerce_hierarchy_config
from repro.hierarchy.simulate import (
    HierarchyResult,
    TierReport,
    simulate_hierarchy,
)
from repro.hierarchy.tier import (
    ADMITTED,
    REFRESHED,
    REJECTED,
    Tier,
    TierStats,
)

__all__ = [
    "ADMISSION_KINDS",
    "TIER_KINDS",
    "ADMITTED",
    "REFRESHED",
    "REJECTED",
    "AdmissionController",
    "AdmitAll",
    "GhostAdmission",
    "FrequencyAdmission",
    "make_admission",
    "TierConfig",
    "HierarchyConfig",
    "dram_flash_config",
    "Tier",
    "TierStats",
    "CacheHierarchy",
    "coerce_hierarchy_config",
    "TierReport",
    "HierarchyResult",
    "simulate_hierarchy",
]
