"""Frozen configuration for the multi-tier storage hierarchy.

The hierarchy is configured the way :class:`~repro.service.ServiceConfig`
and :class:`~repro.sim.options.SimOptions` configure their subsystems:
one frozen dataclass per concept, every field validated eagerly in
``__post_init__`` with a precise message, and no ad-hoc keyword drift.

* :class:`TierConfig` -- one storage level: a byte capacity (routed
  through :func:`~repro.core.base.validate_capacity`), a policy spec
  resolved through the unified sized registry
  (:func:`repro.policies.registry.make_sized`), per-access read/write
  costs, an admission-controller spec gating demotions *into* the
  tier, and a ``kind`` tag (``dram``/``flash``/...) -- flash tiers get
  write-amplification accounting.
* :class:`HierarchyConfig` -- the ordered tier stack plus the backend
  cost model, hierarchy-level promotion behaviour, and an optional TTL
  (in requests) applied to the key stream via
  :func:`repro.traces.ttl.apply_ttl`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.base import validate_capacity

#: Admission-controller spec names accepted by TierConfig.admission.
ADMISSION_KINDS = ("admit-all", "ghost", "frequency")

#: Tier kind tags; ``flash`` enables write-amplification reporting.
TIER_KINDS = ("dram", "flash", "disk")


@dataclass(frozen=True)
class TierConfig:
    """One storage tier (validated eagerly; reject ad-hoc kwargs).

    * ``name`` -- unique tier label (also the ``tier=`` metric label).
    * ``capacity_bytes`` -- the tier's byte budget (>= 1).
    * ``policy`` -- sized-policy spec resolved through the unified
      registry; any spelling :func:`~repro.policies.registry.make_sized`
      accepts (``"lru"``, ``"Sized-QD-LP-FIFO"``, ``"gdsf"``, ...).
    * ``policy_params`` -- keyword parameters forwarded to the policy
      constructor (``bits``, ``probation_fraction``, ...).
    * ``read_cost`` / ``write_cost`` -- abstract cost units charged per
      lookup touching this tier and per object written into it
      (Qiu/Yang/Harchol-Balter: account per-tier access *cost*, not
      just hit ratio).
    * ``admission`` -- controller gating demotions into this tier:
      ``admit-all``, ``ghost`` (probationary: first demotion is
      remembered but rejected; a repeat within the ghost window is
      admitted) or ``frequency`` (admit after ``threshold`` demotion
      sightings).
    * ``kind`` -- ``dram``, ``flash`` or ``disk``; flash tiers report
      write amplification.
    """

    name: str
    capacity_bytes: int
    policy: str = "lru"
    policy_params: Tuple[Tuple[str, object], ...] = ()
    read_cost: float = 1.0
    write_cost: float = 1.0
    admission: str = "admit-all"
    admission_params: Tuple[Tuple[str, object], ...] = ()
    kind: str = "dram"

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError(
                f"tier name must be a non-empty string, got {self.name!r}")
        object.__setattr__(
            self, "capacity_bytes",
            validate_capacity(self.capacity_bytes, what="capacity_bytes"))
        from repro.policies.registry import resolve_sized

        # Resolve eagerly so a typo fails at config time, not mid-run,
        # and journals always record the canonical spelling.
        object.__setattr__(self, "policy", resolve_sized(self.policy).name)
        if isinstance(self.policy_params, dict):
            object.__setattr__(self, "policy_params",
                               tuple(sorted(self.policy_params.items())))
        else:
            object.__setattr__(self, "policy_params",
                               tuple(self.policy_params))
        if self.read_cost < 0 or self.write_cost < 0:
            raise ValueError(
                f"tier {self.name!r}: read_cost/write_cost must be >= 0, "
                f"got {self.read_cost}/{self.write_cost}")
        if self.admission not in ADMISSION_KINDS:
            raise ValueError(
                f"tier {self.name!r}: admission must be one of "
                f"{', '.join(ADMISSION_KINDS)}, got {self.admission!r}")
        if isinstance(self.admission_params, dict):
            object.__setattr__(self, "admission_params",
                               tuple(sorted(self.admission_params.items())))
        else:
            object.__setattr__(self, "admission_params",
                               tuple(self.admission_params))
        if self.kind not in TIER_KINDS:
            raise ValueError(
                f"tier {self.name!r}: kind must be one of "
                f"{', '.join(TIER_KINDS)}, got {self.kind!r}")

    @property
    def policy_kwargs(self) -> Dict[str, object]:
        """``policy_params`` as a plain keyword dict."""
        return dict(self.policy_params)

    @property
    def admission_kwargs(self) -> Dict[str, object]:
        """``admission_params`` as a plain keyword dict."""
        return dict(self.admission_params)


@dataclass(frozen=True)
class HierarchyConfig:
    """The ordered tier stack, top (fastest) first.

    * ``tiers`` -- at least one :class:`TierConfig`; names must be
      unique.  Tier 0 is where fetched/promoted objects land; evictions
      from tier *i* demote into tier *i+1*; evictions from the last
      tier leave the hierarchy.
    * ``backend_read_cost`` -- cost charged when every tier misses and
      the object is fetched from the backend.
    * ``promote_on_hit`` -- ``True`` copies a lower-tier hit back into
      tier 0 (the copy below stays; refreshing it later is free);
      ``False`` is hierarchy-level lazy promotion: serve in place.
    * ``ttl`` -- requests an object stays fresh; ``0`` disables expiry.
      Applied by rewriting the key stream through
      :func:`repro.traces.ttl.apply_ttl` (lazy expiry: the stale copy
      lingers in whatever tier holds it until evicted).
    * ``ttl_jitter`` / ``ttl_seed`` -- per-object TTL jitter fraction
      and its seed, forwarded to ``apply_ttl``.
    """

    tiers: Tuple[TierConfig, ...] = field(default_factory=tuple)
    backend_read_cost: float = 100.0
    promote_on_hit: bool = True
    ttl: int = 0
    ttl_jitter: float = 0.0
    ttl_seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "tiers", tuple(self.tiers))
        if not self.tiers:
            raise ValueError("HierarchyConfig needs at least one tier")
        for tier in self.tiers:
            if not isinstance(tier, TierConfig):
                raise TypeError(
                    f"tiers must be TierConfig instances, "
                    f"got {type(tier).__name__}")
        names = [tier.name for tier in self.tiers]
        if len(set(names)) != len(names):
            raise ValueError(f"tier names must be unique, got {names}")
        if self.backend_read_cost < 0:
            raise ValueError(
                f"backend_read_cost must be >= 0, "
                f"got {self.backend_read_cost}")
        if self.ttl < 0:
            raise ValueError(f"ttl must be >= 0 requests, got {self.ttl}")
        if not 0.0 <= self.ttl_jitter < 1.0:
            raise ValueError(
                f"ttl_jitter must be in [0, 1), got {self.ttl_jitter}")

    @property
    def tier_names(self) -> Tuple[str, ...]:
        """The tier labels, top first."""
        return tuple(tier.name for tier in self.tiers)


def dram_flash_config(
    dram_bytes: int,
    flash_bytes: int,
    dram_policy: str = "qd-lp-fifo",
    flash_policy: str = "fifo",
    flash_admission: str = "admit-all",
    *,
    dram_policy_params: Optional[dict] = None,
    flash_admission_params: Optional[dict] = None,
    ttl: int = 0,
    promote_on_hit: bool = True,
) -> HierarchyConfig:
    """The canonical two-tier DRAM -> flash -> backend configuration.

    Costs follow the usual orders of magnitude: DRAM reads are the
    unit, flash reads ~25x, flash writes ~250x (write amplification is
    what the X7 experiment measures), backend fetches ~2500x.
    """
    return HierarchyConfig(
        tiers=(
            TierConfig(name="dram", capacity_bytes=dram_bytes,
                       policy=dram_policy,
                       policy_params=tuple(sorted(
                           (dram_policy_params or {}).items())),
                       read_cost=1.0, write_cost=1.0, kind="dram"),
            TierConfig(name="flash", capacity_bytes=flash_bytes,
                       policy=flash_policy,
                       read_cost=25.0, write_cost=250.0,
                       admission=flash_admission,
                       admission_params=tuple(sorted(
                           (flash_admission_params or {}).items())),
                       kind="flash"),
        ),
        backend_read_cost=2500.0,
        promote_on_hit=promote_on_hit,
        ttl=ttl,
    )


__all__ = [
    "ADMISSION_KINDS",
    "TIER_KINDS",
    "TierConfig",
    "HierarchyConfig",
    "dram_flash_config",
]
