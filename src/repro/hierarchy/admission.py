"""Admission control between tiers (what gets *written* downward).

Demotion-on-eviction turns every upper-tier eviction into a potential
lower-tier write; on flash that write is the expensive operation the
whole hierarchy exists to avoid.  An admission controller decides, per
demoted object, whether the write happens:

* :class:`AdmitAll` -- every demotion is written (the baseline the X7
  experiment measures against).
* :class:`GhostAdmission` -- probationary: the first demotion of an
  object is only *remembered* (metadata ghost, no data write); a
  repeat demotion while the ghost still remembers it is admitted.
  One-hit wonders -- quickly demoted, never seen again -- thus never
  consume a flash write, which is the quick-demotion story told at the
  tier boundary.
* :class:`FrequencyAdmission` -- admit once an object has been seen
  ``threshold`` times (demotions *and* lookups count as sightings),
  TinyLFU-style but with an exact bounded counter table instead of a
  sketch, for determinism.

Controllers are built by :func:`make_admission` from the spec names
:class:`~repro.hierarchy.config.TierConfig` validates
(``admit-all`` / ``ghost`` / ``frequency``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import OrderedDict
from typing import Hashable

from repro.sized.qd import SizedGhost

Key = Hashable


class AdmissionController(ABC):
    """Decides whether a demoted object is written into a tier."""

    name: str = "abstract"

    @abstractmethod
    def admit(self, key: Key, size: int) -> bool:
        """Whether this demotion of *key* should be written."""

    def record_lookup(self, key: Key, size: int) -> None:
        """Observe a lookup for *key* at this tier (default: ignored)."""

    def forget(self, key: Key) -> None:
        """Drop any memory of *key* (default: nothing to drop)."""


class AdmitAll(AdmissionController):
    """Every demotion is admitted."""

    name = "admit-all"

    def admit(self, key: Key, size: int) -> bool:
        return True


class GhostAdmission(AdmissionController):
    """Probationary admission: reject-and-remember, admit on repeat.

    The ghost is byte-bounded (:class:`~repro.sized.qd.SizedGhost`) at
    ``ghost_factor`` times the tier's capacity, so its memory horizon
    scales with the tier exactly like the QD wrapper's ghost scales
    with its main cache.
    """

    name = "ghost"

    def __init__(self, capacity_bytes: int,
                 ghost_factor: float = 1.0) -> None:
        if ghost_factor <= 0:
            raise ValueError(
                f"ghost_factor must be > 0, got {ghost_factor}")
        self.ghost = SizedGhost(max(1, round(capacity_bytes * ghost_factor)))

    def admit(self, key: Key, size: int) -> bool:
        if self.ghost.remove(key):
            return True
        self.ghost.add(key, size)
        return False

    def forget(self, key: Key) -> None:
        self.ghost.remove(key)


class FrequencyAdmission(AdmissionController):
    """Admit once *key* has been sighted ``threshold`` times.

    Sightings are demotion attempts plus tier lookups.  The counter
    table is bounded to ``max_entries`` keys, evicting the least
    recently sighted entry, so the controller's memory cannot grow
    with the trace.
    """

    name = "frequency"

    def __init__(self, threshold: int = 2,
                 max_entries: int = 65536) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if max_entries < 1:
            raise ValueError(
                f"max_entries must be >= 1, got {max_entries}")
        self.threshold = threshold
        self.max_entries = max_entries
        self._counts: "OrderedDict[Key, int]" = OrderedDict()

    def _sight(self, key: Key) -> int:
        count = self._counts.pop(key, 0) + 1
        self._counts[key] = count
        while len(self._counts) > self.max_entries:
            self._counts.popitem(last=False)
        return count

    def admit(self, key: Key, size: int) -> bool:
        if self._sight(key) >= self.threshold:
            self.forget(key)
            return True
        return False

    def record_lookup(self, key: Key, size: int) -> None:
        self._sight(key)

    def forget(self, key: Key) -> None:
        self._counts.pop(key, None)


def make_admission(spec: str, capacity_bytes: int,
                   **params: object) -> AdmissionController:
    """Build the admission controller *spec* names for a tier.

    ``capacity_bytes`` is the owning tier's budget (sizes the ghost);
    *params* are the controller's own knobs (``ghost_factor``,
    ``threshold``, ``max_entries``).  Unknown specs raise ``KeyError``
    listing the valid names; bad parameters raise ``TypeError`` naming
    the controller.
    """
    factories = {
        "admit-all": lambda **kw: AdmitAll(**kw),
        "ghost": lambda **kw: GhostAdmission(capacity_bytes, **kw),
        "frequency": lambda **kw: FrequencyAdmission(**kw),
    }
    factory = factories.get(spec)
    if factory is None:
        raise KeyError(
            f"unknown admission controller {spec!r} "
            f"(known: {', '.join(sorted(factories))})")
    try:
        return factory(**params)
    except TypeError as exc:
        raise TypeError(
            f"admission controller {spec!r} rejected parameters "
            f"{sorted(params)}: {exc}") from exc


__all__ = [
    "AdmissionController",
    "AdmitAll",
    "GhostAdmission",
    "FrequencyAdmission",
    "make_admission",
]
