"""One storage tier: a sized policy plus demotion/write accounting.

A :class:`Tier` wraps a :class:`~repro.sized.base.SizedEvictionPolicy`
built through the unified registry
(:func:`~repro.policies.registry.make_sized`) and adds what the
hierarchy needs around it:

* an eviction buffer -- the policy's
  :class:`~repro.sized.base.SizedCacheListener` events are captured so
  the hierarchy can *demote* victims into the next tier instead of
  losing them;
* an admission controller gating demotions into this tier;
* :class:`TierStats`: per-tier lookup/hit accounting (a plain
  :class:`~repro.sized.base.SizedStats`, so ``hits + misses ==
  lookups`` holds by construction) plus demotion and write counters,
  from which flash write amplification is derived;
* optional :class:`~repro.obs.metrics.MetricsRegistry` wiring with a
  ``tier=<name>`` label on every metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.hierarchy.admission import make_admission
from repro.hierarchy.config import TierConfig
from repro.obs.metrics import MetricsRegistry
from repro.policies.registry import make_sized
from repro.sized.base import SizedCacheListener, SizedStats

Key = Hashable

#: Demotion outcomes at the receiving tier.
ADMITTED = "admitted"      # written into the tier (a data write)
REFRESHED = "refreshed"    # already resident: no data write needed
REJECTED = "rejected"      # admission controller (or size) said no


@dataclass
class TierStats:
    """Per-tier accounting: lookups, demotions, writes.

    ``sized`` carries the request-level invariant (``hits + misses ==
    lookups``); the demotion counters carry the between-tier one
    (demotions out of tier *i* == admitted + refreshed + rejected at
    tier *i+1*); the write counters feed write amplification.
    """

    sized: SizedStats = field(default_factory=SizedStats)
    demoted_in_admitted: int = 0
    demoted_in_refreshed: int = 0
    demoted_in_rejected: int = 0
    demoted_out: int = 0
    writes: int = 0
    write_bytes: int = 0
    first_copy_bytes: int = 0
    evictions: int = 0
    evicted_bytes: int = 0

    @property
    def lookups(self) -> int:
        """Requests that probed this tier."""
        return self.sized.requests

    @property
    def hits(self) -> int:
        return self.sized.hits

    @property
    def misses(self) -> int:
        return self.sized.misses

    @property
    def hit_ratio(self) -> float:
        total = self.sized.requests
        return self.sized.hits / total if total else 0.0

    @property
    def demoted_in(self) -> int:
        """Demotion attempts arriving at this tier, all outcomes."""
        return (self.demoted_in_admitted + self.demoted_in_refreshed
                + self.demoted_in_rejected)

    @property
    def write_amplification(self) -> float:
        """Bytes written per byte of distinct data ever written.

        1.0 means every write was the first copy of its object;
        rewrites (churn re-admitted after eviction, promotion copies
        re-demoted) push it up.  0.0 when nothing was written.
        """
        if self.first_copy_bytes == 0:
            return 0.0
        return self.write_bytes / self.first_copy_bytes


class _EvictionBuffer(SizedCacheListener):
    """Captures the wrapped policy's evictions for the hierarchy."""

    def __init__(self) -> None:
        self.evicted: List[Tuple[Key, int]] = []

    def on_evict(self, key: Key, size: int) -> None:
        self.evicted.append((key, size))


class Tier:
    """A named storage level inside a :class:`CacheHierarchy`."""

    def __init__(self, config: TierConfig,
                 registry: Optional[MetricsRegistry] = None,
                 extra_labels: Optional[Dict[str, str]] = None) -> None:
        self.config = config
        self.name = config.name
        self.policy = make_sized(config.policy, config.capacity_bytes,
                                 **config.policy_kwargs)
        self.admission = make_admission(config.admission,
                                        config.capacity_bytes,
                                        **config.admission_kwargs)
        self.stats = TierStats()
        self._buffer = _EvictionBuffer()
        self.policy.add_listener(self._buffer)
        self._written_keys: Set[Key] = set()
        self._metrics = None
        if registry is not None:
            labels = dict(extra_labels or {})
            labels["tier"] = config.name
            self._metrics = {
                "lookups": registry.counter(
                    "hierarchy_lookups_total",
                    help="requests probing this tier", **labels),
                "hits": registry.counter(
                    "hierarchy_hits_total",
                    help="requests served by this tier", **labels),
                "demotions": {
                    outcome: registry.counter(
                        "hierarchy_demotions_total",
                        help="demotions arriving at this tier",
                        outcome=outcome, **labels)
                    for outcome in (ADMITTED, REFRESHED, REJECTED)},
                "write_bytes": registry.counter(
                    "hierarchy_write_bytes_total",
                    help="bytes written into this tier", **labels),
                "used_bytes": registry.gauge(
                    "hierarchy_used_bytes",
                    help="bytes currently resident", **labels),
            }

    # ------------------------------------------------------------------
    @property
    def used_bytes(self) -> int:
        return self.policy.used_bytes

    @property
    def capacity_bytes(self) -> int:
        return self.policy.capacity_bytes

    def __contains__(self, key: Key) -> bool:
        return key in self.policy

    def __len__(self) -> int:
        return len(self.policy)

    def take_evicted(self) -> List[Tuple[Key, int]]:
        """Drain and return evictions since the last call."""
        evicted = self._buffer.evicted
        if evicted:
            self._buffer.evicted = []
            self.stats.evictions += len(evicted)
            self.stats.evicted_bytes += sum(size for _, size in evicted)
        return evicted

    # ------------------------------------------------------------------
    def lookup(self, key: Key, size: int) -> bool:
        """Probe this tier; a hit refreshes the policy's recency state."""
        hit = key in self.policy
        if hit:
            self.policy.request(key, size)
        else:
            self.admission.record_lookup(key, size)
        self.stats.sized.record(hit, size)
        if self._metrics is not None:
            self._metrics["lookups"].inc()
            if hit:
                self._metrics["hits"].inc()
            self._metrics["used_bytes"].set(self.policy.used_bytes)
        return hit

    def insert(self, key: Key, size: int) -> bool:
        """Write *key* into this tier (backend fill or promotion copy).

        Bypasses admission control -- the hierarchy only calls this on
        the top tier (a fetched/promoted object must land somewhere).
        Returns whether a data write happened (already-resident keys
        are refreshed for free).
        """
        if key in self.policy:
            self.policy.request(key, size)
            return False
        if not self.policy.admits(size):
            return False
        self.policy.request(key, size)
        if key not in self.policy:  # pragma: no cover - defensive
            return False
        self._count_write(key, size)
        return True

    def demote_in(self, key: Key, size: int) -> str:
        """A victim demoted from the tier above arrives here.

        Returns the outcome (:data:`ADMITTED` -- a data write --,
        :data:`REFRESHED` or :data:`REJECTED`).
        """
        if key in self.policy:
            self.policy.request(key, size)
            outcome = REFRESHED
            self.stats.demoted_in_refreshed += 1
        elif not self.policy.admits(size):
            outcome = REJECTED
            self.stats.demoted_in_rejected += 1
        elif self.admission.admit(key, size):
            self.policy.request(key, size)
            self._count_write(key, size)
            outcome = ADMITTED
            self.stats.demoted_in_admitted += 1
        else:
            outcome = REJECTED
            self.stats.demoted_in_rejected += 1
        if self._metrics is not None:
            self._metrics["demotions"][outcome].inc()
            self._metrics["used_bytes"].set(self.policy.used_bytes)
        return outcome

    def _count_write(self, key: Key, size: int) -> None:
        self.stats.writes += 1
        self.stats.write_bytes += size
        if key not in self._written_keys:
            self._written_keys.add(key)
            self.stats.first_copy_bytes += size
        if self._metrics is not None:
            self._metrics["write_bytes"].inc(size)

    def check_invariants(self) -> None:
        """Raise ``AssertionError`` on a broken tier-local invariant."""
        assert self.stats.sized.hits + self.stats.sized.misses == \
            self.stats.lookups, (
                f"tier {self.name}: hits+misses != lookups")
        assert self.policy.used_bytes <= self.policy.capacity_bytes, (
            f"tier {self.name}: used {self.policy.used_bytes} exceeds "
            f"budget {self.policy.capacity_bytes}")
        assert self.policy.used_bytes >= 0, (
            f"tier {self.name}: negative used_bytes")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<Tier {self.name!r} policy={self.policy.name!r} "
                f"bytes={self.used_bytes}/{self.capacity_bytes}>")


__all__ = ["ADMITTED", "REFRESHED", "REJECTED", "TierStats", "Tier"]
