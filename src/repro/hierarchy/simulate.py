"""Replay a sized trace through a :class:`CacheHierarchy`.

:func:`simulate_hierarchy` is the hierarchy's counterpart of
:func:`repro.sized.simulator.simulate_sized`: feed it a
:class:`~repro.hierarchy.config.HierarchyConfig` and a ``(keys,
sizes)`` trace and get a :class:`HierarchyResult` with per-tier stats,
the overall hit ratio, flash write volume and the total access cost.

TTL-aware demotion: when the config carries ``ttl > 0`` the key stream
is rewritten through :func:`repro.traces.ttl.apply_ttl` before replay
-- each object's id changes every ``ttl`` requests, so a request after
expiry can never hit, while the stale copy (wherever it resides, DRAM
*or* flash) lingers until evicted.  Sizes stay attached to the
original request positions, so every version of an object keeps its
deterministic size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.analysis.tables import render_table
from repro.hierarchy.config import HierarchyConfig
from repro.hierarchy.hierarchy import (
    CacheHierarchy,
    coerce_hierarchy_config,
)
from repro.hierarchy.tier import TierStats
from repro.obs.metrics import MetricsRegistry
from repro.sized.workloads import SizedTrace
from repro.traces.ttl import apply_ttl


@dataclass(frozen=True)
class TierReport:
    """One tier's numbers, frozen for result objects and journals."""

    name: str
    kind: str
    policy: str
    capacity_bytes: int
    used_bytes: int
    lookups: int
    hits: int
    misses: int
    hit_bytes: int
    miss_bytes: int
    demoted_in_admitted: int
    demoted_in_refreshed: int
    demoted_in_rejected: int
    demoted_out: int
    writes: int
    write_bytes: int
    write_amplification: float

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_row(self) -> dict:
        """A plain journal/JSON row."""
        return {
            "name": self.name, "kind": self.kind, "policy": self.policy,
            "capacity_bytes": self.capacity_bytes,
            "used_bytes": self.used_bytes,
            "lookups": self.lookups, "hits": self.hits,
            "misses": self.misses,
            "demoted_in_admitted": self.demoted_in_admitted,
            "demoted_in_refreshed": self.demoted_in_refreshed,
            "demoted_in_rejected": self.demoted_in_rejected,
            "demoted_out": self.demoted_out,
            "writes": self.writes, "write_bytes": self.write_bytes,
            "write_amplification": round(self.write_amplification, 6),
        }


@dataclass(frozen=True)
class HierarchyResult:
    """Outcome of one hierarchy simulation run."""

    tiers: Tuple[TierReport, ...]
    requests: int
    overall_hits: int
    hits_by_tier: Tuple[Tuple[str, int], ...]
    backend_fetches: int
    total_cost: float
    ttl: int

    @property
    def overall_hit_ratio(self) -> float:
        """Fraction of requests served by any tier (DRAM + flash + ...)."""
        return self.overall_hits / self.requests if self.requests else 0.0

    @property
    def cost_per_request(self) -> float:
        return self.total_cost / self.requests if self.requests else 0.0

    def tier_report(self, name: str) -> TierReport:
        """The report row for tier *name*."""
        for report in self.tiers:
            if report.name == name:
                return report
        raise KeyError(f"unknown tier {name!r} (tiers: "
                       f"{', '.join(r.name for r in self.tiers)})")

    @property
    def flash_write_bytes(self) -> int:
        """Bytes written across every ``kind='flash'`` tier."""
        return sum(report.write_bytes for report in self.tiers
                   if report.kind == "flash")

    def render(self) -> str:
        body = [[report.name, report.policy, report.lookups,
                 f"{report.hit_ratio:.4f}", report.demoted_in_admitted,
                 report.demoted_in_rejected, report.write_bytes,
                 f"{report.write_amplification:.2f}"]
                for report in self.tiers]
        table = render_table(
            ["tier", "policy", "lookups", "hit ratio", "demotions in",
             "rejected", "bytes written", "write amp"],
            body,
            title=(f"hierarchy: {self.requests} requests, overall hit "
                   f"ratio {self.overall_hit_ratio:.4f}, "
                   f"cost/request {self.cost_per_request:.1f}"))
        return table


def _tier_report(tier) -> TierReport:
    stats: TierStats = tier.stats
    return TierReport(
        name=tier.name,
        kind=tier.config.kind,
        policy=tier.policy.name,
        capacity_bytes=tier.capacity_bytes,
        used_bytes=tier.used_bytes,
        lookups=stats.lookups,
        hits=stats.hits,
        misses=stats.misses,
        hit_bytes=stats.sized.hit_bytes,
        miss_bytes=stats.sized.miss_bytes,
        demoted_in_admitted=stats.demoted_in_admitted,
        demoted_in_refreshed=stats.demoted_in_refreshed,
        demoted_in_rejected=stats.demoted_in_rejected,
        demoted_out=stats.demoted_out,
        writes=stats.writes,
        write_bytes=stats.write_bytes,
        write_amplification=stats.write_amplification,
    )


def simulate_hierarchy(
    config: Optional[HierarchyConfig],
    sized: SizedTrace,
    *,
    registry: Optional[MetricsRegistry] = None,
    metric_labels: Optional[Dict[str, str]] = None,
    **legacy: object,
) -> HierarchyResult:
    """Replay a ``(keys, sizes)`` trace through a tier stack.

    The deprecated single-tier spelling
    ``simulate_hierarchy(None, sized, capacity_bytes=..., policy=...)``
    still works (``DeprecationWarning``, once per keyword) and behaves
    like the old bare sized simulator with demotion disabled.
    """
    config = coerce_hierarchy_config("simulate_hierarchy", config, legacy)
    keys, sizes = sized
    if len(keys) != len(sizes):
        raise ValueError("keys and sizes must have equal length")
    if config.ttl > 0:
        keys = apply_ttl(list(keys), config.ttl, jitter=config.ttl_jitter,
                         seed=config.ttl_seed).tolist()
    hierarchy = CacheHierarchy(config, registry=registry,
                               metric_labels=metric_labels)
    request = hierarchy.request
    for key, size in zip(keys, sizes):
        request(key, size)
    hierarchy.check_conservation()
    return HierarchyResult(
        tiers=tuple(_tier_report(tier) for tier in hierarchy.tiers),
        requests=hierarchy.requests,
        overall_hits=hierarchy.overall_hits,
        hits_by_tier=tuple(hierarchy.hits_by_tier.items()),
        backend_fetches=hierarchy.backend_fetches,
        total_cost=hierarchy.total_cost,
        ttl=config.ttl,
    )


__all__ = ["TierReport", "HierarchyResult", "simulate_hierarchy"]
