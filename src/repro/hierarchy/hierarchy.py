"""The multi-tier cache: lookup path, demotion cascade, cost model.

:class:`CacheHierarchy` stacks :class:`~repro.hierarchy.tier.Tier`
levels, top (fastest) first, and serves ``request(key, size)``:

1. **Lookup** walks the tiers top-down; the first tier holding the key
   serves it (charging that tier's ``read_cost``).  With
   ``promote_on_hit`` a lower-tier hit is also copied into tier 0 --
   the inclusive model: the lower copy stays, so demoting the object
   later refreshes instead of rewriting.  ``promote_on_hit=False`` is
   hierarchy-level lazy promotion: serve in place, pay the lower
   tier's read cost again next time.
2. **Miss** everywhere fetches from the backend
   (``backend_read_cost``) and fills tier 0.
3. **Demotion cascade**: every eviction an insert triggers is offered
   to the next tier down -- gated by that tier's admission controller
   -- instead of being discarded; evictions from the last tier leave
   the hierarchy.  Admitted demotions are data writes (flash write
   amplification is exactly the bytes accounted here); rejected ones
   cost nothing but a ghost/counter update.

The per-request work is synchronous and deterministic, so every
counter is bit-reproducible given the same trace.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Hashable, List, Optional

from repro.hierarchy.config import HierarchyConfig, TierConfig
from repro.hierarchy.tier import ADMITTED, Tier
from repro.obs.metrics import MetricsRegistry
from repro.sim.options import reject_mixed_options, warn_deprecated_kwarg

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.reqtrace import ActiveSpan, RequestTracer, TraceContext

Key = Hashable

#: Legacy single-tier kwargs accepted (deprecated) instead of a config.
_LEGACY_KEYS = ("capacity_bytes", "policy", "policy_params")


def coerce_hierarchy_config(func: str,
                            config: Optional[HierarchyConfig],
                            legacy: Dict[str, object]) -> HierarchyConfig:
    """Resolve *config* vs the legacy single-tier kwarg spelling.

    The sized simulator historically took a bare policy + byte budget;
    that spelling (``capacity_bytes=``, ``policy=``,
    ``policy_params=``) still works but emits a ``DeprecationWarning``
    once per keyword per process and builds a one-tier
    :class:`HierarchyConfig`.  Mixing it with ``config=`` raises.
    """
    unknown = sorted(set(legacy) - set(_LEGACY_KEYS))
    if unknown:
        raise TypeError(f"{func}() got unexpected keyword argument(s) "
                        f"{unknown}")
    reject_mixed_options(func, config, legacy)
    if config is not None:
        if not isinstance(config, HierarchyConfig):
            raise TypeError(
                f"{func}() config must be a HierarchyConfig, "
                f"got {type(config).__name__}")
        return config
    if not legacy or legacy.get("capacity_bytes") is None:
        raise TypeError(f"{func}() needs a HierarchyConfig "
                        f"(or the deprecated capacity_bytes=/policy= "
                        f"single-tier kwargs)")
    for kwarg in legacy:
        warn_deprecated_kwarg(func, kwarg,
                              "a HierarchyConfig via config=")
    params = legacy.get("policy_params") or {}
    if isinstance(params, dict):
        params = tuple(sorted(params.items()))
    return HierarchyConfig(tiers=(
        TierConfig(name="cache",
                   capacity_bytes=legacy["capacity_bytes"],
                   policy=legacy.get("policy") or "lru",
                   policy_params=params),
    ))


class CacheHierarchy:
    """A DRAM -> flash -> backend (or any N-level) simulated cache."""

    def __init__(self, config: Optional[HierarchyConfig] = None, *,
                 registry: Optional[MetricsRegistry] = None,
                 metric_labels: Optional[Dict[str, str]] = None,
                 tracer: Optional["RequestTracer"] = None,
                 **legacy: object) -> None:
        self.config = coerce_hierarchy_config("CacheHierarchy", config,
                                              legacy)
        self.tiers: List[Tier] = [
            Tier(tier_config, registry, metric_labels)
            for tier_config in self.config.tiers]
        # Request tracing is opt-in.  The hierarchy replay is
        # synchronous and clockless, so its spans are instantaneous
        # markers: what they add is the *shape* of a request -- which
        # tiers were probed, what was demoted where and with what
        # admission verdict.
        self.tracer = tracer
        self.requests = 0
        self.backend_fetches = 0
        self.total_cost = 0.0
        self._hits_by_tier = [0] * len(self.tiers)

    # ------------------------------------------------------------------
    def tier(self, name: str) -> Tier:
        """The tier labelled *name* (KeyError listing known names)."""
        for tier in self.tiers:
            if tier.name == name:
                return tier
        raise KeyError(f"unknown tier {name!r} "
                       f"(tiers: {', '.join(t.name for t in self.tiers)})")

    def __contains__(self, key: Key) -> bool:
        return any(key in tier for tier in self.tiers)

    # ------------------------------------------------------------------
    def request(self, key: Key, size: int,
                ctx: Optional["TraceContext"] = None) -> str:
        """Serve one request; returns the serving tier's name or ``"miss"``.

        ``size`` must be >= 1 (the policies validate); objects larger
        than every tier's budget pass straight through to the backend
        on every request.  ``ctx`` optionally joins an existing request
        trace; per-tier lookup/demotion spans then nest under it.
        """
        self.requests += 1
        span = None
        if self.tracer is not None:
            span = self.tracer.start("hierarchy.request", ctx=ctx,
                                     key=repr(key), size=size)
        hit_index = -1
        for index, tier in enumerate(self.tiers):
            hit = tier.lookup(key, size)
            if span is not None:
                probe = span.child("tier.lookup", tier=tier.name)
                probe.end(hit=hit)
            if hit:
                hit_index = index
                break
        if hit_index >= 0:
            served = self.tiers[hit_index]
            self.total_cost += served.config.read_cost
            self._hits_by_tier[hit_index] += 1
            if hit_index > 0 and self.config.promote_on_hit:
                top = self.tiers[0]
                if top.insert(key, size):
                    self.total_cost += top.config.write_cost
                    if span is not None:
                        span.note(promoted_to=top.name)
            # A same-tier hit can still evict (resize on a size
            # change): cascade unconditionally so no victim lingers.
            self._cascade(span=span)
            if span is not None:
                span.end(outcome=served.name)
            return served.name
        # Miss everywhere: fetch from the backend, fill the top tier.
        self.backend_fetches += 1
        self.total_cost += self.config.backend_read_cost
        top = self.tiers[0]
        if top.insert(key, size):
            self.total_cost += top.config.write_cost
        self._cascade(span=span)
        if span is not None:
            span.end(outcome="miss")
        return "miss"

    def _cascade(self, span: Optional["ActiveSpan"] = None) -> None:
        """Demote buffered evictions downward, one forward pass.

        Demotions only flow toward slower tiers, so a single top-down
        pass reaches a fixed point: inserting into tier *i+1* can only
        buffer evictions at *i+1* or below, which later iterations
        drain.
        """
        for index, tier in enumerate(self.tiers):
            evicted = tier.take_evicted()
            if not evicted:
                continue
            below = (self.tiers[index + 1]
                     if index + 1 < len(self.tiers) else None)
            for key, size in evicted:
                tier.stats.demoted_out += 1
                if below is None:
                    if span is not None:
                        demote = span.child("tier.demote", tier=tier.name,
                                            key=repr(key))
                        demote.end(verdict="evicted")
                    continue
                outcome = below.demote_in(key, size)
                if span is not None:
                    demote = span.child("tier.demote", tier=below.name,
                                        key=repr(key))
                    demote.end(verdict=outcome)
                if outcome == ADMITTED:
                    self.total_cost += below.config.write_cost

    # ------------------------------------------------------------------
    @property
    def hits_by_tier(self) -> Dict[str, int]:
        """Requests served per tier name."""
        return {tier.name: count for tier, count in
                zip(self.tiers, self._hits_by_tier)}

    @property
    def overall_hits(self) -> int:
        return sum(self._hits_by_tier)

    @property
    def overall_hit_ratio(self) -> float:
        """Fraction of requests served by *any* tier."""
        if self.requests == 0:
            return 0.0
        return self.overall_hits / self.requests

    @property
    def cost_per_request(self) -> float:
        if self.requests == 0:
            return 0.0
        return self.total_cost / self.requests

    def check_conservation(self) -> None:
        """Assert the hierarchy-wide accounting invariants.

        * per tier: ``hits + misses == lookups`` and bytes within
          budget;
        * between tiers: demotions out of tier *i* == admitted +
          refreshed + rejected at tier *i+1*;
        * overall: every request either hit some tier or fetched from
          the backend.
        """
        for tier in self.tiers:
            tier.check_invariants()
        for upper, lower in zip(self.tiers, self.tiers[1:]):
            assert upper.stats.demoted_out == lower.stats.demoted_in, (
                f"demotions out of {upper.name} "
                f"({upper.stats.demoted_out}) != attempts at "
                f"{lower.name} ({lower.stats.demoted_in})")
        assert self.overall_hits + self.backend_fetches == self.requests, (
            f"hits {self.overall_hits} + fetches {self.backend_fetches} "
            f"!= requests {self.requests}")
        assert self.tiers[0].stats.lookups == self.requests, (
            "top tier must see every request")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(repr(tier) for tier in self.tiers)
        return f"<CacheHierarchy [{inner}]>"


__all__ = ["CacheHierarchy", "coerce_hierarchy_config"]
