"""Segmented LRU (Karedla, Love & Wherry, 1994).

SLRU splits the cache into a *probationary* and a *protected* segment,
both LRU-ordered.  Misses enter the probationary segment; a hit
promotes the object into the protected segment; protected overflow
demotes its LRU object back to the probationary segment's MRU end.

SLRU is an early form of quick demotion -- objects never requested
again are confined to (and evicted from) the probationary segment --
but, as the paper notes for 2Q-family designs, its segment is large and
its demotion correspondingly slow compared to the QD wrapper's tiny
10 % probationary FIFO.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.core.base import EvictionPolicy, Key


class SLRU(EvictionPolicy):
    """Two-segment segmented LRU.

    ``protected_fraction`` controls the protected segment's share of
    the total capacity (0.5 by default; 0.8 is also common in CDN
    deployments).
    """

    name = "SLRU"

    def __init__(self, capacity: int, protected_fraction: float = 0.5) -> None:
        super().__init__(capacity)
        if not 0.0 < protected_fraction < 1.0:
            raise ValueError(
                f"protected_fraction must be in (0, 1), got {protected_fraction}")
        self.protected_capacity = max(1, round(capacity * protected_fraction))
        if self.protected_capacity >= capacity:
            self.protected_capacity = capacity - 1
        if self.protected_capacity < 1:
            # capacity == 1: degenerate to a single probationary slot.
            self.protected_capacity = 0
        self._probationary: "OrderedDict[Key, None]" = OrderedDict()
        self._protected: "OrderedDict[Key, None]" = OrderedDict()

    # ------------------------------------------------------------------
    def request(self, key: Key) -> bool:
        if key in self._protected:
            self._protected.move_to_end(key)
            self._promoted(key=key)
            self._record(True)
            self._notify_hit(key)
            return True
        if key in self._probationary:
            del self._probationary[key]
            self._promote(key)
            self._promoted(key=key)
            self._record(True)
            self._notify_hit(key)
            return True

        self._record(False)
        if len(self) >= self.capacity:
            victim, _ = self._probationary.popitem(last=False)
            self._notify_evict(victim)
        self._probationary[key] = None
        self._notify_admit(key)
        return False

    def _promote(self, key: Key) -> None:
        """Move *key* into the protected segment, demoting on overflow."""
        if self.protected_capacity == 0:
            self._probationary[key] = None
            return
        if len(self._protected) >= self.protected_capacity:
            demoted, _ = self._protected.popitem(last=False)
            self._probationary[demoted] = None
        self._protected[key] = None

    # ------------------------------------------------------------------
    def __contains__(self, key: Key) -> bool:
        return key in self._probationary or key in self._protected

    def __len__(self) -> int:
        return len(self._probationary) + len(self._protected)

    def in_protected(self, key: Key) -> bool:
        """Whether *key* currently sits in the protected segment."""
        return key in self._protected


__all__ = ["SLRU"]
