"""ARC: Adaptive Replacement Cache (Megiddo & Modha, FAST 2003).

ARC splits the cache into a recency list **T1** and a frequency list
**T2**, each shadowed by a metadata-only ghost list (**B1**, **B2**).
A ghost hit in B1 (an object evicted from T1 too soon) grows the target
size ``p`` of T1; a ghost hit in B2 shrinks it -- the cache continuously
adapts its recency/frequency balance to the workload.

ARC is the strongest of the five state-of-the-art algorithms in the
paper's study (it reduces LRU's miss ratio by 6.2 % on average across
the 5307 traces) and also the one the QD wrapper improves the least --
yet QD-ARC still wins by 2.3 % on average at the large cache size.
The implementation below follows the FAST'03 pseudocode exactly.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.core.base import EvictionPolicy, Key


class ARC(EvictionPolicy):
    """Adaptive Replacement Cache, faithful to the original pseudocode."""

    name = "ARC"

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self.p = 0.0  # target size of T1, adapted online
        self._t1: "OrderedDict[Key, None]" = OrderedDict()
        self._t2: "OrderedDict[Key, None]" = OrderedDict()
        self._b1: "OrderedDict[Key, None]" = OrderedDict()
        self._b2: "OrderedDict[Key, None]" = OrderedDict()

    # ------------------------------------------------------------------
    def request(self, key: Key) -> bool:
        # Case I: hit in T1 or T2 -> promote to T2's MRU end.
        if key in self._t1:
            del self._t1[key]
            self._t2[key] = None
            self._promoted(key=key)
            self._record(True)
            self._notify_hit(key)
            return True
        if key in self._t2:
            self._t2.move_to_end(key)
            self._promoted(key=key)
            self._record(True)
            self._notify_hit(key)
            return True

        self._record(False)
        c = self.capacity

        # Case II: ghost hit in B1 -> favour recency.
        if key in self._b1:
            delta = max(len(self._b2) / len(self._b1), 1.0)
            self.p = min(float(c), self.p + delta)
            self._replace(key)
            del self._b1[key]
            self._t2[key] = None
            self._notify_admit(key)
            return False

        # Case III: ghost hit in B2 -> favour frequency.
        if key in self._b2:
            delta = max(len(self._b1) / len(self._b2), 1.0)
            self.p = max(0.0, self.p - delta)
            self._replace(key)
            del self._b2[key]
            self._t2[key] = None
            self._notify_admit(key)
            return False

        # Case IV: a completely new key.
        l1 = len(self._t1) + len(self._b1)
        if l1 == c:
            if len(self._t1) < c:
                self._b1.popitem(last=False)
                self._replace(key)
            else:
                # B1 is empty and T1 is full: evict T1's LRU outright.
                victim, _ = self._t1.popitem(last=False)
                self._notify_evict(victim)
        else:
            total = l1 + len(self._t2) + len(self._b2)
            if total >= c:
                if total == 2 * c:
                    self._b2.popitem(last=False)
                self._replace(key)
        self._t1[key] = None
        self._notify_admit(key)
        return False

    def _replace(self, key: Key) -> None:
        """Evict one resident object into the appropriate ghost list."""
        if self._t1 and (
            len(self._t1) > self.p
            or (key in self._b2 and len(self._t1) == self.p)
        ):
            victim, _ = self._t1.popitem(last=False)
            self._b1[victim] = None
        else:
            victim, _ = self._t2.popitem(last=False)
            self._b2[victim] = None
        self._notify_evict(victim)

    # ------------------------------------------------------------------
    def __contains__(self, key: Key) -> bool:
        return key in self._t1 or key in self._t2

    def __len__(self) -> int:
        return len(self._t1) + len(self._t2)

    def in_t1(self, key: Key) -> bool:
        """Whether *key* is in the recency list T1."""
        return key in self._t1

    def in_t2(self, key: Key) -> bool:
        """Whether *key* is in the frequency list T2."""
        return key in self._t2


__all__ = ["ARC"]
