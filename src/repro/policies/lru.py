"""Least Recently Used eviction.

LRU is the reference point the paper argues against: every hit eagerly
promotes the object to the queue head (six pointer updates under a lock
in a real doubly-linked-list implementation), and demotion happens only
passively as other objects are promoted past it -- which is exactly why
unpopular new objects linger so long (§2).
"""

from __future__ import annotations

from collections import OrderedDict

from repro.core.base import EvictionPolicy, Key


class LRU(EvictionPolicy):
    """Classic LRU over an ordered map.

    The ``OrderedDict`` back end keeps the implementation honest: a hit
    costs a ``move_to_end`` (the eager promotion) and eviction pops the
    least-recent end.
    """

    name = "LRU"

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._queue: "OrderedDict[Key, None]" = OrderedDict()

    def request(self, key: Key) -> bool:
        if key in self._queue:
            self._queue.move_to_end(key)
            self._promoted(key=key)
            self._record(True)
            self._notify_hit(key)
            return True
        self._record(False)
        if len(self._queue) >= self.capacity:
            victim, _ = self._queue.popitem(last=False)
            self._notify_evict(victim)
        self._queue[key] = None
        self._notify_admit(key)
        return False

    def __contains__(self, key: Key) -> bool:
        return key in self._queue

    def __len__(self) -> int:
        return len(self._queue)

    def victim(self) -> Key:
        """The key that would be evicted next; ``KeyError`` if empty."""
        return next(iter(self._queue))


__all__ = ["LRU"]
