"""LIRS: Low Inter-reference Recency Set replacement (Jiang & Zhang,
SIGMETRICS 2002).

LIRS ranks blocks by *IRR* (inter-reference recency -- the number of
distinct blocks touched between consecutive accesses) rather than plain
recency.  Blocks with low IRR are **LIR** ("hot", ~99 % of the cache);
the rest are **HIR** and live in a small queue **Q** (~1 %) from which
eviction happens -- which is itself a form of quick demotion, though the
paper shows an explicit probationary FIFO in front (QD-LIRS) still
reduces LIRS's miss ratio by up to 49.8 %.

Structures:

* Stack **S**: recency-ordered metadata holding LIR blocks, resident
  HIR blocks, and a bounded number of *non-resident* HIR blocks.
* Queue **Q**: the resident HIR blocks, evicted FIFO.

Invariant maintained throughout ("stack pruning"): the bottom of S is
always a LIR block.  The paper's authors note that public LIRS
implementations are frequently buggy; the property-based tests in
``tests/policies/test_lirs.py`` check the invariants directly.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict

from repro.core.base import EvictionPolicy, Key
from repro.utils.linkedlist import KeyedList

_LIR = 0        # hot, resident, always in S
_HIR_RES = 1    # cold, resident, in Q (and possibly in S)
_HIR_NONRES = 2 # cold, metadata only, in S


class LIRS(EvictionPolicy):
    """The LIRS algorithm.

    ``hir_fraction`` sizes the resident-HIR queue Q (1 % in the
    original paper).  ``nonresident_factor`` bounds the non-resident
    metadata kept in S, in multiples of the cache capacity.
    """

    name = "LIRS"
    MIN_CAPACITY = 2

    def __init__(
        self,
        capacity: int,
        hir_fraction: float = 0.01,
        nonresident_factor: float = 2.0,
    ) -> None:
        super().__init__(capacity)
        if capacity < self.MIN_CAPACITY:
            raise ValueError("LIRS needs capacity >= 2 (one LIR + one HIR slot)")
        self.hir_capacity = max(1, round(capacity * hir_fraction))
        self.lir_capacity = capacity - self.hir_capacity
        if self.lir_capacity < 1:
            self.lir_capacity = 1
            self.hir_capacity = capacity - 1
        self._nonres_limit = max(1, round(capacity * nonresident_factor))

        self._stack: KeyedList[Key] = KeyedList()  # head = most recent
        self._queue: "OrderedDict[Key, None]" = OrderedDict()  # FIFO of HIR_RES
        self._state: Dict[Key, int] = {}
        #: non-resident HIR keys ordered by when they became non-resident
        self._nonres: "OrderedDict[Key, None]" = OrderedDict()
        self._lir_count = 0

    # ------------------------------------------------------------------
    def request(self, key: Key) -> bool:
        state = self._state.get(key)
        if state == _LIR:
            self._stack.move_to_head(key)
            self._promoted(key=key)
            self._prune()
            self._record(True)
            self._notify_hit(key)
            return True
        if state == _HIR_RES:
            self._hit_resident_hir(key)
            self._promoted(key=key)
            self._record(True)
            self._notify_hit(key)
            return True

        self._record(False)
        self._miss(key, state)
        self._notify_admit(key)
        return False

    # ------------------------------------------------------------------
    def _hit_resident_hir(self, key: Key) -> None:
        if key in self._stack:
            # Low IRR proven: upgrade to LIR.
            self._stack.move_to_head(key)
            self._state[key] = _LIR
            self._lir_count += 1
            del self._queue[key]
            if self._lir_count > self.lir_capacity:
                self._demote_bottom()
        else:
            # Still high IRR: refresh in S and Q, stay HIR.
            self._stack.push_head(key)
            self._queue.move_to_end(key)

    def _miss(self, key: Key, state) -> None:
        if self._lir_count < self.lir_capacity:
            # Cold start: fill the LIR set first.
            if key in self._stack:
                self._stack.move_to_head(key)
                self._nonres.pop(key, None)
            else:
                self._stack.push_head(key)
            self._state[key] = _LIR
            self._lir_count += 1
            return

        if state == _HIR_NONRES:
            # Detach from the non-resident bookkeeping *before* making
            # room: the eviction below may push another key into the
            # non-resident set and reclaim the oldest entry -- which
            # must never be the key being promoted right now.
            self._nonres.pop(key, None)

        if self._resident_count() >= self.capacity:
            self._evict_from_queue()

        if state == _HIR_NONRES:
            # Its reuse distance beat some LIR block: promote.
            self._stack.move_to_head(key)
            self._state[key] = _LIR
            self._lir_count += 1
            self._demote_bottom()
        else:
            self._state[key] = _HIR_RES
            self._stack.push_head(key)
            self._queue[key] = None

    def _evict_from_queue(self) -> None:
        victim, _ = self._queue.popitem(last=False)
        if victim in self._stack:
            self._state[victim] = _HIR_NONRES
            self._nonres[victim] = None
            if len(self._nonres) > self._nonres_limit:
                old, _ = self._nonres.popitem(last=False)
                self._stack.remove(old)
                del self._state[old]
        else:
            del self._state[victim]
        self._notify_evict(victim)

    def _demote_bottom(self) -> None:
        """Turn the stack's bottom LIR block into a resident HIR block."""
        bottom = self._stack.tail
        assert bottom is not None and self._state[bottom.key] == _LIR, (
            "LIRS invariant violated: stack bottom must be LIR")
        self._stack.remove_node(bottom)
        self._state[bottom.key] = _HIR_RES
        self._queue[bottom.key] = None
        self._lir_count -= 1
        self._prune()

    def _prune(self) -> None:
        """Remove HIR entries from the stack bottom until a LIR block."""
        while True:
            tail = self._stack.tail
            if tail is None:
                return
            state = self._state[tail.key]
            if state == _LIR:
                return
            self._stack.remove_node(tail)
            if state == _HIR_NONRES:
                # Pruned non-resident metadata disappears entirely.
                del self._state[tail.key]
                self._nonres.pop(tail.key, None)

    def _resident_count(self) -> int:
        return self._lir_count + len(self._queue)

    # ------------------------------------------------------------------
    def __contains__(self, key: Key) -> bool:
        return self._state.get(key) in (_LIR, _HIR_RES)

    def __len__(self) -> int:
        return self._resident_count()

    # Introspection for tests -------------------------------------------------
    def is_lir(self, key: Key) -> bool:
        """Whether *key* currently has LIR status."""
        return self._state.get(key) == _LIR

    @property
    def lir_count(self) -> int:
        """Number of LIR blocks."""
        return self._lir_count

    @property
    def stack_size(self) -> int:
        """Total entries (incl. non-resident metadata) in stack S."""
        return len(self._stack)


__all__ = ["LIRS"]
