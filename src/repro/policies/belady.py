"""Belady's MIN: the offline-optimal eviction algorithm (Belady, 1966).

MIN evicts the resident object whose *next* access lies farthest in the
future (or never comes).  It requires knowledge of the whole request
sequence, so it is usable only in simulation -- where it serves as the
efficiency upper bound.  The paper's Fig. 3 / Table 2 use Belady to
show that the optimal policy spends the fewest cache resources on
unpopular objects: perfect quick demotion.

Usage: call :meth:`prepare` with the full trace, then replay requests
in exactly that order (the simulator does this automatically for
:class:`~repro.core.base.OfflinePolicy` instances).
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Tuple

from repro.core.base import Key, OfflinePolicy

#: Sentinel next-access index for "never requested again".
NEVER = float("inf")


class Belady(OfflinePolicy):
    """Belady's MIN with a lazily-invalidated max-heap over next uses."""

    name = "Belady"

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._next_of_position: List[float] = []
        self._cursor = 0
        #: key -> next access position (NEVER when none)
        self._next_use: Dict[Key, float] = {}
        #: lazy max-heap of (-next_access, key)
        self._heap: List[Tuple[float, int, Key]] = []
        self._tiebreak = 0

    # ------------------------------------------------------------------
    def prepare(self, keys: Iterable[Key]) -> None:
        """Precompute, for each position, the key's next occurrence."""
        sequence = list(keys)
        n = len(sequence)
        next_of_position: List[float] = [NEVER] * n
        last_seen: Dict[Key, int] = {}
        for i in range(n - 1, -1, -1):
            key = sequence[i]
            nxt = last_seen.get(key)
            next_of_position[i] = NEVER if nxt is None else float(nxt)
            last_seen[key] = i
        self._next_of_position = next_of_position
        self._cursor = 0
        self._next_use.clear()
        self._heap.clear()
        self._tiebreak = 0

    # ------------------------------------------------------------------
    def request(self, key: Key) -> bool:
        if self._cursor >= len(self._next_of_position):
            raise RuntimeError(
                "Belady received more requests than it was prepared for; "
                "call prepare() with the full trace first")
        next_access = self._next_of_position[self._cursor]
        self._cursor += 1

        if key in self._next_use:
            self._set_next(key, next_access)
            self._record(True)
            self._notify_hit(key)
            return True

        self._record(False)
        if len(self._next_use) >= self.capacity:
            self._evict_one()
        self._set_next(key, next_access)
        self._notify_admit(key)
        return False

    def _set_next(self, key: Key, next_access: float) -> None:
        self._next_use[key] = next_access
        self._tiebreak += 1
        heapq.heappush(self._heap, (-next_access, self._tiebreak, key))

    def _evict_one(self) -> None:
        while True:
            neg_next, _, key = heapq.heappop(self._heap)
            if self._next_use.get(key) == -neg_next:
                del self._next_use[key]
                self._notify_evict(key)
                return

    # ------------------------------------------------------------------
    def __contains__(self, key: Key) -> bool:
        return key in self._next_use

    def __len__(self) -> int:
        return len(self._next_use)


__all__ = ["Belady", "NEVER"]
