"""LHD: Least Hit Density eviction (Beckmann, Chen & Cidon, NSDI 2018).

LHD ranks objects by *hit density*: the expected number of future hits
per unit of cache space-time the object will consume.  The policy
learns, from observed hit and eviction ages, the age-conditional
probability of a future hit and the expected remaining lifetime, and
evicts (by random sampling, as in the original) the object whose hit
density is lowest.

Faithful-in-spirit reimplementation (see DESIGN.md): ages are coarsened
into logarithmic buckets, statistics are aged with an EWMA at periodic
reconfigurations, and objects are partitioned into two classes --
never-hit ("fresh") and reused -- standing in for the original's
app/hit-count classes.  The decision rule (sampled eviction by minimum
learned hit density) matches the published algorithm.

The paper uses LHD both as one of the five QD-enhanced state-of-the-art
algorithms (Fig. 5) and in the resource-consumption study (Fig. 3),
where LHD spends visibly less space-time on unpopular objects than LRU.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Tuple

from repro.core.base import EvictionPolicy, Key

_NUM_BUCKETS = 32
_CLASS_FRESH = 0
_CLASS_REUSED = 1


def _age_bucket(age: int) -> int:
    """Logarithmic age coarsening: bucket(a) = floor(log2(a + 1))."""
    if age <= 0:
        return 0
    return min(int(math.log2(age + 1)), _NUM_BUCKETS - 1)


def _bucket_mid(bucket: int) -> float:
    """Representative (midpoint) age of a bucket."""
    lo = (1 << bucket) - 1
    hi = (1 << (bucket + 1)) - 2
    return (lo + hi) / 2.0


class LHD(EvictionPolicy):
    """Sampled least-hit-density eviction with learned age statistics."""

    name = "LHD"

    def __init__(
        self,
        capacity: int,
        sample_size: int = 32,
        ewma_decay: float = 0.9,
        seed: int = 0,
    ) -> None:
        super().__init__(capacity)
        if sample_size < 1:
            raise ValueError(f"sample_size must be >= 1, got {sample_size}")
        self.sample_size = sample_size
        self.ewma_decay = ewma_decay
        self._rng = random.Random(seed)
        self._clock = 0
        self._reconf_interval = max(1000, capacity)
        self._next_reconf = self._reconf_interval

        #: key -> (last_access_time, class)
        self._meta: Dict[Key, Tuple[int, int]] = {}
        self._keys: List[Key] = []
        self._pos: Dict[Key, int] = {}

        # Per-class age histograms of hits and evictions.
        self._hits = [[0.0] * _NUM_BUCKETS for _ in range(2)]
        self._evictions = [[0.0] * _NUM_BUCKETS for _ in range(2)]
        # Learned density tables, seeded with an LRU-like prior
        # (younger objects denser) so cold-start decisions are sane.
        self._density = [
            [1.0 / (_bucket_mid(b) + 1.0) for b in range(_NUM_BUCKETS)]
            for _ in range(2)
        ]

    # ------------------------------------------------------------------
    def request(self, key: Key) -> bool:
        self._clock += 1
        if self._clock >= self._next_reconf:
            self._reconfigure()
        meta = self._meta.get(key)
        if meta is not None:
            last, klass = meta
            bucket = _age_bucket(self._clock - last)
            self._hits[klass][bucket] += 1.0
            self._meta[key] = (self._clock, _CLASS_REUSED)
            self._record(True)
            self._notify_hit(key)
            return True

        self._record(False)
        if len(self._keys) >= self.capacity:
            self._evict_one()
        self._meta[key] = (self._clock, _CLASS_FRESH)
        self._pos[key] = len(self._keys)
        self._keys.append(key)
        self._notify_admit(key)
        return False

    # ------------------------------------------------------------------
    def _hit_density(self, key: Key) -> float:
        last, klass = self._meta[key]
        bucket = _age_bucket(self._clock - last)
        return self._density[klass][bucket]

    def _evict_one(self) -> None:
        n = len(self._keys)
        if n <= self.sample_size:
            sample = self._keys
        else:
            sample = [self._keys[self._rng.randrange(n)]
                      for _ in range(self.sample_size)]
        victim = min(sample, key=self._hit_density)
        last, klass = self._meta[victim]
        self._evictions[klass][_age_bucket(self._clock - last)] += 1.0
        self._remove(victim)
        self._notify_evict(victim)

    def _remove(self, key: Key) -> None:
        idx = self._pos.pop(key)
        last = self._keys.pop()
        if last is not key:
            self._keys[idx] = last
            self._pos[last] = idx
        del self._meta[key]

    def _reconfigure(self) -> None:
        """Recompute hit-density tables and age the statistics.

        Backward sweep: for an object currently at age bucket *b*, its
        expected future hits are proportional to the hits observed at
        ages >= b, and its expected remaining space-time integrates the
        age gap to each of those future events:

            density(b) = sum_{b' >= b} hits[b']
                       / sum_{b' >= b} (mid(b') - mid(b) + 1) * events[b']
        """
        self._next_reconf = self._clock + self._reconf_interval
        for klass in range(2):
            hits = self._hits[klass]
            evictions = self._evictions[klass]
            density = self._density[klass]
            hits_above = 0.0
            events_above = 0.0
            lifetime_above = 0.0
            for b in range(_NUM_BUCKETS - 1, -1, -1):
                events = hits[b] + evictions[b]
                if b < _NUM_BUCKETS - 1:
                    gap = _bucket_mid(b + 1) - _bucket_mid(b)
                    lifetime_above += gap * events_above
                hits_above += hits[b]
                events_above += events
                lifetime_above += events  # each in-bucket event costs ~1
                if events_above > 0.0 and lifetime_above > 0.0:
                    density[b] = hits_above / lifetime_above
                # else: keep the previous (or prior) density for b.
            # Age the histograms so the tables track workload drift.
            for b in range(_NUM_BUCKETS):
                hits[b] *= self.ewma_decay
                evictions[b] *= self.ewma_decay

    # ------------------------------------------------------------------
    def __contains__(self, key: Key) -> bool:
        return key in self._meta

    def __len__(self) -> int:
        return len(self._keys)


__all__ = ["LHD"]
