"""Hyperbolic caching (Blankstein, Sen & Freedman, ATC 2017).

Each object's priority is ``frequency / time-in-cache``; the intuition
is that an object's value is its observed request *rate*, which decays
hyperbolically rather than exponentially.  Because priorities of idle
objects fall continuously, the implementation (like the original)
evicts the lowest-priority object among a random sample rather than
maintaining a total order.

The paper cites hyperbolic caching as an alternative quick-demotion
technique: new objects that attract no requests see their priority
collapse quickly.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.core.base import EvictionPolicy, Key


class Hyperbolic(EvictionPolicy):
    """Sampled hyperbolic eviction.

    ``sample_size=64`` follows the original paper's default.
    """

    name = "Hyperbolic"

    def __init__(self, capacity: int, sample_size: int = 64, seed: int = 0) -> None:
        super().__init__(capacity)
        if sample_size < 1:
            raise ValueError(f"sample_size must be >= 1, got {sample_size}")
        self.sample_size = sample_size
        self._rng = random.Random(seed)
        self._clock = 0
        #: key -> (frequency, insert_time)
        self._meta: Dict[Key, Tuple[int, int]] = {}
        self._keys: List[Key] = []
        self._pos: Dict[Key, int] = {}

    # ------------------------------------------------------------------
    def request(self, key: Key) -> bool:
        self._clock += 1
        meta = self._meta.get(key)
        if meta is not None:
            freq, born = meta
            self._meta[key] = (freq + 1, born)
            self._record(True)
            self._notify_hit(key)
            return True

        self._record(False)
        if len(self._keys) >= self.capacity:
            self._evict_one()
        self._meta[key] = (1, self._clock)
        self._pos[key] = len(self._keys)
        self._keys.append(key)
        self._notify_admit(key)
        return False

    def _priority(self, key: Key) -> float:
        freq, born = self._meta[key]
        age = max(1, self._clock - born)
        return freq / age

    def _evict_one(self) -> None:
        n = len(self._keys)
        if n <= self.sample_size:
            sample = self._keys
        else:
            sample = [self._keys[self._rng.randrange(n)]
                      for _ in range(self.sample_size)]
        victim = min(sample, key=self._priority)
        self._remove(victim)
        self._notify_evict(victim)

    def _remove(self, key: Key) -> None:
        idx = self._pos.pop(key)
        last = self._keys.pop()
        if last is not key:
            self._keys[idx] = last
            self._pos[last] = idx
        del self._meta[key]

    # ------------------------------------------------------------------
    def __contains__(self, key: Key) -> bool:
        return key in self._meta

    def __len__(self) -> int:
        return len(self._keys)


__all__ = ["Hyperbolic"]
