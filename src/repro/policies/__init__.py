"""Eviction-algorithm zoo: baselines and the five state-of-the-art
algorithms the paper QD-enhances (ARC, LIRS, CACHEUS, LeCaR, LHD),
plus the offline-optimal Belady bound.
"""

from repro.policies.arc import ARC
from repro.policies.belady import Belady
from repro.policies.cacheus import CACHEUS
from repro.policies.fifo import FIFO
from repro.policies.hyperbolic import Hyperbolic
from repro.policies.lecar import LeCaR
from repro.policies.lfu import LFU
from repro.policies.lhd import LHD
from repro.policies.lirs import LIRS
from repro.policies.lrfu import LRFU
from repro.policies.lru import LRU
from repro.policies.mq import MQ
from repro.policies.random_policy import RandomCache
from repro.policies.registry import REGISTRY, SOTA_NAMES, PolicySpec, make, names
from repro.policies.slru import SLRU
from repro.policies.twoq import TwoQ
from repro.policies.wtinylfu import WTinyLFU

__all__ = [
    "ARC",
    "Belady",
    "CACHEUS",
    "FIFO",
    "Hyperbolic",
    "LeCaR",
    "LFU",
    "LHD",
    "LIRS",
    "LRFU",
    "LRU",
    "MQ",
    "RandomCache",
    "REGISTRY",
    "SOTA_NAMES",
    "PolicySpec",
    "make",
    "names",
    "SLRU",
    "TwoQ",
    "WTinyLFU",
]
