"""Policy registry: names -> factories.

A single place mapping algorithm names (as used in the paper's figures)
to constructors, so experiments, benchmarks, tests and the command-line
examples all agree on spelling and configuration.  QD-enhanced variants
of the five state-of-the-art algorithms are registered with a ``QD-``
prefix, mirroring the paper's QD-ARC / QD-LIRS / ... naming.

:func:`make` is the stable public constructor (see docs/api.md):

* **Parameter passthrough** -- ``make("2-bit-CLOCK", 100)`` uses the
  paper's configuration; ``make("QD-LP-FIFO", 100,
  probation_fraction=0.05)`` forwards keyword parameters to the
  policy's constructor.  Unknown parameters raise ``TypeError`` naming
  the policy.
* **Alias resolution** -- lookups are case-insensitive and ignore
  separators (``"sieve"``, ``"fifo-reinsertion"``, ``"2bit-clock"``,
  ``"s3fifo"`` all resolve), plus a small table of spelled-out aliases
  (``"clock2"``, ``"second-chance"``, ``"optimal"``...).
* **Did-you-mean** -- a typo raises ``KeyError`` suggesting the
  closest registered names.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.base import EvictionPolicy
from repro.sized.base import SizedEvictionPolicy
from repro.sized.policies import GDSF, SizedClock, SizedFIFO, SizedLRU
from repro.sized.qd import SizedQDCache, SizedQDLPFIFO
from repro.core.adaptive_qd import AdaptiveQDLPFIFO
from repro.core.clock import FIFOReinsertion, KBitClock
from repro.core.lp_variants import PeriodicPromotionLRU, PromoteOldOnlyLRU
from repro.core.qd import QDCache
from repro.core.qdlpfifo import QDLPFIFO
from repro.core.s3fifo import S3FIFO
from repro.core.sieve import Sieve
from repro.policies.arc import ARC
from repro.policies.belady import Belady
from repro.policies.cacheus import CACHEUS
from repro.policies.fifo import FIFO
from repro.policies.hyperbolic import Hyperbolic
from repro.policies.lecar import LeCaR
from repro.policies.lfu import LFU
from repro.policies.lhd import LHD
from repro.policies.lirs import LIRS
from repro.policies.lrfu import LRFU
from repro.policies.lru import LRU
from repro.policies.mq import MQ
from repro.policies.random_policy import RandomCache
from repro.policies.slru import SLRU
from repro.policies.twoq import TwoQ
from repro.policies.wtinylfu import WTinyLFU

#: Policy constructor: ``factory(capacity, **params)``.
Factory = Callable[..., EvictionPolicy]


@dataclass(frozen=True)
class PolicySpec:
    """Registry entry for one algorithm."""

    name: str
    factory: Factory
    category: str  # baseline | lp-fifo | sota | qd | offline | extension
    min_capacity: int = 1


def _qd(factory: Callable[[int], EvictionPolicy]) -> Factory:
    """Wrap a main-cache factory in the paper's QD configuration.

    The returned factory forwards ``probation_fraction`` and
    ``ghost_factor`` overrides to :class:`~repro.core.qd.QDCache`.
    """

    def build(capacity: int, **params: float) -> QDCache:
        return QDCache(capacity, factory, **params)

    return build


def _kbit_clock(default_bits: int) -> Factory:
    """CLOCK factory whose ``bits`` default matches the registered name."""

    def build(capacity: int, bits: int = default_bits) -> KBitClock:
        return KBitClock(capacity, bits=bits)

    return build


_SPECS: List[PolicySpec] = [
    # Baselines
    PolicySpec("FIFO", FIFO, "baseline"),
    PolicySpec("LRU", LRU, "baseline"),
    PolicySpec("LFU", LFU, "baseline"),
    PolicySpec("Random", RandomCache, "baseline"),
    PolicySpec("SLRU", SLRU, "baseline", min_capacity=2),
    PolicySpec("2Q", TwoQ, "baseline", min_capacity=2),
    PolicySpec("MQ", MQ, "baseline"),
    PolicySpec("LRFU", LRFU, "baseline"),
    PolicySpec("Hyperbolic", Hyperbolic, "baseline"),
    # Lazy-Promotion FIFO family (the paper's §3)
    PolicySpec("FIFO-Reinsertion", FIFOReinsertion, "lp-fifo"),
    PolicySpec("2-bit-CLOCK", _kbit_clock(2), "lp-fifo"),
    PolicySpec("3-bit-CLOCK", _kbit_clock(3), "lp-fifo"),
    PolicySpec("PeriodicPromotion-LRU", PeriodicPromotionLRU, "lp-fifo"),
    PolicySpec("PromoteOldOnly-LRU", PromoteOldOnlyLRU, "lp-fifo"),
    # State of the art (the five algorithms QD-enhanced in Fig. 5)
    PolicySpec("ARC", ARC, "sota"),
    PolicySpec("LIRS", LIRS, "sota", min_capacity=2),
    PolicySpec("CACHEUS", CACHEUS, "sota"),
    PolicySpec("LeCaR", LeCaR, "sota"),
    PolicySpec("LHD", LHD, "sota"),
    # QD-enhanced variants (paper §4, Fig. 4/5)
    PolicySpec("QD-ARC", _qd(ARC), "qd", min_capacity=2),
    PolicySpec("QD-LIRS", _qd(LIRS), "qd", min_capacity=3),
    PolicySpec("QD-CACHEUS", _qd(CACHEUS), "qd", min_capacity=2),
    PolicySpec("QD-LeCaR", _qd(LeCaR), "qd", min_capacity=2),
    PolicySpec("QD-LHD", _qd(LHD), "qd", min_capacity=2),
    PolicySpec("QD-LP-FIFO", QDLPFIFO, "qd", min_capacity=2),
    # Offline optimal
    PolicySpec("Belady", Belady, "offline"),
    # Extensions this paper spawned
    PolicySpec("S3-FIFO", S3FIFO, "extension", min_capacity=2),
    PolicySpec("W-TinyLFU", WTinyLFU, "extension", min_capacity=2),
    PolicySpec("Adaptive-QD-LP-FIFO", AdaptiveQDLPFIFO, "extension",
               min_capacity=3),
    PolicySpec("SIEVE", Sieve, "extension"),
]

REGISTRY: Dict[str, PolicySpec] = {spec.name: spec for spec in _SPECS}

#: The five state-of-the-art algorithms of the paper's Fig. 5.
SOTA_NAMES = ["ARC", "LIRS", "CACHEUS", "LeCaR", "LHD"]

#: Spelled-out aliases whose normalised form differs from any canonical
#: name.  Normalisation (lowercase, separators stripped) already covers
#: spellings like "sieve", "fifo-reinsertion", "2bit-clock" or "s3fifo".
ALIASES: Dict[str, str] = {
    "clock": "2-bit-CLOCK",
    "clock2": "2-bit-CLOCK",
    "clock3": "3-bit-CLOCK",
    "secondchance": "FIFO-Reinsertion",
    "1bitclock": "FIFO-Reinsertion",
    "fiforeinsert": "FIFO-Reinsertion",
    "opt": "Belady",
    "optimal": "Belady",
    "min": "Belady",
    "tinylfu": "W-TinyLFU",
    "qdlpfifo": "QD-LP-FIFO",
    "rand": "Random",
}

_SEPARATORS = str.maketrans("", "", "-_ ./")


def _normalize(name: str) -> str:
    """Canonicalise a lookup key: lowercase, separators stripped."""
    return name.lower().translate(_SEPARATORS)


_LOOKUP: Dict[str, PolicySpec] = {}
for _spec in _SPECS:
    _LOOKUP[_normalize(_spec.name)] = _spec
for _alias, _target in ALIASES.items():
    _LOOKUP.setdefault(_normalize(_alias), REGISTRY[_target])


# ----------------------------------------------------------------------
# Size-aware (byte-budgeted) policies: same registry machinery
# ----------------------------------------------------------------------

#: Sized policy constructor: ``factory(capacity_bytes, **params)``.
SizedFactory = Callable[..., SizedEvictionPolicy]


def _sized_clock(default_bits: int) -> SizedFactory:
    """Sized CLOCK factory whose ``bits`` default matches the name."""

    def build(capacity_bytes: int, bits: int = default_bits) -> SizedClock:
        return SizedClock(capacity_bytes, bits=bits)

    return build


def _sized_qd_gdsf(capacity_bytes: int, **params: float) -> SizedQDCache:
    return SizedQDCache(capacity_bytes, GDSF, **params)


_SIZED_SPECS: List[PolicySpec] = [
    PolicySpec("Sized-FIFO", SizedFIFO, "sized"),
    PolicySpec("Sized-LRU", SizedLRU, "sized"),
    PolicySpec("Sized-2-bit-CLOCK", _sized_clock(2), "sized"),
    PolicySpec("Sized-3-bit-CLOCK", _sized_clock(3), "sized"),
    PolicySpec("GDSF", GDSF, "sized"),
    PolicySpec("Sized-QD-LP-FIFO", SizedQDLPFIFO, "sized", min_capacity=2),
    PolicySpec("Sized-QD-GDSF", _sized_qd_gdsf, "sized", min_capacity=2),
]

SIZED_REGISTRY: Dict[str, PolicySpec] = {
    spec.name: spec for spec in _SIZED_SPECS}

#: Unsized canonical name -> its size-aware counterpart, letting every
#: unsized spelling (and alias -- ``clock``, ``qdlpfifo``, ...) resolve
#: through the one alias table: ``make_sized("lru", ...)`` works.
SIZED_COUNTERPARTS: Dict[str, str] = {
    "FIFO": "Sized-FIFO",
    "LRU": "Sized-LRU",
    "2-bit-CLOCK": "Sized-2-bit-CLOCK",
    "3-bit-CLOCK": "Sized-3-bit-CLOCK",
    "QD-LP-FIFO": "Sized-QD-LP-FIFO",
}

#: Spelled-out sized aliases beyond case/separator normalisation.
SIZED_ALIASES: Dict[str, str] = {
    "sizedclock": "Sized-2-bit-CLOCK",
    "greedydualsizefrequency": "GDSF",
    "greedydualsize": "GDSF",
    "qdgdsf": "Sized-QD-GDSF",
}

_SIZED_LOOKUP: Dict[str, PolicySpec] = {}
for _spec in _SIZED_SPECS:
    _SIZED_LOOKUP[_normalize(_spec.name)] = _spec
for _alias, _target in SIZED_ALIASES.items():
    _SIZED_LOOKUP.setdefault(_normalize(_alias), SIZED_REGISTRY[_target])


def resolve_sized(name: str) -> PolicySpec:
    """Look up a size-aware policy through the unified registry.

    *name* may be a canonical sized name (``Sized-LRU``, ``GDSF``), any
    case/separator variant, a sized alias, **or any unsized spelling**
    (canonical or alias: ``lru``, ``clock``, ``qd_lp_fifo``) that has a
    size-aware counterpart.  Raises ``KeyError`` with did-you-mean
    suggestions on a typo, or naming the missing counterpart when the
    unsized policy has no size-aware build.
    """
    spec = _SIZED_LOOKUP.get(_normalize(name))
    if spec is not None:
        return spec
    # An unsized spelling (name or alias) with a sized counterpart?
    unsized = _LOOKUP.get(_normalize(name))
    if unsized is not None:
        counterpart = SIZED_COUNTERPARTS.get(unsized.name)
        if counterpart is not None:
            return SIZED_REGISTRY[counterpart]
        raise KeyError(
            f"policy {unsized.name!r} has no size-aware counterpart "
            f"(sized policies: {', '.join(sorted(SIZED_REGISTRY))})")
    candidates = set(_SIZED_LOOKUP) | {
        _normalize(n) for n in SIZED_COUNTERPARTS}
    close = difflib.get_close_matches(_normalize(name), candidates, n=3,
                                      cutoff=0.6)
    suggestions = sorted({
        _SIZED_LOOKUP[c].name if c in _SIZED_LOOKUP
        else SIZED_REGISTRY[SIZED_COUNTERPARTS[_LOOKUP[c].name]].name
        for c in close})
    hint = (f"; did you mean {' or '.join(repr(s) for s in suggestions)}?"
            if suggestions else "")
    known = ", ".join(sorted(SIZED_REGISTRY))
    raise KeyError(
        f"unknown sized policy {name!r}{hint} "
        f"(known sized policies: {known})")


def make_sized(name: str, capacity_bytes: int,
               **params: object) -> SizedEvictionPolicy:
    """Instantiate the size-aware policy registered under *name*.

    The byte-budget twin of :func:`make`: same alias resolution, same
    did-you-mean errors, same parameter passthrough (``bits`` for the
    sized CLOCK family, ``probation_fraction``/``ghost_factor`` for the
    sized QD wrappers).  Unsized spellings resolve to their sized
    counterpart, so ``make_sized("lru", 1 << 20)`` builds a
    ``Sized-LRU``.
    """
    spec = resolve_sized(name)
    if isinstance(capacity_bytes, int) and not isinstance(
            capacity_bytes, bool) and capacity_bytes < spec.min_capacity:
        raise ValueError(
            f"{spec.name} needs capacity_bytes >= {spec.min_capacity}, "
            f"got {capacity_bytes}")
    try:
        return spec.factory(capacity_bytes, **params)
    except TypeError as exc:
        if params:
            raise TypeError(
                f"policy {spec.name!r} rejected parameters "
                f"{sorted(params)}: {exc}") from exc
        raise


def canonical_sized_name(name: str) -> str:
    """The sized registry name *name* resolves to (e.g. ``lru`` -> ``Sized-LRU``)."""
    return resolve_sized(name).name


def sized_names() -> List[str]:
    """All registered size-aware policy names."""
    return [spec.name for spec in _SIZED_SPECS]


def resolve(name: str) -> PolicySpec:
    """Look up *name* (canonical, any case/separator variant, or alias).

    Raises ``KeyError`` with did-you-mean suggestions on a typo.
    """
    spec = _LOOKUP.get(_normalize(name))
    if spec is not None:
        return spec
    close = difflib.get_close_matches(_normalize(name), _LOOKUP, n=3,
                                      cutoff=0.6)
    suggestions = sorted({_LOOKUP[c].name for c in close})
    hint = (f"; did you mean {' or '.join(repr(s) for s in suggestions)}?"
            if suggestions else "")
    known = ", ".join(sorted(REGISTRY))
    raise KeyError(
        f"unknown policy {name!r}{hint} (known policies: {known})")


def canonical_name(name: str) -> str:
    """The registered name *name* resolves to (e.g. ``clock2`` -> ``2-bit-CLOCK``)."""
    return resolve(name).name


def make(name: str, capacity: int, **params: object) -> EvictionPolicy:
    """Instantiate the policy registered under *name*.

    *name* may be a canonical name, any case/separator variant of one,
    or an alias from :data:`ALIASES`.  Keyword *params* are forwarded to
    the policy's constructor (e.g. ``bits`` for the CLOCK family,
    ``probation_fraction``/``ghost_factor`` for the QD family).

    Raises ``KeyError`` with did-you-mean suggestions on a typo,
    ``ValueError`` when *capacity* is below the policy's minimum, and
    ``TypeError`` naming the policy when it rejects a parameter.
    """
    spec = resolve(name)
    if capacity < spec.min_capacity:
        raise ValueError(
            f"{spec.name} needs capacity >= {spec.min_capacity}, "
            f"got {capacity}")
    try:
        return spec.factory(capacity, **params)
    except TypeError as exc:
        if params:
            raise TypeError(
                f"policy {spec.name!r} rejected parameters "
                f"{sorted(params)}: {exc}") from exc
        raise


def names(category: Optional[str] = None) -> List[str]:
    """All registered names, optionally filtered by category."""
    if category is None:
        return [spec.name for spec in _SPECS]
    return [spec.name for spec in _SPECS if spec.category == category]


__all__ = [
    "PolicySpec",
    "REGISTRY",
    "ALIASES",
    "SOTA_NAMES",
    "make",
    "resolve",
    "canonical_name",
    "names",
    "Factory",
    "SIZED_REGISTRY",
    "SIZED_ALIASES",
    "SIZED_COUNTERPARTS",
    "make_sized",
    "resolve_sized",
    "canonical_sized_name",
    "sized_names",
    "SizedFactory",
]
