"""Policy registry: names -> factories.

A single place mapping algorithm names (as used in the paper's figures)
to constructors, so experiments, benchmarks, tests and the command-line
examples all agree on spelling and configuration.  QD-enhanced variants
of the five state-of-the-art algorithms are registered with a ``QD-``
prefix, mirroring the paper's QD-ARC / QD-LIRS / ... naming.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.core.base import EvictionPolicy
from repro.core.adaptive_qd import AdaptiveQDLPFIFO
from repro.core.clock import FIFOReinsertion, KBitClock
from repro.core.lp_variants import PeriodicPromotionLRU, PromoteOldOnlyLRU
from repro.core.qd import QDCache
from repro.core.qdlpfifo import QDLPFIFO
from repro.core.s3fifo import S3FIFO
from repro.core.sieve import Sieve
from repro.policies.arc import ARC
from repro.policies.belady import Belady
from repro.policies.cacheus import CACHEUS
from repro.policies.fifo import FIFO
from repro.policies.hyperbolic import Hyperbolic
from repro.policies.lecar import LeCaR
from repro.policies.lfu import LFU
from repro.policies.lhd import LHD
from repro.policies.lirs import LIRS
from repro.policies.lrfu import LRFU
from repro.policies.lru import LRU
from repro.policies.mq import MQ
from repro.policies.random_policy import RandomCache
from repro.policies.slru import SLRU
from repro.policies.twoq import TwoQ
from repro.policies.wtinylfu import WTinyLFU

Factory = Callable[[int], EvictionPolicy]


@dataclass(frozen=True)
class PolicySpec:
    """Registry entry for one algorithm."""

    name: str
    factory: Factory
    category: str  # baseline | lp-fifo | sota | qd | offline | extension
    min_capacity: int = 1


def _qd(factory: Factory) -> Factory:
    """Wrap a main-cache factory in the paper's QD configuration."""
    return lambda capacity: QDCache(capacity, factory)


_SPECS: List[PolicySpec] = [
    # Baselines
    PolicySpec("FIFO", FIFO, "baseline"),
    PolicySpec("LRU", LRU, "baseline"),
    PolicySpec("LFU", LFU, "baseline"),
    PolicySpec("Random", RandomCache, "baseline"),
    PolicySpec("SLRU", SLRU, "baseline", min_capacity=2),
    PolicySpec("2Q", TwoQ, "baseline", min_capacity=2),
    PolicySpec("MQ", MQ, "baseline"),
    PolicySpec("LRFU", LRFU, "baseline"),
    PolicySpec("Hyperbolic", Hyperbolic, "baseline"),
    # Lazy-Promotion FIFO family (the paper's §3)
    PolicySpec("FIFO-Reinsertion", FIFOReinsertion, "lp-fifo"),
    PolicySpec("2-bit-CLOCK", lambda c: KBitClock(c, bits=2), "lp-fifo"),
    PolicySpec("3-bit-CLOCK", lambda c: KBitClock(c, bits=3), "lp-fifo"),
    PolicySpec("PeriodicPromotion-LRU", PeriodicPromotionLRU, "lp-fifo"),
    PolicySpec("PromoteOldOnly-LRU", PromoteOldOnlyLRU, "lp-fifo"),
    # State of the art (the five algorithms QD-enhanced in Fig. 5)
    PolicySpec("ARC", ARC, "sota"),
    PolicySpec("LIRS", LIRS, "sota", min_capacity=2),
    PolicySpec("CACHEUS", CACHEUS, "sota"),
    PolicySpec("LeCaR", LeCaR, "sota"),
    PolicySpec("LHD", LHD, "sota"),
    # QD-enhanced variants (paper §4, Fig. 4/5)
    PolicySpec("QD-ARC", _qd(ARC), "qd", min_capacity=2),
    PolicySpec("QD-LIRS", _qd(LIRS), "qd", min_capacity=3),
    PolicySpec("QD-CACHEUS", _qd(CACHEUS), "qd", min_capacity=2),
    PolicySpec("QD-LeCaR", _qd(LeCaR), "qd", min_capacity=2),
    PolicySpec("QD-LHD", _qd(LHD), "qd", min_capacity=2),
    PolicySpec("QD-LP-FIFO", QDLPFIFO, "qd", min_capacity=2),
    # Offline optimal
    PolicySpec("Belady", Belady, "offline"),
    # Extensions this paper spawned
    PolicySpec("S3-FIFO", S3FIFO, "extension", min_capacity=2),
    PolicySpec("W-TinyLFU", WTinyLFU, "extension", min_capacity=2),
    PolicySpec("Adaptive-QD-LP-FIFO", AdaptiveQDLPFIFO, "extension",
               min_capacity=3),
    PolicySpec("SIEVE", Sieve, "extension"),
]

REGISTRY: Dict[str, PolicySpec] = {spec.name: spec for spec in _SPECS}

#: The five state-of-the-art algorithms of the paper's Fig. 5.
SOTA_NAMES = ["ARC", "LIRS", "CACHEUS", "LeCaR", "LHD"]


def make(name: str, capacity: int) -> EvictionPolicy:
    """Instantiate the policy registered under *name*.

    Raises ``KeyError`` with the list of known names on a typo, and
    ``ValueError`` when *capacity* is below the policy's minimum.
    """
    spec = REGISTRY.get(name)
    if spec is None:
        known = ", ".join(sorted(REGISTRY))
        raise KeyError(f"unknown policy {name!r}; known policies: {known}")
    if capacity < spec.min_capacity:
        raise ValueError(
            f"{name} needs capacity >= {spec.min_capacity}, got {capacity}")
    return spec.factory(capacity)


def names(category: str = None) -> List[str]:
    """All registered names, optionally filtered by category."""
    if category is None:
        return [spec.name for spec in _SPECS]
    return [spec.name for spec in _SPECS if spec.category == category]


__all__ = ["PolicySpec", "REGISTRY", "SOTA_NAMES", "make", "names", "Factory"]
