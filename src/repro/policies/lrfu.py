"""LRFU (Lee et al., IEEE ToC 2001): a spectrum between LRU and LFU.

Every object carries a *Combined Recency and Frequency* (CRF) value

    C(t) = sum over past accesses t_i of (1/2)^(lambda * (t - t_i)),

updated incrementally on each access; the object with the smallest CRF
is evicted.  ``lambda_ -> 0`` degenerates to LFU, large ``lambda_`` to
LRU.

Implementation note: because all CRFs decay by the same factor, the
eviction order at any instant equals the order of
``log2(C(t_last)) + lambda * t_last`` -- a time-independent weight.  We
store that weight and keep a lazily-invalidated min-heap over it,
avoiding both per-request re-decay and numeric overflow.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Tuple

from repro.core.base import EvictionPolicy, Key


class LRFU(EvictionPolicy):
    """The LRFU policy with decay parameter ``lambda_``."""

    name = "LRFU"

    def __init__(self, capacity: int, lambda_: float = 0.001) -> None:
        super().__init__(capacity)
        if lambda_ < 0:
            raise ValueError(f"lambda_ must be >= 0, got {lambda_}")
        self.lambda_ = lambda_
        self._clock = 0
        #: key -> current weight (log2 CRF normalised to t=0)
        self._weight: Dict[Key, float] = {}
        #: lazy min-heap of (weight, key)
        self._heap: List[Tuple[float, Key]] = []

    # ------------------------------------------------------------------
    def request(self, key: Key) -> bool:
        self._clock += 1
        t = self._clock
        weight = self._weight.get(key)
        if weight is not None:
            # CRF now = 2^(weight - lambda*t); new CRF = 1 + that.
            crf_now = 2.0 ** (weight - self.lambda_ * t)
            new_weight = math.log2(1.0 + crf_now) + self.lambda_ * t
            self._weight[key] = new_weight
            heapq.heappush(self._heap, (new_weight, key))
            self._promoted(key=key)
            self._maybe_compact()
            self._record(True)
            self._notify_hit(key)
            return True

        self._record(False)
        if len(self._weight) >= self.capacity:
            self._evict_one()
        new_weight = self.lambda_ * t  # log2(1) + lambda*t
        self._weight[key] = new_weight
        heapq.heappush(self._heap, (new_weight, key))
        self._maybe_compact()
        self._notify_admit(key)
        return False

    def _evict_one(self) -> None:
        while True:
            weight, key = heapq.heappop(self._heap)
            if self._weight.get(key) == weight:
                del self._weight[key]
                self._notify_evict(key)
                return

    def _maybe_compact(self) -> None:
        """Rebuild the heap when stale entries dominate it."""
        if len(self._heap) > 8 * max(len(self._weight), 16):
            self._heap = [
                (weight, key) for key, weight in self._weight.items()
            ]
            heapq.heapify(self._heap)

    # ------------------------------------------------------------------
    def __contains__(self, key: Key) -> bool:
        return key in self._weight

    def __len__(self) -> int:
        return len(self._weight)


__all__ = ["LRFU"]
