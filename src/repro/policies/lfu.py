"""Least Frequently Used eviction with O(1) operations.

LFU keeps a per-object access count and evicts a minimum-count object.
Implemented with the classic frequency-bucket structure: a dict from
frequency to an ordered set of keys plus a running minimum frequency,
giving O(1) hits and evictions.

Ties inside the minimum-frequency bucket are broken by recency.  The
default evicts the *least* recently used of the minimum-frequency
objects (classic LFU); ``tie="mru"`` evicts the *most* recently used,
which is the churn-resistant variant (CR-LFU) CACHEUS builds on --
under churn, evicting the newest of the cold objects protects the old
ones that have at least survived a while.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict

from repro.core.base import EvictionPolicy, Key


class LFU(EvictionPolicy):
    """In-cache LFU (frequency state does not survive eviction)."""

    name = "LFU"

    def __init__(self, capacity: int, tie: str = "lru") -> None:
        super().__init__(capacity)
        if tie not in ("lru", "mru"):
            raise ValueError(f"tie must be 'lru' or 'mru', got {tie!r}")
        self._tie = tie
        self._freq_of: Dict[Key, int] = {}
        self._buckets: Dict[int, "OrderedDict[Key, None]"] = {}
        self._min_freq = 0
        if tie == "mru":
            self.name = "CR-LFU"

    # ------------------------------------------------------------------
    def request(self, key: Key) -> bool:
        if key in self._freq_of:
            self._bump(key)
            self._promoted(key=key)
            self._record(True)
            self._notify_hit(key)
            return True
        self._record(False)
        if len(self._freq_of) >= self.capacity:
            self._evict_one()
        self._freq_of[key] = 1
        self._buckets.setdefault(1, OrderedDict())[key] = None
        self._min_freq = 1
        self._notify_admit(key)
        return False

    # ------------------------------------------------------------------
    # Structure-level operations (no stats, no events): these let
    # ensemble policies (LeCaR, CACHEUS) drive an LFU ordering over a
    # shared cache without the LFU acting as a cache of its own.
    # ------------------------------------------------------------------
    def insert(self, key: Key, freq: int = 1) -> None:
        """Insert *key* with a given frequency, without eviction.

        Ensemble owners must make room first; inserting past capacity
        raises ``OverflowError`` to catch accounting bugs early.
        """
        if key in self._freq_of:
            raise KeyError(f"duplicate key {key!r}")
        if len(self._freq_of) >= self.capacity:
            raise OverflowError("LFU.insert called on a full structure")
        if freq < 1:
            raise ValueError(f"freq must be >= 1, got {freq}")
        self._freq_of[key] = freq
        self._buckets.setdefault(freq, OrderedDict())[key] = None
        if len(self._freq_of) == 1 or freq < self._min_freq:
            self._min_freq = freq

    def bump(self, key: Key) -> None:
        """Increment *key*'s frequency; ``KeyError`` if absent."""
        if key not in self._freq_of:
            raise KeyError(key)
        self._bump(key)

    def pop_victim(self) -> Key:
        """Remove and return the eviction victim (no event fired)."""
        if not self._freq_of:
            raise KeyError("empty cache has no victim")
        bucket = self._buckets[self._min_freq]
        last = self._tie == "mru"
        victim, _ = bucket.popitem(last=last)
        if not bucket:
            del self._buckets[self._min_freq]
        del self._freq_of[victim]
        if self._freq_of and self._min_freq not in self._buckets:
            self._min_freq = min(self._buckets)
        return victim

    # ------------------------------------------------------------------
    def _bump(self, key: Key) -> None:
        freq = self._freq_of[key]
        bucket = self._buckets[freq]
        del bucket[key]
        if not bucket:
            del self._buckets[freq]
            if self._min_freq == freq:
                self._min_freq = freq + 1
        self._freq_of[key] = freq + 1
        self._buckets.setdefault(freq + 1, OrderedDict())[key] = None

    def _evict_one(self) -> None:
        bucket = self._buckets[self._min_freq]
        last = self._tie == "mru"
        victim, _ = bucket.popitem(last=last)
        if not bucket:
            del self._buckets[self._min_freq]
        del self._freq_of[victim]
        self._notify_evict(victim)

    def victim(self) -> Key:
        """The key that would be evicted next; ``KeyError`` if empty."""
        if not self._freq_of:
            raise KeyError("empty cache has no victim")
        bucket = self._buckets[self._min_freq]
        if self._tie == "mru":
            return next(reversed(bucket))
        return next(iter(bucket))

    def frequency(self, key: Key) -> int:
        """Current in-cache access count of *key* (0 when absent)."""
        return self._freq_of.get(key, 0)

    def remove(self, key: Key) -> bool:
        """Force-remove *key* (used by ensemble policies).

        Returns whether the key was present.  Does not fire an evict
        event: ensemble owners account for removals themselves.
        """
        freq = self._freq_of.pop(key, None)
        if freq is None:
            return False
        bucket = self._buckets[freq]
        del bucket[key]
        if not bucket:
            del self._buckets[freq]
            if self._min_freq == freq and self._freq_of:
                self._min_freq = min(self._buckets)
        return True

    # ------------------------------------------------------------------
    def __contains__(self, key: Key) -> bool:
        return key in self._freq_of

    def __len__(self) -> int:
        return len(self._freq_of)


__all__ = ["LFU"]
