"""LeCaR: Learning Cache Replacement (Vietri et al., HotStorage 2018).

LeCaR manages the cache with exactly two experts -- LRU and LFU -- and
an online regret-minimisation scheme.  On each eviction it samples an
expert in proportion to its weight and evicts that expert's victim; the
victim is remembered in the expert's own history (ghost) list.  When a
miss hits one of the histories, the expert responsible for that earlier
eviction is penalised multiplicatively, with a discount that decays the
penalty for older mistakes.

One of the five state-of-the-art algorithms QD-enhanced in the paper's
Fig. 5 (QD-LeCaR reduces LeCaR's miss ratio by 4.5 % on average, the
largest of the five improvements).
"""

from __future__ import annotations

import math
import random
from collections import OrderedDict

from repro.core.base import EvictionPolicy, Key
from repro.policies.lfu import LFU


class LeCaR(EvictionPolicy):
    """The LeCaR algorithm with its published hyper-parameters.

    ``learning_rate=0.45`` and ``discount = 0.005 ** (1/N)`` follow the
    original paper.  The expert-choice RNG is seeded for reproducible
    simulation runs.
    """

    name = "LeCaR"

    def __init__(
        self,
        capacity: int,
        learning_rate: float = 0.45,
        seed: int = 0,
    ) -> None:
        super().__init__(capacity)
        self.learning_rate = learning_rate
        self.discount = 0.005 ** (1.0 / capacity)
        self._rng = random.Random(seed)
        self._clock = 0

        self.w_lru = 0.5
        self.w_lfu = 0.5
        self._lru: "OrderedDict[Key, None]" = OrderedDict()
        self._lfu = LFU(capacity)
        #: histories map key -> (frequency at eviction, eviction time)
        self._hist_lru: "OrderedDict[Key, tuple]" = OrderedDict()
        self._hist_lfu: "OrderedDict[Key, tuple]" = OrderedDict()

    # ------------------------------------------------------------------
    def request(self, key: Key) -> bool:
        self._clock += 1
        if key in self._lru:
            self._lru.move_to_end(key)
            self._lfu.bump(key)
            self._promoted(2, key=key)  # both expert structures are updated
            self._record(True)
            self._notify_hit(key)
            return True

        self._record(False)
        freq = 1
        if key in self._hist_lru:
            freq = self._penalise(self._hist_lru, key, which="lru")
        elif key in self._hist_lfu:
            freq = self._penalise(self._hist_lfu, key, which="lfu")

        if len(self._lru) >= self.capacity:
            self._evict_one()
        self._lru[key] = None
        self._lfu.insert(key, freq)
        self._notify_admit(key)
        return False

    # ------------------------------------------------------------------
    def _penalise(self, history: "OrderedDict[Key, tuple]", key: Key,
                  which: str) -> int:
        """Apply the regret update for a history hit; returns the
        frequency to restore for the re-admitted object."""
        freq, evicted_at = history.pop(key)
        regret = self.discount ** (self._clock - evicted_at)
        factor = math.e ** (self.learning_rate * regret)
        if which == "lru":
            # LRU evicted something useful: boost LFU.
            self.w_lfu *= factor
        else:
            self.w_lru *= factor
        total = self.w_lru + self.w_lfu
        self.w_lru /= total
        self.w_lfu /= total
        return freq + 1

    def _evict_one(self) -> None:
        use_lru = self._rng.random() < self.w_lru
        if use_lru:
            victim = next(iter(self._lru))
            history = self._hist_lru
        else:
            victim = self._lfu.victim()
            history = self._hist_lfu
        freq = self._lfu.frequency(victim)
        del self._lru[victim]
        self._lfu.remove(victim)
        self._remember(history, victim, freq)
        self._notify_evict(victim)

    def _remember(self, history: "OrderedDict[Key, tuple]", key: Key,
                  freq: int) -> None:
        if len(history) >= self.capacity:
            history.popitem(last=False)
        history[key] = (freq, self._clock)

    # ------------------------------------------------------------------
    def __contains__(self, key: Key) -> bool:
        return key in self._lru

    def __len__(self) -> int:
        return len(self._lru)

    @property
    def weights(self) -> tuple:
        """Current (w_lru, w_lfu) expert weights."""
        return (self.w_lru, self.w_lfu)


__all__ = ["LeCaR"]
