"""Multi-Queue (MQ) replacement (Zhou, Philbin & Li, ATC 2001).

MQ maintains *m* LRU queues Q0..Q(m-1); an object with reference count
``c`` lives in queue ``min(floor(log2(c)), m-1)``, so hotter objects sit
in higher queues.  Each object carries an expiry time; when the LRU end
of a queue expires, the object is demoted one queue down -- MQ's
explicit (but still slow, as the paper argues) demotion mechanism.
Evicted objects are remembered in a ghost queue **Qout** together with
their reference counts, which are restored on re-admission.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.core.base import EvictionPolicy, Key


class MQ(EvictionPolicy):
    """The MQ algorithm with *m* frequency-tiered LRU queues.

    ``lifetime`` is the residency time (in requests) before a queue
    head is demoted; the original paper derives it from the peak
    temporal distance, and twice the cache size is a standard static
    choice.  ``ghost_factor`` sizes Qout in multiples of the cache's
    entry count.
    """

    name = "MQ"

    def __init__(
        self,
        capacity: int,
        num_queues: int = 8,
        lifetime: Optional[int] = None,
        ghost_factor: float = 2.0,
    ) -> None:
        super().__init__(capacity)
        if num_queues < 1:
            raise ValueError(f"num_queues must be >= 1, got {num_queues}")
        self.num_queues = num_queues
        self.lifetime = lifetime if lifetime is not None else 2 * capacity
        self._queues: List["OrderedDict[Key, None]"] = [
            OrderedDict() for _ in range(num_queues)
        ]
        #: key -> (frequency, expire_time, queue_index)
        self._meta: Dict[Key, Tuple[int, int, int]] = {}
        self._qout: "OrderedDict[Key, int]" = OrderedDict()
        self._qout_max = max(1, round(capacity * ghost_factor))
        self._clock = 0
        self._size = 0

    # ------------------------------------------------------------------
    def _queue_index(self, freq: int) -> int:
        if freq < 2:
            return 0
        return min(int(math.log2(freq)), self.num_queues - 1)

    def _place(self, key: Key, freq: int) -> None:
        idx = self._queue_index(freq)
        self._queues[idx][key] = None
        self._meta[key] = (freq, self._clock + self.lifetime, idx)

    def _adjust(self) -> None:
        """Demote expired queue heads one level down (MQ's Adjust)."""
        for idx in range(1, self.num_queues):
            queue = self._queues[idx]
            if not queue:
                continue
            head = next(iter(queue))
            freq, expire, _ = self._meta[head]
            if expire < self._clock:
                del queue[head]
                self._queues[idx - 1][head] = None
                self._meta[head] = (freq, self._clock + self.lifetime, idx - 1)

    # ------------------------------------------------------------------
    def request(self, key: Key) -> bool:
        self._clock += 1
        meta = self._meta.get(key)
        if meta is not None:
            freq, _, idx = meta
            del self._queues[idx][key]
            self._place(key, freq + 1)
            self._promoted(key=key)
            self._adjust()
            self._record(True)
            self._notify_hit(key)
            return True

        self._record(False)
        if self._size >= self.capacity:
            self._evict_one()
        freq = self._qout.pop(key, 0) + 1
        self._place(key, freq)
        self._size += 1
        self._adjust()
        self._notify_admit(key)
        return False

    def _evict_one(self) -> None:
        for queue in self._queues:
            if queue:
                victim, _ = queue.popitem(last=False)
                freq, _, _ = self._meta.pop(victim)
                self._remember(victim, freq)
                self._size -= 1
                self._notify_evict(victim)
                return
        raise RuntimeError("evict called on empty MQ cache")

    def _remember(self, key: Key, freq: int) -> None:
        if key in self._qout:
            self._qout.move_to_end(key)
            self._qout[key] = freq
            return
        if len(self._qout) >= self._qout_max:
            self._qout.popitem(last=False)
        self._qout[key] = freq

    # ------------------------------------------------------------------
    def __contains__(self, key: Key) -> bool:
        return key in self._meta

    def __len__(self) -> int:
        return self._size

    def queue_of(self, key: Key) -> int:
        """The queue index *key* currently occupies; ``KeyError`` if absent."""
        return self._meta[key][2]


__all__ = ["MQ"]
