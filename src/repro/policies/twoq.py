"""2Q (Johnson & Shasha, VLDB 1994).

The "full version" of 2Q: a FIFO admission queue **A1in** (25 % of the
cache space by default), a metadata-only ghost **A1out** (entries for
50 % of the cache size), and a main LRU **Am**.  First-time misses go
to A1in and are *not* promoted on hits there (correlated references);
objects that miss again while remembered in A1out are judged truly hot
and admitted into Am.

2Q is the classic ancestor of quick demotion: the paper contrasts its
large admission queue with the QD wrapper's tiny 10 % probationary
FIFO.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Set

from repro.core.base import EvictionPolicy, Key
from repro.core.ghost import GhostQueue


class TwoQ(EvictionPolicy):
    """The full 2Q algorithm.

    ``kin_fraction`` sizes A1in as a share of the cache space and
    ``kout_fraction`` sizes the A1out ghost as a share of the cache's
    entry count, following the original paper's recommended 25 %/50 %.
    """

    name = "2Q"

    def __init__(
        self,
        capacity: int,
        kin_fraction: float = 0.25,
        kout_fraction: float = 0.5,
    ) -> None:
        super().__init__(capacity)
        self.kin = max(1, round(capacity * kin_fraction))
        if self.kin >= capacity:
            self.kin = max(1, capacity - 1)
        self.kout = max(1, round(capacity * kout_fraction))
        self._a1in: Deque[Key] = deque()
        self._a1in_set: Set[Key] = set()
        self._a1out = GhostQueue(self.kout)
        self._am: "OrderedDict[Key, None]" = OrderedDict()

    # ------------------------------------------------------------------
    def request(self, key: Key) -> bool:
        if key in self._am:
            self._am.move_to_end(key)
            self._promoted(key=key)
            self._record(True)
            self._notify_hit(key)
            return True
        if key in self._a1in_set:
            # Correlated reference: 2Q deliberately does nothing.
            self._record(True)
            self._notify_hit(key)
            return True

        self._record(False)
        if key in self._a1out:
            self._a1out.remove(key)
            self._notify_ghost_hit(key)
            self._reclaim()
            self._am[key] = None
        else:
            self._reclaim()
            self._a1in.append(key)
            self._a1in_set.add(key)
        self._notify_admit(key)
        return False

    def _reclaim(self) -> None:
        """Free one slot if the cache is full (the 2Q `reclaimfor`)."""
        if len(self) < self.capacity:
            return
        if len(self._a1in) >= self.kin or not self._am:
            victim = self._a1in.popleft()
            self._a1in_set.remove(victim)
            self._a1out.add(victim)
        else:
            victim, _ = self._am.popitem(last=False)
        self._notify_evict(victim)

    # ------------------------------------------------------------------
    def __contains__(self, key: Key) -> bool:
        return key in self._a1in_set or key in self._am

    def __len__(self) -> int:
        return len(self._a1in) + len(self._am)

    def in_a1in(self, key: Key) -> bool:
        """Whether *key* is in the A1in admission FIFO."""
        return key in self._a1in_set

    def in_am(self, key: Key) -> bool:
        """Whether *key* is in the Am main LRU."""
        return key in self._am


__all__ = ["TwoQ"]
