"""CACHEUS (Rodriguez et al., FAST 2021).

CACHEUS refines LeCaR along three axes: the two experts become
scan-resistant (**SR-LRU**) and churn-resistant (**CR-LFU**), the
learning rate adapts online instead of being fixed, and the history
footprint is halved.  It is one of the five state-of-the-art algorithms
the paper QD-enhances in Fig. 5.

Fidelity notes (documented per DESIGN.md):

* CR-LFU is LFU with MRU tie-breaking among minimum-frequency objects,
  as in the original.
* SR-LRU is implemented with its reuse (R) / scan (S) partition and an
  adaptively-sized scan region (history hits shrink the scan region;
  evictions of never-reused objects grow it).  This captures the
  published structure's behaviour without replicating every bookkeeping
  detail of the authors' code.
* The adaptive learning rate follows the paper's hill-climbing design:
  keep moving the learning rate in the direction that improved the
  window hit ratio, back off and reverse otherwise, and reset on
  prolonged stagnation.
"""

from __future__ import annotations

import math
import random
from collections import OrderedDict
from typing import Optional

from repro.core.base import EvictionPolicy, Key
from repro.policies.lfu import LFU


class _SRLRU:
    """Scan-resistant LRU ordering over an externally-owned key set.

    New keys enter the scan region **S**; a hit moves a key to the
    reuse region **R**.  Eviction victims come from S's LRU end when S
    is non-empty, else from R.  ``scan_target`` adapts: shrunk when a
    history hit proves we evicted reusable data too early, grown when a
    never-reused key is evicted (scan-like traffic).
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.scan_target = max(1, capacity // 2)
        self._scan: "OrderedDict[Key, None]" = OrderedDict()
        self._reuse: "OrderedDict[Key, None]" = OrderedDict()

    def insert(self, key: Key) -> None:
        self._scan[key] = None

    def hit(self, key: Key) -> None:
        if key in self._scan:
            del self._scan[key]
            self._reuse[key] = None
            self._rebalance()
        else:
            self._reuse.move_to_end(key)

    def _rebalance(self) -> None:
        max_reuse = max(1, self.capacity - self.scan_target)
        while len(self._reuse) > max_reuse:
            demoted, _ = self._reuse.popitem(last=False)
            # Demoted keys re-enter the scan region at its MRU end so
            # they are not immediately evicted.
            self._scan[demoted] = None

    def victim(self) -> Key:
        if self._scan:
            return next(iter(self._scan))
        return next(iter(self._reuse))

    def remove(self, key: Key) -> bool:
        """Remove *key*; returns whether it sat in the scan region."""
        if key in self._scan:
            del self._scan[key]
            return True
        del self._reuse[key]
        return False

    def on_history_hit(self) -> None:
        """We evicted something reusable: give reuse more room."""
        self.scan_target = max(1, self.scan_target - 1)
        self._rebalance()

    def on_scan_eviction(self) -> None:
        """A never-reused key died in S: scans deserve more room."""
        self.scan_target = min(self.capacity - 1 if self.capacity > 1 else 1,
                               self.scan_target + 1)


class CACHEUS(EvictionPolicy):
    """The CACHEUS ensemble of SR-LRU and CR-LFU."""

    name = "CACHEUS"

    _LR_MIN = 1e-3
    _LR_MAX = 1.0

    def __init__(self, capacity: int, seed: int = 0) -> None:
        super().__init__(capacity)
        self._rng = random.Random(seed)
        self._clock = 0

        self.w_srlru = 0.5
        self.w_crlfu = 0.5
        self.learning_rate = 0.1
        self._lr_change = 0.01
        self._window = max(16, capacity)
        self._window_hits = 0
        self._window_requests = 0
        self._prev_hit_ratio: Optional[float] = None
        self._stagnant_windows = 0

        self._srlru = _SRLRU(capacity)
        self._crlfu = LFU(capacity, tie="mru")
        self._present: "OrderedDict[Key, None]" = OrderedDict()
        hist_cap = max(1, capacity // 2)
        self._hist_cap = hist_cap
        self._hist_srlru: "OrderedDict[Key, int]" = OrderedDict()
        self._hist_crlfu: "OrderedDict[Key, int]" = OrderedDict()

    # ------------------------------------------------------------------
    def request(self, key: Key) -> bool:
        self._clock += 1
        self._window_requests += 1
        if key in self._present:
            self._srlru.hit(key)
            self._crlfu.bump(key)
            self._promoted(2, key=key)  # both expert structures are updated
            self._window_hits += 1
            self._end_of_window()
            self._record(True)
            self._notify_hit(key)
            return True

        self._record(False)
        freq = 1
        if key in self._hist_srlru:
            freq = self._hist_srlru.pop(key) + 1
            self._boost(crlfu=True)
            self._srlru.on_history_hit()
        elif key in self._hist_crlfu:
            freq = self._hist_crlfu.pop(key) + 1
            self._boost(crlfu=False)

        if len(self._present) >= self.capacity:
            self._evict_one()
        self._present[key] = None
        self._srlru.insert(key)
        self._crlfu.insert(key, freq)
        self._end_of_window()
        self._notify_admit(key)
        return False

    # ------------------------------------------------------------------
    def _boost(self, crlfu: bool) -> None:
        """Multiplicative-weights update after an expert's mistake."""
        factor = math.e ** self.learning_rate
        if crlfu:
            self.w_crlfu *= factor
        else:
            self.w_srlru *= factor
        total = self.w_srlru + self.w_crlfu
        self.w_srlru /= total
        self.w_crlfu /= total

    def _evict_one(self) -> None:
        use_srlru = self._rng.random() < self.w_srlru
        if use_srlru:
            victim = self._srlru.victim()
            history = self._hist_srlru
        else:
            victim = self._crlfu.victim()
            history = self._hist_crlfu
        freq = self._crlfu.frequency(victim)
        was_scan = self._srlru.remove(victim)
        if was_scan and freq <= 1:
            self._srlru.on_scan_eviction()
        self._crlfu.remove(victim)
        del self._present[victim]
        if len(history) >= self._hist_cap:
            history.popitem(last=False)
        history[victim] = freq
        self._notify_evict(victim)

    def _end_of_window(self) -> None:
        """Hill-climb the learning rate on window hit-ratio deltas."""
        if self._window_requests < self._window:
            return
        hit_ratio = self._window_hits / self._window_requests
        prev = self._prev_hit_ratio
        if prev is not None:
            if hit_ratio > prev:
                self._stagnant_windows = 0
                # Last adjustment helped: push further the same way.
                self.learning_rate = self._clamp_lr(
                    self.learning_rate + self._lr_change)
            elif hit_ratio < prev:
                self._stagnant_windows = 0
                # It hurt: back off and reverse direction.
                self._lr_change = -self._lr_change
                self.learning_rate = self._clamp_lr(
                    self.learning_rate + self._lr_change)
            else:
                self._stagnant_windows += 1
                if self._stagnant_windows >= 10:
                    # Prolonged stagnation: random restart (seeded).
                    self.learning_rate = self._rng.uniform(
                        self._LR_MIN, self._LR_MAX)
                    self._stagnant_windows = 0
        self._prev_hit_ratio = hit_ratio
        self._window_hits = 0
        self._window_requests = 0

    def _clamp_lr(self, value: float) -> float:
        return min(self._LR_MAX, max(self._LR_MIN, value))

    # ------------------------------------------------------------------
    def __contains__(self, key: Key) -> bool:
        return key in self._present

    def __len__(self) -> int:
        return len(self._present)

    @property
    def weights(self) -> tuple:
        """Current (w_srlru, w_crlfu) expert weights."""
        return (self.w_srlru, self.w_crlfu)


__all__ = ["CACHEUS"]
