"""W-TinyLFU (Einziger, Friedman & Manes, ToS 2017).

The paper's §5 observes that admission algorithms -- TinyLFU foremost
-- "can be viewed as a form of QD", sometimes an overly aggressive one
(rejecting objects outright).  W-TinyLFU is the production variant
(Caffeine, Ristretto): a small **window LRU** (1 % of the cache)
absorbs new objects; on eviction from the window, the candidate must
beat the main cache's next victim in a frequency duel judged by a
Count-Min **sketch** (with a doorkeeper Bloom filter shielding it from
one-hit wonders); the **main** cache is a segmented LRU (20 %
probationary / 80 % protected).

Included so the QD-vs-admission comparison the paper gestures at can
actually be run (see ``benchmarks/bench_extensions.py``).
"""

from __future__ import annotations

from collections import OrderedDict

from repro.core.base import EvictionPolicy, Key
from repro.utils.sketch import CountMinSketch, Doorkeeper


class _SegmentedLRU:
    """Internal SLRU with explicit victim/remove control."""

    def __init__(self, capacity: int, protected_fraction: float) -> None:
        self.capacity = capacity
        self.protected_capacity = max(
            0, min(capacity - 1, round(capacity * protected_fraction)))
        self._probationary: "OrderedDict[Key, None]" = OrderedDict()
        self._protected: "OrderedDict[Key, None]" = OrderedDict()

    def __contains__(self, key: Key) -> bool:
        return key in self._probationary or key in self._protected

    def __len__(self) -> int:
        return len(self._probationary) + len(self._protected)

    def insert(self, key: Key) -> None:
        self._probationary[key] = None

    def hit(self, key: Key) -> None:
        if key in self._protected:
            self._protected.move_to_end(key)
            return
        del self._probationary[key]
        if self.protected_capacity == 0:
            self._probationary[key] = None
            return
        if len(self._protected) >= self.protected_capacity:
            demoted, _ = self._protected.popitem(last=False)
            self._probationary[demoted] = None
        self._protected[key] = None

    def victim(self) -> Key:
        """The key that would be evicted next."""
        if self._probationary:
            return next(iter(self._probationary))
        return next(iter(self._protected))

    def pop_victim(self) -> Key:
        victim = self.victim()
        if victim in self._probationary:
            del self._probationary[victim]
        else:
            del self._protected[victim]
        return victim


class WTinyLFU(EvictionPolicy):
    """The W-TinyLFU admission-based eviction algorithm."""

    name = "W-TinyLFU"

    def __init__(
        self,
        capacity: int,
        window_fraction: float = 0.01,
        protected_fraction: float = 0.8,
    ) -> None:
        super().__init__(capacity)
        if capacity < 2:
            raise ValueError("WTinyLFU needs capacity >= 2")
        if not 0.0 < window_fraction < 1.0:
            raise ValueError(
                f"window_fraction must be in (0, 1), got {window_fraction}")
        self.window_capacity = max(1, round(capacity * window_fraction))
        self.main_capacity = capacity - self.window_capacity
        if self.main_capacity < 1:
            self.main_capacity = 1
            self.window_capacity = capacity - 1
        self._window: "OrderedDict[Key, None]" = OrderedDict()
        self._main = _SegmentedLRU(self.main_capacity, protected_fraction)
        self.sketch = CountMinSketch(width=max(64, capacity))
        self.doorkeeper = Doorkeeper(max(64, capacity))

    # ------------------------------------------------------------------
    def _count(self, key: Key) -> None:
        """TinyLFU frequency bookkeeping with the doorkeeper in front."""
        if self.doorkeeper.put(key):
            self.sketch.increment(key)
        if self.sketch.ages:  # sketch aged: start a fresh doorkeeper too
            self.doorkeeper.clear()
            self.sketch.ages = 0

    def _frequency(self, key: Key) -> int:
        boost = 1 if key in self.doorkeeper else 0
        return self.sketch.estimate(key) + boost

    def request(self, key: Key) -> bool:
        self._count(key)
        if key in self._window:
            self._window.move_to_end(key)
            self._promoted(key=key)
            self._record(True)
            self._notify_hit(key)
            return True
        if key in self._main:
            self._main.hit(key)
            self._promoted(key=key)
            self._record(True)
            self._notify_hit(key)
            return True

        self._record(False)
        self._window[key] = None
        self._notify_admit(key)
        if len(self._window) > self.window_capacity:
            self._evict_from_window()
        return False

    def _evict_from_window(self) -> None:
        candidate, _ = self._window.popitem(last=False)
        if len(self._main) < self.main_capacity:
            self._main.insert(candidate)
            self._promoted(key=candidate)
            return
        victim = self._main.victim()
        # The TinyLFU duel: admit only if the candidate's estimated
        # frequency beats the main cache's next victim.
        if self._frequency(candidate) > self._frequency(victim):
            self._main.pop_victim()
            self._notify_evict(victim)
            self._main.insert(candidate)
            self._promoted(key=candidate)
        else:
            self._notify_evict(candidate)

    # ------------------------------------------------------------------
    def __contains__(self, key: Key) -> bool:
        return key in self._window or key in self._main

    def __len__(self) -> int:
        return len(self._window) + len(self._main)

    def in_window(self, key: Key) -> bool:
        """Whether *key* currently sits in the window LRU."""
        return key in self._window

    def in_main(self, key: Key) -> bool:
        """Whether *key* currently sits in the main SLRU."""
        return key in self._main


__all__ = ["WTinyLFU"]
