"""Plain FIFO eviction.

FIFO is the base of the paper's LEGO construction: no metadata updates
on hits, no promotion at all, eviction strictly in insertion order.  It
is the throughput/scalability gold standard (and flash-friendly: no
write amplification) but, alone, leaves a large miss-ratio headroom --
which Lazy Promotion and Quick Demotion close.

FIFO is also the normalisation baseline of Fig. 5: every algorithm's
efficiency is reported as its miss-ratio reduction from FIFO.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Set

from repro.core.base import EvictionPolicy, Key


class FIFO(EvictionPolicy):
    """First-in first-out eviction; hits touch nothing."""

    name = "FIFO"

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._queue: Deque[Key] = deque()
        self._present: Set[Key] = set()

    def request(self, key: Key) -> bool:
        if key in self._present:
            self._record(True)
            self._notify_hit(key)
            return True
        self._record(False)
        if len(self._queue) >= self.capacity:
            victim = self._queue.popleft()
            self._present.remove(victim)
            self._notify_evict(victim)
        self._queue.append(key)
        self._present.add(key)
        self._notify_admit(key)
        return False

    def __contains__(self, key: Key) -> bool:
        return key in self._present

    def __len__(self) -> int:
        return len(self._present)


__all__ = ["FIFO"]
