"""Random eviction.

A useful sanity baseline: it has FIFO's no-metadata property but no
ordering information at all.  Any algorithm worth running should beat
it on workloads with locality.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.core.base import EvictionPolicy, Key


class RandomCache(EvictionPolicy):
    """Evicts a uniformly random resident object.

    Uses the swap-pop trick over a position-indexed list for O(1)
    eviction.  Deterministic under a fixed ``seed``.
    """

    name = "Random"

    def __init__(self, capacity: int, seed: int = 0) -> None:
        super().__init__(capacity)
        self._rng = random.Random(seed)
        self._keys: List[Key] = []
        self._pos: Dict[Key, int] = {}

    def request(self, key: Key) -> bool:
        if key in self._pos:
            self._record(True)
            self._notify_hit(key)
            return True
        self._record(False)
        if len(self._keys) >= self.capacity:
            self._evict_one()
        self._pos[key] = len(self._keys)
        self._keys.append(key)
        self._notify_admit(key)
        return False

    def _evict_one(self) -> None:
        idx = self._rng.randrange(len(self._keys))
        victim = self._keys[idx]
        last = self._keys.pop()
        if last is not victim:
            self._keys[idx] = last
            self._pos[last] = idx
        del self._pos[victim]
        self._notify_evict(victim)

    def __contains__(self, key: Key) -> bool:
        return key in self._pos

    def __len__(self) -> int:
        return len(self._keys)


__all__ = ["RandomCache"]
