"""User-facing bundle of execution-layer knobs.

:class:`ExecOptions` is what the experiment modules and the CLI thread
down to :func:`repro.sim.runner.run_sweep` -- one object instead of six
keyword arguments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.exec.faults import FaultPlan
from repro.exec.retry import RetryPolicy


@dataclass(frozen=True)
class ExecOptions:
    """How a sweep should be executed.

    * ``retry`` -- per-cell retry/backoff/timeout policy.
    * ``resume`` -- run id of a journal to resume from; finished cells
      are skipped and new completions append to the same journal.
    * ``run_id`` -- explicit id for a *new* checkpointed run (implies
      checkpointing).
    * ``checkpoint`` -- checkpoint under a generated run id.
    * ``runs_dir`` -- root holding ``<run-id>/journal.jsonl`` dirs
      (default: ``$REPRO_RUNS_DIR`` or ``runs/``).
    * ``fault_plan`` -- deterministic fault injection (tests only).
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    resume: Optional[str] = None
    run_id: Optional[str] = None
    checkpoint: bool = False
    runs_dir: Optional[Path] = None
    fault_plan: Optional[FaultPlan] = None

    def sweep_kwargs(self) -> dict:
        """The keyword arguments :func:`run_sweep` accepts."""
        return {
            "retry": self.retry,
            "resume": self.resume,
            "run_id": self.run_id,
            "checkpoint": self.checkpoint,
            "runs_dir": self.runs_dir,
            "fault_plan": self.fault_plan,
        }


__all__ = ["ExecOptions"]
