"""JSONL checkpoint journal: ``runs/<run-id>/journal.jsonl``.

Every completed task of a checkpointed sweep is appended to the
journal as one JSON line, flushed immediately, so a crash or Ctrl-C
loses at most the in-flight cells.  Resuming a run replays the journal,
skips the recorded cells, and appends new completions to the same file.

Line kinds::

    {"kind": "meta",    "sweep": {...}}                  # run identity
    {"kind": "result",  "key": [...], "payload": {...}}  # completed cell
    {"kind": "failure", "key": [...], "attempts": N,
     "failure_kind": "...", "error": "..."}              # exhausted cell
    {"kind": "metrics", "rows": [...]}                   # obs snapshot
    {"kind": "timeseries", "rows": [...]}                # windowed curves

``result`` lines win by-key over earlier lines (re-runs overwrite);
``failure`` lines are informational -- a resumed run retries failed
cells rather than skipping them.  ``metrics`` lines carry a
:meth:`repro.obs.metrics.MetricsRegistry.snapshot` taken at the end of
the run; the last one wins and is what ``repro metrics --run`` renders.
``timeseries`` lines carry
:meth:`repro.obs.timeseries.TimeSeriesRecorder.to_rows` (last wins too)
and feed ``repro timeseries --run`` and ``repro diff``.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

PathLike = Union[str, Path]

JOURNAL_NAME = "journal.jsonl"


def runs_root(override: Optional[PathLike] = None) -> Path:
    """Directory holding per-run journal directories.

    Resolution order: explicit *override*, ``$REPRO_RUNS_DIR``, then
    ``runs/`` under the current working directory.
    """
    if override is not None:
        return Path(override)
    env = os.environ.get("REPRO_RUNS_DIR")
    if env:
        return Path(env)
    return Path("runs")


def new_run_id() -> str:
    """A fresh, sortable, collision-resistant run id."""
    return time.strftime("%Y%m%d-%H%M%S") + "-" + uuid.uuid4().hex[:6]


@dataclass
class JournalState:
    """The journal's contents after a replay."""

    meta: Optional[dict] = None
    #: key tuple -> payload of the last ``result`` line for that key
    results: Dict[Tuple, dict] = field(default_factory=dict)
    #: raw ``failure`` lines, in file order
    failures: List[dict] = field(default_factory=list)
    #: snapshot rows of the last ``metrics`` line, or None
    metrics: Optional[List[dict]] = None
    #: rows of the last ``timeseries`` line, or None
    timeseries: Optional[List[dict]] = None


def _key_to_json(key: Tuple) -> list:
    return list(key)


def _key_from_json(raw) -> Tuple:
    return tuple(raw)


class Journal:
    """Append-only JSONL checkpoint for one run."""

    def __init__(self, directory: PathLike):
        self.directory = Path(directory)
        self.path = self.directory / JOURNAL_NAME
        self.run_id = self.directory.name
        self._handle = None

    # -- construction --------------------------------------------------
    @classmethod
    def create(cls, run_id: Optional[str] = None,
               root: Optional[PathLike] = None,
               meta: Optional[dict] = None) -> "Journal":
        """Start a journal for a new run (dir is created; meta written).

        Creating over an existing run id is allowed -- the journal is
        appended to, which is what crash-then-rerun with an explicit
        ``--run-id`` wants -- but the meta line is only written when the
        file does not exist yet.
        """
        journal = cls(runs_root(root) / (run_id or new_run_id()))
        journal.directory.mkdir(parents=True, exist_ok=True)
        if meta is not None and not journal.path.exists():
            journal.append({"kind": "meta", "sweep": meta})
        return journal

    @classmethod
    def open(cls, run_id: str,
             root: Optional[PathLike] = None) -> "Journal":
        """Open an existing run's journal for resume."""
        journal = cls(runs_root(root) / run_id)
        if not journal.path.exists():
            raise FileNotFoundError(
                f"no journal found for run {run_id!r} "
                f"(looked in {journal.path})")
        return journal

    # -- writing -------------------------------------------------------
    def append(self, obj: dict) -> None:
        """Append one JSON line and flush it to the OS."""
        if self._handle is None:
            self.directory.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a")
        self._handle.write(json.dumps(obj, sort_keys=True) + "\n")
        self._handle.flush()

    def record_result(self, key: Tuple, payload: dict) -> None:
        """Checkpoint one completed task."""
        self.append({"kind": "result", "key": _key_to_json(key),
                     "payload": payload})

    def record_failure(self, key: Tuple, attempts: int,
                       failure_kind: str, error: str) -> None:
        """Record a task whose attempts were exhausted."""
        self.append({"kind": "failure", "key": _key_to_json(key),
                     "attempts": attempts, "failure_kind": failure_kind,
                     "error": error})

    def record_metrics(self, rows: List[dict]) -> None:
        """Checkpoint an observability snapshot (last line wins)."""
        self.append({"kind": "metrics", "rows": rows})

    def record_timeseries(self, rows: List[dict]) -> None:
        """Checkpoint windowed time-series rows (last line wins)."""
        self.append({"kind": "timeseries", "rows": rows})

    def close(self) -> None:
        """Close the append handle (safe to call twice)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- reading -------------------------------------------------------
    def load(self) -> JournalState:
        """Replay the journal file into a :class:`JournalState`.

        Lines that fail to parse (e.g. a half-written final line from a
        hard kill) are ignored -- the corresponding cell simply re-runs.
        """
        state = JournalState()
        if not self.path.exists():
            return state
        with self.path.open() as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    obj = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn write from a crash mid-append
                kind = obj.get("kind")
                if kind == "meta":
                    state.meta = obj.get("sweep")
                elif kind == "result":
                    state.results[_key_from_json(obj["key"])] = obj["payload"]
                elif kind == "failure":
                    state.failures.append(obj)
                elif kind == "metrics":
                    state.metrics = obj.get("rows")
                elif kind == "timeseries":
                    state.timeseries = obj.get("rows")
        return state


__all__ = [
    "JOURNAL_NAME",
    "Journal",
    "JournalState",
    "new_run_id",
    "runs_root",
]
